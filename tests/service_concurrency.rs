//! Cross-crate integration: concurrent multi-tenant submissions share one
//! compiled plan, and the shared result is identical to a solo run.
//!
//! The racing-submitter tests coordinate with `std::sync::Barrier` (all
//! submitters released at once) and assert scheduling-independent cache
//! invariants — single-flight compilation holds on *every* interleaving, so
//! no test here sleeps or retries.

use aohpc::prelude::*;
use aohpc_service::PlanKey;
use std::sync::Barrier;

const TENANTS: usize = 4;
const WORKERS: usize = 4;

/// The acceptance scenario: the same program from ≥4 tenants across ≥4
/// workers compiles exactly once (one cache miss; every other lookup hits),
/// and every tenant's result equals a solo run's.
#[test]
fn four_tenants_share_one_compiled_plan() {
    // Solo reference: a fresh single-worker service running the job once.
    let solo = KernelService::new(ServiceConfig::default().with_workers(1));
    let session = solo.open_session(SessionSpec::tenant("solo"));
    solo.submit(session, JobSpec::jacobi(Scale::Smoke)).unwrap();
    let solo_report = solo.drain().pop().expect("solo job completed");
    assert!(solo_report.error.is_none());

    // Concurrent run: TENANTS sessions, one job each, WORKERS workers.
    let service = KernelService::new(ServiceConfig::default().with_workers(WORKERS));
    assert_eq!(service.worker_count(), WORKERS);
    for t in 0..TENANTS {
        let session = service.open_session(SessionSpec::tenant(format!("tenant-{t}")));
        service.submit(session, JobSpec::jacobi(Scale::Smoke)).unwrap();
    }
    let reports = service.drain();
    assert_eq!(reports.len(), TENANTS);

    // Exactly one cache miss: the plan compiled once, every other lookup —
    // the other tenants' admission pre-warms and all per-task resolutions —
    // hit the shared entry.
    let stats = service.cache_stats();
    assert_eq!(stats.misses, 1, "exactly one compilation: {stats:?}");
    assert!(stats.hits >= (TENANTS - 1) as u64, "the rest were hits: {stats:?}");
    assert_eq!(stats.entries, 1);
    let hit_jobs = reports.iter().filter(|r| r.plan_cache_hit).count();
    assert_eq!(hit_jobs, TENANTS - 1, "one job owned the miss, the rest hit");

    // Results identical to the solo run (same sink order ⇒ same checksum
    // bits), and consistent metadata.
    let fp = JobSpec::jacobi(Scale::Smoke).program.fingerprint();
    for r in &reports {
        assert!(r.error.is_none());
        assert_eq!(r.checksum, solo_report.checksum, "tenant {} diverged", r.tenant);
        assert_eq!(r.fingerprint, fp);
        assert_eq!(r.summary.steps, solo_report.summary.steps);
    }

    // Per-tenant metering saw the same split.
    let misses: u64 = (1..=TENANTS as u64)
        .filter_map(|s| service.session(s))
        .map(|ctx| ctx.meter().plan_cache_misses)
        .sum();
    assert_eq!(misses, 1);
}

/// Single-flight compilation under *concurrent async* submits: N threads
/// race `submit` for the same program through the handle front door, all
/// released by one barrier.  However the workers interleave, the plan
/// compiles exactly once — one cache miss owns the compile, every other
/// lookup (racing pre-warms and per-task resolutions) hits the shared entry.
#[test]
fn racing_async_submits_compile_once() {
    const RACERS: usize = 8;
    let service = KernelService::new(ServiceConfig::default().with_workers(WORKERS));
    let sessions: Vec<SessionId> = (0..RACERS)
        .map(|t| service.open_session(SessionSpec::tenant(format!("racer-{t}"))))
        .collect();
    let barrier = Barrier::new(RACERS);

    let reports: Vec<JobReport> = std::thread::scope(|scope| {
        let submitters: Vec<_> = sessions
            .iter()
            .map(|&session| {
                let service = &service;
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    let handle = service.submit(session, JobSpec::jacobi(Scale::Smoke)).unwrap();
                    handle.wait().expect("racing job executed")
                })
            })
            .collect();
        submitters.into_iter().map(|s| s.join().unwrap()).collect()
    });

    // The invariant is interleaving-independent: exactly one compilation.
    let stats = service.cache_stats();
    assert_eq!(stats.misses, 1, "single-flight must hold under racing handles: {stats:?}");
    assert!(
        stats.hits >= (RACERS - 1) as u64,
        "the other racers' pre-warms hit the shared entry: {stats:?}"
    );
    assert_eq!(stats.entries, 1);
    assert_eq!(stats.collisions, 0);

    // Exactly one job owned the miss; per-session metering saw the same.
    let owned_miss = reports.iter().filter(|r| !r.plan_cache_hit).count();
    assert_eq!(owned_miss, 1, "one racer compiled, the rest hit");
    let metered_misses: u64 =
        sessions.iter().map(|&s| service.session(s).unwrap().meter().plan_cache_misses).sum();
    assert_eq!(metered_misses, 1);

    // All racers computed the same field from the same shared kernel.
    for r in &reports {
        assert!(r.error.is_none());
        assert_eq!(r.checksum, reports[0].checksum, "racer {} diverged", r.tenant);
    }
    // Handles were the only collection point; nothing waits in the sync path
    // that a later drain would double-report... except the retained buffer,
    // which must hold exactly these jobs.
    assert_eq!(service.drain().len(), RACERS);
}

/// The cache respects the full key: a different block shape or optimization
/// level is a different plan even for the same program.
#[test]
fn distinct_shapes_do_not_collide() {
    let service = KernelService::new(ServiceConfig::default().with_workers(2));
    let session = service.open_session(SessionSpec::tenant("t"));
    let base = JobSpec::jacobi(Scale::Smoke);
    let spec_a = base.clone();
    let spec_b = base.clone().with_block(base.region.nx / 2);
    let spec_c = base.clone().with_opt_level(OptLevel::None);
    service.submit_batch(session, vec![spec_a, spec_b, spec_c]).unwrap();
    let reports = service.drain();
    assert_eq!(reports.len(), 3);
    assert_eq!(service.cache_stats().misses, 3, "three distinct plan keys");
    let cache = service.plan_cache();
    assert!(cache.contains(&PlanKey {
        family: base.program.family(),
        fingerprint: base.program.fingerprint(),
        nx: base.block,
        ny: base.block,
        level: OptLevel::Full,
    }));
    // Same mathematics, same answer regardless of block shape or opt level.
    for r in &reports {
        assert!(
            (r.checksum - reports[0].checksum).abs() < 1e-9 * reports[0].checksum.abs().max(1.0),
            "{} vs {}",
            r.checksum,
            reports[0].checksum
        );
    }
}
