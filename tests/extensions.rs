//! Cross-crate integration tests of the platform extensions built on top of
//! the paper's prototype:
//!
//! * locality joints in the Env tree (§III-B3) under parallel execution;
//! * the subkernel IR with its access-resolution cache and heterogeneous
//!   backends (future-work §VI) woven with the MPI/OpenMP aspect modules;
//! * particle migration between buckets (the prototype limitation lifted)
//!   under every execution mode;
//! * interactions between the extensions and the paper's own mechanisms
//!   (MMAT, Dry-run, page communication).

use aohpc::prelude::*;
use aohpc_kernel::prelude::*;
use aohpc_kernel::{load, param, Processor};
use std::sync::Arc;

const ALL_MODES: [ExecutionMode; 5] = [
    ExecutionMode::PlatformDirect,
    ExecutionMode::PlatformNop,
    ExecutionMode::PlatformOmp { threads: 2 },
    ExecutionMode::PlatformMpi { ranks: 2 },
    ExecutionMode::PlatformHybrid { ranks: 2, threads: 2 },
];

const TOPOLOGIES: [TreeTopology; 3] = [
    TreeTopology::Flat,
    TreeTopology::MortonGroups { blocks_per_joint: 4 },
    TreeTopology::Quadtree { max_leaf_blocks: 1 },
];

fn sgrid_checksum(mode: ExecutionMode, tree: TreeTopology, mmat: bool) -> f64 {
    let region = RegionSize::square(48);
    let system = Arc::new(SGridSystem::with_block_size(region, 16).with_topology(tree));
    let sink = new_field_sink();
    let app = SGridJacobiApp::new(4, 16).with_sink(sink.clone());
    let outcome = Platform::new(mode).with_mmat(mmat).run_system(system, app.factory());
    assert!(outcome.report.tasks.iter().all(|t| t.steps == 4), "{} {}", mode.label(), tree.name());
    let sum = checksum(sink.lock().iter().map(|(_, v)| *v));
    sum
}

#[test]
fn locality_topologies_are_mode_invariant() {
    // The tree shape is a pure search optimisation: every (mode, topology,
    // MMAT) combination must produce the same field.
    let reference = sgrid_checksum(ExecutionMode::PlatformDirect, TreeTopology::Flat, false);
    for mode in ALL_MODES {
        for tree in TOPOLOGIES {
            for mmat in [false, true] {
                let got = sgrid_checksum(mode, tree, mmat);
                assert!(
                    (got - reference).abs() < 1e-9,
                    "{} / {} / mmat={mmat}: {got} != {reference}",
                    mode.label(),
                    tree.name()
                );
            }
        }
    }
}

#[test]
fn locality_joints_cut_search_work_under_mpi_too() {
    // The quadtree's pruning must survive the per-rank Env replication of the
    // distributed layer (Buffer-only blocks keep their joints).
    let region = RegionSize::square(64);
    let visited = |tree: TreeTopology| {
        let system = UsGridSystem::with_block_size(region, 8, GridLayout::CaseR { seed: 9 })
            .with_topology(tree);
        let app = UsGridJacobiApp::new(system.clone(), 2);
        Platform::new(ExecutionMode::PlatformMpi { ranks: 2 })
            .run_system(Arc::new(system), app.factory())
            .report
            .total_counters()
            .search_nodes_visited
    };
    let flat = visited(TreeTopology::Flat);
    let quad = visited(TreeTopology::Quadtree { max_leaf_blocks: 1 });
    assert!(quad * 2 < flat, "quadtree joints must prune under MPI too: {quad} vs {flat}");
}

#[test]
fn ir_kernel_matches_the_classic_kernel_in_every_mode_and_backend() {
    let region = RegionSize::square(48);
    let block = 16;
    let loops = 3;

    // Reference: the classic Listing-1-style kernel on the serial platform.
    let system = Arc::new(SGridSystem::with_block_size(region, block));
    let sink = new_field_sink();
    let app = SGridJacobiApp::new(loops, block).with_sink(sink.clone());
    Platform::new(ExecutionMode::PlatformDirect).run_system(system, app.factory());
    let reference = checksum(sink.lock().iter().map(|(_, v)| *v));

    for mode in ALL_MODES {
        for processor in [Processor::Scalar, Processor::Simd, Processor::Accelerator] {
            let system = Arc::new(SGridSystem::with_block_size(region, block));
            let sink = new_stencil_field_sink();
            let app = IrStencilApp::new(StencilProgram::jacobi_5pt(), vec![0.5, 0.125], loops)
                .with_processor(processor)
                .with_field_sink(sink.clone());
            let outcome = Platform::new(mode).run_system(system, app.factory());
            assert!(outcome.report.tasks.iter().all(|t| t.steps == loops as u64));
            let got = checksum(sink.lock().iter().map(|(_, v)| *v));
            assert!(
                (got - reference).abs() < 1e-9,
                "{} / {}: {got} != {reference}",
                mode.label(),
                processor.name()
            );
        }
    }
}

#[test]
fn ir_kernel_still_exercises_page_communication_and_dry_run() {
    // The IR app's halo fetches go through the same refresh/communication
    // join points as a hand-written kernel, so the distributed aspect must
    // ship pages and the Dry-run prefetch must remove re-executions.
    let region = RegionSize::square(48);
    let run = |dry_run: bool| {
        let system = Arc::new(SGridSystem::with_block_size(region, 8));
        let app = IrStencilApp::new(StencilProgram::jacobi_5pt(), vec![0.5, 0.125], 3);
        Platform::new(ExecutionMode::PlatformMpi { ranks: 2 })
            .with_dry_run(dry_run)
            .run_system(system, app.factory())
            .report
    };
    let with = run(true);
    assert!(with.total_pages_sent() > 0, "halo fetches must cross ranks");
    assert_eq!(with.total_retries(), 0, "Dry-run must prefetch the IR app's halo too");
    let without = run(false);
    assert!(without.total_retries() > 0, "without Dry-run the first step of each rank re-executes");
}

#[test]
fn custom_ir_program_runs_heterogeneously_under_hybrid_weave() {
    // A anisotropic diffusion-like program written directly as IR, scheduled
    // over all three backends, under MPI+OpenMP: the run must complete every
    // step and use every backend.
    let expr = param(0) * load(0, 0)
        + param(1) * (load(1, 0) + load(-1, 0))
        + param(2) * (load(0, 1) + load(0, -1));
    let program = StencilProgram::new("anisotropic", expr, 3).unwrap();
    let stats_sink = new_stats_sink();
    let system = Arc::new(SGridSystem::with_block_size(RegionSize::square(64), 16));
    let app = IrStencilApp::new(program, vec![0.4, 0.2, 0.1], 3)
        .with_dispatcher(HeteroDispatcher::new(SchedulePolicy::RoundRobin(vec![
            Processor::Accelerator,
            Processor::Simd,
            Processor::Scalar,
        ])))
        .with_stats_sink(stats_sink.clone());
    let outcome = Platform::new(ExecutionMode::PlatformHybrid { ranks: 2, threads: 2 })
        .run_system(system, app.factory());
    assert_eq!(outcome.report.tasks.len(), 4);
    assert!(outcome.report.tasks.iter().all(|t| t.steps == 3));
    let stats = stats_sink.lock();
    for processor in [Processor::Scalar, Processor::Simd, Processor::Accelerator] {
        assert!(
            stats.get(processor).is_some(),
            "backend {} never executed a block",
            processor.name()
        );
    }
    assert_eq!(stats.total().cells, outcome.report.total_counters().writes);
}

#[test]
fn particle_migration_is_mode_invariant_and_conservative() {
    let run = |mode: ExecutionMode| {
        // 64 buckets at a quarter of the capacity (4 per bucket) = 256
        // particles; low density keeps wall pile-up below the bucket capacity.
        let mut system = ParticleSystem::paper(ParticleSize::new(256));
        system.fill_per_bucket = 4;
        let count_sink = new_field_sink();
        let app = ParticleApp::new(system.clone(), 4)
            .with_migration(true)
            .with_dt(0.2)
            .with_initial_velocity([2.0, 0.0, 0.0])
            .with_count_sink(count_sink.clone());
        let outcome = Platform::new(mode).run_system(Arc::new(system), app.factory());
        assert!(outcome.report.tasks.iter().all(|t| t.steps == 4), "{}", mode.label());
        let mut counts: Vec<((i64, i64), f64)> =
            count_sink.lock().iter().map(|(a, c)| ((a.x, a.y), *c)).collect();
        counts.sort_by_key(|&(key, _)| key);
        counts
    };
    let reference = run(ExecutionMode::PlatformDirect);
    let total: f64 = reference.iter().map(|(_, c)| c).sum();
    assert_eq!(total, 256.0, "no particle may be lost by migration");
    for mode in [
        ExecutionMode::PlatformOmp { threads: 2 },
        ExecutionMode::PlatformMpi { ranks: 2 },
        ExecutionMode::PlatformHybrid { ranks: 2, threads: 2 },
    ] {
        let got = run(mode);
        assert_eq!(got.len(), reference.len());
        for ((ka, ca), (kb, cb)) in got.iter().zip(&reference) {
            assert_eq!(ka, kb);
            assert_eq!(ca, cb, "{}: bucket {ka:?} occupancy differs", mode.label());
        }
    }
}

#[test]
fn extensions_compose_ir_kernel_on_a_quadtree_env() {
    // The subkernel IR and the locality joints are independent extensions;
    // combining them must not change results and must keep the halo fetch
    // count identical (the plan decides *what* leaves the block, the tree
    // only decides *how fast* the search finds it).
    let region = RegionSize::square(48);
    let run = |tree: TreeTopology| {
        let system = Arc::new(SGridSystem::with_block_size(region, 8).with_topology(tree));
        let sink = new_stencil_field_sink();
        let app = IrStencilApp::new(StencilProgram::smooth_9pt(), vec![0.6, 0.05], 3)
            .with_processor(Processor::Simd)
            .with_field_sink(sink.clone());
        let outcome = Platform::new(ExecutionMode::PlatformOmp { threads: 2 })
            .run_system(system, app.factory());
        let counters = outcome.report.total_counters();
        let sum = checksum(sink.lock().iter().map(|(_, v)| *v));
        (sum, counters.out_of_block_reads, counters.search_nodes_visited)
    };
    let (flat_sum, flat_out, flat_visited) = run(TreeTopology::Flat);
    let (quad_sum, quad_out, quad_visited) = run(TreeTopology::Quadtree { max_leaf_blocks: 1 });
    assert!((flat_sum - quad_sum).abs() < 1e-9);
    assert_eq!(flat_out, quad_out, "the access plan fixes the out-of-block reads");
    assert!(quad_visited < flat_visited, "the quadtree must still shorten each search");
}
