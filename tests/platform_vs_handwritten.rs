//! Cross-crate integration tests: the platform's three sample DSLs must
//! reproduce the handwritten baselines' results in every execution mode, and
//! the mechanisms the paper credits (MMAT, Dry-run, page communication) must
//! be observable in the run reports.

use aohpc::prelude::*;
use aohpc_baselines::{HandwrittenSGrid, HandwrittenUsGrid};
use std::sync::Arc;

fn init(x: i64, y: i64) -> f64 {
    SGridJacobiApp::initial_value(GlobalAddress::new2d(x, y))
}

const ALL_MODES: [ExecutionMode; 6] = [
    ExecutionMode::PlatformDirect,
    ExecutionMode::PlatformNop,
    ExecutionMode::PlatformOmp { threads: 2 },
    ExecutionMode::PlatformMpi { ranks: 2 },
    ExecutionMode::PlatformMpi { ranks: 4 },
    ExecutionMode::PlatformHybrid { ranks: 2, threads: 2 },
];

#[test]
fn sgrid_matches_handwritten_in_every_mode() {
    let region = RegionSize::square(48);
    let block = 16;
    let loops = 5;
    let (grid, _) = HandwrittenSGrid::new(region, loops, init).run();
    let expected = checksum(grid.field().iter().copied());

    for mode in ALL_MODES {
        let system = Arc::new(SGridSystem::with_block_size(region, block));
        let sink = new_field_sink();
        let app = SGridJacobiApp::new(loops, block).with_sink(sink.clone());
        let outcome = Platform::new(mode).with_mmat(true).run_system(system, app.factory());
        assert!(outcome.report.tasks.iter().all(|t| t.steps == loops as u64), "{}", mode.label());
        let got = checksum(sink.lock().iter().map(|(_, v)| *v));
        assert!(
            (got - expected).abs() < 1e-9,
            "{}: checksum {got} != handwritten {expected}",
            mode.label()
        );
    }
}

#[test]
fn usgrid_caser_matches_handwritten_under_mpi() {
    let region = RegionSize::square(32);
    let loops = 3;
    let layout = GridLayout::CaseR { seed: 123 };
    let (expected_field, _) = HandwrittenUsGrid::new(region, layout, loops, init).run();
    let expected = checksum(expected_field.iter().copied());

    let system = UsGridSystem::with_block_size(region, 8, layout);
    let sink = new_field_sink();
    let app = UsGridJacobiApp::new(system.clone(), loops).with_sink(sink.clone());
    let outcome = Platform::new(ExecutionMode::PlatformMpi { ranks: 4 })
        .with_mmat(true)
        .run_system(Arc::new(system), app.factory());
    // The sink is keyed by storage position; the checksum is order-insensitive
    // and layout is a bijection, so it can be compared directly.
    let got = checksum(sink.lock().iter().map(|(_, v)| *v));
    assert!((got - expected).abs() < 1e-9, "checksum {got} != {expected}");
    assert!(outcome.report.total_pages_sent() > 0, "CaseR must communicate pages across ranks");
}

#[test]
fn mmat_eliminates_repeated_env_searches() {
    let region = RegionSize::square(32);
    let run = |mmat: bool| {
        let system = UsGridSystem::with_block_size(region, 8, GridLayout::CaseC);
        let app = UsGridJacobiApp::new(system.clone(), 6);
        Platform::new(ExecutionMode::PlatformDirect)
            .with_mmat(mmat)
            .run_system(Arc::new(system), app.factory())
            .report
            .total_counters()
    };
    let without = run(false);
    let with = run(true);
    assert!(
        with.env_searches * 3 < without.env_searches,
        "MMAT must remove most searches: {} vs {}",
        with.env_searches,
        without.env_searches
    );
    assert!(with.mmat_hits > 0);
    assert!(
        Platform::new(ExecutionMode::PlatformDirect).cost_model().task_compute_seconds(&with, 1)
            < Platform::new(ExecutionMode::PlatformDirect)
                .cost_model()
                .task_compute_seconds(&without, 1),
        "the cost model must reward MMAT"
    );
}

#[test]
fn dry_run_avoids_recomputation_under_mpi() {
    let region = RegionSize::square(32);
    let run = |dry_run: bool| {
        let system = Arc::new(SGridSystem::with_block_size(region, 8));
        let app = SGridJacobiApp::new(4, 8);
        Platform::new(ExecutionMode::PlatformMpi { ranks: 2 })
            .with_dry_run(dry_run)
            .run_system(system, app.factory())
            .report
    };
    let with = run(true);
    let without = run(false);
    assert_eq!(with.total_retries(), 0, "Dry-run prefetch removes all re-executions");
    assert!(without.total_retries() > 0, "without Dry-run, failed steps must be recomputed");
}

#[test]
fn weave_report_documents_the_modules() {
    let system = Arc::new(SGridSystem::with_block_size(RegionSize::square(16), 8));
    let app = SGridJacobiApp::new(1, 8);
    let outcome = Platform::new(ExecutionMode::PlatformHybrid { ranks: 2, threads: 2 })
        .run_system(system, app.factory());
    let aspects = outcome.weave.active_aspects();
    assert_eq!(aspects.len(), 2);
    assert!(aspects.iter().any(|a| a.contains("distributed")));
    assert!(aspects.iter().any(|a| a.contains("shared")));
    assert!(outcome.report.runtime_events.iter().any(|e| e.starts_with("mpi:init")));
    assert!(outcome.report.runtime_events.iter().any(|e| e.starts_with("omp:spawn")));
}

/// The specialization tier's contract with the paper's pitch: the platform's
/// jacobi kernel — DSL expression → DAG → tape → matched super-instruction
/// loop — must land within a pinned factor of the loop a human would write,
/// and produce the *same bits*.  The factor is deliberately loose (debug
/// builds deflate both sides unevenly; `BENCH_kernel.json` records the real
/// release-mode ratio, ~1.2x) — this test pins the order of magnitude so an
/// accidental fall-off the fast path (e.g. a tape change that stops
/// matching) fails loudly.
#[test]
fn specialized_jacobi_stays_within_pinned_factor_of_handwritten() {
    use aohpc_kernel::{
        CompiledKernel, ExecScratch, ExecStats, OptLevel, Processor, SpecializationId,
        StencilProgram,
    };
    use std::time::Instant;

    const PINNED_FACTOR: f64 = 6.0;
    let n = 128usize;
    let program = StencilProgram::jacobi_5pt();
    let compiled = CompiledKernel::compile(
        &program,
        aohpc_kernel::prelude::Extent::new2d(n, n),
        OptLevel::Full,
    );
    assert_ne!(
        compiled.specialization(),
        SpecializationId::Generic,
        "jacobi-5pt must qualify for the weighted-sum specialization"
    );

    let cells: Vec<f64> = (0..n * n).map(|k| init((k % n) as i64, (k / n) as i64)).collect();
    let params = [0.5, 0.125];

    // The loop a human would write: halo reads 0.0, neighbour fold in the
    // tape's load order (N, W, E, S) so the results are bit-identical.
    let at = |x: i64, y: i64| -> f64 {
        if x >= 0 && (x as usize) < n && y >= 0 && (y as usize) < n {
            cells[y as usize * n + x as usize]
        } else {
            0.0
        }
    };
    let mut by_hand = vec![0.0f64; n * n];
    let handwritten = |out: &mut [f64]| {
        for y in 0..n as i64 {
            for x in 0..n as i64 {
                let s = at(x, y - 1) + at(x - 1, y) + at(x + 1, y) + at(x, y + 1);
                out[y as usize * n + x as usize] = params[0] * at(x, y) + params[1] * s;
            }
        }
    };

    let mut by_platform = vec![0.0f64; n * n];
    let mut scratch = ExecScratch::new();
    let mut platform = |out: &mut [f64]| {
        let mut stats = ExecStats::default();
        compiled.execute_block(
            &cells,
            &params,
            &mut |_, _| 0.0,
            out,
            Processor::Scalar,
            &mut stats,
            &mut scratch,
        );
    };

    // Correctness first: same block, same bits, every cell.
    handwritten(&mut by_hand);
    platform(&mut by_platform);
    for (i, (h, p)) in by_hand.iter().zip(&by_platform).enumerate() {
        assert_eq!(h.to_bits(), p.to_bits(), "cell {i}: handwritten {h} != specialized {p}");
    }

    // Throughput: best-of-5 blocks each, to shrug off scheduler noise.
    let reps = 20u32;
    let best = |step: &mut dyn FnMut(&mut [f64]), out: &mut [f64]| -> f64 {
        (0..5)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..reps {
                    step(out);
                }
                start.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let hand_secs = best(&mut { handwritten }, &mut by_hand);
    let spec_secs = best(&mut { platform }, &mut by_platform);
    assert!(
        spec_secs <= hand_secs * PINNED_FACTOR,
        "specialized jacobi fell outside {PINNED_FACTOR}x of the handwritten loop: \
         {spec_secs:.4}s vs {hand_secs:.4}s ({:.2}x)",
        spec_secs / hand_secs
    );
}

#[test]
fn more_parallelism_reduces_simulated_time_for_all_dsls() {
    // Strong-scaling sanity across all three DSLs (the shape behind Figs. 7/9).
    // The problem must be large enough that per-step communication latency
    // does not dominate (the paper's strong-scaling runs use 4096² cells).
    let scale_modes = |mode1: ExecutionMode, mode4: ExecutionMode| -> Vec<(f64, f64)> {
        let region = RegionSize::square(160);
        let mut pairs = Vec::new();
        // SGrid
        let t = |mode: ExecutionMode| {
            let system = Arc::new(SGridSystem::with_block_size(region, 16));
            Platform::new(mode)
                .run_system(system, SGridJacobiApp::new(3, 16).factory())
                .simulated_seconds
        };
        pairs.push((t(mode1), t(mode4)));
        // USGrid CaseC
        let t = |mode: ExecutionMode| {
            let system = UsGridSystem::with_block_size(region, 16, GridLayout::CaseC);
            let app = UsGridJacobiApp::new(system.clone(), 3);
            Platform::new(mode)
                .with_mmat(true)
                .run_system(Arc::new(system), app.factory())
                .simulated_seconds
        };
        pairs.push((t(mode1), t(mode4)));
        // Particle
        let t = |mode: ExecutionMode| {
            let system = ParticleSystem::paper(ParticleSize::new(4096));
            let app = ParticleApp::new(system.clone(), 3);
            Platform::new(mode).run_system(Arc::new(system), app.factory()).simulated_seconds
        };
        pairs.push((t(mode1), t(mode4)));
        pairs
    };

    for (one, four) in scale_modes(
        ExecutionMode::PlatformMpi { ranks: 1 },
        ExecutionMode::PlatformMpi { ranks: 4 },
    ) {
        assert!(four < one, "4 ranks must beat 1 rank ({four} !< {one})");
    }
    for (one, four) in scale_modes(
        ExecutionMode::PlatformOmp { threads: 1 },
        ExecutionMode::PlatformOmp { threads: 4 },
    ) {
        assert!(four < one, "4 threads must beat 1 thread ({four} !< {one})");
    }
}
