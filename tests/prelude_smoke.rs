//! Workspace-level smoke test: the `aohpc_suite` facade must keep re-exporting
//! the platform entry points so examples and downstream users can rely on
//! `aohpc_suite::prelude::*` alone.

use aohpc_suite::prelude::*;
use std::sync::Arc;

#[test]
fn prelude_reexports_platform_entry_points() {
    // Using the names as types/values is the assertion: a missing re-export
    // fails to compile.  `RunOutcome` is the annotated result type, and
    // `ExecutionMode` + `Platform` drive a minimal end-to-end run.
    let system = Arc::new(SGridSystem::with_block_size(RegionSize::square(16), 8));
    let app = SGridJacobiApp::new(1, 8);
    let outcome: RunOutcome =
        Platform::new(ExecutionMode::PlatformDirect).run_system(system, app.factory());
    assert_eq!(outcome.report.tasks.len(), 1);
    assert!(outcome.simulated_seconds > 0.0);
}

#[test]
fn facade_reexports_match_prelude() {
    // The crate-root re-exports must be the same items as the prelude's.
    fn assert_same_type<T>(_: fn() -> T, _: fn() -> T) {}
    assert_same_type::<aohpc_suite::ExecutionMode>(
        || aohpc_suite::ExecutionMode::PlatformDirect,
        || ExecutionMode::PlatformDirect,
    );
}
