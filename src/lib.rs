//! `aohpc-suite`: the workspace-level package hosting the runnable examples
//! (`examples/`) and cross-crate integration tests (`tests/`).  The library
//! itself simply re-exports the platform facade so examples and tests can use
//! `aohpc_suite::prelude::*`.

pub use aohpc::prelude;
pub use aohpc::{ExecutionMode, Platform, RunOutcome};
