//! Flight-recorder capture demo: a mixed-family cluster run under the woven
//! observability layer, exported as a Chrome trace.
//!
//! Two service nodes share one [`ObsHub`], so every span any rank records —
//! job roots, kernel supersteps, per-block execution, cache resolutions, and
//! the cross-node plan-fetch round trips — lands in one flight recorder,
//! linked into per-job trees by trace id.  The demo submits one program per
//! kernel family to *both* nodes (forcing a cross-node fetch for every plan
//! whose owner is the other rank), then:
//!
//! 1. verifies the job → superstep → block span linkage and that at least
//!    one `Cluster::plan_req` span sits inside a job's trace,
//! 2. writes `trace_capture.chrome.json` — open it in `chrome://tracing` or
//!    <https://ui.perfetto.dev> to see the timeline,
//! 3. prints the cross-validated [`ObsSnapshot`].
//!
//! ```sh
//! AOHPC_SCALE=smoke cargo run --release --example trace_capture
//! ```

use aohpc_aop::names;
use aohpc_service::{
    chrome_trace_json, ClusterService, JobSpec, ObsHub, ServiceConfig, SessionSpec,
};
use aohpc_workloads::Scale;
use std::collections::HashSet;
use std::sync::Arc;

fn main() {
    let scale = Scale::from_env();
    const NODES: usize = 2;
    let hub = ObsHub::new();
    let cluster =
        ClusterService::with_observer(NODES, ServiceConfig::for_scale(scale), Arc::clone(&hub));
    println!("# trace_capture — {NODES} nodes, shared ObsHub, scale = {scale}");

    // One program per kernel family, submitted on every node: each plan
    // compiles on its fingerprint-owner rank and is fetched by the other.
    let jobs = [JobSpec::jacobi(scale), JobSpec::particle(scale), JobSpec::usgrid(scale)];
    let mut handles = Vec::new();
    for node in 0..NODES {
        let session = cluster.open_session_on(node, SessionSpec::tenant(format!("trace-{node}")));
        for job in &jobs {
            handles.push(cluster.submit(session, job.clone()).expect("admitted"));
        }
    }
    let mut traces = HashSet::new();
    for handle in handles {
        let report = handle.wait().expect("job executed");
        assert!(report.error.is_none(), "job failed: {:?}", report.error);
        let trace = report.trace_id.expect("observed jobs carry a trace id");
        traces.insert(trace);
        println!(
            "  job {:>2}  trace {trace:>3}  queue {:>7?}  resolve {:>9?}  execute {:>9?}",
            report.job, report.queue_wait, report.resolve_time, report.execute_time
        );
    }

    let spans = hub.recorder().spans();

    // Acceptance: job → superstep → block linkage inside one trace tree.
    let job_roots: Vec<_> =
        spans.iter().filter(|s| s.name == "Service::job" && s.parent == 0).collect();
    assert_eq!(job_roots.len(), traces.len(), "one root span per job");
    let mut linked_blocks = 0usize;
    for root in &job_roots {
        let steps: Vec<_> = spans
            .iter()
            .filter(|s| s.name == names::KERNEL_STEP && s.trace == root.trace)
            .collect();
        assert!(!steps.is_empty(), "trace {} has superstep spans", root.trace);
        let step_ids: HashSet<u64> = steps.iter().map(|s| s.span).collect();
        for block in spans.iter().filter(|s| s.name == names::KERNEL_BLOCK && s.trace == root.trace)
        {
            assert!(
                step_ids.contains(&block.parent),
                "block span parents into a superstep of its own trace"
            );
            linked_blocks += 1;
        }
    }
    assert!(linked_blocks > 0, "block spans recorded");

    // Acceptance: the cross-node plan fetch is part of the requesting job's
    // trace — the distributed round trip is visible in the job's own tree.
    let fetches: Vec<_> = spans.iter().filter(|s| s.name == names::CLUSTER_PLAN_REQ).collect();
    assert!(!fetches.is_empty(), "at least one plan crossed the fabric");
    for fetch in &fetches {
        assert!(traces.contains(&fetch.trace), "plan_req span shares a job's trace id");
    }
    let serves = spans.iter().filter(|s| s.name == names::CLUSTER_PLAN_REP).count();
    assert!(serves >= fetches.len(), "every fetch was served");

    let chrome = chrome_trace_json(&spans);
    std::fs::write("trace_capture.chrome.json", &chrome).expect("write chrome trace");
    println!(
        "\n{} spans across {} job traces ({} cross-node fetches, {} serves)",
        spans.len(),
        traces.len(),
        fetches.len(),
        serves
    );
    println!("wrote trace_capture.chrome.json ({} bytes) — open in chrome://tracing", chrome.len());

    let snapshot = cluster.obs_snapshot().expect("observer installed");
    let violations = snapshot.validate();
    assert!(violations.is_empty(), "snapshot inconsistent: {violations:?}");
    println!(
        "snapshot: {} completed, cache {}c/{}f/{}h, comm {} control frames — validate() clean ✓",
        snapshot.jobs.completed,
        snapshot.cache.as_ref().unwrap().compiles,
        snapshot.cache.as_ref().unwrap().fetches,
        snapshot.cache.as_ref().unwrap().hits,
        snapshot.comm.as_ref().unwrap().control_sent,
    );
    cluster.shutdown();
}
