//! The subkernel internal DSL (the paper's future-work §VI): write the
//! per-cell update as an expression, let the platform compile it, and execute
//! it heterogeneously on scalar / SIMD / (simulated) accelerator backends —
//! all under the same MPI+OpenMP aspect modules as a hand-written kernel.
//!
//! ```sh
//! cargo run --release --example kernel_ir
//! ```

use aohpc::prelude::*;
use aohpc_kernel::prelude::*;
use aohpc_kernel::{load, param, Processor};
use std::sync::Arc;

fn main() {
    // 1. The subkernel as an expression: alpha * centre + beta * (N + W + E + S).
    let expr =
        param(0) * load(0, 0) + param(1) * (load(0, -1) + load(-1, 0) + load(1, 0) + load(0, 1));
    let program = StencilProgram::new("jacobi-5pt", expr, 2).expect("valid subkernel");
    println!("subkernel      : {program}");

    // 2. What the optimizer did to it.
    let app = IrStencilApp::new(program.clone(), vec![0.5, 0.125], 8);
    let opt = app.opt_stats();
    println!(
        "optimizer      : {} tree nodes -> {} DAG nodes ({} CSE merges, {} folds, {} identities)",
        opt.tree_nodes,
        opt.dag_nodes,
        opt.cse_merges,
        opt.constants_folded,
        opt.identities_simplified
    );

    // 3. Run it on the platform, heterogeneously: the accelerator takes half
    //    the blocks, SIMD lanes a quarter, scalar cores the rest — under the
    //    MPI+OpenMP hybrid aspect weave.
    let region = RegionSize::square(128);
    let system = Arc::new(SGridSystem::with_block_size(region, 16));
    let stats_sink = new_stats_sink();
    let field_sink = new_stencil_field_sink();
    let app = app
        .with_dispatcher(HeteroDispatcher::new(SchedulePolicy::Weighted(vec![
            (Processor::Accelerator, 2.0),
            (Processor::Simd, 1.0),
            (Processor::Scalar, 1.0),
        ])))
        .with_stats_sink(stats_sink.clone())
        .with_field_sink(field_sink.clone());
    let outcome = Platform::new(ExecutionMode::PlatformHybrid { ranks: 2, threads: 2 })
        .run_system(system, app.factory());

    println!(
        "run            : {} tasks, {} pages shipped, simulated time {:.3} ms",
        outcome.report.tasks.len(),
        outcome.report.total_pages_sent(),
        outcome.simulated_seconds * 1e3
    );

    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>12} {:>14}",
        "backend", "blocks", "cells", "scalar ops", "vector ops", "offload bytes"
    );
    for (name, stats) in stats_sink.lock().iter() {
        println!(
            "{:<14} {:>10} {:>12} {:>12} {:>12} {:>14}",
            name,
            stats.blocks,
            stats.cells,
            stats.scalar_ops,
            stats.vector_ops,
            stats.offload_bytes_in + stats.offload_bytes_out
        );
    }

    let checksum: f64 = field_sink.lock().iter().map(|(_, v)| v).sum();
    println!("field checksum : {checksum:.6}");
    println!(
        "\nThe same woven MPI+OpenMP aspect modules ran an IR-compiled kernel — the subkernel \
         generator is a DSL-part concern, invisible to the aspect layer."
    );
}
