//! Locality joints in the Env tree (§III-B3): the same USGrid CaseR run with
//! the paper's default flat data branch and with Morton-group / quadtree
//! joints inserted by the DSL part.
//!
//! The joints carry bounding boxes, so the locality-aware Env search can prune
//! whole subtrees and an out-of-block access no longer scans every data block.
//! MMAT is left off on purpose — this is the cost MMAT would otherwise hide.
//!
//! ```sh
//! cargo run --release --example locality_tree
//! ```

use aohpc::prelude::*;
use std::sync::Arc;

fn run(tree: TreeTopology) -> (f64, u64, u64, usize) {
    let region = RegionSize::square(96);
    let system = UsGridSystem::with_block_size(region, 8, GridLayout::CaseR { seed: 42 })
        .with_topology(tree);
    let app = UsGridJacobiApp::new(system.clone(), 4);
    let outcome =
        Platform::new(ExecutionMode::PlatformDirect).run_system(Arc::new(system), app.factory());
    let counters = outcome.report.total_counters();
    (
        outcome.simulated_seconds,
        counters.env_searches,
        counters.search_nodes_visited,
        outcome.report.env_stats.num_blocks,
    )
}

fn main() {
    println!(
        "{:<18} {:>14} {:>14} {:>16} {:>12}",
        "tree topology", "sim time [ms]", "env searches", "nodes visited", "tree blocks"
    );
    let mut flat_visited = 0u64;
    for tree in [
        TreeTopology::Flat,
        TreeTopology::MortonGroups { blocks_per_joint: 4 },
        TreeTopology::Quadtree { max_leaf_blocks: 1 },
    ] {
        let (secs, searches, visited, blocks) = run(tree);
        if tree == TreeTopology::Flat {
            flat_visited = visited;
        }
        let speedup = if visited > 0 { flat_visited as f64 / visited as f64 } else { 0.0 };
        println!(
            "{:<18} {:>14.3} {:>14} {:>16} {:>12}   ({speedup:.1}x fewer visits than flat)",
            tree.name(),
            secs * 1e3,
            searches,
            visited,
            blocks
        );
    }
    println!(
        "\nThe number of Env searches is identical — the joints only change how much of the \
         tree each search has to walk before it finds the target block."
    );
}
