//! Cluster mesh demo: N service nodes sharing compiled plans over the
//! simulated fabric.
//!
//! Every node receives the same two programs.  Without plan sharing that
//! would cost `2 × N` compilations; the cluster's control-plane protocol
//! (fingerprint-owner routing + portable-kernel fetch) brings it down to
//! exactly 2 — one per distinct plan, cluster-wide — while every node's
//! results stay bit-identical.
//!
//! ```sh
//! AOHPC_SCALE=smoke cargo run --release --example cluster_mesh
//! ```

use aohpc_service::{ClusterService, JobSpec, ServiceConfig, SessionSpec};
use aohpc_workloads::Scale;

fn main() {
    let scale = Scale::from_env();
    const NODES: usize = 3;
    let cluster = ClusterService::new(NODES, ServiceConfig::for_scale(scale));
    println!("# cluster_mesh — {NODES} nodes, scale = {scale}");

    // One tenant per node (placement made explicit for the demo; plain
    // `open_session` routes by tenant-hash affinity).
    let jobs = [JobSpec::jacobi(scale), JobSpec::smooth(scale)];
    let mut handles = Vec::new();
    for node in 0..NODES {
        let session = cluster.open_session_on(node, SessionSpec::tenant(format!("tenant-{node}")));
        for job in &jobs {
            handles.push((node, cluster.submit(session, job.clone()).expect("admitted")));
        }
    }

    let mut checksums: Vec<Vec<u64>> = vec![Vec::new(); NODES];
    for (node, handle) in handles {
        let report = handle.wait().expect("job executed");
        assert!(report.error.is_none(), "job failed: {:?}", report.error);
        checksums[node].push(report.checksum.to_bits());
    }
    for node in 1..NODES {
        assert_eq!(
            checksums[node], checksums[0],
            "node {node} diverged from node 0 — plan sharing must be bit-exact"
        );
    }

    let cache = cluster.cache_stats();
    println!("\nper-node plan caches (compiles / fetches / hits):");
    for (rank, s) in cache.per_node.iter().enumerate() {
        println!(
            "  node {rank}: {:>2} compiled, {:>2} fetched, {:>3} hits",
            s.compiles, s.fetches, s.hits
        );
    }
    println!(
        "cluster total: {} compiles for {} distinct programs on {} nodes ({} fetches)",
        cache.total.compiles,
        jobs.len(),
        NODES,
        cache.total.fetches,
    );
    assert_eq!(cache.total.compiles as usize, jobs.len(), "compile-once-per-cluster");
    assert_eq!(cache.total.fetches as usize, jobs.len() * (NODES - 1));

    let comm = cluster.comm_stats();
    println!(
        "fabric: {} control frames, {} payload bytes (sent == received: {})",
        comm.total.control_sent,
        comm.total.bytes_sent,
        comm.total.bytes_sent == comm.total.bytes_received
            && comm.total.control_sent == comm.total.control_received,
    );
    assert_eq!(comm.total.control_sent, comm.total.control_received);

    cluster.shutdown();
    println!("\nresults bit-identical across all {NODES} nodes ✓");
}
