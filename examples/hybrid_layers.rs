//! Layer composition: sweep the (ranks × threads) combinations of the paper's
//! Fig. 11 for a fixed total task count and show how the aspect modules
//! compose without touching application code.
//!
//! ```sh
//! cargo run --release --example hybrid_layers
//! ```

use aohpc::prelude::*;
use std::sync::Arc;

fn main() {
    let region = RegionSize::square(128);
    let block = 16;
    let loops = 6;
    let total_tasks = 8;

    println!("{:<14} {:>8} {:>14} {:>14}", "ranks x thr", "tasks", "sim time [ms]", "pages sent");
    let mut ranks = 1;
    while ranks <= total_tasks {
        let threads = total_tasks / ranks;
        let mode = ExecutionMode::PlatformHybrid { ranks, threads };
        let system = Arc::new(SGridSystem::with_block_size(region, block));
        let app = SGridJacobiApp::new(loops, block);
        let outcome = Platform::new(mode).with_mmat(true).run_system(system, app.factory());
        println!(
            "{:<14} {:>8} {:>14.3} {:>14}",
            format!("{ranks} x {threads}"),
            outcome.report.tasks.len(),
            outcome.simulated_seconds * 1e3,
            outcome.report.total_pages_sent()
        );
        ranks *= 2;
    }
    println!("\nMore ranks mean more page traffic; more threads mean more shared-memory contention — the Fig. 11 trade-off.");
}
