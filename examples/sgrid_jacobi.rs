//! Structured-grid Jacobi solver: compares the platform result and cost
//! against the handwritten baseline (the paper's SGrid workload, §V-B1).
//!
//! ```sh
//! cargo run --release --example sgrid_jacobi
//! ```

use aohpc::prelude::*;
use aohpc_baselines::HandwrittenSGrid;
use std::sync::Arc;

fn init(x: i64, y: i64) -> f64 {
    SGridJacobiApp::initial_value(GlobalAddress::new2d(x, y))
}

fn main() {
    let region = RegionSize::square(192);
    let block = 32;
    let loops = 10;

    // Handwritten reference (Listing 2).
    let (grid, work) = HandwrittenSGrid::new(region, loops, init).run();
    let handwritten_checksum = checksum(grid.field().iter().copied());
    println!("handwritten: {} updates, checksum {handwritten_checksum:.6}", work.updates);

    // Platform run (4 MPI-like ranks), collecting the final field.
    let system = Arc::new(SGridSystem::with_block_size(region, block));
    let sink = new_field_sink();
    let app = SGridJacobiApp::new(loops, block).with_sink(sink.clone());
    let outcome =
        Platform::new(ExecutionMode::PlatformMpi { ranks: 4 }).run_system(system, app.factory());

    let platform_checksum = checksum(sink.lock().iter().map(|(_, v)| *v));
    println!(
        "platform (MPI x4): {} tasks, {} pages exchanged, checksum {platform_checksum:.6}",
        outcome.report.tasks.len(),
        outcome.report.total_pages_sent()
    );
    println!("simulated time: {:.3} ms", outcome.simulated_seconds * 1e3);

    let diff = (handwritten_checksum - platform_checksum).abs();
    assert!(diff < 1e-6, "platform and handwritten results diverged: {diff}");
    println!("results match the handwritten baseline (|Δchecksum| = {diff:.2e})");
}
