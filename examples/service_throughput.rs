//! The multi-tenant kernel-execution service: several tenants submit the
//! same (and different) subkernel jobs concurrently, the sharded plan cache
//! deduplicates compilation, and per-session metering attributes the work.
//!
//! ```sh
//! AOHPC_SCALE=smoke cargo run --release --example service_throughput
//! ```

use aohpc::prelude::*;
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    let config = ServiceConfig::for_scale(scale);
    let tenants = scale.service_tenants();
    let jobs_per_tenant = scale.service_jobs_per_tenant();
    println!(
        "service        : {} workers, {}-entry plan cache, scale `{scale}`",
        config.workers, config.cache_capacity
    );

    // --- Round 1: cold cache -------------------------------------------------
    let service = KernelService::new(config);
    let sessions: Vec<SessionId> = (0..tenants)
        .map(|t| {
            service.open_session(
                SessionSpec::tenant(format!("tenant-{t}"))
                    .with_env("workload", "jacobi/smooth mix")
                    .with_metadata("round", "cold"),
            )
        })
        .collect();

    let started = Instant::now();
    for (t, &session) in sessions.iter().enumerate() {
        for j in 0..jobs_per_tenant {
            // Every third tenant mixes in the 9-point kernel (how many that
            // is depends on the scale's tenant count), so the cache holds
            // more than one plan.
            let spec = if t % 3 == 2 && j % 2 == 1 {
                JobSpec::smooth(scale)
            } else {
                JobSpec::jacobi(scale)
            };
            service.submit(session, spec).expect("admission");
        }
    }
    let reports = service.drain();
    let cold = started.elapsed();
    let cold_stats = service.cache_stats();
    println!(
        "cold round     : {} jobs in {:.1} ms — cache {} misses / {} hits / {} entries",
        reports.len(),
        cold.as_secs_f64() * 1e3,
        cold_stats.misses,
        cold_stats.hits,
        cold_stats.entries
    );

    // --- Round 2: warm cache (same service, plans already resident) ---------
    // This round collects through the async front door — one `JobHandle` per
    // submission, waited per job — the migration target for `drain()`
    // callers (the reports are identical either way).
    let started = Instant::now();
    let mut warm_handles = Vec::new();
    for &session in &sessions {
        for _ in 0..jobs_per_tenant {
            warm_handles.push(service.submit(session, JobSpec::jacobi(scale)).expect("admission"));
        }
    }
    let warm_reports: Vec<JobReport> =
        warm_handles.iter().map(|h| h.wait().expect("job executed")).collect();
    // The sync path retained the same reports; take them so the buffer stays
    // bounded (handle-only deployments would disable retention instead).
    assert_eq!(service.drain().len(), warm_reports.len());
    let warm = started.elapsed();
    // Counters are cumulative; the delta against the cold snapshot is what
    // this round actually did (it should compile nothing).
    let stats = service.cache_stats();
    println!(
        "warm round     : {} jobs in {:.1} ms — cache {} misses / {} hits this round",
        warm_reports.len(),
        warm.as_secs_f64() * 1e3,
        stats.misses - cold_stats.misses,
        stats.hits - cold_stats.hits
    );
    assert_eq!(stats.misses, cold_stats.misses, "the warm round must not recompile");

    // --- Accounting ----------------------------------------------------------
    let mut simulated_total = 0.0;
    for &session in &sessions {
        let ctx = service.session(session).expect("session exists");
        let m = ctx.meter();
        simulated_total += m.simulated_seconds;
        println!(
            "  {:<10} jobs {:>3}  plan hits/misses {:>3}/{:<2}  cells {:>8}  sim {:>9.3} ms",
            ctx.tenant(),
            m.jobs_completed,
            m.plan_cache_hits,
            m.plan_cache_misses,
            m.cells_updated,
            m.simulated_seconds * 1e3,
        );
    }
    println!("simulated total: {:.3} ms across {} tenants", simulated_total * 1e3, tenants);

    // Every jacobi job — any tenant, any round — produced the same field.
    let jacobi_checksum = reports
        .iter()
        .find(|r| r.program == "jacobi-5pt")
        .map(|r| r.checksum)
        .expect("at least one jacobi job");
    let agree = reports
        .iter()
        .chain(&warm_reports)
        .filter(|r| r.program == "jacobi-5pt")
        .all(|r| (r.checksum - jacobi_checksum).abs() < 1e-9 * jacobi_checksum.abs().max(1.0));
    assert!(agree, "tenants must observe identical results");
    println!("all jacobi jobs agree on checksum {jacobi_checksum:.6}");
}
