//! Quickstart: write a serial-looking structured-grid application, then run
//! it unchanged in every execution mode the platform supports.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use aohpc::prelude::*;
use std::sync::Arc;

fn main() {
    // DSL part: a 128x128 structured grid tiled into 32x32 blocks.
    let region = RegionSize::square(128);
    let system = Arc::new(SGridSystem::with_block_size(region, 32));

    // App part: 8 Jacobi iterations, written once (see SGridJacobiApp for the
    // Listing-1-style kernel).
    let app = SGridJacobiApp::new(8, 32);

    println!(
        "{:<22} {:>8} {:>12} {:>14} {:>12}",
        "mode", "tasks", "steps", "sim time [ms]", "pages sent"
    );
    for mode in [
        ExecutionMode::PlatformDirect,
        ExecutionMode::PlatformNop,
        ExecutionMode::PlatformOmp { threads: 4 },
        ExecutionMode::PlatformMpi { ranks: 4 },
        ExecutionMode::PlatformHybrid { ranks: 2, threads: 2 },
    ] {
        let outcome = Platform::new(mode).with_mmat(true).run_system(system.clone(), app.factory());
        let steps: u64 = outcome.report.tasks.iter().map(|t| t.steps).max().unwrap_or(0);
        println!(
            "{:<22} {:>8} {:>12} {:>14.3} {:>12}",
            outcome.mode.label(),
            outcome.report.tasks.len(),
            steps,
            outcome.simulated_seconds * 1e3,
            outcome.report.total_pages_sent(),
        );
    }

    println!("\nThe same serial application code ran in every mode; only the woven aspect modules changed.");
}
