//! Bucketed particle simulation (the paper's Particle workload, §V-B3): runs
//! the same end-user application serially and on the hybrid MPI+OpenMP-like
//! configuration and checks the results agree, then demonstrates the
//! migration extension (particles moving between buckets — the feature the
//! paper's prototype leaves out).
//!
//! ```sh
//! cargo run --release --example particle_sim
//! ```

use aohpc::prelude::*;
use std::sync::Arc;

fn run(mode: ExecutionMode) -> (f64, f64, usize) {
    let system = ParticleSystem::paper(ParticleSize::new(1 << 11));
    let sink = new_field_sink();
    let app = ParticleApp::new(system.clone(), 5).with_sink(sink.clone());
    let outcome = Platform::new(mode).with_mmat(false).run_system(Arc::new(system), app.factory());
    let total_speed: f64 = sink.lock().iter().map(|(_, s)| s).sum();
    (total_speed, outcome.simulated_seconds, outcome.report.tasks.len())
}

/// Run the migration extension with a uniform drift and report how many
/// particles exist and how many buckets changed occupancy.
fn run_migration(mode: ExecutionMode) -> (f64, usize, usize) {
    let mut system = ParticleSystem::paper(ParticleSize::new(1 << 10));
    system.fill_per_bucket = 4;
    let count_sink = new_field_sink();
    let initial_fill = system.fill_per_bucket as f64;
    let app = ParticleApp::new(system.clone(), 6)
        .with_migration(true)
        .with_dt(0.2)
        .with_initial_velocity([2.5, 0.0, 0.0])
        .with_count_sink(count_sink.clone());
    let _ = Platform::new(mode).run_system(Arc::new(system), app.factory());
    let counts = count_sink.lock();
    let total: f64 = counts.iter().map(|(_, c)| c).sum();
    let changed = counts.iter().filter(|(_, c)| (*c - initial_fill).abs() > 0.5).count();
    (total, changed, counts.len())
}

fn main() {
    let (serial_speed, serial_time, _) = run(ExecutionMode::PlatformDirect);
    println!(
        "serial:  total particle speed {serial_speed:.6}, sim time {:.3} ms",
        serial_time * 1e3
    );

    let (hybrid_speed, hybrid_time, tasks) =
        run(ExecutionMode::PlatformHybrid { ranks: 2, threads: 2 });
    println!(
        "hybrid (2 ranks x 2 threads = {tasks} tasks): total particle speed {hybrid_speed:.6}, sim time {:.3} ms",
        hybrid_time * 1e3
    );

    assert!((serial_speed - hybrid_speed).abs() < 1e-9, "parallelisation changed the physics");
    println!("\nhybrid parallelisation left the physics unchanged and reduced the simulated time by {:.1}x",
        serial_time / hybrid_time);

    let (total, changed, buckets) = run_migration(ExecutionMode::PlatformMpi { ranks: 2 });
    println!(
        "\nmigration extension (2 MPI ranks): {total} particles after 6 drifting steps \
         ({changed} of {buckets} buckets changed occupancy, none lost)"
    );
}
