//! Unstructured-grid Jacobi: demonstrates the CaseC / CaseR memory layouts
//! and the effect of MMAT on Env-search work (the paper's USGrid workload,
//! §V-B2).
//!
//! ```sh
//! cargo run --release --example usgrid_jacobi
//! ```

use aohpc::prelude::*;
use std::sync::Arc;

fn run(layout: GridLayout, mmat: bool) -> (f64, u64, u64) {
    let region = RegionSize::square(96);
    let system = UsGridSystem::with_block_size(region, 16, layout);
    let app = UsGridJacobiApp::new(system.clone(), 6);
    let outcome = Platform::new(ExecutionMode::PlatformDirect)
        .with_mmat(mmat)
        .run_system(Arc::new(system), app.factory());
    let counters = outcome.report.total_counters();
    (outcome.simulated_seconds, counters.env_searches, counters.mmat_hits)
}

fn main() {
    println!(
        "{:<10} {:<8} {:>14} {:>14} {:>12}",
        "layout", "MMAT", "sim time [ms]", "env searches", "mmat hits"
    );
    for layout in [GridLayout::CaseC, GridLayout::CaseR { seed: 42 }] {
        for mmat in [false, true] {
            let (secs, searches, hits) = run(layout, mmat);
            println!(
                "{:<10} {:<8} {:>14.3} {:>14} {:>12}",
                layout.name(),
                if mmat { "on" } else { "off" },
                secs * 1e3,
                searches,
                hits
            );
        }
    }
    println!("\nMMAT replaces repeated Env-tree searches with memo lookups — the paper's key single-task optimisation.");
}
