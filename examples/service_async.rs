//! The asynchronous service front door: non-blocking submission with
//! [`JobHandle`]s, an in-order per-session [`CompletionStream`] consumed on
//! its own thread, cancellation, and quota **backpressure** (`try_submit`
//! reporting `WouldBlock`, `submit_timeout` waiting capacity out).
//!
//! ```sh
//! AOHPC_SCALE=smoke cargo run --release --example service_async
//! ```

use aohpc::prelude::*;
use std::time::{Duration, Instant};

fn main() {
    let scale = Scale::from_env();
    let jobs = (scale.service_tenants() * scale.service_jobs_per_tenant()).max(8);
    // A small quota so backpressure is observable; handle-only collection, so
    // report retention for the legacy drain path is off.
    let config = ServiceConfig::for_scale(scale).with_quota(4).with_report_retention(false);
    let service = KernelService::new(config);
    println!(
        "service        : {} workers, quota {} in flight/session, scale `{scale}`",
        service.worker_count(),
        4
    );

    let session = service.open_session(SessionSpec::tenant("async-demo"));
    let stream = service.completion_stream(session).expect("session exists");

    // A dedicated consumer drains the stream in submission order while the
    // main thread keeps submitting — production's submit/consume split.  It
    // stops after `jobs` outcomes (every submitted job resolves exactly
    // once, cancellations included); `next_timeout` rides out the moments
    // where the stream momentarily owes nothing because the main thread is
    // still parked on backpressure.
    let consumer = std::thread::spawn(move || {
        let mut delivered: Vec<JobId> = Vec::new();
        let mut cancelled = 0usize;
        while delivered.len() + cancelled < jobs {
            let Some(outcome) = stream.next_timeout(Duration::from_millis(100)) else {
                continue;
            };
            match outcome {
                Ok(report) => {
                    delivered.push(report.job);
                    if delivered.len().is_multiple_of(8) {
                        println!(
                            "  stream        : {} reports, latest job {} (checksum {:.6})",
                            delivered.len(),
                            report.job,
                            report.checksum
                        );
                    }
                }
                Err(error) => {
                    assert_eq!(error.kind, JobErrorKind::Cancelled);
                    cancelled += 1;
                }
            }
        }
        (delivered, cancelled)
    });

    // Submit the workload through the backpressured front door.  `submit`
    // waits (bounded) when the quota is full; count how often `try_submit`
    // would have had to retry to show the backpressure is real.
    let started = Instant::now();
    let mut handles = Vec::new();
    let mut would_block = 0usize;
    for j in 0..jobs {
        let spec = if j % 3 == 2 { JobSpec::smooth(scale) } else { JobSpec::jacobi(scale) };
        match service.try_submit(session, spec.clone()) {
            Ok(handle) => handles.push(handle),
            Err(err) if err.is_backpressure() => {
                would_block += 1;
                // The blocking form parks until a slot frees, then admits.
                let handle = service
                    .submit_timeout(session, spec, Duration::from_secs(60))
                    .expect("capacity frees as workers finish");
                handles.push(handle);
            }
            Err(err) => panic!("fatal admission error: {err}"),
        }
    }

    // Cancel the last still-queued job, if any (races with the workers; both
    // outcomes are valid — that is the point of the API).
    let cancelled_here = handles.iter().rev().find_map(|h| h.cancel().then(|| h.id()));

    // Per-job wait: the migration target for `drain()` callers.
    let mut completed = 0usize;
    for handle in &handles {
        match handle.wait() {
            Ok(report) => {
                assert!(report.error.is_none(), "job {} failed: {:?}", report.job, report.error);
                completed += 1;
            }
            Err(error) => assert_eq!(Some(error.job), cancelled_here),
        }
    }
    let elapsed = started.elapsed();

    let (delivered, cancelled_on_stream) = consumer.join().expect("consumer thread");
    assert!(delivered.windows(2).all(|w| w[0] < w[1]), "stream must deliver in submission order");
    assert_eq!(delivered.len(), completed, "stream and handles saw the same completions");
    assert_eq!(cancelled_on_stream, usize::from(cancelled_here.is_some()));

    let stats = service.admission_stats();
    println!(
        "submitted      : {} jobs in {:.1} ms ({} throttled into a bounded wait, {} cancelled)",
        handles.len(),
        elapsed.as_secs_f64() * 1e3,
        would_block,
        cancelled_here.map_or(0, |_| 1),
    );
    println!(
        "stream         : {} reports in submission order; queue now {}/{} ({} waiting)",
        delivered.len(),
        stats.queued,
        stats.queue_limit,
        stats.waiting
    );
    let meter = *service.session(session).expect("session").meter();
    println!(
        "meter          : submitted {} / completed {} / cancelled {} / throttled {}",
        meter.jobs_submitted, meter.jobs_completed, meter.jobs_cancelled, meter.jobs_throttled
    );
    let cache = service.cache_stats();
    println!(
        "plan cache     : {} misses / {} hits across {} structurally distinct programs",
        cache.misses, cache.hits, cache.entries
    );
    assert_eq!(meter.jobs_completed as usize, completed);
    println!("all {completed} completions observed via handle, stream and meter consistently");
}
