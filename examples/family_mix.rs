//! One service, every DSL: a heterogeneous mix of stencil, particle and
//! usgrid jobs submitted through a single [`KernelService`], with the plan
//! cache's per-family lanes showing how each workload was compiled and
//! shared.
//!
//! ```sh
//! AOHPC_SCALE=smoke cargo run --release --example family_mix
//! ```

use aohpc::prelude::*;

fn main() {
    let scale = Scale::from_env();
    let service = KernelService::new(ServiceConfig::for_scale(scale));
    let session = service.open_session(SessionSpec::tenant("family-mix"));

    // Two of each family, interleaved: the second submission of each family
    // hits the plan its first compiled.
    let jobs = vec![
        JobSpec::jacobi(scale),
        JobSpec::particle(scale),
        JobSpec::usgrid(scale),
        JobSpec::jacobi(scale),
        JobSpec::particle(scale),
        JobSpec::usgrid(scale),
    ];
    let submitted = jobs.len();
    println!("submitting     : {submitted} jobs across 3 kernel families at scale `{scale}`");
    service.submit_batch(session, jobs).expect("admission");

    let reports = service.drain();
    assert_eq!(reports.len(), submitted);
    for report in &reports {
        assert!(report.error.is_none(), "job failed: {:?}", report.error);
        println!(
            "  job {:>2}       : {:<20} checksum {:>18.6}  cache {}",
            report.job,
            report.program,
            report.checksum,
            if report.plan_cache_hit { "hit" } else { "miss" },
        );
    }

    let stats = service.cache_stats();
    println!("plan cache     : {} entries, {} compiles", stats.entries, stats.compiles);
    for family in KernelFamilyId::all() {
        let lane = stats.for_family(family);
        println!("  {family:?} lane : {} hits / {} misses", lane.hits, lane.misses);
        assert_eq!(lane.misses, 1, "each family compiles its plan exactly once");
        assert!(lane.hits >= 1, "each family's repeat submission hits");
    }
    println!("ok             : three families, one pipeline, one cache");
}
