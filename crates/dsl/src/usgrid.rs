//! The unstructured-grid DSL processing system (`USGrid`) and its sample
//! application.
//!
//! Unlike the structured grid, every point stores the *global addresses* of
//! its neighbours (indirection), so whether an access stays inside the block
//! cannot be decided arithmetically — this is the DSL the paper evaluates
//! with and without MMAT.  Two memory layouts are provided through
//! [`GridLayout`]:
//!
//! * **CaseC** — points stored at their spatial position (indirect but
//!   consecutive accesses);
//! * **CaseR** — points scattered over the whole region (no spatial
//!   locality; Assumption III violated).
//!
//! Data outside the computational domain lives in a Static Data block, as in
//! §V-B2.

use crate::common::{build_tiled_env_with_topology, origin_index, DslSystem, FieldSink, Tiling};
use aohpc_env::{Env, Extent, GlobalAddress, LocalAddress, TreeTopology};
use aohpc_mem::PoolHandle;
use aohpc_runtime::{HpcApp, TaskCtx, TaskSlot};
use aohpc_workloads::{GridLayout, RegionSize};
use std::sync::Arc;

/// One unstructured-grid point: its value and the storage addresses of its
/// four neighbours (the indirection of Fig. 5b/5c).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UsCell {
    /// Scalar value at the point.
    pub value: f64,
    /// Storage addresses `(x, y)` of the four neighbours (N, W, E, S).
    pub neighbors: [(i64, i64); 4],
}

impl Default for UsCell {
    fn default() -> Self {
        UsCell { value: 0.0, neighbors: [(0, 0); 4] }
    }
}

/// Configuration of the USGrid DSL processing system (§V-B2: block 256×256,
/// page 2⁸ points).
#[derive(Debug, Clone)]
pub struct UsGridSystem {
    /// Computational region (logical points).
    pub region: RegionSize,
    /// Block side length in points.
    pub block_size: usize,
    /// Points per page.
    pub cells_per_page: usize,
    /// Memory layout (CaseC / CaseR).
    pub layout: GridLayout,
    /// Value of out-of-domain points (stored in the Static Data block).
    pub boundary_value: f64,
    /// Memory-pool capacity in bytes (None = effectively unbounded).
    pub pool_bytes: Option<u64>,
    /// Shape of the data branch of the Env tree (§III-B3 locality joints).
    pub tree: TreeTopology,
}

impl UsGridSystem {
    /// The paper's DSL parameters for a region and layout.
    pub fn paper(region: RegionSize, layout: GridLayout) -> Self {
        UsGridSystem {
            region,
            block_size: 256,
            cells_per_page: 256,
            layout,
            boundary_value: 0.0,
            pool_bytes: None,
            tree: TreeTopology::Flat,
        }
    }

    /// A configuration with an arbitrary block size (for scaled-down runs).
    pub fn with_block_size(region: RegionSize, block_size: usize, layout: GridLayout) -> Self {
        UsGridSystem {
            region,
            block_size,
            cells_per_page: (block_size * block_size / 16).max(1),
            layout,
            boundary_value: 0.0,
            pool_bytes: None,
            tree: TreeTopology::Flat,
        }
    }

    /// Use a non-default data-branch topology (locality joints, §III-B3).
    pub fn with_topology(mut self, tree: TreeTopology) -> Self {
        self.tree = tree;
        self
    }

    fn pool(&self) -> PoolHandle {
        match self.pool_bytes {
            Some(bytes) => PoolHandle::single(bytes),
            None => PoolHandle::unbounded(),
        }
    }

    /// The tiling of the storage region into blocks.
    pub fn tiling(&self) -> Tiling {
        Tiling { nx: self.region.nx, ny: self.region.ny, block: self.block_size }
    }

    /// Storage address of a logical point.
    pub fn storage_of(&self, x: i64, y: i64) -> GlobalAddress {
        let (sx, sy) = self.layout.storage_of(x, y, self.region.nx as i64, self.region.ny as i64);
        GlobalAddress::new2d(sx, sy)
    }

    /// Storage address representing an out-of-domain neighbour: a slot in the
    /// Static Data block row placed just below the domain.
    pub fn static_slot_of(&self, x: i64, _y: i64) -> GlobalAddress {
        GlobalAddress::new2d(x.clamp(0, self.region.nx as i64 - 1), self.region.ny as i64)
    }

    /// The storage address of the neighbour of logical `(x, y)` in direction
    /// `(dx, dy)` — either a real point or a Static-block slot.
    pub fn neighbor_address(&self, x: i64, y: i64, dx: i64, dy: i64) -> (i64, i64) {
        let (nxp, nyp) = (x + dx, y + dy);
        if nxp < 0 || nyp < 0 || nxp >= self.region.nx as i64 || nyp >= self.region.ny as i64 {
            let a = self.static_slot_of(nxp, nyp);
            (a.x, a.y)
        } else {
            let a = self.storage_of(nxp, nyp);
            (a.x, a.y)
        }
    }
}

impl DslSystem for UsGridSystem {
    type Cell = UsCell;

    fn build_env(&self) -> Env<UsCell> {
        let boundary_value = self.boundary_value;
        let nx = self.region.nx;
        let ny = self.region.ny;
        let (env, _data) = build_tiled_env_with_topology::<UsCell>(
            self.tiling(),
            self.cells_per_page,
            self.pool(),
            self.tree,
            |b, root| {
                // Out-of-domain data: one row of static points below the domain.
                let static_row: Vec<UsCell> = (0..nx)
                    .map(|_| UsCell { value: boundary_value, neighbors: [(0, 0); 4] })
                    .collect();
                b.add_static(
                    root,
                    GlobalAddress::new2d(0, ny as i64),
                    Extent::new2d(nx, 1),
                    static_row,
                );
                // Anything else outside the domain (defensive) is a Dirichlet
                // Arithmetic block.
                b.add_arithmetic(
                    root,
                    Arc::new(move |_| UsCell { value: boundary_value, neighbors: [(0, 0); 4] }),
                    true,
                );
            },
        );
        env
    }
}

/// The update hook signature: `(own_value, neighbour_values) -> new`.
///
/// Structurally identical to the kernel crate's lowered update routine, so
/// compiled artifacts plug in without a dependency edge between the crates.
pub type UsUpdateFn = Arc<dyn Fn(f64, &[f64]) -> f64 + Send + Sync>;

/// A pluggable per-point update law: `(own_value, neighbour_values) -> new`.
///
/// Installed by [`UsGridJacobiApp::with_update`], typically from a compiled
/// usgrid-family kernel artifact so that service-submitted jobs execute the
/// cached plan's arithmetic.  Neighbour values arrive in the program's
/// declared neighbour order.  When absent, the app's built-in
/// `alpha·me + beta·Σ` law runs; the stock compiled law reproduces it
/// bit-for-bit.
#[derive(Clone)]
pub struct UsUpdate(pub UsUpdateFn);

impl std::fmt::Debug for UsUpdate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("UsUpdate(..)")
    }
}

/// The end-user application: Jacobi relaxation over the indirect neighbour
/// lists (same arithmetic as SGrid, different memory behaviour).
#[derive(Debug, Clone)]
pub struct UsGridJacobiApp {
    /// The DSL system (needed to compute neighbour addresses at init time).
    pub system: UsGridSystem,
    /// Weight of the centre point.
    pub alpha: f64,
    /// Weight of each neighbour.
    pub beta: f64,
    /// Main-loop iterations.
    pub loops: usize,
    /// Where `Finalize` deposits the field, keyed by *logical* position.
    pub sink: Option<FieldSink>,
    /// Pluggable update law (None = the built-in `alpha·me + beta·Σ`).
    pub update: Option<UsUpdate>,
}

impl UsGridJacobiApp {
    /// Create the benchmark application.
    pub fn new(system: UsGridSystem, loops: usize) -> Self {
        UsGridJacobiApp { system, alpha: 0.5, beta: 0.125, loops, sink: None, update: None }
    }

    /// Attach a result sink.
    pub fn with_sink(mut self, sink: FieldSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Install a pluggable update law (see [`UsUpdate`]).
    pub fn with_update(mut self, update: UsUpdate) -> Self {
        self.update = Some(update);
        self
    }

    /// App factory for the runtime driver.
    pub fn factory(&self) -> Arc<dyn Fn(TaskSlot) -> UsGridJacobiApp + Send + Sync> {
        let proto = self.clone();
        Arc::new(move |_slot| proto.clone())
    }

    /// Deterministic initial condition of a *logical* point.
    pub fn initial_value(x: i64, y: i64) -> f64 {
        ((x * 13 + y * 7) % 97) as f64 / 97.0
    }
}

impl HpcApp<UsCell> for UsGridJacobiApp {
    fn loop_count(&self) -> usize {
        self.loops
    }

    fn initialize(&mut self, ctx: &mut TaskCtx<UsCell>) {
        // Iterate logical points; write each into its storage position if the
        // owning block belongs to this rank.
        let owned = ctx.owned_blocks();
        let by_origin = origin_index(ctx.env().as_ref());
        let owned_set: std::collections::HashSet<_> = owned.iter().copied().collect();
        let (nx, ny) = (self.system.region.nx as i64, self.system.region.ny as i64);
        let bs = self.system.block_size as i64;
        for y in 0..ny {
            for x in 0..nx {
                let s = self.system.storage_of(x, y);
                let origin = ((s.x / bs) * bs, (s.y / bs) * bs);
                let Some(&bid) = by_origin.get(&origin) else { continue };
                if !owned_set.contains(&bid) {
                    continue;
                }
                let cell = UsCell {
                    value: Self::initial_value(x, y),
                    neighbors: [
                        self.system.neighbor_address(x, y, 0, -1),
                        self.system.neighbor_address(x, y, -1, 0),
                        self.system.neighbor_address(x, y, 1, 0),
                        self.system.neighbor_address(x, y, 0, 1),
                    ],
                };
                let local = LocalAddress::new2d(s.x - origin.0, s.y - origin.1);
                ctx.set_initial(bid, local, cell);
            }
        }
    }

    fn kernel(&mut self, ctx: &mut TaskCtx<UsCell>, _warmup: bool) -> bool {
        let alpha = self.alpha;
        let beta = self.beta;
        for bid in ctx.get_blocks() {
            let ext = ctx.env().block(bid).meta.extent;
            for j in 0..ext.ny as i64 {
                for i in 0..ext.nx as i64 {
                    let la = LocalAddress::new2d(i, j);
                    // Own value: always inside the block.
                    let me = ctx.get_dd(bid, la);
                    // Neighbours are indirect: no static in-block guarantee,
                    // so the access goes through MMAT / the Env search.
                    let mut vals = [0.0f64; 4];
                    for (slot, (nx, ny)) in me.neighbors.into_iter().enumerate() {
                        let n = ctx.get_global(bid, GlobalAddress::new2d(nx, ny));
                        vals[slot] = n.value;
                    }
                    let ans = match &self.update {
                        Some(update) => (update.0)(me.value, &vals),
                        None => {
                            let mut sum = 0.0;
                            for v in vals {
                                sum += v;
                            }
                            alpha * me.value + beta * sum
                        }
                    };
                    ctx.set(bid, la, UsCell { value: ans, neighbors: me.neighbors });
                }
            }
        }
        ctx.refresh()
    }

    fn finalize(&mut self, ctx: &mut TaskCtx<UsCell>) {
        if let Some(sink) = &self.sink {
            // Report values keyed by storage address; tests invert the layout
            // when they need logical positions.
            let mut out = Vec::new();
            for bid in ctx.owned_blocks() {
                let (ext, origin) = {
                    let b = ctx.env().block(bid);
                    (b.meta.extent, b.meta.origin)
                };
                for j in 0..ext.ny as i64 {
                    for i in 0..ext.nx as i64 {
                        let v = ctx.get_dd(bid, LocalAddress::new2d(i, j));
                        out.push((origin + LocalAddress::new2d(i, j), v.value));
                    }
                }
            }
            sink.lock().extend(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::new_field_sink;
    use aohpc_aop::{Weaver, WovenProgram};
    use aohpc_runtime::{execute, MpiAspect, RunConfig, Topology};

    /// Handwritten reference on the logical grid (layout-independent).
    fn reference(region: RegionSize, steps: usize) -> Vec<f64> {
        let (nx, ny) = (region.nx as i64, region.ny as i64);
        let mut cur: Vec<f64> =
            (0..ny * nx).map(|k| UsGridJacobiApp::initial_value(k % nx, k / nx)).collect();
        let get = |b: &Vec<f64>, x: i64, y: i64| {
            if x < 0 || y < 0 || x >= nx || y >= ny {
                0.0
            } else {
                b[(y * nx + x) as usize]
            }
        };
        for _ in 0..steps {
            let mut next = vec![0.0; (nx * ny) as usize];
            for y in 0..ny {
                for x in 0..nx {
                    next[(y * nx + x) as usize] = 0.5 * get(&cur, x, y)
                        + 0.125
                            * (get(&cur, x, y - 1)
                                + get(&cur, x - 1, y)
                                + get(&cur, x + 1, y)
                                + get(&cur, x, y + 1));
                }
            }
            cur = next;
        }
        cur
    }

    fn run(layout: GridLayout, topology: Topology, woven: WovenProgram, mmat: bool) -> Vec<f64> {
        let region = RegionSize::square(16);
        let steps = 3;
        let system = UsGridSystem::with_block_size(region, 8, layout);
        let sink = new_field_sink();
        let app = UsGridJacobiApp::new(system.clone(), steps).with_sink(sink.clone());
        let sys_arc = Arc::new(system.clone());
        let config = RunConfig::serial().with_topology(topology).with_mmat(mmat);
        let report = execute(&config, woven, sys_arc.env_factory(), app.factory());
        assert!(report.tasks.iter().all(|t| t.steps == steps as u64));
        // Translate storage-addressed results back to logical order.
        let (nx, ny) = (region.nx as i64, region.ny as i64);
        let mut by_storage = std::collections::HashMap::new();
        for (addr, v) in sink.lock().iter() {
            by_storage.insert((addr.x, addr.y), *v);
        }
        let mut field = vec![f64::NAN; region.cells()];
        for y in 0..ny {
            for x in 0..nx {
                let s = system.storage_of(x, y);
                field[(y * nx + x) as usize] = by_storage[&(s.x, s.y)];
            }
        }
        field
    }

    fn close(a: &[f64], b: &[f64]) {
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-12, "{x} vs {y}");
        }
    }

    #[test]
    fn casec_serial_matches_reference() {
        let field = run(GridLayout::CaseC, Topology::serial(), WovenProgram::unwoven(), false);
        close(&field, &reference(RegionSize::square(16), 3));
    }

    #[test]
    fn casec_serial_with_mmat_matches_reference() {
        let field = run(GridLayout::CaseC, Topology::serial(), WovenProgram::unwoven(), true);
        close(&field, &reference(RegionSize::square(16), 3));
    }

    #[test]
    fn caser_serial_matches_reference() {
        // The scattered layout changes where data lives, not what is computed.
        let field =
            run(GridLayout::CaseR { seed: 11 }, Topology::serial(), WovenProgram::unwoven(), true);
        close(&field, &reference(RegionSize::square(16), 3));
    }

    #[test]
    fn casec_distributed_matches_reference() {
        let woven = Weaver::new().with_aspect(Box::new(MpiAspect::<UsCell>::new())).weave();
        let topo = Topology::new(vec![aohpc_runtime::LayerSpec::distributed(2)]);
        let field = run(GridLayout::CaseC, topo, woven, true);
        close(&field, &reference(RegionSize::square(16), 3));
    }

    #[test]
    fn caser_distributed_matches_reference() {
        let woven = Weaver::new().with_aspect(Box::new(MpiAspect::<UsCell>::new())).weave();
        let topo = Topology::new(vec![aohpc_runtime::LayerSpec::distributed(2)]);
        let field = run(GridLayout::CaseR { seed: 3 }, topo, woven, true);
        close(&field, &reference(RegionSize::square(16), 3));
    }

    #[test]
    fn caser_scatters_accesses_out_of_block() {
        // The mechanism behind the paper's CaseC/CaseR gap: CaseR's neighbour
        // accesses leave the starting block far more often.
        let count_out_of_block = |layout: GridLayout| {
            let region = RegionSize::square(32);
            let system = UsGridSystem::with_block_size(region, 8, layout);
            let app = UsGridJacobiApp::new(system.clone(), 2);
            let config = RunConfig::serial();
            let report = execute(
                &config,
                WovenProgram::unwoven(),
                Arc::new(system).env_factory(),
                app.factory(),
            );
            report.total_counters().out_of_block_reads
        };
        let casec = count_out_of_block(GridLayout::CaseC);
        let caser = count_out_of_block(GridLayout::CaseR { seed: 5 });
        assert!(
            caser > casec * 3,
            "CaseR must leave the block far more often (CaseC={casec}, CaseR={caser})"
        );
    }

    #[test]
    fn locality_joints_match_flat_and_reduce_search_cost_for_caser() {
        // §III-B3: inserting bounded Empty joints must not change results and
        // must cut the number of tree nodes visited by CaseR's out-of-block
        // neighbour accesses (no MMAT, so every such access searches).
        let run_counting = |tree: TreeTopology| {
            // 8×8 blocks: large enough that the flat data branch is expensive
            // to scan while the quadtree path stays logarithmic.
            let region = RegionSize::square(64);
            let system = UsGridSystem::with_block_size(region, 8, GridLayout::CaseR { seed: 5 })
                .with_topology(tree);
            let sink = new_field_sink();
            let app = UsGridJacobiApp::new(system.clone(), 1).with_sink(sink.clone());
            let config = RunConfig::serial();
            let report = execute(
                &config,
                WovenProgram::unwoven(),
                Arc::new(system).env_factory(),
                app.factory(),
            );
            let mut field: Vec<(i64, i64, f64)> =
                sink.lock().iter().map(|(a, v)| (a.x, a.y, *v)).collect();
            field.sort_by_key(|&(x, y, _)| (x, y));
            (report.total_counters().search_nodes_visited, field)
        };
        let (flat_visited, flat_field) = run_counting(TreeTopology::Flat);
        let (quad_visited, quad_field) =
            run_counting(TreeTopology::Quadtree { max_leaf_blocks: 1 });
        assert_eq!(flat_field.len(), quad_field.len());
        for ((x1, y1, v1), (x2, y2, v2)) in flat_field.iter().zip(&quad_field) {
            assert_eq!((x1, y1), (x2, y2));
            assert!((v1 - v2).abs() < 1e-12);
        }
        assert!(
            quad_visited * 2 < flat_visited,
            "quadtree joints should at least halve the search cost \
             (flat visited {flat_visited}, quadtree visited {quad_visited})"
        );
    }

    #[test]
    fn neighbor_addresses_point_to_static_row_outside_domain() {
        let system = UsGridSystem::with_block_size(RegionSize::square(8), 4, GridLayout::CaseC);
        assert_eq!(system.neighbor_address(0, 0, 0, -1), (0, 8));
        assert_eq!(system.neighbor_address(7, 7, 1, 0), (7, 8));
        assert_eq!(system.neighbor_address(3, 3, 1, 0), (4, 3));
        let env = system.build_env();
        // 4 data blocks + root + joint + static + arithmetic
        assert_eq!(env.stats().num_data_blocks, 4);
        assert_eq!(env.len(), 8);
    }
}
