//! The structured-grid DSL processing system (`SGrid`) and its sample
//! application.
//!
//! The DSL developer's part: a 2-D region is tiled into square Blocks of
//! `f64` cells; the region outside the computational domain is a Dirichlet
//! boundary served by an Arithmetic block.  Whether a stencil access stays
//! inside the block can be decided arithmetically from the loop indices, so
//! the generated accessors pass the skip-search flag exactly as Listing 1's
//! `GetD(LA_t{{i, j-1}}, j > 0)` does — which is why the paper evaluates
//! SGrid without MMAT.
//!
//! The end-user's part ([`SGridJacobiApp`]) solves the Laplace equation with
//! a 5-point finite-difference scheme by the Jacobi method, the benchmark of
//! §V-B1.

use crate::common::{build_tiled_env_with_topology, DslSystem, FieldSink, Tiling};
use aohpc_env::{BlockId, Env, GlobalAddress, LocalAddress, TreeTopology};
use aohpc_mem::PoolHandle;
use aohpc_runtime::{HpcApp, TaskCtx, TaskSlot};
use aohpc_workloads::RegionSize;
use std::sync::Arc;

/// Configuration of the SGrid DSL processing system (the DSL Part parameters
/// of §V-B1: block size 256×256, page size 2⁸ cells).
#[derive(Debug, Clone)]
pub struct SGridSystem {
    /// Computational region.
    pub region: RegionSize,
    /// Block side length in cells.
    pub block_size: usize,
    /// Cells per page.
    pub cells_per_page: usize,
    /// Dirichlet boundary value outside the region.
    pub boundary_value: f64,
    /// Memory-pool capacity in bytes (None = effectively unbounded).
    pub pool_bytes: Option<u64>,
    /// Shape of the data branch of the Env tree (§III-B3 locality joints).
    pub tree: TreeTopology,
}

impl SGridSystem {
    /// The paper's DSL parameters for a given region.
    pub fn paper(region: RegionSize) -> Self {
        SGridSystem {
            region,
            block_size: 256,
            cells_per_page: 256,
            boundary_value: 0.0,
            pool_bytes: None,
            tree: TreeTopology::Flat,
        }
    }

    /// A configuration scaled to an arbitrary block size (benchmarks use
    /// smaller blocks at smaller scales so the block-per-task ratio of the
    /// paper is preserved).
    pub fn with_block_size(region: RegionSize, block_size: usize) -> Self {
        SGridSystem {
            region,
            block_size,
            cells_per_page: (block_size * block_size / 16).max(1),
            boundary_value: 0.0,
            pool_bytes: None,
            tree: TreeTopology::Flat,
        }
    }

    /// Use a non-default data-branch topology (locality joints, §III-B3).
    pub fn with_topology(mut self, tree: TreeTopology) -> Self {
        self.tree = tree;
        self
    }

    fn pool(&self) -> PoolHandle {
        match self.pool_bytes {
            Some(bytes) => PoolHandle::single(bytes),
            None => PoolHandle::unbounded(),
        }
    }

    /// The tiling of the region into blocks.
    pub fn tiling(&self) -> Tiling {
        Tiling { nx: self.region.nx, ny: self.region.ny, block: self.block_size }
    }
}

impl DslSystem for SGridSystem {
    type Cell = f64;

    fn build_env(&self) -> Env<f64> {
        let boundary = self.boundary_value;
        let (env, _data) = build_tiled_env_with_topology::<f64>(
            self.tiling(),
            self.cells_per_page,
            self.pool(),
            self.tree,
            |b, root| {
                b.add_arithmetic(root, Arc::new(move |_addr| boundary), true);
            },
        );
        env
    }
}

/// The end-user application: Jacobi relaxation of the Laplace equation with a
/// 5-point stencil (Listing 1).
#[derive(Debug, Clone)]
pub struct SGridJacobiApp {
    /// Weight of the centre point.
    pub alpha: f64,
    /// Weight of each neighbour.
    pub beta: f64,
    /// Main-loop iterations.
    pub loops: usize,
    /// Block side length (needed for the in-block tests of the accessors).
    pub block_size: usize,
    /// Where `Finalize` deposits the computed field (None = discard).
    pub sink: Option<FieldSink>,
}

impl SGridJacobiApp {
    /// The benchmark kernel's coefficients.
    pub fn new(loops: usize, block_size: usize) -> Self {
        SGridJacobiApp { alpha: 0.5, beta: 0.125, loops, block_size, sink: None }
    }

    /// Attach a sink collecting the final field.
    pub fn with_sink(mut self, sink: FieldSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// An app factory for the runtime driver.
    pub fn factory(&self) -> Arc<dyn Fn(TaskSlot) -> SGridJacobiApp + Send + Sync> {
        let proto = self.clone();
        Arc::new(move |_slot| proto.clone())
    }

    /// Deterministic initial condition (a smooth bump plus a linear ramp).
    pub fn initial_value(addr: GlobalAddress) -> f64 {
        ((addr.x * 13 + addr.y * 7) % 97) as f64 / 97.0
    }
}

impl HpcApp<f64> for SGridJacobiApp {
    fn loop_count(&self) -> usize {
        self.loops
    }

    fn initialize(&mut self, ctx: &mut TaskCtx<f64>) {
        for bid in ctx.owned_blocks() {
            let (ext, origin) = {
                let b = ctx.env().block(bid);
                (b.meta.extent, b.meta.origin)
            };
            for j in 0..ext.ny as i64 {
                for i in 0..ext.nx as i64 {
                    let g = origin + LocalAddress::new2d(i, j);
                    ctx.set_initial(bid, LocalAddress::new2d(i, j), Self::initial_value(g));
                }
            }
        }
    }

    fn kernel(&mut self, ctx: &mut TaskCtx<f64>, _warmup: bool) -> bool {
        let alpha = self.alpha;
        let beta = self.beta;
        for bid in ctx.get_blocks() {
            let ext = ctx.env().block(bid).meta.extent;
            let (bx, by) = (ext.nx as i64, ext.ny as i64);
            for j in 0..by {
                for i in 0..bx {
                    // The paper's GetD/GetDD forms: the skip-search flag is the
                    // arithmetic "is this neighbour inside the block" test.
                    let e = ctx.get_dd(bid, LocalAddress::new2d(i, j));
                    let e_n = ctx.get(bid, LocalAddress::new2d(i, j - 1), j > 0);
                    let e_w = ctx.get(bid, LocalAddress::new2d(i - 1, j), i > 0);
                    let e_e = ctx.get(bid, LocalAddress::new2d(i + 1, j), i + 1 < bx);
                    let e_s = ctx.get(bid, LocalAddress::new2d(i, j + 1), j + 1 < by);
                    let ans = alpha * e + beta * (e_e + e_w + e_s + e_n);
                    ctx.set(bid, LocalAddress::new2d(i, j), ans);
                }
            }
        }
        ctx.refresh()
    }

    fn finalize(&mut self, ctx: &mut TaskCtx<f64>) {
        if let Some(sink) = &self.sink {
            let mut out = Vec::new();
            for bid in ctx.owned_blocks() {
                let (ext, origin) = {
                    let b = ctx.env().block(bid);
                    (b.meta.extent, b.meta.origin)
                };
                for j in 0..ext.ny as i64 {
                    for i in 0..ext.nx as i64 {
                        let v = ctx.get_dd(bid, LocalAddress::new2d(i, j));
                        out.push((origin + LocalAddress::new2d(i, j), v));
                    }
                }
            }
            sink.lock().extend(out);
        }
    }
}

/// Handy accessor mirroring the "Memory Library for Target Apps": wraps a
/// context and a block for slightly less noisy kernels in examples.
pub struct SGridBlockView<'a> {
    ctx: &'a mut TaskCtx<f64>,
    block: BlockId,
    nx: i64,
    ny: i64,
}

impl<'a> SGridBlockView<'a> {
    /// View a block through a context.
    pub fn new(ctx: &'a mut TaskCtx<f64>, block: BlockId) -> Self {
        let ext = ctx.env().block(block).meta.extent;
        SGridBlockView { ctx, block, nx: ext.nx as i64, ny: ext.ny as i64 }
    }

    /// Block width in cells.
    pub fn nx(&self) -> i64 {
        self.nx
    }

    /// Block height in cells.
    pub fn ny(&self) -> i64 {
        self.ny
    }

    /// `GetD` — the in-block test is derived from the coordinates.
    pub fn get(&mut self, i: i64, j: i64) -> f64 {
        let inside = i >= 0 && j >= 0 && i < self.nx && j < self.ny;
        self.ctx.get(self.block, LocalAddress::new2d(i, j), inside)
    }

    /// `SetD`.
    pub fn set(&mut self, i: i64, j: i64, v: f64) {
        self.ctx.set(self.block, LocalAddress::new2d(i, j), v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::new_field_sink;
    use aohpc_aop::{Weaver, WovenProgram};
    use aohpc_runtime::{execute, MpiAspect, OmpAspect, RunConfig, Topology};

    fn reference(region: RegionSize, steps: usize) -> Vec<f64> {
        let (nx, ny) = (region.nx as i64, region.ny as i64);
        let mut cur: Vec<f64> = (0..ny * nx)
            .map(|k| SGridJacobiApp::initial_value(GlobalAddress::new2d(k % nx, k / nx)))
            .collect();
        let get = |b: &Vec<f64>, x: i64, y: i64| {
            if x < 0 || y < 0 || x >= nx || y >= ny {
                0.0
            } else {
                b[(y * nx + x) as usize]
            }
        };
        for _ in 0..steps {
            let mut next = vec![0.0; (nx * ny) as usize];
            for y in 0..ny {
                for x in 0..nx {
                    next[(y * nx + x) as usize] = 0.5 * get(&cur, x, y)
                        + 0.125
                            * (get(&cur, x + 1, y)
                                + get(&cur, x - 1, y)
                                + get(&cur, x, y + 1)
                                + get(&cur, x, y - 1));
                }
            }
            cur = next;
        }
        cur
    }

    fn run(
        region: RegionSize,
        block: usize,
        topology: Topology,
        woven: WovenProgram,
        mmat: bool,
    ) -> Vec<f64> {
        let system = Arc::new(SGridSystem::with_block_size(region, block));
        let sink = new_field_sink();
        let app = SGridJacobiApp::new(4, block).with_sink(sink.clone());
        let config = RunConfig::serial().with_topology(topology).with_mmat(mmat);
        let report = execute(&config, woven, system.env_factory(), app.factory());
        assert!(report.tasks.iter().all(|t| t.steps == 4));
        let nx = region.nx as i64;
        let mut field = vec![f64::NAN; region.cells()];
        for (addr, v) in sink.lock().iter() {
            field[(addr.y * nx + addr.x) as usize] = *v;
        }
        assert!(field.iter().all(|v| v.is_finite()));
        field
    }

    fn close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-12, "{x} vs {y}");
        }
    }

    #[test]
    fn serial_platform_matches_reference() {
        let region = RegionSize::square(24);
        let field = run(region, 8, Topology::serial(), WovenProgram::unwoven(), false);
        close(&field, &reference(region, 4));
    }

    #[test]
    fn mpi_woven_matches_reference() {
        let region = RegionSize::square(24);
        let woven = Weaver::new().with_aspect(Box::new(MpiAspect::<f64>::new())).weave();
        let topo = Topology::new(vec![aohpc_runtime::LayerSpec::distributed(3)]);
        let field = run(region, 8, topo, woven, false);
        close(&field, &reference(region, 4));
    }

    #[test]
    fn hybrid_woven_with_mmat_matches_reference() {
        let region = RegionSize::square(32);
        let woven = Weaver::new()
            .with_aspect(Box::new(MpiAspect::<f64>::new()))
            .with_aspect(Box::new(OmpAspect::<f64>::new()))
            .weave();
        let field = run(region, 8, Topology::hybrid(2, 2), woven, true);
        close(&field, &reference(region, 4));
    }

    #[test]
    fn locality_topologies_do_not_change_results() {
        let region = RegionSize::square(24);
        let reference_field = reference(region, 4);
        for tree in [
            aohpc_env::TreeTopology::MortonGroups { blocks_per_joint: 2 },
            aohpc_env::TreeTopology::Quadtree { max_leaf_blocks: 1 },
        ] {
            let system = Arc::new(SGridSystem::with_block_size(region, 8).with_topology(tree));
            let sink = new_field_sink();
            let app = SGridJacobiApp::new(4, 8).with_sink(sink.clone());
            let report = execute(
                &RunConfig::serial(),
                WovenProgram::unwoven(),
                system.env_factory(),
                app.factory(),
            );
            assert!(report.tasks.iter().all(|t| t.steps == 4));
            let nx = region.nx as i64;
            let mut field = vec![f64::NAN; region.cells()];
            for (addr, v) in sink.lock().iter() {
                field[(addr.y * nx + addr.x) as usize] = *v;
            }
            close(&field, &reference_field);
        }
    }

    #[test]
    fn paper_parameters() {
        let s = SGridSystem::paper(RegionSize::square(2048));
        assert_eq!(s.block_size, 256);
        assert_eq!(s.cells_per_page, 256);
        assert_eq!(s.tiling().total_blocks(), 64);
    }

    #[test]
    fn block_view_reads_neighbours_and_boundary() {
        let system = Arc::new(SGridSystem::with_block_size(RegionSize::square(16), 8));
        let env = Arc::new({
            let e = system.build_env();
            for id in e.data_block_ids() {
                e.block(id).meta.set_dm_tid(Some(0));
                e.block(id).meta.set_ch_tid(Some(0));
            }
            e
        });
        let topo = Topology::serial();
        let shared = Arc::new(aohpc_runtime::RankShared::new(topo.clone(), 0, None, true));
        let mut ctx =
            TaskCtx::new(topo.slot(0, 0), env, shared, WovenProgram::unwoven(), true, false);
        let blocks = ctx.get_blocks();
        ctx.set_initial(blocks[0], LocalAddress::new2d(0, 0), 9.0);
        let mut view = SGridBlockView::new(&mut ctx, blocks[0]);
        assert_eq!(view.nx(), 8);
        assert_eq!(view.ny(), 8);
        assert_eq!(view.get(0, 0), 9.0);
        assert_eq!(view.get(-1, 0), 0.0, "Dirichlet boundary");
        view.set(1, 1, 3.0);
    }
}
