//! The particle-method DSL processing system (`Particle`) and its sample
//! application.
//!
//! Space is divided into unit **buckets**; a Block holds 8×8×1 buckets and a
//! bucket holds up to 16 particles (the paper's §V-B3 parameters).  Forces
//! are short-ranged: a particle interacts with the particles of its own and
//! the eight surrounding buckets through a distance-weighted kernel.  The
//! region outside the domain is modelled by fixed wall particles returned by
//! an Arithmetic block.
//!
//! The paper's prototype "does not implement the movement of particles
//! between buckets", so its runs use a small time step and few iterations.
//! This implementation supports both modes:
//!
//! * the default reproduces the prototype (no migration, particles stay in
//!   the bucket they were born in);
//! * [`ParticleApp::with_migration`] lifts the limitation with a *pull-based*
//!   rebucketing scheme: each bucket gathers its 5×5 neighbourhood, re-runs
//!   the (deterministic) update of every candidate particle in the 3×3 ring,
//!   and keeps exactly those particles whose new position falls inside it.
//!   Because every task evaluates the same arithmetic, a particle is claimed
//!   by exactly one bucket — no cross-block writes are needed, so the scheme
//!   works unchanged under the MPI / OpenMP aspect modules.  The access
//!   pattern is a fixed 5×5 stencil, so MMAT stays valid across steps.

use crate::common::{build_tiled_env_with_topology, DslSystem, FieldSink, Tiling};
use aohpc_env::{Env, GlobalAddress, LocalAddress, TreeTopology};
use aohpc_mem::PoolHandle;
use aohpc_runtime::{HpcApp, TaskCtx, TaskSlot};
use aohpc_workloads::ParticleSize;
use std::sync::Arc;

/// Maximum particles per bucket (the paper uses 16).
pub const BUCKET_CAPACITY: usize = 16;

/// Buckets per block side (the paper uses 8×8×1 buckets per Block).
pub const BUCKETS_PER_BLOCK_SIDE: usize = 8;

/// One particle: id, position, velocity, acceleration (three `vector3`
/// values, as in Fig. 5d).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Particle {
    /// Particle id.
    pub id: u32,
    /// Position.
    pub pos: [f64; 3],
    /// Velocity.
    pub vel: [f64; 3],
    /// Acceleration.
    pub acc: [f64; 3],
}

/// One bucket: a fixed-capacity list of particles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bucket {
    /// Number of live particles.
    pub count: u8,
    /// Particle storage.
    pub particles: [Particle; BUCKET_CAPACITY],
}

impl Default for Bucket {
    fn default() -> Self {
        Bucket { count: 0, particles: [Particle::default(); BUCKET_CAPACITY] }
    }
}

impl Bucket {
    /// The live particles.
    pub fn live(&self) -> &[Particle] {
        &self.particles[..self.count as usize]
    }

    /// Append a particle if there is room; returns whether it was stored.
    pub fn push(&mut self, p: Particle) -> bool {
        if (self.count as usize) < BUCKET_CAPACITY {
            self.particles[self.count as usize] = p;
            self.count += 1;
            true
        } else {
            false
        }
    }
}

/// Configuration of the Particle DSL processing system.
#[derive(Debug, Clone)]
pub struct ParticleSystem {
    /// Number of movable particles to place.
    pub particles: ParticleSize,
    /// Buckets per domain side (domain is `buckets_x × buckets_y × 1`).
    pub buckets_x: usize,
    /// Buckets per domain side.
    pub buckets_y: usize,
    /// Buckets per page (the paper uses 2³ buckets ≈ 12 KB).
    pub buckets_per_page: usize,
    /// Memory-pool capacity in bytes (None = effectively unbounded).
    pub pool_bytes: Option<u64>,
    /// Target particles per bucket at initialisation.
    pub fill_per_bucket: usize,
    /// Shape of the data branch of the Env tree (§III-B3 locality joints).
    pub tree: TreeTopology,
}

impl ParticleSystem {
    /// The paper's configuration: derive a roughly square bucket grid for a
    /// particle count, filling each bucket to half capacity as the paper's
    /// uniform placement does.  This is the builder front door, matching
    /// `SGridSystem::paper` and `UsGridSystem::paper`; refine with the
    /// `with_*` methods.
    pub fn paper(particles: ParticleSize) -> Self {
        let fill = BUCKET_CAPACITY / 2;
        let buckets_needed = particles.count.div_ceil(fill).max(1);
        let side = (buckets_needed as f64).sqrt().ceil() as usize;
        // Round up to a multiple of the block side so blocks are full.
        let side = side.div_ceil(BUCKETS_PER_BLOCK_SIDE) * BUCKETS_PER_BLOCK_SIDE;
        ParticleSystem {
            particles,
            buckets_x: side,
            buckets_y: side,
            buckets_per_page: 8,
            pool_bytes: None,
            fill_per_bucket: fill,
            tree: TreeTopology::Flat,
        }
    }

    /// Deprecated alias for [`ParticleSystem::paper`].
    #[deprecated(note = "use `ParticleSystem::paper` — the common builder front door")]
    pub fn for_particles(particles: ParticleSize) -> Self {
        Self::paper(particles)
    }

    /// Use a non-default data-branch topology (locality joints, §III-B3).
    pub fn with_topology(mut self, tree: TreeTopology) -> Self {
        self.tree = tree;
        self
    }

    fn pool(&self) -> PoolHandle {
        match self.pool_bytes {
            Some(bytes) => PoolHandle::single(bytes),
            None => PoolHandle::unbounded(),
        }
    }

    /// The tiling of the bucket grid into blocks.
    pub fn tiling(&self) -> Tiling {
        Tiling { nx: self.buckets_x, ny: self.buckets_y, block: BUCKETS_PER_BLOCK_SIDE }
    }

    /// A wall bucket for an out-of-domain position: fixed particles at the
    /// bucket centre (Dirichlet-like wall of §V-B3).
    pub fn wall_bucket(addr: GlobalAddress) -> Bucket {
        let mut b = Bucket::default();
        for k in 0..4 {
            b.push(Particle {
                id: u32::MAX,
                pos: [
                    addr.x as f64 + 0.25 + 0.5 * (k % 2) as f64,
                    addr.y as f64 + 0.25 + 0.5 * (k / 2) as f64,
                    0.5,
                ],
                vel: [0.0; 3],
                acc: [0.0; 3],
            });
        }
        b
    }
}

impl DslSystem for ParticleSystem {
    type Cell = Bucket;

    fn build_env(&self) -> Env<Bucket> {
        let (env, _data) = build_tiled_env_with_topology::<Bucket>(
            self.tiling(),
            self.buckets_per_page,
            self.pool(),
            self.tree,
            |b, root| {
                b.add_arithmetic(root, Arc::new(ParticleSystem::wall_bucket), true);
            },
        );
        env
    }
}

/// The pair-force hook signature: `(p_pos, q_pos, force_accumulator)`.
///
/// Structurally identical to the kernel crate's lowered pair-force routine,
/// so compiled artifacts plug in without a dependency edge between the
/// crates.
pub type PairForceFn = Arc<dyn Fn(&[f64; 3], &[f64; 3], &mut [f64; 3]) + Send + Sync>;

/// A pluggable pairwise force law: `(p_pos, q_pos, force_accumulator)`.
///
/// Installed by [`ParticleApp::with_pair_force`], typically from a compiled
/// particle-family kernel artifact so that service-submitted jobs execute the
/// cached plan's arithmetic.  When absent, the app's built-in quadratic
/// drop-off law runs; the stock compiled law reproduces it bit-for-bit.
#[derive(Clone)]
pub struct PairForce(pub PairForceFn);

impl std::fmt::Debug for PairForce {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("PairForce(..)")
    }
}

/// The end-user application: one force-integration step per iteration over
/// the 3×3 bucket neighbourhood.
#[derive(Debug, Clone)]
pub struct ParticleApp {
    /// The DSL system (for initial placement parameters).
    pub system: ParticleSystem,
    /// Time step (kept small so particles stay in their buckets — or, with
    /// migration enabled, move less than one bucket per step).
    pub dt: f64,
    /// Influence radius of the weight function (in bucket units).
    pub radius: f64,
    /// Main-loop iterations.
    pub loops: usize,
    /// Whether particles may move between buckets (the paper's prototype
    /// limitation lifted; see the module documentation).
    pub migration: bool,
    /// Initial velocity given to every movable particle (zero by default; a
    /// non-zero drift is the easiest way to exercise migration).
    pub initial_velocity: [f64; 3],
    /// `Finalize` deposits per-bucket mean speed here (keyed by bucket
    /// coordinates), so tests and harnesses can compare runs.
    pub sink: Option<FieldSink>,
    /// `Finalize` deposits per-bucket particle counts here (keyed by bucket
    /// coordinates), used by the migration/conservation tests.
    pub count_sink: Option<FieldSink>,
    /// Pluggable pair-force law (None = the built-in quadratic drop-off).
    pub pair_force: Option<PairForce>,
}

impl ParticleApp {
    /// Create the benchmark application.
    pub fn new(system: ParticleSystem, loops: usize) -> Self {
        ParticleApp {
            system,
            dt: 1e-3,
            radius: 1.0,
            loops,
            migration: false,
            initial_velocity: [0.0; 3],
            sink: None,
            count_sink: None,
            pair_force: None,
        }
    }

    /// Install a pluggable pair-force law (see [`PairForce`]).
    pub fn with_pair_force(mut self, law: PairForce) -> Self {
        self.pair_force = Some(law);
        self
    }

    /// Attach a result sink.
    pub fn with_sink(mut self, sink: FieldSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Attach a per-bucket particle-count sink.
    pub fn with_count_sink(mut self, sink: FieldSink) -> Self {
        self.count_sink = Some(sink);
        self
    }

    /// Enable or disable particle migration between buckets.
    pub fn with_migration(mut self, migration: bool) -> Self {
        self.migration = migration;
        self
    }

    /// Give every movable particle an initial velocity (bucket units per unit
    /// time).  With migration enabled, `|v| * dt` must stay below one bucket
    /// per step for the pull-based rebucketing to see every candidate.
    pub fn with_initial_velocity(mut self, v: [f64; 3]) -> Self {
        self.initial_velocity = v;
        self
    }

    /// Use a different time step.
    pub fn with_dt(mut self, dt: f64) -> Self {
        self.dt = dt;
        self
    }

    /// App factory for the runtime driver.
    pub fn factory(&self) -> Arc<dyn Fn(TaskSlot) -> ParticleApp + Send + Sync> {
        let proto = self.clone();
        Arc::new(move |_slot| proto.clone())
    }

    /// Deterministic sub-bucket offset of the `k`-th particle of a bucket.
    fn offset(k: usize) -> (f64, f64) {
        // A low-discrepancy-ish lattice inside the unit bucket.
        let fx = ((k * 7 + 3) % 16) as f64 / 16.0;
        let fy = ((k * 11 + 5) % 16) as f64 / 16.0;
        (0.05 + 0.9 * fx, 0.05 + 0.9 * fy)
    }

    /// The pairwise weight function: quadratic drop-off within the radius.
    fn weight(&self, dist: f64) -> f64 {
        if dist >= self.radius || dist <= 1e-9 {
            0.0
        } else {
            let x = 1.0 - dist / self.radius;
            x * x
        }
    }

    /// Repulsive force on `p` from every particle of the given buckets.
    fn force_on(&self, p: &Particle, neighbourhood: &[&Bucket]) -> [f64; 3] {
        let mut force = [0.0f64; 3];
        if let Some(law) = &self.pair_force {
            for nb in neighbourhood {
                for q in nb.live() {
                    if q.id == p.id {
                        continue;
                    }
                    (law.0)(&p.pos, &q.pos, &mut force);
                }
            }
            return force;
        }
        for nb in neighbourhood {
            for q in nb.live() {
                if q.id == p.id {
                    continue;
                }
                let dx = p.pos[0] - q.pos[0];
                let dy = p.pos[1] - q.pos[1];
                let dz = p.pos[2] - q.pos[2];
                let dist = (dx * dx + dy * dy + dz * dz).sqrt();
                let w = self.weight(dist);
                if w > 0.0 {
                    force[0] += w * dx / dist;
                    force[1] += w * dy / dist;
                    force[2] += w * dz / dist;
                }
            }
        }
        force
    }

    /// The prototype's kernel (§V-B3): every bucket updates its own particles
    /// in place; positions may drift out of the bucket but the particles stay
    /// where they are (which is why the paper runs few, small steps).
    fn kernel_in_place(&mut self, ctx: &mut TaskCtx<Bucket>) -> bool {
        let dt = self.dt;
        for bid in ctx.get_blocks() {
            let ext = ctx.env().block(bid).meta.extent;
            let (bx, by) = (ext.nx as i64, ext.ny as i64);
            for j in 0..by {
                for i in 0..bx {
                    let la = LocalAddress::new2d(i, j);
                    let me = ctx.get_dd(bid, la);
                    // Gather the 3x3 bucket neighbourhood; the in-block flag is
                    // the arithmetic test of §V-C (possible for Particle).
                    let mut neighbours: Vec<Bucket> = Vec::with_capacity(9);
                    for dj in -1..=1i64 {
                        for di in -1..=1i64 {
                            let inside = i + di >= 0 && j + dj >= 0 && i + di < bx && j + dj < by;
                            neighbours.push(ctx.get(
                                bid,
                                LocalAddress::new2d(i + di, j + dj),
                                inside,
                            ));
                        }
                    }
                    let neighbour_refs: Vec<&Bucket> = neighbours.iter().collect();
                    let mut updated = me;
                    for p_idx in 0..updated.count as usize {
                        let p = updated.particles[p_idx];
                        let force = self.force_on(&p, &neighbour_refs);
                        let p = &mut updated.particles[p_idx];
                        p.acc = force;
                        for d in 0..3 {
                            p.vel[d] += p.acc[d] * dt;
                            p.pos[d] += p.vel[d] * dt;
                        }
                    }
                    ctx.set(bid, la, updated);
                }
            }
        }
        ctx.refresh()
    }

    /// Pull-based rebucketing kernel: each bucket gathers its 5×5
    /// neighbourhood, re-runs the deterministic update of every candidate
    /// particle in the 3×3 ring (whose own 3×3 neighbourhood lies inside the
    /// gathered 5×5), and keeps exactly the particles whose new position
    /// falls inside this bucket.  No cross-block writes are needed, so the
    /// MPI / OpenMP aspect modules apply unchanged.
    fn kernel_with_migration(&mut self, ctx: &mut TaskCtx<Bucket>) -> bool {
        for bid in ctx.get_blocks() {
            let (ext, origin) = {
                let b = ctx.env().block(bid);
                (b.meta.extent, b.meta.origin)
            };
            let (bx, by) = (ext.nx as i64, ext.ny as i64);
            for j in 0..by {
                for i in 0..bx {
                    let la = LocalAddress::new2d(i, j);
                    let here = origin + la;
                    // Gather the 5×5 neighbourhood, indexed by [dj+2][di+2].
                    let mut patch: Vec<Bucket> = Vec::with_capacity(25);
                    for dj in -2..=2i64 {
                        for di in -2..=2i64 {
                            let inside = i + di >= 0 && j + dj >= 0 && i + di < bx && j + dj < by;
                            patch.push(ctx.get(bid, LocalAddress::new2d(i + di, j + dj), inside));
                        }
                    }
                    let at = |di: i64, dj: i64| &patch[((dj + 2) * 5 + (di + 2)) as usize];

                    let mut next = Bucket::default();
                    // Candidates: every movable particle currently within one
                    // bucket of here (migration is bounded by |v|·dt < 1).
                    for cdj in -1..=1i64 {
                        for cdi in -1..=1i64 {
                            let home = at(cdi, cdj);
                            if home.count == 0 {
                                continue;
                            }
                            let neighbourhood: Vec<&Bucket> = (-1..=1i64)
                                .flat_map(|ddj| (-1..=1i64).map(move |ddi| (ddi, ddj)))
                                .map(|(ddi, ddj)| at(cdi + ddi, cdj + ddj))
                                .collect();
                            for p in home.live() {
                                if p.id == u32::MAX {
                                    continue; // wall particles never move
                                }
                                let force = self.force_on(p, &neighbourhood);
                                let moved = self.advance(*p, force);
                                let target =
                                    (moved.pos[0].floor() as i64, moved.pos[1].floor() as i64);
                                if target == (here.x, here.y) {
                                    // Capacity overflow drops the particle —
                                    // tests use densities where this cannot
                                    // happen; a production DSL would spill to
                                    // a side list.
                                    let _ = next.push(moved);
                                }
                            }
                        }
                    }
                    ctx.set(bid, la, next);
                }
            }
        }
        ctx.refresh()
    }

    /// One symplectic-Euler update of a particle, with reflective walls at the
    /// domain boundary (only used by the migration path; the non-migrating
    /// path reproduces the prototype's open-ended update).
    fn advance(&self, mut p: Particle, force: [f64; 3]) -> Particle {
        let domain = [self.system.buckets_x as f64, self.system.buckets_y as f64];
        p.acc = force;
        for d in 0..3 {
            p.vel[d] += p.acc[d] * self.dt;
            p.pos[d] += p.vel[d] * self.dt;
        }
        for (d, &dom) in domain.iter().enumerate() {
            if p.pos[d] < 0.0 {
                p.pos[d] = -p.pos[d];
                p.vel[d] = -p.vel[d];
            }
            if p.pos[d] >= dom {
                p.pos[d] = 2.0 * dom - p.pos[d];
                p.vel[d] = -p.vel[d];
            }
            p.pos[d] = p.pos[d].clamp(0.0, domain[d] - 1e-9);
        }
        p
    }
}

impl HpcApp<Bucket> for ParticleApp {
    fn loop_count(&self) -> usize {
        self.loops
    }

    fn initialize(&mut self, ctx: &mut TaskCtx<Bucket>) {
        // Uniform placement: fill each bucket of the domain with
        // `fill_per_bucket` particles until the requested count is reached.
        let fill = self.system.fill_per_bucket;
        let bx_total = self.system.buckets_x;
        let remaining_before = |bucket_index: usize| {
            // Particles are numbered bucket-major so every rank computes the
            // same global ids without communication.
            bucket_index * fill
        };
        for bid in ctx.owned_blocks() {
            let (ext, origin) = {
                let b = ctx.env().block(bid);
                (b.meta.extent, b.meta.origin)
            };
            for j in 0..ext.ny as i64 {
                for i in 0..ext.nx as i64 {
                    let g = origin + LocalAddress::new2d(i, j);
                    let bucket_index = (g.y as usize) * bx_total + g.x as usize;
                    let first_id = remaining_before(bucket_index);
                    let mut bucket = Bucket::default();
                    for k in 0..fill {
                        let global_id = first_id + k;
                        if global_id >= self.system.particles.count {
                            break;
                        }
                        let (ox, oy) = Self::offset(k);
                        bucket.push(Particle {
                            id: global_id as u32,
                            pos: [g.x as f64 + ox, g.y as f64 + oy, 0.5],
                            vel: self.initial_velocity,
                            acc: [0.0; 3],
                        });
                    }
                    ctx.set_initial(bid, LocalAddress::new2d(i, j), bucket);
                }
            }
        }
    }

    fn kernel(&mut self, ctx: &mut TaskCtx<Bucket>, _warmup: bool) -> bool {
        if self.migration {
            self.kernel_with_migration(ctx)
        } else {
            self.kernel_in_place(ctx)
        }
    }

    fn finalize(&mut self, ctx: &mut TaskCtx<Bucket>) {
        if self.sink.is_none() && self.count_sink.is_none() {
            return;
        }
        let mut speeds = Vec::new();
        let mut counts = Vec::new();
        for bid in ctx.owned_blocks() {
            let (ext, origin) = {
                let b = ctx.env().block(bid);
                (b.meta.extent, b.meta.origin)
            };
            for j in 0..ext.ny as i64 {
                for i in 0..ext.nx as i64 {
                    let bucket = ctx.get_dd(bid, LocalAddress::new2d(i, j));
                    let speed: f64 = bucket
                        .live()
                        .iter()
                        .map(|p| (p.vel[0].powi(2) + p.vel[1].powi(2) + p.vel[2].powi(2)).sqrt())
                        .sum();
                    let addr = origin + LocalAddress::new2d(i, j);
                    speeds.push((addr, speed));
                    counts.push((addr, bucket.count as f64));
                }
            }
        }
        if let Some(sink) = &self.sink {
            sink.lock().extend(speeds);
        }
        if let Some(sink) = &self.count_sink {
            sink.lock().extend(counts);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::new_field_sink;
    use aohpc_aop::{Weaver, WovenProgram};
    use aohpc_runtime::{execute, MpiAspect, OmpAspect, RunConfig, Topology};

    fn run(topology: Topology, woven: WovenProgram) -> Vec<((i64, i64), f64)> {
        let system = ParticleSystem::paper(ParticleSize::new(400));
        let sink = new_field_sink();
        let app = ParticleApp::new(system.clone(), 3).with_sink(sink.clone());
        let config = RunConfig::serial().with_topology(topology);
        let report = execute(&config, woven, Arc::new(system).env_factory(), app.factory());
        assert!(report.tasks.iter().all(|t| t.steps == 3));
        let mut v: Vec<((i64, i64), f64)> =
            sink.lock().iter().map(|(a, s)| ((a.x, a.y), *s)).collect();
        v.sort_by_key(|(k, _)| *k);
        v
    }

    #[test]
    fn bucket_capacity_is_respected() {
        let mut b = Bucket::default();
        for i in 0..BUCKET_CAPACITY {
            assert!(b.push(Particle { id: i as u32, ..Default::default() }));
        }
        assert!(!b.push(Particle::default()));
        assert_eq!(b.live().len(), BUCKET_CAPACITY);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_alias_matches_the_paper_front_door() {
        let via_paper = ParticleSystem::paper(ParticleSize::new(400));
        let via_alias = ParticleSystem::for_particles(ParticleSize::new(400));
        assert_eq!(via_paper.buckets_x, via_alias.buckets_x);
        assert_eq!(via_paper.buckets_y, via_alias.buckets_y);
        assert_eq!(via_paper.fill_per_bucket, via_alias.fill_per_bucket);
        assert_eq!(via_paper.buckets_per_page, via_alias.buckets_per_page);
    }

    #[test]
    fn installed_pair_force_matching_the_builtin_is_bit_identical() {
        let radius = 1.0f64;
        let law = PairForce(Arc::new(move |p: &[f64; 3], q: &[f64; 3], force: &mut [f64; 3]| {
            let dx = p[0] - q[0];
            let dy = p[1] - q[1];
            let dz = p[2] - q[2];
            let dist = (dx * dx + dy * dy + dz * dz).sqrt();
            let w = if dist >= radius || dist <= 1e-9 {
                0.0
            } else {
                let x = 1.0 - dist / radius;
                x * x
            };
            if w > 0.0 {
                force[0] += w * dx / dist;
                force[1] += w * dy / dist;
                force[2] += w * dz / dist;
            }
        }));
        let system = ParticleSystem::paper(ParticleSize::new(256));
        let sink_a = new_field_sink();
        let sink_b = new_field_sink();
        let config = RunConfig::serial();
        let app = ParticleApp::new(system.clone(), 3).with_sink(sink_a.clone());
        execute(
            &config,
            WovenProgram::unwoven(),
            Arc::new(system.clone()).env_factory(),
            app.factory(),
        );
        let hooked =
            ParticleApp::new(system.clone(), 3).with_sink(sink_b.clone()).with_pair_force(law);
        execute(&config, WovenProgram::unwoven(), Arc::new(system).env_factory(), hooked.factory());
        let collect = |s: &FieldSink| {
            let mut v: Vec<((i64, i64), f64)> =
                s.lock().iter().map(|(a, x)| ((a.x, a.y), *x)).collect();
            v.sort_by_key(|(k, _)| *k);
            v
        };
        let a = collect(&sink_a);
        assert!(!a.is_empty());
        assert_eq!(a, collect(&sink_b), "hooked law must be bit-identical");
    }

    #[test]
    fn system_sizing_matches_particle_count() {
        let sys = ParticleSystem::paper(ParticleSize::new(1 << 10));
        assert_eq!(sys.buckets_x % BUCKETS_PER_BLOCK_SIDE, 0);
        assert!(sys.buckets_x * sys.buckets_y * sys.fill_per_bucket >= 1 << 10);
        let env = sys.build_env();
        assert!(env.stats().num_data_blocks >= 1);
    }

    #[test]
    fn wall_bucket_holds_fixed_particles() {
        let w = ParticleSystem::wall_bucket(GlobalAddress::new2d(-1, 4));
        assert_eq!(w.count, 4);
        assert!(w.live().iter().all(|p| p.id == u32::MAX));
        assert!(w.live().iter().all(|p| p.pos[0] < 0.0));
    }

    /// Run a migrating configuration and return, per bucket, `(count, speed)`.
    ///
    /// Density is kept at a quarter of the bucket capacity so that wall
    /// pile-up (reflected plus incoming particles) never overflows a bucket.
    fn run_migrating(
        topology: Topology,
        woven: WovenProgram,
        loops: usize,
        velocity: [f64; 3],
    ) -> Vec<((i64, i64), f64, f64)> {
        let mut system = ParticleSystem::paper(ParticleSize::new(256));
        system.fill_per_bucket = 4;
        let speed_sink = new_field_sink();
        let count_sink = new_field_sink();
        let app = ParticleApp::new(system.clone(), loops)
            .with_migration(true)
            .with_dt(0.25)
            .with_initial_velocity(velocity)
            .with_sink(speed_sink.clone())
            .with_count_sink(count_sink.clone());
        let config = RunConfig::serial().with_topology(topology);
        let report = execute(&config, woven, Arc::new(system).env_factory(), app.factory());
        assert!(report.tasks.iter().all(|t| t.steps == loops as u64));
        let counts: std::collections::HashMap<(i64, i64), f64> =
            count_sink.lock().iter().map(|(a, c)| ((a.x, a.y), *c)).collect();
        let mut out: Vec<((i64, i64), f64, f64)> =
            speed_sink.lock().iter().map(|(a, s)| ((a.x, a.y), counts[&(a.x, a.y)], *s)).collect();
        out.sort_by_key(|&(key, _, _)| key);
        out
    }

    #[test]
    fn migration_conserves_particles_and_moves_them_between_buckets() {
        // A uniform drift of half a bucket per step: after a few steps most
        // particles have crossed at least one bucket boundary.
        let before = run_migrating(Topology::serial(), WovenProgram::unwoven(), 0, [2.0, 0.0, 0.0]);
        let after = run_migrating(Topology::serial(), WovenProgram::unwoven(), 4, [2.0, 0.0, 0.0]);
        let total_before: f64 = before.iter().map(|(_, c, _)| c).sum();
        let total_after: f64 = after.iter().map(|(_, c, _)| c).sum();
        assert_eq!(total_before, 256.0, "initial placement holds every particle");
        assert_eq!(total_after, total_before, "migration must not create or destroy particles");
        // The per-bucket occupancy actually changed (particles moved).
        let changed = before
            .iter()
            .zip(&after)
            .filter(|((ka, ca, _), (kb, cb, _))| {
                assert_eq!(ka, kb);
                (ca - cb).abs() > 0.5
            })
            .count();
        assert!(changed >= 8, "only {changed} buckets changed occupancy");
    }

    #[test]
    fn migration_is_identical_under_the_distributed_aspect() {
        let serial =
            run_migrating(Topology::serial(), WovenProgram::unwoven(), 3, [1.5, -0.5, 0.0]);
        let woven = Weaver::new().with_aspect(Box::new(MpiAspect::<Bucket>::new())).weave();
        let topo = Topology::new(vec![aohpc_runtime::LayerSpec::distributed(2)]);
        let dist = run_migrating(topo, woven, 3, [1.5, -0.5, 0.0]);
        assert_eq!(serial.len(), dist.len());
        for ((ka, ca, sa), (kb, cb, sb)) in serial.iter().zip(&dist) {
            assert_eq!(ka, kb);
            assert_eq!(ca, cb, "bucket {ka:?} occupancy differs across topologies");
            assert!((sa - sb).abs() < 1e-9, "bucket {ka:?} speed differs: {sa} vs {sb}");
        }
    }

    #[test]
    fn migration_reflects_at_the_domain_walls() {
        // A strong drift towards -x: without reflection particles would leave
        // the domain and the total count would drop.
        let after = run_migrating(Topology::serial(), WovenProgram::unwoven(), 6, [-3.0, 0.0, 0.0]);
        let total: f64 = after.iter().map(|(_, c, _)| c).sum();
        assert_eq!(total, 256.0, "reflective walls keep every particle in the domain");
    }

    #[test]
    fn without_migration_occupancy_never_changes() {
        // The prototype semantics: positions drift, bucket membership does not.
        let system = ParticleSystem::paper(ParticleSize::new(256));
        let count_sink = new_field_sink();
        let app = ParticleApp::new(system.clone(), 4)
            .with_dt(0.25)
            .with_initial_velocity([2.0, 1.0, 0.0])
            .with_count_sink(count_sink.clone());
        execute(
            &RunConfig::serial(),
            WovenProgram::unwoven(),
            Arc::new(system.clone()).env_factory(),
            app.factory(),
        );
        let total: f64 = count_sink.lock().iter().map(|(_, c)| c).sum();
        assert_eq!(total, 256.0);
        // Occupied buckets are exactly the initially filled ones.
        let occupied = count_sink.lock().iter().filter(|(_, c)| *c > 0.0).count();
        let expected = 256usize.div_ceil(system.fill_per_bucket);
        assert_eq!(occupied, expected);
    }

    #[test]
    fn serial_run_moves_particles() {
        let result = run(Topology::serial(), WovenProgram::unwoven());
        let total_speed: f64 = result.iter().map(|(_, s)| s).sum();
        assert!(total_speed > 0.0, "interacting particles must gain velocity");
    }

    #[test]
    fn distributed_run_matches_serial() {
        let serial = run(Topology::serial(), WovenProgram::unwoven());
        let woven = Weaver::new().with_aspect(Box::new(MpiAspect::<Bucket>::new())).weave();
        let topo = Topology::new(vec![aohpc_runtime::LayerSpec::distributed(2)]);
        let dist = run(topo, woven);
        assert_eq!(serial.len(), dist.len());
        for ((ka, va), (kb, vb)) in serial.iter().zip(dist.iter()) {
            assert_eq!(ka, kb);
            assert!((va - vb).abs() < 1e-9, "bucket {ka:?}: {va} vs {vb}");
        }
    }

    #[test]
    fn hybrid_run_matches_serial() {
        let serial = run(Topology::serial(), WovenProgram::unwoven());
        let woven = Weaver::new()
            .with_aspect(Box::new(MpiAspect::<Bucket>::new()))
            .with_aspect(Box::new(OmpAspect::<Bucket>::new()))
            .weave();
        let hybrid = run(Topology::hybrid(2, 2), woven);
        for ((ka, va), (kb, vb)) in serial.iter().zip(hybrid.iter()) {
            assert_eq!(ka, kb);
            assert!((va - vb).abs() < 1e-9);
        }
    }
}
