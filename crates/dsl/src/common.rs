//! Shared machinery of the sample DSL processing systems.

use aohpc_env::{
    morton2d, Cell, Env, EnvBuilder, Extent, GlobalAddress, TilePlacement, TreeTopology,
};
use aohpc_mem::PoolHandle;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// A DSL processing system: something that can describe the Env of its target
/// application class.  The platform (core crate) asks the system for an Env
/// factory — one fresh Env per rank, since ranks never share memory.
pub trait DslSystem: Send + Sync {
    /// Cell type stored in the system's Data blocks.
    type Cell: Cell;

    /// Build the full-domain Env (all Data blocks plus boundary blocks).
    fn build_env(&self) -> Env<Self::Cell>;

    /// A factory building one Env replica per call.
    fn env_factory(self: Arc<Self>) -> Arc<dyn Fn() -> Env<Self::Cell> + Send + Sync>
    where
        Self: Sized + 'static,
    {
        let this = self;
        Arc::new(move || this.build_env())
    }
}

/// A shared sink the sample applications' `Finalize` writes per-rank results
/// into (field values or checksums), so tests, examples and harnesses can
/// observe the outcome of a parallel run.
pub type FieldSink = Arc<Mutex<Vec<(GlobalAddress, f64)>>>;

/// Create an empty [`FieldSink`].
pub fn new_field_sink() -> FieldSink {
    Arc::new(Mutex::new(Vec::new()))
}

/// Description of the block tiling of a rectangular region.
#[derive(Debug, Clone, Copy)]
pub struct Tiling {
    /// Region cells along X.
    pub nx: usize,
    /// Region cells along Y.
    pub ny: usize,
    /// Block side length in cells.
    pub block: usize,
}

impl Tiling {
    /// Blocks along X.
    pub fn blocks_x(&self) -> usize {
        self.nx.div_ceil(self.block)
    }

    /// Blocks along Y.
    pub fn blocks_y(&self) -> usize {
        self.ny.div_ceil(self.block)
    }

    /// Total number of blocks.
    pub fn total_blocks(&self) -> usize {
        self.blocks_x() * self.blocks_y()
    }
}

/// Build the default Env tree of Fig. 2 for a tiled rectangular region:
/// a root Empty block, a boundary branch (added by the caller through
/// `add_boundary`), an Empty joint, and one Data block per tile with its
/// Z-order index.
///
/// Returns the built Env and the list of data block ids in (by, bx)
/// iteration order.
pub fn build_tiled_env<C: Cell>(
    tiling: Tiling,
    cells_per_page: usize,
    pool: PoolHandle,
    add_boundary: impl FnOnce(&mut EnvBuilder<C>, usize),
) -> (Env<C>, Vec<aohpc_env::BlockId>) {
    build_tiled_env_with_topology(tiling, cells_per_page, pool, TreeTopology::Flat, add_boundary)
}

/// [`build_tiled_env`] with an explicit data-branch [`TreeTopology`].
///
/// `TreeTopology::Flat` reproduces the paper's default tree; the grouped
/// topologies insert bounded Empty joints (§III-B3) so that out-of-block
/// accesses prune most of the data branch during the Env search.
pub fn build_tiled_env_with_topology<C: Cell>(
    tiling: Tiling,
    cells_per_page: usize,
    pool: PoolHandle,
    topology: TreeTopology,
    add_boundary: impl FnOnce(&mut EnvBuilder<C>, usize),
) -> (Env<C>, Vec<aohpc_env::BlockId>) {
    let mut b = EnvBuilder::<C>::new(pool, cells_per_page);
    let root = b.add_empty(None);
    // The boundary branch is attached directly under the root so the
    // locality-aware search reaches it last.
    add_boundary(&mut b, root);
    let mut tiles = Vec::with_capacity(tiling.total_blocks());
    for by in 0..tiling.blocks_y() {
        for bx in 0..tiling.blocks_x() {
            let origin =
                GlobalAddress::new2d((bx * tiling.block) as i64, (by * tiling.block) as i64);
            let ext = Extent::new2d(
                tiling.block.min(tiling.nx - bx * tiling.block),
                tiling.block.min(tiling.ny - by * tiling.block),
            );
            tiles.push(TilePlacement::new(origin, ext, morton2d(bx as u32, by as u32)));
        }
    }
    let joints = topology.build_joints(&mut b, root, &tiles);
    let mut data = Vec::with_capacity(tiles.len());
    for (tile, joint) in tiles.iter().zip(&joints) {
        let id = b
            .add_data(*joint, tile.origin, tile.extent, tile.morton)
            .expect("pool exhausted while building the Env");
        data.push(id);
    }
    (b.build(), data)
}

/// Map from block origin to block id — used by initialisation code that needs
/// to find the block holding an arbitrary storage position without a tree
/// search.
pub fn origin_index<C: Cell>(env: &Env<C>) -> HashMap<(i64, i64), aohpc_env::BlockId> {
    env.data_block_ids()
        .into_iter()
        .map(|id| {
            let o = env.block(id).meta.origin;
            ((o.x, o.y), id)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiling_counts() {
        let t = Tiling { nx: 100, ny: 60, block: 32 };
        assert_eq!(t.blocks_x(), 4);
        assert_eq!(t.blocks_y(), 2);
        assert_eq!(t.total_blocks(), 8);
    }

    #[test]
    fn tiled_env_has_expected_shape() {
        let t = Tiling { nx: 64, ny: 64, block: 16 };
        let (env, data) = build_tiled_env::<f64>(t, 32, PoolHandle::unbounded(), |b, root| {
            b.add_arithmetic(root, Arc::new(|_| 0.0), true);
        });
        assert_eq!(data.len(), 16);
        assert_eq!(env.stats().num_data_blocks, 16);
        // root + boundary + joint + 16 data blocks
        assert_eq!(env.len(), 19);
        let idx = origin_index(&env);
        assert_eq!(idx.len(), 16);
        // Data blocks are created in (by, bx) row-major order; origin (16, 32)
        // is bx = 1, by = 2 → index 2 * 4 + 1 = 9.
        assert_eq!(idx[&(16, 32)], data[9]);
    }

    #[test]
    fn topology_variant_builds_grouped_joints() {
        let t = Tiling { nx: 64, ny: 64, block: 16 };
        let (flat, flat_data) =
            build_tiled_env::<f64>(t, 32, PoolHandle::unbounded(), |b, root| {
                b.add_arithmetic(root, Arc::new(|_| 0.0), true);
            });
        let (quad, quad_data) = build_tiled_env_with_topology::<f64>(
            t,
            32,
            PoolHandle::unbounded(),
            TreeTopology::Quadtree { max_leaf_blocks: 2 },
            |b, root| {
                b.add_arithmetic(root, Arc::new(|_| 0.0), true);
            },
        );
        assert_eq!(flat_data.len(), quad_data.len());
        assert_eq!(flat.stats().num_data_blocks, quad.stats().num_data_blocks);
        // The quadtree tree has strictly more (joint) blocks than the flat one.
        assert!(quad.len() > flat.len());
        // Data blocks cover the same origins in both trees.
        let origins = |env: &aohpc_env::Env<f64>| {
            let mut o: Vec<_> = env
                .data_block_ids()
                .into_iter()
                .map(|id| {
                    let m = &env.block(id).meta;
                    (m.origin.x, m.origin.y)
                })
                .collect();
            o.sort_unstable();
            o
        };
        assert_eq!(origins(&flat), origins(&quad));
    }

    #[test]
    fn ragged_tiling_truncates_edge_blocks() {
        let t = Tiling { nx: 40, ny: 40, block: 16 };
        let (env, data) = build_tiled_env::<f64>(t, 32, PoolHandle::unbounded(), |b, root| {
            b.add_arithmetic(root, Arc::new(|_| 0.0), true);
        });
        assert_eq!(data.len(), 9);
        let last = env.block(*data.last().unwrap());
        assert_eq!(last.meta.extent.nx, 8);
        assert_eq!(last.meta.extent.ny, 8);
    }
}
