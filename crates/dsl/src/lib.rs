//! # aohpc-dsl — sample DSL processing systems built on the platform
//!
//! This crate is the "DSL Part" of the paper: libraries a DSL developer
//! writes *once* on top of the platform's annotation and memory libraries so
//! that end-users can write serial-looking application code.  Three DSL
//! processing systems are provided, matching the prototype:
//!
//! * [`sgrid`] — 2-D **structured grid** (`SGrid`): fixed-size square blocks,
//!   Dirichlet boundary through an Arithmetic block, 5-point stencil helper.
//! * [`usgrid`] — 2-D **unstructured grid** (`USGrid`): every point carries
//!   the global addresses of its neighbours; the CaseC / CaseR memory
//!   layouts of the evaluation are selected through
//!   [`aohpc_workloads::GridLayout`]; out-of-domain data lives in a Static
//!   Data block.
//! * [`particle`] — bucketed **particle method** (`Particle`): blocks of
//!   8×8×1 buckets, 16 particles per bucket, wall particles provided by an
//!   Arithmetic block; particles do not migrate between buckets (the
//!   prototype's documented limitation).
//!
//! Each module also contains the corresponding "App Part" — the end-user
//! application the evaluation runs (Jacobi relaxation for the grids, a
//! short-range force integration for the particles) — written exactly in the
//! style of Listing 1: loop over `get_blocks`, access cells through the
//! block-based interface with the skip-search flag where legal, call
//! `refresh` at the end of every step.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod common;
pub mod particle;
pub mod sgrid;
pub mod usgrid;

pub use common::{new_field_sink, DslSystem, FieldSink};
pub use particle::{Bucket, PairForce, Particle, ParticleApp, ParticleSystem};
pub use sgrid::{SGridJacobiApp, SGridSystem};
pub use usgrid::{UsCell, UsGridJacobiApp, UsGridSystem, UsUpdate};
