//! Regression test: the recorder's span path is **zero-alloc** once warm.
//!
//! `start` is a clock read + atomic id allocation (no lock, no write);
//! `end_with` files one `Copy` record into a pre-reserved ring slot.  The
//! only cold-path allocations are the ring buffers themselves (reserved at
//! construction) and the first-touch thread-local index, both of which the
//! warm-up loop below pays for before counting begins.
//!
//! Counted with `aohpc-testalloc`'s thread-scoped tracking allocator, so
//! concurrent libtest harness threads cannot contribute stray counts.

use aohpc_obs::ObsHub;
use aohpc_testalloc::count_in;
use aohpc_testalloc::sync::FakeClock;

#[global_allocator]
static GLOBAL: aohpc_testalloc::CountingAlloc = aohpc_testalloc::CountingAlloc;

#[test]
fn warm_span_path_is_allocation_free() {
    let clock = FakeClock::new();
    let hub = ObsHub::with_clock_and_capacity(clock, 1024);
    let recorder = hub.recorder();
    let trace = recorder.next_trace_id();

    // Warm-up: initialize this thread's recorder index and touch the ring.
    for _ in 0..8 {
        let open = recorder.start("Obs::warmup", trace, 0);
        recorder.end(open);
    }

    let ((), allocs) = count_in(|| {
        for i in 0..512i64 {
            let open = recorder.start("Kernel::execute_block", trace, 1);
            recorder.end_with(open, i, 4096);
        }
    });
    assert_eq!(allocs, 0, "span start/end must not allocate once warm");

    // Overflow (drop-oldest) must also be allocation-free: push far past the
    // per-shard capacity.
    let ((), allocs) = count_in(|| {
        for i in 0..4096i64 {
            recorder.event("Obs::overflow", trace, 1, i, 0);
        }
    });
    assert_eq!(allocs, 0, "ring overflow path must not allocate");
    assert!(recorder.dropped() > 0, "overflow must have occurred for this test to bite");
}

#[test]
fn warm_histogram_record_is_allocation_free() {
    let clock = FakeClock::new();
    let hub = ObsHub::with_clock(clock);
    hub.metrics().queue_wait_ns.record(1);
    let ((), allocs) = count_in(|| {
        for i in 0..512u64 {
            hub.metrics().queue_wait_ns.record(i * 100);
        }
    });
    assert_eq!(allocs, 0, "histogram record must not allocate");
}
