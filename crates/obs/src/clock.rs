//! Time sources for the recorder.
//!
//! All observability timestamps flow through the [`Clock`] trait so that
//! deterministic tests can substitute [`aohpc_testalloc::sync::FakeClock`]
//! (which implements [`Clock`] here) and get bit-identical traces across
//! runs, while production installs use [`WallClock`].

use std::time::Instant;

/// A monotonic nanosecond time source.
///
/// Implementations must be cheap (called twice per span on the hot path) and
/// monotonic per thread.
pub trait Clock: Send + Sync {
    /// Nanoseconds since an arbitrary (per-clock) epoch.
    fn now_nanos(&self) -> u64;
}

/// Wall-time clock anchored at construction.
#[derive(Debug)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// A clock whose epoch is "now".
    pub fn new() -> Self {
        WallClock { epoch: Instant::now() }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now_nanos(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

impl Clock for aohpc_testalloc::sync::FakeClock {
    fn now_nanos(&self) -> u64 {
        self.now().as_nanos() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aohpc_testalloc::sync::FakeClock;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::new();
        let a = c.now_nanos();
        let b = c.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn fake_clock_tracks_advances() {
        let fake = FakeClock::new();
        let clock: Arc<dyn Clock> = fake.clone();
        assert_eq!(clock.now_nanos(), 0);
        fake.advance(Duration::from_nanos(1234));
        assert_eq!(clock.now_nanos(), 1234);
    }
}
