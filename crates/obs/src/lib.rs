//! `aohpc-obs`: aspect-woven tracing, metrics, and flight recorder.
//!
//! The paper's pitch is that cross-cutting concerns are *woven* around HPC
//! kernels instead of hand-inserted; this crate applies that to
//! observability.  Nothing in the kernel or runtime calls a tracing API —
//! instead two aspect modules ([`ObsServiceAspect`], [`ObsRunAspect`])
//! register advice at the platform's canonical join points
//! (`Service::execute_spec`, `PlanCache::resolve`, `Kernel::execute_block`,
//! `Cluster::plan_req`/`plan_rep`, `Annotation::KernelStep`), and the
//! service weaves them in only when an [`ObsHub`] is installed.  With no hub
//! the dispatch sites are gated off entirely, so the uninstrumented path
//! stays within noise of the seed (enforced by `bench_obs`).
//!
//! One [`ObsHub`] bundles the three pillars:
//!
//! - [`TraceRecorder`] — sharded, bounded ring buffers of [`SpanRecord`]s
//!   whose parent edges form job → superstep → block / cache / comm trees;
//!   timestamps come from a [`Clock`] so `FakeClock` tests are
//!   deterministic, and the record path is allocation-free after warmup.
//! - [`Metrics`] — counters plus fixed-bucket [`Histogram`]s for the SLO
//!   surface: queue-wait p50/p99, resolve/execute latency, plan fetch/serve
//!   latency, worker utilization, and per-fingerprint kernel throughput.
//! - Exporters — [`chrome_trace_json`] (loadable in `chrome://tracing` /
//!   Perfetto), [`json_lines`], and the human-readable, cross-validated
//!   [`ObsSnapshot`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aspect;
pub mod clock;
pub mod export;
pub mod metrics;
pub mod snapshot;
pub mod trace;

pub use aspect::{ObsRunAspect, ObsServiceAspect, RunFinisher, OBS_PRECEDENCE};
pub use clock::{Clock, WallClock};
pub use export::{chrome_trace_json, json_lines};
pub use metrics::{Counter, Histogram, HistogramSnapshot, KernelRate, Metrics};
pub use snapshot::{AdmissionCounters, CacheCounters, CommCounters, JobCounters, ObsSnapshot};
pub use trace::{
    current_context, push_context, ContextGuard, OpenSpan, SpanRecord, TraceRecorder,
    DEFAULT_SHARD_CAPACITY,
};

use std::sync::Arc;

/// The installable observability hub: recorder + metrics + clock.
///
/// Create one (usually via [`ObsHub::new`]) and hand it to
/// `KernelService::with_observer` / `ClusterService::with_observer`; every
/// node of a cluster shares the same hub so cross-node spans land in one
/// flight recorder.
pub struct ObsHub {
    recorder: TraceRecorder,
    metrics: Metrics,
    clock: Arc<dyn Clock>,
}

impl ObsHub {
    /// Hub on wall time with the default recorder capacity.
    pub fn new() -> Arc<Self> {
        Self::with_clock(Arc::new(WallClock::new()))
    }

    /// Hub on an explicit clock (e.g. a `FakeClock` for deterministic
    /// traces).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Arc<Self> {
        Self::with_clock_and_capacity(clock, DEFAULT_SHARD_CAPACITY)
    }

    /// Hub with an explicit clock and per-shard recorder capacity.
    pub fn with_clock_and_capacity(clock: Arc<dyn Clock>, shard_capacity: usize) -> Arc<Self> {
        Arc::new(ObsHub {
            recorder: TraceRecorder::with_capacity(Arc::clone(&clock), shard_capacity),
            metrics: Metrics::new(),
            clock,
        })
    }

    /// The flight recorder.
    pub fn recorder(&self) -> &TraceRecorder {
        &self.recorder
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The hub's time source.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Current time in nanoseconds.
    pub fn now_nanos(&self) -> u64 {
        self.clock.now_nanos()
    }
}

impl std::fmt::Debug for ObsHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsHub").field("recorder", &self.recorder).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aohpc_testalloc::sync::FakeClock;
    use std::time::Duration;

    #[test]
    fn hub_bundles_recorder_metrics_and_clock() {
        let clock = FakeClock::new();
        let hub = ObsHub::with_clock(clock.clone());
        clock.advance(Duration::from_nanos(42));
        assert_eq!(hub.now_nanos(), 42);
        let open = hub.recorder().start("X::y", 1, 0);
        hub.recorder().end(open);
        hub.metrics().jobs_completed.inc();
        assert_eq!(hub.recorder().len(), 1);
        assert_eq!(hub.metrics().jobs_completed.get(), 1);
    }
}
