//! The flight recorder: per-thread bounded ring buffers of spans.
//!
//! [`TraceRecorder`] hands out span/trace ids from shared counters and files
//! finished [`SpanRecord`]s into one of a fixed set of ring-buffer shards
//! selected by the calling thread, so concurrent workers never contend on a
//! single buffer.  Rings are bounded: once full they drop the *oldest* record
//! and bump [`TraceRecorder::dropped`], flight-recorder style, so a
//! long-running service keeps the most recent window of activity.
//!
//! The hot path is allocation-free after warmup: [`TraceRecorder::start`] is
//! a clock read plus an atomic increment (no lock, no write), and
//! [`TraceRecorder::end`] writes one `Copy` record into a pre-reserved ring
//! slot under a short shard lock.  `crates/obs/tests/no_alloc.rs` enforces
//! this with a tracking allocator.
//!
//! Cross-layer parenting uses a thread-local context stack
//! ([`push_context`] / [`current_context`]): the service pushes the
//! (trace, job-span) pair while a job runs on a worker thread, and deeper
//! layers (cache resolution, cluster fetches) pick it up without any
//! signature threading.

use crate::clock::Clock;
use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of ring-buffer shards (threads hash onto these).
const SHARDS: usize = 16;

/// Default per-shard capacity (records kept per shard before drop-oldest).
pub const DEFAULT_SHARD_CAPACITY: usize = 16 * 1024;

static NEXT_THREAD_IDX: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_IDX: u64 = NEXT_THREAD_IDX.fetch_add(1, Ordering::Relaxed);
    static CONTEXT: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
}

fn thread_idx() -> u64 {
    THREAD_IDX.with(|v| *v)
}

/// The (trace id, span id) pair currently installed on this thread, if any.
pub fn current_context() -> Option<(u64, u64)> {
    CONTEXT.with(|c| c.borrow().last().copied())
}

/// Install a (trace id, span id) context on this thread until the returned
/// guard drops.  Contexts nest.
pub fn push_context(trace: u64, span: u64) -> ContextGuard {
    CONTEXT.with(|c| c.borrow_mut().push((trace, span)));
    ContextGuard(())
}

/// Pops the context pushed by [`push_context`] on drop.
#[must_use = "dropping the guard immediately pops the context"]
pub struct ContextGuard(());

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CONTEXT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

/// One finished span (or instant event, when `start_ns == end_ns`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Trace (job) this span belongs to; `0` = untraced.
    pub trace: u64,
    /// Unique span id within the recorder.
    pub span: u64,
    /// Parent span id; `0` = root of its trace.
    pub parent: u64,
    /// Join-point / operation name.
    pub name: &'static str,
    /// Start timestamp (clock nanoseconds).
    pub start_ns: u64,
    /// End timestamp; equal to `start_ns` for instant events.
    pub end_ns: u64,
    /// Recorder-assigned index of the thread that finished the span.
    pub thread: u64,
    /// First operation-specific attribute (e.g. block id, plan origin).
    pub a: i64,
    /// Second operation-specific attribute (e.g. cell count, ok flag).
    pub b: i64,
}

impl SpanRecord {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// A started-but-unfinished span.  `Copy`, so it can live on the stack across
/// the instrumented region without touching the recorder.
#[derive(Debug, Clone, Copy)]
pub struct OpenSpan {
    /// Trace id the span was started under.
    pub trace: u64,
    /// Allocated span id (stable across `end`).
    pub span: u64,
    /// Parent span id.
    pub parent: u64,
    /// Operation name.
    pub name: &'static str,
    /// Start timestamp.
    pub start_ns: u64,
}

struct Ring {
    buf: Vec<SpanRecord>,
    head: usize,
}

impl Ring {
    fn push(&mut self, cap: usize, rec: SpanRecord) -> bool {
        if self.buf.len() < cap {
            self.buf.push(rec);
            false
        } else {
            self.buf[self.head] = rec;
            self.head = (self.head + 1) % cap;
            true
        }
    }

    fn snapshot(&self, out: &mut Vec<SpanRecord>) {
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
    }
}

/// Sharded, bounded span recorder.
pub struct TraceRecorder {
    clock: Arc<dyn Clock>,
    shards: Vec<Mutex<Ring>>,
    shard_capacity: usize,
    next_span: AtomicU64,
    next_trace: AtomicU64,
    dropped: AtomicU64,
}

impl TraceRecorder {
    /// Recorder with the default per-shard capacity.
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        Self::with_capacity(clock, DEFAULT_SHARD_CAPACITY)
    }

    /// Recorder keeping at most `shard_capacity` records per shard; the
    /// buffers are reserved up front so the record path never allocates.
    pub fn with_capacity(clock: Arc<dyn Clock>, shard_capacity: usize) -> Self {
        let cap = shard_capacity.max(1);
        let shards = (0..SHARDS)
            .map(|_| Mutex::new(Ring { buf: Vec::with_capacity(cap), head: 0 }))
            .collect();
        TraceRecorder {
            clock,
            shards,
            shard_capacity: cap,
            next_span: AtomicU64::new(1),
            next_trace: AtomicU64::new(1),
            dropped: AtomicU64::new(0),
        }
    }

    /// Allocate a fresh trace id (one per job).
    pub fn next_trace_id(&self) -> u64 {
        self.next_trace.fetch_add(1, Ordering::Relaxed)
    }

    /// Current time according to the recorder's clock.
    pub fn now_nanos(&self) -> u64 {
        self.clock.now_nanos()
    }

    /// Open a span.  Lock-free: the record is only written at [`end`].
    ///
    /// [`end`]: TraceRecorder::end
    pub fn start(&self, name: &'static str, trace: u64, parent: u64) -> OpenSpan {
        OpenSpan {
            trace,
            span: self.next_span.fetch_add(1, Ordering::Relaxed),
            parent,
            name,
            start_ns: self.clock.now_nanos(),
        }
    }

    /// Finish a span with zeroed attributes.
    pub fn end(&self, open: OpenSpan) {
        self.end_with(open, 0, 0);
    }

    /// Finish a span, attaching two operation-specific attributes.
    pub fn end_with(&self, open: OpenSpan, a: i64, b: i64) {
        let end_ns = self.clock.now_nanos();
        self.record(SpanRecord {
            trace: open.trace,
            span: open.span,
            parent: open.parent,
            name: open.name,
            start_ns: open.start_ns,
            end_ns,
            thread: thread_idx(),
            a,
            b,
        });
    }

    /// Record an instant event (zero-duration span).
    pub fn event(&self, name: &'static str, trace: u64, parent: u64, a: i64, b: i64) {
        let now = self.clock.now_nanos();
        self.record(SpanRecord {
            trace,
            span: self.next_span.fetch_add(1, Ordering::Relaxed),
            parent,
            name,
            start_ns: now,
            end_ns: now,
            thread: thread_idx(),
            a,
            b,
        });
    }

    fn record(&self, rec: SpanRecord) {
        let shard = (rec.thread % SHARDS as u64) as usize;
        let overflowed = self.shards[shard].lock().push(self.shard_capacity, rec);
        if overflowed {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// All retained spans, sorted by (start time, span id).
    pub fn spans(&self) -> Vec<SpanRecord> {
        let mut out = Vec::new();
        for shard in &self.shards {
            shard.lock().snapshot(&mut out);
        }
        out.sort_by_key(|r| (r.start_ns, r.span));
        out
    }

    /// Number of currently retained spans.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().buf.len()).sum()
    }

    /// Whether no spans are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of records dropped to ring-buffer overflow (drop-oldest).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Discard all retained spans (the drop counter is kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut ring = shard.lock();
            ring.buf.clear();
            ring.head = 0;
        }
    }
}

impl std::fmt::Debug for TraceRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRecorder")
            .field("spans", &self.len())
            .field("dropped", &self.dropped())
            .field("shard_capacity", &self.shard_capacity)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::WallClock;
    use aohpc_testalloc::sync::FakeClock;
    use std::time::Duration;

    fn fake_recorder(cap: usize) -> (Arc<FakeClock>, TraceRecorder) {
        let clock = FakeClock::new();
        let rec = TraceRecorder::with_capacity(clock.clone(), cap);
        (clock, rec)
    }

    #[test]
    fn span_roundtrip_records_parent_and_attrs() {
        let (clock, rec) = fake_recorder(64);
        let trace = rec.next_trace_id();
        let root = rec.start("Service::job", trace, 0);
        clock.advance(Duration::from_nanos(50));
        let child = rec.start("Kernel::execute_block", trace, root.span);
        clock.advance(Duration::from_nanos(25));
        rec.end_with(child, 3, 4096);
        rec.end(root);

        let spans = rec.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "Service::job");
        assert_eq!(spans[0].parent, 0);
        assert_eq!(spans[0].duration_ns(), 75);
        assert_eq!(spans[1].parent, spans[0].span);
        assert_eq!(spans[1].a, 3);
        assert_eq!(spans[1].b, 4096);
        assert_eq!(spans[1].duration_ns(), 25);
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let (clock, rec) = fake_recorder(4);
        for i in 0..10u64 {
            clock.advance(Duration::from_nanos(1));
            rec.event("X::e", 1, 0, i as i64, 0);
        }
        // Single-threaded: everything lands in one shard of capacity 4.
        assert_eq!(rec.len(), 4);
        assert_eq!(rec.dropped(), 6);
        let kept: Vec<i64> = rec.spans().iter().map(|s| s.a).collect();
        assert_eq!(kept, vec![6, 7, 8, 9], "the newest records must survive");
    }

    #[test]
    fn clear_retains_drop_counter() {
        let (_clock, rec) = fake_recorder(2);
        for _ in 0..5 {
            rec.event("X::e", 1, 0, 0, 0);
        }
        assert_eq!(rec.dropped(), 3);
        rec.clear();
        assert!(rec.is_empty());
        assert_eq!(rec.dropped(), 3);
    }

    #[test]
    fn context_stack_nests_and_pops() {
        assert_eq!(current_context(), None);
        let g1 = push_context(7, 1);
        assert_eq!(current_context(), Some((7, 1)));
        {
            let _g2 = push_context(7, 2);
            assert_eq!(current_context(), Some((7, 2)));
        }
        assert_eq!(current_context(), Some((7, 1)));
        drop(g1);
        assert_eq!(current_context(), None);
    }

    #[test]
    fn wall_clock_spans_are_ordered() {
        let rec = TraceRecorder::new(Arc::new(WallClock::new()));
        let open = rec.start("X::y", 1, 0);
        rec.end(open);
        let spans = rec.spans();
        assert_eq!(spans.len(), 1);
        assert!(spans[0].end_ns >= spans[0].start_ns);
    }
}
