//! Metrics: lock-free counters and fixed-bucket histograms.
//!
//! The [`Metrics`] registry unifies the stack's previously isolated stat
//! islands under one roof: queue-wait / resolve / execute latency histograms
//! (the p50/p99 SLO metrics), job outcome counters, worker-pool busy time,
//! cluster plan-fetch/serve latency, and per-fingerprint kernel throughput.
//!
//! Histograms use 65 fixed power-of-two buckets (value `v` lands in bucket
//! `⌈log2(v+1)⌉`), so recording is an atomic increment with no allocation and
//! quantiles are conservative upper-bound estimates — exactly what an SLO
//! check needs.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

const BUCKETS: usize = 65;

fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros()) as usize
    }
}

fn bucket_upper(index: usize) -> u64 {
    match index {
        0 => 0,
        64 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// Fixed-bucket log2 histogram of `u64` samples (typically nanoseconds).
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample (exact).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Conservative quantile estimate: the upper bound of the bucket holding
    /// the `q`-th sample (`0.0 < q <= 1.0`).  Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                return bucket_upper(i).min(self.max());
            }
        }
        self.max()
    }

    /// A point-in-time copy of the distribution's summary statistics.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            p50: self.quantile(0.50),
            p99: self.quantile(0.99),
            max: self.max(),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Summary statistics of a [`Histogram`] at one point in time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Median (bucket upper-bound estimate).
    pub p50: u64,
    /// 99th percentile (bucket upper-bound estimate).
    pub p99: u64,
    /// Exact maximum sample.
    pub max: u64,
}

/// Accumulated throughput of one kernel fingerprint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelRate {
    /// Jobs contributing to this rate.
    pub jobs: u64,
    /// Total cells processed.
    pub cells: u64,
    /// Total execute-phase nanoseconds.
    pub nanos: u64,
}

impl KernelRate {
    /// Cells per second over the accumulated window (0 if no time recorded).
    pub fn cells_per_sec(&self) -> f64 {
        if self.nanos == 0 {
            0.0
        } else {
            self.cells as f64 * 1e9 / self.nanos as f64
        }
    }
}

/// The unified metrics registry installed once per [`crate::ObsHub`].
#[derive(Debug, Default)]
pub struct Metrics {
    /// Jobs that produced a successful report.
    pub jobs_completed: Counter,
    /// Jobs that produced an error report.
    pub jobs_failed: Counter,
    /// Admission-queue wait per job (dequeue time − admit time), nanoseconds.
    pub queue_wait_ns: Histogram,
    /// Plan-resolution phase (cache hit / fetch / compile) per job.
    pub resolve_ns: Histogram,
    /// Execute phase per job.
    pub execute_ns: Histogram,
    /// Total nanoseconds workers spent running jobs (utilization numerator).
    pub worker_busy_ns: Counter,
    /// Cross-node plan-fetch round trips (requester side).
    pub plan_fetch_ns: Histogram,
    /// Plan-request service time (owner side).
    pub plan_serve_ns: Histogram,
    /// Failure-detector transitions recorded (a rank suspected or declared
    /// dead by some node's membership view).
    pub suspicions: Counter,
    /// Checkpoint-replay failovers: jobs orphaned by a dead node and
    /// re-submitted onto a survivor.
    pub failovers: Counter,
    /// Incarnation-arbitrated revivals: restarted ranks rejoining the mesh
    /// plus suspected-but-alive ranks refuting an accusation.
    pub rejoins: Counter,
    /// Scripted link events (directional cuts and heals) from the fault
    /// harness.
    pub partitions: Counter,
    /// Tapes that qualified for a monomorphic super-instruction kernel at
    /// compile/cache-insert time (`Kernel::specialize`, `ok` = 1).
    pub specializations: Counter,
    kernel_rates: Mutex<HashMap<u64, KernelRate>>,
}

impl Metrics {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one job's kernel throughput into the per-fingerprint table.
    /// Called once per job completion — off the block hot path.
    pub fn record_kernel(&self, fingerprint: u64, cells: u64, nanos: u64) {
        let mut rates = self.kernel_rates.lock();
        let rate = rates.entry(fingerprint).or_default();
        rate.jobs += 1;
        rate.cells += cells;
        rate.nanos += nanos;
    }

    /// Per-fingerprint throughput, sorted by fingerprint for stable output.
    pub fn kernel_rates(&self) -> Vec<(u64, KernelRate)> {
        let mut out: Vec<(u64, KernelRate)> =
            self.kernel_rates.lock().iter().map(|(k, v)| (*k, *v)).collect();
        out.sort_by_key(|(k, _)| *k);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_adds() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn quantiles_are_upper_bounds() {
        let h = Histogram::new();
        for v in [10u64, 20, 30, 40, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1100);
        assert_eq!(h.max(), 1000);
        let p50 = h.quantile(0.50);
        let p99 = h.quantile(0.99);
        // Upper-bound property: the estimate is >= the true quantile and
        // within its power-of-two bucket.
        assert!((20..=31).contains(&p50), "p50 estimate {p50}");
        assert!((1000..=1023).contains(&p99), "p99 estimate {p99}");
        assert!(p50 <= p99);
        assert!(p99 <= h.max().next_power_of_two());
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
    }

    #[test]
    fn single_sample_quantiles_clamp_to_max() {
        let h = Histogram::new();
        h.record(7);
        // max() caps the bucket upper bound, so a lone sample reports itself.
        assert_eq!(h.quantile(0.50), 7);
        assert_eq!(h.quantile(0.99), 7);
    }

    #[test]
    fn kernel_rates_accumulate() {
        let m = Metrics::new();
        m.record_kernel(0xfeed, 1_000_000, 500_000_000);
        m.record_kernel(0xfeed, 1_000_000, 500_000_000);
        m.record_kernel(0xbeef, 10, 1_000_000_000);
        let rates = m.kernel_rates();
        assert_eq!(rates.len(), 2);
        let feed = rates.iter().find(|(k, _)| *k == 0xfeed).unwrap().1;
        assert_eq!(feed.jobs, 2);
        assert!((feed.cells_per_sec() - 2_000_000.0).abs() < 1e-6);
        let beef = rates.iter().find(|(k, _)| *k == 0xbeef).unwrap().1;
        assert!((beef.cells_per_sec() - 10.0).abs() < 1e-9);
    }
}
