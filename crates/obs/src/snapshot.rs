//! `ObsSnapshot`: one coherent, validated view across every stat island.
//!
//! The service layers each keep their own counters (`PlanCacheStats`,
//! `CommStats`, admission gauges, job metrics).  [`ObsSnapshot`] mirrors them
//! in plain observability-side types so the obs crate stays decoupled from
//! service internals, and [`ObsSnapshot::validate`] cross-checks the
//! invariants that previously had no single place to live — most importantly
//! the plan-cache ledger `misses == compiles + fetches` and the cluster-wide
//! comm send/receive balance.

use crate::metrics::HistogramSnapshot;
use std::fmt;

/// Plan-cache counters (mirror of the service's `PlanCacheStats`).
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize)]
pub struct CacheCounters {
    /// Resolutions served from a resident plan.
    pub hits: u64,
    /// Resolutions that had to compile or fetch.
    pub misses: u64,
    /// Plans compiled locally.
    pub compiles: u64,
    /// Plans fetched from a cluster peer.
    pub fetches: u64,
    /// Plans evicted.
    pub evictions: u64,
    /// Fingerprint collisions detected.
    pub collisions: u64,
    /// Compiles forced by a failed (not declined) cluster fetch — the
    /// degraded fallback path, visible instead of silent.
    pub degraded_resolves: u64,
    /// Per-family (hits, misses) lanes, in family-id order.
    pub lanes: Vec<(u64, u64)>,
}

/// Communication-plane counters (mirror of the runtime's `CommStats`,
/// aggregated cluster-wide so send/receive balance holds).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct CommCounters {
    /// Messages sent across all endpoints.
    pub messages_sent: u64,
    /// Messages received across all endpoints.
    pub messages_received: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Payload bytes received.
    pub bytes_received: u64,
    /// Control frames sent.
    pub control_sent: u64,
    /// Control frames received.
    pub control_received: u64,
}

/// Admission-queue state and latency distribution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct AdmissionCounters {
    /// Submitters currently parked on backpressure.
    pub waiting: u64,
    /// Jobs currently queued.
    pub queued: u64,
    /// Queue capacity.
    pub queue_limit: u64,
    /// Queue-wait latency distribution (nanoseconds).
    pub queue_wait: HistogramSnapshot,
}

/// Job-outcome counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct JobCounters {
    /// Jobs that completed with a successful report.
    pub completed: u64,
    /// Jobs that completed with an error report.
    pub failed: u64,
    /// Total worker-busy nanoseconds.
    pub worker_busy_ns: u64,
}

/// A unified, point-in-time view across cache, comm, admission, and job
/// counters, plus the recorder's retention state.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize)]
pub struct ObsSnapshot {
    /// Plan-cache counters, when a cache is attached.
    pub cache: Option<CacheCounters>,
    /// Cluster-aggregated comm counters, when a fabric is attached.
    pub comm: Option<CommCounters>,
    /// Admission counters.
    pub admission: AdmissionCounters,
    /// Job counters.
    pub jobs: JobCounters,
    /// Spans currently retained by the recorder.
    pub retained_spans: u64,
    /// Spans dropped by ring-buffer overflow.
    pub dropped_spans: u64,
}

impl ObsSnapshot {
    /// Cross-check every inter-counter invariant; returns one human-readable
    /// violation per broken invariant (empty = consistent).
    ///
    /// Intended to be asserted empty at quiescence (no in-flight jobs).
    pub fn validate(&self) -> Vec<String> {
        let mut violations = Vec::new();
        if let Some(cache) = &self.cache {
            if cache.misses != cache.compiles + cache.fetches {
                violations.push(format!(
                    "cache ledger broken: misses {} != compiles {} + fetches {}",
                    cache.misses, cache.compiles, cache.fetches
                ));
            }
            if cache.degraded_resolves > cache.compiles {
                violations.push(format!(
                    "degraded resolves {} exceed compiles {}",
                    cache.degraded_resolves, cache.compiles
                ));
            }
            let lane_hits: u64 = cache.lanes.iter().map(|(h, _)| h).sum();
            let lane_misses: u64 = cache.lanes.iter().map(|(_, m)| m).sum();
            if !cache.lanes.is_empty() && lane_hits != cache.hits {
                violations.push(format!(
                    "family lanes lost hits: lanes {} != global {}",
                    lane_hits, cache.hits
                ));
            }
            if !cache.lanes.is_empty() && lane_misses != cache.misses {
                violations.push(format!(
                    "family lanes lost misses: lanes {} != global {}",
                    lane_misses, cache.misses
                ));
            }
        }
        if let Some(comm) = &self.comm {
            if comm.messages_sent != comm.messages_received {
                violations.push(format!(
                    "comm message imbalance: sent {} != received {}",
                    comm.messages_sent, comm.messages_received
                ));
            }
            if comm.bytes_sent != comm.bytes_received {
                violations.push(format!(
                    "comm byte imbalance: sent {} != received {}",
                    comm.bytes_sent, comm.bytes_received
                ));
            }
            if comm.control_sent != comm.control_received {
                violations.push(format!(
                    "control frame imbalance: sent {} != received {}",
                    comm.control_sent, comm.control_received
                ));
            }
        }
        let qw = &self.admission.queue_wait;
        if qw.p50 > qw.p99 {
            violations.push(format!("queue-wait p50 {} > p99 {}", qw.p50, qw.p99));
        }
        if qw.p99 > qw.max.next_power_of_two() {
            violations.push(format!("queue-wait p99 {} above max bucket of {}", qw.p99, qw.max));
        }
        if qw.count > 0 && qw.max > qw.sum {
            violations.push(format!("queue-wait max {} exceeds sum {}", qw.max, qw.sum));
        }
        let finished = self.jobs.completed + self.jobs.failed;
        if qw.count != finished {
            violations.push(format!(
                "queue-wait samples {} != finished jobs {} (completed {} + failed {})",
                qw.count, finished, self.jobs.completed, self.jobs.failed
            ));
        }
        violations
    }
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

impl fmt::Display for ObsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "obs snapshot:")?;
        writeln!(
            f,
            "  jobs: {} completed, {} failed, worker busy {:.3} ms",
            self.jobs.completed,
            self.jobs.failed,
            ms(self.jobs.worker_busy_ns)
        )?;
        let qw = &self.admission.queue_wait;
        writeln!(
            f,
            "  admission: {}/{} queued, {} waiting; queue wait p50 {:.3} ms p99 {:.3} ms (n={})",
            self.admission.queued,
            self.admission.queue_limit,
            self.admission.waiting,
            ms(qw.p50),
            ms(qw.p99),
            qw.count
        )?;
        if let Some(cache) = &self.cache {
            writeln!(
                f,
                "  plan cache: {} hits, {} misses ({} compiles + {} fetches), {} evictions",
                cache.hits, cache.misses, cache.compiles, cache.fetches, cache.evictions
            )?;
        }
        if let Some(comm) = &self.comm {
            writeln!(
                f,
                "  comm: {} msgs / {} bytes sent, {} control frames",
                comm.messages_sent, comm.bytes_sent, comm.control_sent
            )?;
        }
        writeln!(
            f,
            "  recorder: {} spans retained, {} dropped",
            self.retained_spans, self.dropped_spans
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn consistent() -> ObsSnapshot {
        ObsSnapshot {
            cache: Some(CacheCounters {
                hits: 5,
                misses: 3,
                compiles: 2,
                fetches: 1,
                evictions: 0,
                collisions: 0,
                degraded_resolves: 0,
                lanes: vec![(5, 2), (0, 1), (0, 0)],
            }),
            comm: Some(CommCounters {
                messages_sent: 10,
                messages_received: 10,
                bytes_sent: 400,
                bytes_received: 400,
                control_sent: 4,
                control_received: 4,
            }),
            admission: AdmissionCounters {
                waiting: 0,
                queued: 0,
                queue_limit: 8,
                queue_wait: HistogramSnapshot { count: 8, sum: 800, p50: 63, p99: 255, max: 200 },
            },
            jobs: JobCounters { completed: 7, failed: 1, worker_busy_ns: 12345 },
            retained_spans: 42,
            dropped_spans: 0,
        }
    }

    #[test]
    fn consistent_snapshot_validates_clean() {
        let snap = consistent();
        assert_eq!(snap.validate(), Vec::<String>::new());
        let text = snap.to_string();
        assert!(text.contains("plan cache"));
        assert!(text.contains("7 completed"));
    }

    #[test]
    fn broken_cache_ledger_is_reported() {
        let mut snap = consistent();
        snap.cache.as_mut().unwrap().fetches = 0;
        let violations = snap.validate();
        assert_eq!(violations.len(), 1, "only the ledger breaks: {violations:?}");
        assert!(violations[0].contains("cache ledger broken"));
        // Dropping a lane's misses additionally breaks the lane sum.
        snap.cache.as_mut().unwrap().lanes[1].1 = 0;
        let violations = snap.validate();
        assert_eq!(violations.len(), 2, "ledger + lane mismatch: {violations:?}");
        assert!(violations[1].contains("family lanes lost misses"));
    }

    #[test]
    fn comm_imbalance_is_reported() {
        let mut snap = consistent();
        snap.comm.as_mut().unwrap().messages_received = 9;
        assert!(snap.validate().iter().any(|v| v.contains("message imbalance")));
    }

    #[test]
    fn queue_wait_sample_count_must_match_finished_jobs() {
        let mut snap = consistent();
        snap.jobs.completed = 99;
        assert!(snap.validate().iter().any(|v| v.contains("queue-wait samples")));
    }
}
