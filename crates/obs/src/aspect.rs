//! The instrumentation aspects: how observability is *woven*, not inserted.
//!
//! Per the paper's thesis, cross-cutting concerns attach at join points
//! instead of being hand-threaded through every call site.  Two aspect
//! modules cover the stack:
//!
//! - [`ObsServiceAspect`] advises the service-plane join points
//!   ([`names::SERVICE_EXECUTE`], [`names::CACHE_RESOLVE`],
//!   [`names::KERNEL_SPECIALIZE`],
//!   [`names::CLUSTER_PLAN_REQ`], [`names::CLUSTER_PLAN_REP`],
//!   [`names::CLUSTER_SUSPECT`], [`names::CLUSTER_FAILOVER`],
//!   [`names::CLUSTER_REJOIN`], [`names::CLUSTER_PARTITION`]).  One
//!   instance is woven into the service's own program at construction; the
//!   dispatch sites pass trace/parent ids as integer attributes, so this
//!   module needs no service types at all.
//! - [`ObsRunAspect`] advises the kernel-plane join points
//!   ([`names::KERNEL_STEP`], [`names::KERNEL_BLOCK`]) and is woven *per
//!   job* with the job's trace and root-span ids baked in, so spans emitted
//!   from rank/worker threads (which have no thread-local context) still
//!   parent correctly into the job tree.
//!
//! Both aspects use precedence 10 (outer), so their spans wrap any
//! domain advice (MPI/OMP modules) at shared join points.

use crate::trace::OpenSpan;
use crate::ObsHub;
use aohpc_aop::{attr, names, Advice, AdviceBinding, Aspect, Pointcut};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Aspect precedence for observability modules (outer position).
pub const OBS_PRECEDENCE: i32 = 10;

/// Service-plane instrumentation: job execution, plan resolution, and
/// cluster plan traffic.
pub struct ObsServiceAspect {
    hub: Arc<ObsHub>,
}

impl ObsServiceAspect {
    /// An aspect recording into `hub`.
    pub fn new(hub: Arc<ObsHub>) -> Self {
        ObsServiceAspect { hub }
    }
}

fn ctx_ids(ctx: &aohpc_aop::JoinPointCtx<'_>) -> (u64, u64) {
    let trace = ctx.attr(attr::TRACE).unwrap_or(0).max(0) as u64;
    let parent = ctx.attr(attr::PARENT).unwrap_or(0).max(0) as u64;
    (trace, parent)
}

impl Aspect for ObsServiceAspect {
    fn name(&self) -> &str {
        "obs-service"
    }

    fn precedence(&self) -> i32 {
        OBS_PRECEDENCE
    }

    fn bindings(&self) -> Vec<AdviceBinding> {
        let exec_hub = Arc::clone(&self.hub);
        let resolve_hub = Arc::clone(&self.hub);
        let req_hub = Arc::clone(&self.hub);
        let rep_hub = Arc::clone(&self.hub);
        let suspect_hub = Arc::clone(&self.hub);
        let failover_hub = Arc::clone(&self.hub);
        let rejoin_hub = Arc::clone(&self.hub);
        let partition_hub = Arc::clone(&self.hub);
        let spec_hub = Arc::clone(&self.hub);
        vec![
            AdviceBinding::new(
                Pointcut::execution(names::SERVICE_EXECUTE),
                Advice::around(move |ctx, proceed| {
                    let (trace, parent) = ctx_ids(ctx);
                    let open = exec_hub.recorder().start(names::SERVICE_EXECUTE, trace, parent);
                    proceed(ctx);
                    let family = ctx.attr(attr::FAMILY).unwrap_or(-1);
                    let job = ctx.attr(attr::JOB).unwrap_or(-1);
                    exec_hub
                        .metrics()
                        .execute_ns
                        .record(exec_hub.recorder().now_nanos().saturating_sub(open.start_ns));
                    exec_hub.recorder().end_with(open, family, job);
                }),
            ),
            AdviceBinding::new(
                Pointcut::call(names::CACHE_RESOLVE),
                Advice::around(move |ctx, proceed| {
                    let (trace, parent) = ctx_ids(ctx);
                    let open = resolve_hub.recorder().start(names::CACHE_RESOLVE, trace, parent);
                    proceed(ctx);
                    // The body publishes how the plan was obtained.
                    let origin = ctx.attr(attr::ORIGIN).unwrap_or(-1);
                    let family = ctx.attr(attr::FAMILY).unwrap_or(-1);
                    resolve_hub
                        .metrics()
                        .resolve_ns
                        .record(resolve_hub.recorder().now_nanos().saturating_sub(open.start_ns));
                    resolve_hub.recorder().end_with(open, origin, family);
                }),
            ),
            AdviceBinding::new(
                Pointcut::call(names::KERNEL_SPECIALIZE),
                Advice::around(move |ctx, proceed| {
                    // Specialization happens once per compile/cache insert,
                    // never per block: a span per verdict is cheap.
                    let (trace, parent) = ctx_ids(ctx);
                    let open = spec_hub.recorder().start(names::KERNEL_SPECIALIZE, trace, parent);
                    proceed(ctx);
                    let family = ctx.attr(attr::FAMILY).unwrap_or(-1);
                    let ok = ctx.attr(attr::OK).unwrap_or(0);
                    if ok == 1 {
                        spec_hub.metrics().specializations.inc();
                    }
                    spec_hub.recorder().end_with(open, family, ok);
                }),
            ),
            AdviceBinding::new(
                Pointcut::call(names::CLUSTER_PLAN_REQ),
                Advice::around(move |ctx, proceed| {
                    let (trace, parent) = ctx_ids(ctx);
                    let open = req_hub.recorder().start(names::CLUSTER_PLAN_REQ, trace, parent);
                    proceed(ctx);
                    let ok = ctx.attr(attr::OK).unwrap_or(0);
                    let node = ctx.attr(attr::NODE).unwrap_or(-1);
                    req_hub
                        .metrics()
                        .plan_fetch_ns
                        .record(req_hub.recorder().now_nanos().saturating_sub(open.start_ns));
                    req_hub.recorder().end_with(open, ok, node);
                }),
            ),
            AdviceBinding::new(
                Pointcut::execution(names::CLUSTER_PLAN_REP),
                Advice::around(move |ctx, proceed| {
                    // Serve side runs on a fabric thread with no job context;
                    // the span is a trace root keyed by the serving node.
                    let (trace, parent) = ctx_ids(ctx);
                    let open = rep_hub.recorder().start(names::CLUSTER_PLAN_REP, trace, parent);
                    proceed(ctx);
                    let ok = ctx.attr(attr::OK).unwrap_or(0);
                    let node = ctx.attr(attr::NODE).unwrap_or(-1);
                    rep_hub
                        .metrics()
                        .plan_serve_ns
                        .record(rep_hub.recorder().now_nanos().saturating_sub(open.start_ns));
                    rep_hub.recorder().end_with(open, node, ok);
                }),
            ),
            AdviceBinding::new(
                Pointcut::call(names::CLUSTER_SUSPECT),
                Advice::around(move |ctx, proceed| {
                    // Detector transitions run on fabric/pacemaker threads with
                    // no job context; the span is a trace root.
                    let (trace, parent) = ctx_ids(ctx);
                    let open = suspect_hub.recorder().start(names::CLUSTER_SUSPECT, trace, parent);
                    proceed(ctx);
                    let node = ctx.attr(attr::NODE).unwrap_or(-1);
                    let ok = ctx.attr(attr::OK).unwrap_or(-1);
                    suspect_hub.metrics().suspicions.inc();
                    suspect_hub.recorder().end_with(open, node, ok);
                }),
            ),
            AdviceBinding::new(
                Pointcut::execution(names::CLUSTER_FAILOVER),
                Advice::around(move |ctx, proceed| {
                    let (trace, parent) = ctx_ids(ctx);
                    let open =
                        failover_hub.recorder().start(names::CLUSTER_FAILOVER, trace, parent);
                    proceed(ctx);
                    let node = ctx.attr(attr::NODE).unwrap_or(-1);
                    let job = ctx.attr(attr::JOB).unwrap_or(-1);
                    failover_hub.metrics().failovers.inc();
                    failover_hub.recorder().end_with(open, node, job);
                }),
            ),
            AdviceBinding::new(
                Pointcut::call(names::CLUSTER_REJOIN),
                Advice::around(move |ctx, proceed| {
                    // Revivals run on fabric/supervisor threads with no job
                    // context; the span is a trace root.
                    let (trace, parent) = ctx_ids(ctx);
                    let open = rejoin_hub.recorder().start(names::CLUSTER_REJOIN, trace, parent);
                    proceed(ctx);
                    let node = ctx.attr(attr::NODE).unwrap_or(-1);
                    let step = ctx.attr(attr::STEP).unwrap_or(-1);
                    rejoin_hub.metrics().rejoins.inc();
                    rejoin_hub.recorder().end_with(open, node, step);
                }),
            ),
            AdviceBinding::new(
                Pointcut::call(names::CLUSTER_PARTITION),
                Advice::around(move |ctx, proceed| {
                    let (trace, parent) = ctx_ids(ctx);
                    let open =
                        partition_hub.recorder().start(names::CLUSTER_PARTITION, trace, parent);
                    proceed(ctx);
                    let node = ctx.attr(attr::NODE).unwrap_or(-1);
                    let ok = ctx.attr(attr::OK).unwrap_or(-1);
                    partition_hub.metrics().partitions.inc();
                    partition_hub.recorder().end_with(open, node, ok);
                }),
            ),
        ]
    }
}

type StepTable = Mutex<HashMap<i64, (OpenSpan, i64, i64)>>;

struct RunState {
    steps: StepTable,
}

/// Per-job kernel-plane instrumentation: superstep and block spans.
///
/// Constructed in the service's per-job weave with the job's trace and root
/// span ids; keep a [`RunFinisher`] (via [`ObsRunAspect::finisher`]) to close
/// the final step spans once the run returns.
pub struct ObsRunAspect {
    hub: Arc<ObsHub>,
    trace: u64,
    job_span: u64,
    state: Arc<RunState>,
}

impl ObsRunAspect {
    /// An aspect parenting all spans under (`trace`, `job_span`).
    pub fn new(hub: Arc<ObsHub>, trace: u64, job_span: u64) -> Self {
        ObsRunAspect {
            hub,
            trace,
            job_span,
            state: Arc::new(RunState { steps: Mutex::new(HashMap::new()) }),
        }
    }

    /// Handle for closing still-open step spans after the run completes.
    pub fn finisher(&self) -> RunFinisher {
        RunFinisher { hub: Arc::clone(&self.hub), state: Arc::clone(&self.state) }
    }
}

impl Aspect for ObsRunAspect {
    fn name(&self) -> &str {
        "obs-run"
    }

    fn precedence(&self) -> i32 {
        OBS_PRECEDENCE
    }

    fn bindings(&self) -> Vec<AdviceBinding> {
        let step_hub = Arc::clone(&self.hub);
        let step_state = Arc::clone(&self.state);
        let block_hub = Arc::clone(&self.hub);
        let block_state = Arc::clone(&self.state);
        let trace = self.trace;
        let job_span = self.job_span;
        vec![
            // KERNEL_STEP is dispatched as a marker before the sweep body, so
            // a step span runs marker-to-marker: before advice closes the
            // task's previous step span and opens the next one.
            AdviceBinding::new(
                Pointcut::execution(names::KERNEL_STEP),
                Advice::before(move |ctx| {
                    let task = ctx.attr(attr::TASK_ID).unwrap_or(0);
                    let step = ctx.attr(attr::STEP).unwrap_or(-1);
                    let warmup = ctx.attr(attr::WARMUP).unwrap_or(0);
                    let open = step_hub.recorder().start(names::KERNEL_STEP, trace, job_span);
                    let prev = step_state.steps.lock().insert(task, (open, step, warmup));
                    if let Some((prev_open, a, b)) = prev {
                        step_hub.recorder().end_with(prev_open, a, b);
                    }
                }),
            ),
            AdviceBinding::new(
                Pointcut::execution(names::KERNEL_BLOCK),
                Advice::around(move |ctx, proceed| {
                    let task = ctx.attr(attr::TASK_ID).unwrap_or(0);
                    let parent = block_state
                        .steps
                        .lock()
                        .get(&task)
                        .map(|(open, _, _)| open.span)
                        .unwrap_or(job_span);
                    let open = block_hub.recorder().start(names::KERNEL_BLOCK, trace, parent);
                    proceed(ctx);
                    let block = ctx.attr(attr::BLOCK).unwrap_or(-1);
                    let cells = ctx.attr(attr::CELLS).unwrap_or(0);
                    block_hub.recorder().end_with(open, block, cells);
                }),
            ),
        ]
    }
}

/// Closes step spans left open when a run finishes (the final step of every
/// task has no successor marker to close it).
pub struct RunFinisher {
    hub: Arc<ObsHub>,
    state: Arc<RunState>,
}

impl RunFinisher {
    /// End every still-open step span.
    pub fn finish(&self) {
        let drained: Vec<(OpenSpan, i64, i64)> =
            self.state.steps.lock().drain().map(|(_, v)| v).collect();
        for (open, a, b) in drained {
            self.hub.recorder().end_with(open, a, b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aohpc_aop::{JoinPointKind, Weaver};
    use aohpc_testalloc::sync::FakeClock;
    use std::time::Duration;

    fn hub() -> (Arc<FakeClock>, Arc<ObsHub>) {
        let clock = FakeClock::new();
        let hub = ObsHub::with_clock(clock.clone());
        (clock, hub)
    }

    #[test]
    fn run_aspect_builds_job_step_block_tree() {
        let (clock, hub) = hub();
        let trace = hub.recorder().next_trace_id();
        let job = hub.recorder().start("Service::job", trace, 0);
        let aspect = ObsRunAspect::new(Arc::clone(&hub), trace, job.span);
        let finisher = aspect.finisher();
        let woven = Weaver::new().with_aspect(Box::new(aspect)).weave();

        for step in 0..2i64 {
            let mut payload = ();
            woven.dispatch_with(
                names::KERNEL_STEP,
                JoinPointKind::Execution,
                &[(attr::TASK_ID, 0), (attr::STEP, step), (attr::WARMUP, 0)],
                &mut payload,
                &mut |_| {},
            );
            clock.advance(Duration::from_nanos(10));
            for block in 0..2i64 {
                let mut ran = false;
                woven.dispatch_with(
                    names::KERNEL_BLOCK,
                    JoinPointKind::Execution,
                    &[(attr::TASK_ID, 0), (attr::BLOCK, block), (attr::CELLS, 64)],
                    &mut ran,
                    &mut |ctx| {
                        clock.advance(Duration::from_nanos(5));
                        *ctx.payload_mut::<bool>().unwrap() = true;
                    },
                );
                assert!(ran, "instrumentation must not suppress the body");
            }
        }
        finisher.finish();
        hub.recorder().end(job);

        let spans = hub.recorder().spans();
        let steps: Vec<_> = spans.iter().filter(|s| s.name == names::KERNEL_STEP).collect();
        let blocks: Vec<_> = spans.iter().filter(|s| s.name == names::KERNEL_BLOCK).collect();
        assert_eq!(steps.len(), 2);
        assert_eq!(blocks.len(), 4);
        for s in &steps {
            assert_eq!(s.parent, job.span);
            assert_eq!(s.trace, trace);
        }
        for b in &blocks {
            assert!(steps.iter().any(|s| s.span == b.parent), "block parents a step span");
            assert_eq!(b.b, 64);
        }
        // First step span was closed by the second marker: it covers the
        // first step's blocks (10 + 2*5 ns).
        assert_eq!(steps[0].duration_ns(), 20);
    }

    #[test]
    fn service_aspect_reads_body_published_origin() {
        let (_clock, hub) = hub();
        let woven =
            Weaver::new().with_aspect(Box::new(ObsServiceAspect::new(Arc::clone(&hub)))).weave();
        let mut payload = ();
        woven.dispatch_with(
            names::CACHE_RESOLVE,
            JoinPointKind::Call,
            &[(attr::TRACE, 9), (attr::PARENT, 1), (attr::FAMILY, 2)],
            &mut payload,
            &mut |ctx| ctx.set_attr(attr::ORIGIN, 2),
        );
        let spans = hub.recorder().spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, names::CACHE_RESOLVE);
        assert_eq!(spans[0].trace, 9);
        assert_eq!(spans[0].parent, 1);
        assert_eq!(spans[0].a, 2, "origin published by the body");
        assert_eq!(hub.metrics().resolve_ns.count(), 1);
    }

    #[test]
    fn unrelated_join_points_stay_unadvised() {
        let (_clock, hub) = hub();
        let woven =
            Weaver::new().with_aspect(Box::new(ObsServiceAspect::new(Arc::clone(&hub)))).weave();
        assert_eq!(woven.matching_advice_count(names::REFRESH, JoinPointKind::Call), 0);
        assert_eq!(woven.matching_advice_count(names::KERNEL_STEP, JoinPointKind::Execution), 0);
        assert_eq!(
            woven.matching_advice_count(names::SERVICE_EXECUTE, JoinPointKind::Execution),
            1
        );
    }
}
