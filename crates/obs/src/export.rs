//! Exporters: Chrome `trace_event` JSON and JSON-lines dumps.
//!
//! Both formats are assembled by hand (the workspace's serde is a derive-only
//! shim — see `vendor/serde`), matching the `BENCH_*.json` writer idiom used
//! by the bench bins.
//!
//! [`chrome_trace_json`] produces the legacy `trace_event` array format
//! loadable in `chrome://tracing` and Perfetto: each finished span becomes a
//! complete (`"ph":"X"`) event, each instant event an `"i"` event.  The
//! *trace id* is mapped to the `pid` field so every job groups into its own
//! process row, with the recorder's thread index as `tid`; span/parent ids
//! ride in `args` so the job → superstep → block → fetch tree stays
//! reconstructible from the file alone.

use crate::trace::SpanRecord;

fn push_us(out: &mut String, ns: u64) {
    out.push_str(&(ns / 1000).to_string());
    out.push('.');
    let frac = ns % 1000;
    out.push((b'0' + (frac / 100) as u8) as char);
    out.push((b'0' + (frac / 10 % 10) as u8) as char);
    out.push((b'0' + (frac % 10) as u8) as char);
}

fn push_common(out: &mut String, span: &SpanRecord) {
    out.push_str("\"name\":\"");
    out.push_str(span.name);
    out.push_str("\",\"cat\":\"aohpc\",\"pid\":");
    out.push_str(&span.trace.to_string());
    out.push_str(",\"tid\":");
    out.push_str(&span.thread.to_string());
    out.push_str(",\"ts\":");
    push_us(out, span.start_ns);
    out.push_str(",\"args\":{\"trace\":");
    out.push_str(&span.trace.to_string());
    out.push_str(",\"span\":");
    out.push_str(&span.span.to_string());
    out.push_str(",\"parent\":");
    out.push_str(&span.parent.to_string());
    out.push_str(",\"a\":");
    out.push_str(&span.a.to_string());
    out.push_str(",\"b\":");
    out.push_str(&span.b.to_string());
    out.push('}');
}

/// Render spans as a Chrome `trace_event` JSON document.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(128 * spans.len() + 64);
    out.push_str("{\"traceEvents\":[");
    for (i, span) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        if span.end_ns > span.start_ns {
            out.push_str("\"ph\":\"X\",\"dur\":");
            push_us(&mut out, span.duration_ns());
            out.push(',');
        } else {
            out.push_str("\"ph\":\"i\",\"s\":\"t\",");
        }
        push_common(&mut out, span);
        out.push('}');
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Render spans as JSON lines (one object per span), cheap to grep and diff.
pub fn json_lines(spans: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(128 * spans.len());
    for span in spans {
        out.push_str("{\"trace\":");
        out.push_str(&span.trace.to_string());
        out.push_str(",\"span\":");
        out.push_str(&span.span.to_string());
        out.push_str(",\"parent\":");
        out.push_str(&span.parent.to_string());
        out.push_str(",\"name\":\"");
        out.push_str(span.name);
        out.push_str("\",\"start_ns\":");
        out.push_str(&span.start_ns.to_string());
        out.push_str(",\"end_ns\":");
        out.push_str(&span.end_ns.to_string());
        out.push_str(",\"thread\":");
        out.push_str(&span.thread.to_string());
        out.push_str(",\"a\":");
        out.push_str(&span.a.to_string());
        out.push_str(",\"b\":");
        out.push_str(&span.b.to_string());
        out.push_str("}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(span: u64, parent: u64, start: u64, end: u64) -> SpanRecord {
        SpanRecord {
            trace: 1,
            span,
            parent,
            name: "Kernel::execute_block",
            start_ns: start,
            end_ns: end,
            thread: 3,
            a: 7,
            b: 4096,
        }
    }

    #[test]
    fn chrome_trace_shape() {
        let json = chrome_trace_json(&[span(2, 1, 1500, 4750), span(3, 2, 4750, 4750)]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("],\"displayTimeUnit\":\"ms\"}"));
        // Complete event with µs timestamps (1500ns = 1.500µs, dur 3.250µs).
        assert!(json.contains("\"ph\":\"X\",\"dur\":3.250,"), "{json}");
        assert!(json.contains("\"ts\":1.500,"), "{json}");
        // Instant event for the zero-duration record.
        assert!(json.contains("\"ph\":\"i\",\"s\":\"t\""), "{json}");
        // Parent linkage rides in args.
        assert!(json.contains("\"span\":2,\"parent\":1"), "{json}");
        assert!(json.contains("\"pid\":1,"), "trace id must map to pid: {json}");
    }

    #[test]
    fn empty_trace_is_valid() {
        assert_eq!(chrome_trace_json(&[]), "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}");
    }

    #[test]
    fn json_lines_one_object_per_span() {
        let text = json_lines(&[span(2, 1, 10, 20), span(3, 2, 20, 30)]);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"trace\":1,\"span\":2,\"parent\":1,"));
        assert!(lines[1].contains("\"start_ns\":20,\"end_ns\":30"));
    }
}
