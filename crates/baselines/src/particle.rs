//! Handwritten bucketed particle method on flat arrays.

use crate::BaselineWork;
use aohpc_workloads::ParticleSize;

/// A particle of the handwritten baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BaselineParticle {
    /// Particle id.
    pub id: u32,
    /// Position.
    pub pos: [f64; 3],
    /// Velocity.
    pub vel: [f64; 3],
    /// Acceleration.
    pub acc: [f64; 3],
}

/// The handwritten Particle benchmark program.
#[derive(Debug, Clone)]
pub struct HandwrittenParticle {
    /// Number of particles.
    pub particles: ParticleSize,
    /// Buckets per side.
    pub buckets: usize,
    /// Particles placed per bucket at initialisation.
    pub fill_per_bucket: usize,
    /// Time step.
    pub dt: f64,
    /// Influence radius.
    pub radius: f64,
    /// Iterations.
    pub loops: usize,
}

impl HandwrittenParticle {
    /// Mirror the DSL system's sizing: half-full buckets on a square grid of
    /// buckets rounded up to a multiple of 8.
    pub fn new(particles: ParticleSize, loops: usize) -> Self {
        let fill = 8;
        let needed = particles.count.div_ceil(fill).max(1);
        let side = (needed as f64).sqrt().ceil() as usize;
        let side = side.div_ceil(8) * 8;
        HandwrittenParticle {
            particles,
            buckets: side,
            fill_per_bucket: fill,
            dt: 1e-3,
            radius: 1.0,
            loops,
        }
    }

    fn offset(k: usize) -> (f64, f64) {
        let fx = ((k * 7 + 3) % 16) as f64 / 16.0;
        let fy = ((k * 11 + 5) % 16) as f64 / 16.0;
        (0.05 + 0.9 * fx, 0.05 + 0.9 * fy)
    }

    fn weight(&self, dist: f64) -> f64 {
        if dist >= self.radius || dist <= 1e-9 {
            0.0
        } else {
            let x = 1.0 - dist / self.radius;
            x * x
        }
    }

    /// Run the benchmark; returns per-bucket summed speeds (row-major) and a
    /// work summary.
    pub fn run(&self) -> (Vec<f64>, BaselineWork) {
        let nb = self.buckets;
        let mut buckets: Vec<Vec<BaselineParticle>> = vec![Vec::new(); nb * nb];
        for (bi, bucket) in buckets.iter_mut().enumerate() {
            let (bx, by) = ((bi % nb) as f64, (bi / nb) as f64);
            for k in 0..self.fill_per_bucket {
                let id = bi * self.fill_per_bucket + k;
                if id >= self.particles.count {
                    break;
                }
                let (ox, oy) = Self::offset(k);
                bucket.push(BaselineParticle {
                    id: id as u32,
                    pos: [bx + ox, by + oy, 0.5],
                    vel: [0.0; 3],
                    acc: [0.0; 3],
                });
            }
        }

        let mut work = BaselineWork::default();
        let wall = |x: f64, y: f64| -> Vec<BaselineParticle> {
            (0..4)
                .map(|k| BaselineParticle {
                    id: u32::MAX,
                    pos: [x + 0.25 + 0.5 * (k % 2) as f64, y + 0.25 + 0.5 * (k / 2) as f64, 0.5],
                    ..Default::default()
                })
                .collect()
        };

        for _ in 0..self.loops {
            let snapshot = buckets.clone();
            for bj in 0..nb as i64 {
                for bi in 0..nb as i64 {
                    let idx = (bj * nb as i64 + bi) as usize;
                    for p_idx in 0..buckets[idx].len() {
                        let p = snapshot[idx][p_idx];
                        let mut force = [0.0f64; 3];
                        for dj in -1..=1i64 {
                            for di in -1..=1i64 {
                                let (ni, njj) = (bi + di, bj + dj);
                                let neighbours: Vec<BaselineParticle> =
                                    if ni < 0 || njj < 0 || ni >= nb as i64 || njj >= nb as i64 {
                                        wall(ni as f64, njj as f64)
                                    } else {
                                        snapshot[(njj * nb as i64 + ni) as usize].clone()
                                    };
                                for q in &neighbours {
                                    if q.id == p.id {
                                        continue;
                                    }
                                    work.reads += 1;
                                    let dx = p.pos[0] - q.pos[0];
                                    let dy = p.pos[1] - q.pos[1];
                                    let dz = p.pos[2] - q.pos[2];
                                    let dist = (dx * dx + dy * dy + dz * dz).sqrt();
                                    let w = self.weight(dist);
                                    if w > 0.0 {
                                        force[0] += w * dx / dist;
                                        force[1] += w * dy / dist;
                                        force[2] += w * dz / dist;
                                    }
                                }
                            }
                        }
                        let p = &mut buckets[idx][p_idx];
                        p.acc = force;
                        for d in 0..3 {
                            p.vel[d] += p.acc[d] * self.dt;
                            p.pos[d] += p.vel[d] * self.dt;
                        }
                        work.updates += 1;
                    }
                }
            }
            work.steps += 1;
        }

        let speeds = buckets
            .iter()
            .map(|b| {
                b.iter()
                    .map(|p| (p.vel[0].powi(2) + p.vel[1].powi(2) + p.vel[2].powi(2)).sqrt())
                    .sum()
            })
            .collect();
        (speeds, work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn particles_gain_speed_from_interactions() {
        let (speeds, work) = HandwrittenParticle::new(ParticleSize::new(256), 3).run();
        assert!(speeds.iter().sum::<f64>() > 0.0);
        assert_eq!(work.steps, 3);
        assert!(work.updates >= 3 * 256);
    }

    #[test]
    fn sizing_rounds_to_blocks_of_buckets() {
        let h = HandwrittenParticle::new(ParticleSize::new(1 << 12), 1);
        assert_eq!(h.buckets % 8, 0);
        assert!(h.buckets * h.buckets * h.fill_per_bucket >= 1 << 12);
    }
}
