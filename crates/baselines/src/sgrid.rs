//! Handwritten structured-grid Jacobi (Listing 2).

use crate::BaselineWork;
use aohpc_workloads::RegionSize;

/// A double-buffered dense 2-D array wrapper (the `mem` object of Listing 2).
#[derive(Debug, Clone)]
pub struct DoubleBufferedGrid {
    nx: i64,
    ny: i64,
    read: Vec<f64>,
    write: Vec<f64>,
    boundary: f64,
}

impl DoubleBufferedGrid {
    /// Create a zeroed grid.
    pub fn new(region: RegionSize, boundary: f64) -> Self {
        DoubleBufferedGrid {
            nx: region.nx as i64,
            ny: region.ny as i64,
            read: vec![0.0; region.cells()],
            write: vec![0.0; region.cells()],
            boundary,
        }
    }

    /// Read with the boundary condition applied outside the region.
    #[inline]
    pub fn get(&self, x: i64, y: i64) -> f64 {
        if x < 0 || y < 0 || x >= self.nx || y >= self.ny {
            self.boundary
        } else {
            self.read[(y * self.nx + x) as usize]
        }
    }

    /// Write into the write buffer.
    #[inline]
    pub fn set(&mut self, x: i64, y: i64, v: f64) {
        self.write[(y * self.nx + x) as usize] = v;
    }

    /// Write into the read buffer (initialisation).
    pub fn set_initial(&mut self, x: i64, y: i64, v: f64) {
        self.read[(y * self.nx + x) as usize] = v;
    }

    /// Exchange the buffers.
    pub fn refresh(&mut self) {
        std::mem::swap(&mut self.read, &mut self.write);
    }

    /// The current (read) field in row-major order.
    pub fn field(&self) -> &[f64] {
        &self.read
    }

    /// Approximate heap bytes held.
    pub fn bytes(&self) -> usize {
        (self.read.capacity() + self.write.capacity()) * std::mem::size_of::<f64>()
    }
}

/// The handwritten SGrid benchmark program.
#[derive(Debug, Clone)]
pub struct HandwrittenSGrid {
    /// Region size.
    pub region: RegionSize,
    /// Centre weight.
    pub alpha: f64,
    /// Neighbour weight.
    pub beta: f64,
    /// Iterations.
    pub loops: usize,
    /// Initial-value function shared with the platform app.
    pub init: fn(i64, i64) -> f64,
}

impl HandwrittenSGrid {
    /// Same coefficients and initial condition as the DSL sample app.
    pub fn new(region: RegionSize, loops: usize, init: fn(i64, i64) -> f64) -> Self {
        HandwrittenSGrid { region, alpha: 0.5, beta: 0.125, loops, init }
    }

    /// Run the benchmark; returns the final field and a work summary.
    pub fn run(&self) -> (DoubleBufferedGrid, BaselineWork) {
        let mut mem = DoubleBufferedGrid::new(self.region, 0.0);
        let (nx, ny) = (self.region.nx as i64, self.region.ny as i64);
        for y in 0..ny {
            for x in 0..nx {
                mem.set_initial(x, y, (self.init)(x, y));
            }
        }
        let mut work = BaselineWork::default();
        for _ in 0..self.loops {
            for y in 0..ny {
                for x in 0..nx {
                    let v1 = self.alpha * mem.get(x, y);
                    let v2 = self.beta
                        * (mem.get(x - 1, y)
                            + mem.get(x + 1, y)
                            + mem.get(x, y - 1)
                            + mem.get(x, y + 1));
                    mem.set(x, y, v1 + v2);
                    work.updates += 1;
                    work.reads += 5;
                }
            }
            mem.refresh();
            work.steps += 1;
        }
        (mem, work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn init(x: i64, y: i64) -> f64 {
        ((x * 13 + y * 7) % 97) as f64 / 97.0
    }

    #[test]
    fn converges_towards_boundary_value() {
        // With a zero Dirichlet boundary, repeated relaxation decays the field.
        let before = HandwrittenSGrid::new(RegionSize::square(16), 0, init).run().0;
        let after = HandwrittenSGrid::new(RegionSize::square(16), 50, init).run().0;
        let sum = |g: &DoubleBufferedGrid| g.field().iter().sum::<f64>();
        assert!(sum(&after).abs() < sum(&before).abs());
    }

    #[test]
    fn work_accounting() {
        let (_, work) = HandwrittenSGrid::new(RegionSize::square(8), 3, init).run();
        assert_eq!(work.steps, 3);
        assert_eq!(work.updates, 3 * 64);
        assert_eq!(work.reads, 3 * 64 * 5);
    }

    #[test]
    fn buffers_swap_on_refresh() {
        let mut g = DoubleBufferedGrid::new(RegionSize::square(4), 9.0);
        g.set(1, 1, 5.0);
        assert_eq!(g.get(1, 1), 0.0);
        g.refresh();
        assert_eq!(g.get(1, 1), 5.0);
        assert_eq!(g.get(-1, 0), 9.0, "boundary value outside the region");
        assert!(g.bytes() >= 2 * 16 * 8);
    }
}
