//! # aohpc-baselines — the paper's "Handwritten" reference programs
//!
//! The evaluation compares every platform configuration against simple
//! handwritten serial codes with double buffering and no MPI / OpenMP / SIMD
//! (Listing 2).  This crate reproduces those three programs:
//!
//! * [`sgrid::HandwrittenSGrid`] — 5-point Jacobi on a dense array;
//! * [`usgrid::HandwrittenUsGrid`] — the same arithmetic through explicit
//!   neighbour-index indirection, with the CaseC / CaseR layouts;
//! * [`particle::HandwrittenParticle`] — bucketed short-range force
//!   integration on flat arrays.
//!
//! They share the initial conditions and coefficients of the DSL sample
//! applications, so platform runs and handwritten runs can be compared
//! value-for-value in tests and normalised against each other in the Fig. 6
//! harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod particle;
pub mod sgrid;
pub mod usgrid;

pub use particle::HandwrittenParticle;
pub use sgrid::HandwrittenSGrid;
pub use usgrid::HandwrittenUsGrid;

/// Work summary of a handwritten run, used by the cost model to place the
/// baseline on the same simulated-time axis as platform runs.
#[derive(Debug, Clone, Copy, Default)]
pub struct BaselineWork {
    /// Cell (or particle) updates performed.
    pub updates: u64,
    /// Neighbour reads performed.
    pub reads: u64,
    /// Steps executed.
    pub steps: u64,
}
