//! Handwritten unstructured-grid Jacobi: the same arithmetic as the
//! structured grid, but every point reads its neighbours through an explicit
//! index list, stored in CaseC (consecutive) or CaseR (scattered) order.

use crate::BaselineWork;
use aohpc_workloads::{GridLayout, RegionSize};

/// The handwritten USGrid benchmark program.
#[derive(Debug, Clone)]
pub struct HandwrittenUsGrid {
    /// Region size (logical points).
    pub region: RegionSize,
    /// Memory layout.
    pub layout: GridLayout,
    /// Centre weight.
    pub alpha: f64,
    /// Neighbour weight.
    pub beta: f64,
    /// Iterations.
    pub loops: usize,
    /// Initial-value function of the logical position.
    pub init: fn(i64, i64) -> f64,
}

/// One point of the flattened unstructured grid.
#[derive(Debug, Clone, Copy, Default)]
struct Point {
    value: f64,
    /// Indices of the four neighbours in the storage array; `usize::MAX`
    /// denotes the out-of-domain value.
    neighbors: [usize; 4],
}

impl HandwrittenUsGrid {
    /// Same coefficients and initial condition as the DSL sample app.
    pub fn new(
        region: RegionSize,
        layout: GridLayout,
        loops: usize,
        init: fn(i64, i64) -> f64,
    ) -> Self {
        HandwrittenUsGrid { region, layout, alpha: 0.5, beta: 0.125, loops, init }
    }

    fn storage_index(&self, x: i64, y: i64) -> usize {
        let (sx, sy) = self.layout.storage_of(x, y, self.region.nx as i64, self.region.ny as i64);
        (sy * self.region.nx as i64 + sx) as usize
    }

    /// Run the benchmark; returns the final field in *logical* row-major
    /// order and a work summary.
    pub fn run(&self) -> (Vec<f64>, BaselineWork) {
        let (nx, ny) = (self.region.nx as i64, self.region.ny as i64);
        let cells = self.region.cells();
        let mut read = vec![Point::default(); cells];
        // Build points at their storage positions with neighbour indices.
        for y in 0..ny {
            for x in 0..nx {
                let idx = self.storage_index(x, y);
                let mut neighbors = [usize::MAX; 4];
                for (k, (dx, dy)) in [(0, -1), (-1, 0), (1, 0), (0, 1)].into_iter().enumerate() {
                    let (xx, yy) = (x + dx, y + dy);
                    if xx >= 0 && yy >= 0 && xx < nx && yy < ny {
                        neighbors[k] = self.storage_index(xx, yy);
                    }
                }
                read[idx] = Point { value: (self.init)(x, y), neighbors };
            }
        }
        let mut write = read.clone();
        let mut work = BaselineWork::default();
        for _ in 0..self.loops {
            for idx in 0..cells {
                let p = read[idx];
                let mut sum = 0.0;
                for n in p.neighbors {
                    sum += if n == usize::MAX { 0.0 } else { read[n].value };
                    work.reads += 1;
                }
                write[idx].value = self.alpha * p.value + self.beta * sum;
                work.updates += 1;
            }
            std::mem::swap(&mut read, &mut write);
            work.steps += 1;
        }
        // Gather back into logical order.
        let mut logical = vec![0.0; cells];
        for y in 0..ny {
            for x in 0..nx {
                logical[(y * nx + x) as usize] = read[self.storage_index(x, y)].value;
            }
        }
        (logical, work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sgrid::HandwrittenSGrid;

    fn init(x: i64, y: i64) -> f64 {
        ((x * 13 + y * 7) % 97) as f64 / 97.0
    }

    #[test]
    fn casec_matches_structured_grid() {
        let region = RegionSize::square(20);
        let (us, _) = HandwrittenUsGrid::new(region, GridLayout::CaseC, 5, init).run();
        let (sg, _) = HandwrittenSGrid::new(region, 5, init).run();
        for (a, b) in us.iter().zip(sg.field()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn caser_computes_the_same_values_in_scattered_memory() {
        let region = RegionSize::square(20);
        let (case_c, _) = HandwrittenUsGrid::new(region, GridLayout::CaseC, 5, init).run();
        let (case_r, _) =
            HandwrittenUsGrid::new(region, GridLayout::CaseR { seed: 9 }, 5, init).run();
        for (a, b) in case_c.iter().zip(case_r.iter()) {
            assert!((a - b).abs() < 1e-12, "layout must not change the mathematics");
        }
    }

    #[test]
    fn work_accounting() {
        let (_, work) =
            HandwrittenUsGrid::new(RegionSize::square(8), GridLayout::CaseC, 2, init).run();
        assert_eq!(work.steps, 2);
        assert_eq!(work.updates, 2 * 64);
        assert_eq!(work.reads, 2 * 64 * 4);
    }
}
