//! Advice: the code an aspect contributes at a join point.
//!
//! The platform supports the three insertion modes of the JoinPoint Model the
//! paper relies on: *before*, *after* and *around* (replacing the original
//! body, with the ability to `proceed()` to it).

use crate::join_point::JoinPointCtx;
use std::fmt;
use std::sync::Arc;

/// The kind of an advice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AdviceKind {
    /// Runs before the original body.
    Before,
    /// Runs after the original body.
    After,
    /// Wraps the original body; decides whether/when to `proceed()`.
    Around,
}

impl fmt::Display for AdviceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdviceKind::Before => write!(f, "before"),
            AdviceKind::After => write!(f, "after"),
            AdviceKind::Around => write!(f, "around"),
        }
    }
}

/// Signature of a before/after advice body.
pub type SimpleAdviceFn = Arc<dyn Fn(&mut JoinPointCtx<'_>) + Send + Sync>;

/// Signature of an around advice body.  The second argument is `proceed`:
/// invoking it runs the next advice in the chain (or the original body).
pub type AroundAdviceFn =
    Arc<dyn Fn(&mut JoinPointCtx<'_>, &mut dyn FnMut(&mut JoinPointCtx<'_>)) + Send + Sync>;

/// A single advice, ready to be bound to a pointcut.
#[derive(Clone)]
pub enum Advice {
    /// Advice executed before the intercepted operation.
    Before(SimpleAdviceFn),
    /// Advice executed after the intercepted operation.
    After(SimpleAdviceFn),
    /// Advice wrapped around the intercepted operation.
    Around(AroundAdviceFn),
}

impl Advice {
    /// Construct a before advice from a closure.
    pub fn before<F>(f: F) -> Self
    where
        F: Fn(&mut JoinPointCtx<'_>) + Send + Sync + 'static,
    {
        Advice::Before(Arc::new(f))
    }

    /// Construct an after advice from a closure.
    pub fn after<F>(f: F) -> Self
    where
        F: Fn(&mut JoinPointCtx<'_>) + Send + Sync + 'static,
    {
        Advice::After(Arc::new(f))
    }

    /// Construct an around advice from a closure.
    pub fn around<F>(f: F) -> Self
    where
        F: Fn(&mut JoinPointCtx<'_>, &mut dyn FnMut(&mut JoinPointCtx<'_>)) + Send + Sync + 'static,
    {
        Advice::Around(Arc::new(f))
    }

    /// The kind of this advice.
    pub fn kind(&self) -> AdviceKind {
        match self {
            Advice::Before(_) => AdviceKind::Before,
            Advice::After(_) => AdviceKind::After,
            Advice::Around(_) => AdviceKind::Around,
        }
    }
}

impl fmt::Debug for Advice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Advice::{}", self.kind())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join_point::JoinPointKind;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc as StdArc;

    #[test]
    fn advice_kind_reported() {
        assert_eq!(Advice::before(|_| {}).kind(), AdviceKind::Before);
        assert_eq!(Advice::after(|_| {}).kind(), AdviceKind::After);
        assert_eq!(Advice::around(|_, _| {}).kind(), AdviceKind::Around);
        assert_eq!(format!("{:?}", Advice::before(|_| {})), "Advice::before");
    }

    #[test]
    fn before_advice_runs_against_ctx() {
        let counter = StdArc::new(AtomicUsize::new(0));
        let c2 = counter.clone();
        let advice = Advice::before(move |ctx| {
            c2.fetch_add(ctx.attr("task_id").unwrap_or(0) as usize, Ordering::SeqCst);
        });
        let mut payload = ();
        let mut ctx = JoinPointCtx::new("X::y", JoinPointKind::Execution, &mut payload)
            .with_attr("task_id", 5);
        if let Advice::Before(f) = &advice {
            f(&mut ctx);
        }
        assert_eq!(counter.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn around_advice_can_skip_proceed() {
        let advice = Advice::around(|_ctx, _proceed| {
            // intentionally do not proceed
        });
        let mut ran = false;
        let mut payload = ();
        let mut ctx = JoinPointCtx::new("X::y", JoinPointKind::Execution, &mut payload);
        if let Advice::Around(f) = &advice {
            let mut proceed = |_: &mut JoinPointCtx<'_>| {
                ran = true;
            };
            f(&mut ctx, &mut proceed);
        }
        assert!(!ran, "around advice that never proceeds must skip the body");
    }
}
