//! The weaver: matches aspects against join points and drives advice chains.
//!
//! [`Weaver`] collects aspect modules (the "transcompile with the AC++
//! compiler" step of the paper); [`Weaver::weave`] produces a
//! [`WovenProgram`], the runtime analogue of the parallelised C++ source: a
//! compiled table of pointcut→advice bindings plus dispatch machinery.
//!
//! Dispatch semantics (matching AspectC++):
//!
//! 1. all matching *before* advice runs, outer aspects first;
//! 2. all matching *around* advice wraps the body, outer aspects outermost;
//!    an around advice may call `proceed` zero, one or several times (the
//!    OpenMP-like module uses several — once per worker task);
//! 3. the original body runs when the innermost `proceed` is reached (or
//!    directly, if no around advice matched);
//! 4. all matching *after* advice runs, inner aspects first (reverse order).

use crate::advice::{Advice, AroundAdviceFn, SimpleAdviceFn};
use crate::aspect::Aspect;
use crate::join_point::{JoinPointCtx, JoinPointKind, JoinPointStats};
use crate::names::ALL_JOIN_POINTS;
use crate::pointcut::Pointcut;
use std::any::Any;
use std::fmt;
use std::sync::Arc;

/// Collects aspect modules prior to weaving.
#[derive(Default)]
pub struct Weaver {
    aspects: Vec<Box<dyn Aspect>>,
}

impl Weaver {
    /// An empty weaver ("Platform NOP" when woven without aspects).
    pub fn new() -> Self {
        Weaver { aspects: Vec::new() }
    }

    /// Register an aspect module.
    pub fn add_aspect(&mut self, aspect: Box<dyn Aspect>) -> &mut Self {
        self.aspects.push(aspect);
        self
    }

    /// Builder-style variant of [`Weaver::add_aspect`].
    pub fn with_aspect(mut self, aspect: Box<dyn Aspect>) -> Self {
        self.aspects.push(aspect);
        self
    }

    /// Number of registered aspects.
    pub fn aspect_count(&self) -> usize {
        self.aspects.len()
    }

    /// Produce the woven program: resolve precedences and freeze the binding
    /// table.
    pub fn weave(&self) -> WovenProgram {
        let mut entries: Vec<BindingEntry> = Vec::new();
        let mut order: Vec<(i32, usize)> =
            self.aspects.iter().enumerate().map(|(i, a)| (a.precedence(), i)).collect();
        // Stable sort: same precedence keeps registration order.
        order.sort_by_key(|(p, _)| *p);
        for (rank, (_, idx)) in order.iter().enumerate() {
            let aspect = &self.aspects[*idx];
            for (binding_idx, binding) in aspect.bindings().into_iter().enumerate() {
                entries.push(BindingEntry {
                    aspect_name: aspect.name().to_string(),
                    aspect_rank: rank,
                    binding_idx,
                    pointcut: binding.pointcut,
                    advice: binding.advice,
                });
            }
        }
        WovenProgram { entries: Arc::new(entries), stats: Arc::new(JoinPointStats::new()) }
    }
}

impl fmt::Debug for Weaver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self.aspects.iter().map(|a| a.name()).collect();
        f.debug_struct("Weaver").field("aspects", &names).finish()
    }
}

struct BindingEntry {
    aspect_name: String,
    aspect_rank: usize,
    binding_idx: usize,
    pointcut: Pointcut,
    advice: Advice,
}

/// The result of weaving: a dispatchable program configuration.
///
/// Cloning is cheap (shared binding table and statistics), so each task of a
/// parallel run can hold its own handle.
#[derive(Clone)]
pub struct WovenProgram {
    entries: Arc<Vec<BindingEntry>>,
    stats: Arc<JoinPointStats>,
}

impl WovenProgram {
    /// A program woven with no aspects at all (every dispatch just runs its
    /// body).  Equivalent to `Weaver::new().weave()`.
    pub fn unwoven() -> Self {
        Weaver::new().weave()
    }

    /// Dispatch a join point: run matching advice around `body`.
    ///
    /// `payload` carries the operation-specific data documented per join
    /// point; `attrs` carries integer attributes such as the task id.
    pub fn dispatch_with(
        &self,
        name: &str,
        kind: JoinPointKind,
        attrs: &[(&'static str, i64)],
        payload: &mut dyn Any,
        body: &mut dyn FnMut(&mut JoinPointCtx<'_>),
    ) {
        let mut ctx = JoinPointCtx::new(name, kind, payload);
        for (k, v) in attrs {
            ctx.set_attr(k, *v);
        }

        let mut befores: Vec<&SimpleAdviceFn> = Vec::new();
        let mut arounds: Vec<&AroundAdviceFn> = Vec::new();
        let mut afters: Vec<&SimpleAdviceFn> = Vec::new();
        for entry in self.entries.iter() {
            if entry.pointcut.matches(name, kind) {
                match &entry.advice {
                    Advice::Before(f) => befores.push(f),
                    Advice::Around(f) => arounds.push(f),
                    Advice::After(f) => afters.push(f),
                }
            }
        }
        let advised = !(befores.is_empty() && arounds.is_empty() && afters.is_empty());
        self.stats.record_dispatch(advised);
        self.stats.record_advice((befores.len() + arounds.len() + afters.len()) as u64);

        for f in &befores {
            f(&mut ctx);
        }
        run_around_chain(&arounds, &mut ctx, body);
        for f in afters.iter().rev() {
            f(&mut ctx);
        }
    }

    /// Convenience wrapper over [`WovenProgram::dispatch_with`] without
    /// attributes.
    pub fn dispatch(
        &self,
        name: &str,
        kind: JoinPointKind,
        payload: &mut dyn Any,
        mut body: impl FnMut(&mut JoinPointCtx<'_>),
    ) {
        self.dispatch_with(name, kind, &[], payload, &mut body)
    }

    /// Dispatch statistics accumulated so far.
    pub fn stats(&self) -> &JoinPointStats {
        &self.stats
    }

    /// Number of advice bindings that would fire for the given join point.
    pub fn matching_advice_count(&self, name: &str, kind: JoinPointKind) -> usize {
        self.entries.iter().filter(|e| e.pointcut.matches(name, kind)).count()
    }

    /// Build a human-readable weave report over the platform's canonical join
    /// points — the analogue of AspectC++'s weave log, used by tests and by
    /// `DESIGN.md`-style documentation output.
    pub fn report(&self) -> WeaveReport {
        let mut lines = Vec::new();
        for name in ALL_JOIN_POINTS {
            for kind in [JoinPointKind::Call, JoinPointKind::Execution] {
                for entry in self.entries.iter() {
                    if entry.pointcut.matches(name, kind) {
                        lines.push(WeaveReportLine {
                            join_point: (*name).to_string(),
                            kind,
                            aspect: entry.aspect_name.clone(),
                            advice_kind: entry.advice.kind(),
                            aspect_rank: entry.aspect_rank,
                            binding_idx: entry.binding_idx,
                        });
                    }
                }
            }
        }
        WeaveReport { lines }
    }
}

impl fmt::Debug for WovenProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WovenProgram").field("bindings", &self.entries.len()).finish()
    }
}

fn run_around_chain(
    arounds: &[&AroundAdviceFn],
    ctx: &mut JoinPointCtx<'_>,
    body: &mut dyn FnMut(&mut JoinPointCtx<'_>),
) {
    match arounds.split_first() {
        None => {
            body(ctx);
            ctx.mark_proceeded();
        }
        Some((outer, rest)) => {
            // `proceed` runs the rest of the chain (and eventually the body).
            let mut proceed = |inner_ctx: &mut JoinPointCtx<'_>| {
                run_around_chain(rest, inner_ctx, body);
            };
            outer(ctx, &mut proceed);
        }
    }
}

/// One line of the weave report: which advice applies to which join point.
#[derive(Debug, Clone)]
pub struct WeaveReportLine {
    /// Join point name.
    pub join_point: String,
    /// Join point kind.
    pub kind: JoinPointKind,
    /// Contributing aspect module.
    pub aspect: String,
    /// before / after / around.
    pub advice_kind: crate::advice::AdviceKind,
    /// Position of the aspect in precedence order (0 = outermost).
    pub aspect_rank: usize,
    /// Position of the binding within its aspect.
    pub binding_idx: usize,
}

/// A complete weave report.
#[derive(Debug, Clone, Default)]
pub struct WeaveReport {
    /// All matched (join point, advice) pairs.
    pub lines: Vec<WeaveReportLine>,
}

impl WeaveReport {
    /// Names of aspects that advise at least one join point.
    pub fn active_aspects(&self) -> Vec<String> {
        let mut names: Vec<String> = self.lines.iter().map(|l| l.aspect.clone()).collect();
        names.sort();
        names.dedup();
        names
    }

    /// Number of advised (join point, kind) pairs.
    pub fn advised_join_points(&self) -> usize {
        let mut set: Vec<(String, JoinPointKind)> =
            self.lines.iter().map(|l| (l.join_point.clone(), l.kind)).collect();
        set.sort();
        set.dedup();
        set.len()
    }
}

impl fmt::Display for WeaveReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "weave report ({} matched bindings):", self.lines.len())?;
        for line in &self.lines {
            writeln!(
                f,
                "  {}({}) <- {} advice from aspect '{}'",
                line.kind, line.join_point, line.advice_kind, line.aspect
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aspect::ClosureAspect;
    use crate::names;
    use parking_lot::Mutex;
    use std::sync::Arc as StdArc;

    fn trace_aspect(name: &str, precedence: i32, log: StdArc<Mutex<Vec<String>>>) -> ClosureAspect {
        let l1 = log.clone();
        let l2 = log.clone();
        let l3 = log;
        let n1 = name.to_string();
        let n2 = name.to_string();
        let n3 = name.to_string();
        ClosureAspect::new(name)
            .with_precedence(precedence)
            .with_binding(
                Pointcut::execution("Annotation::Processing"),
                Advice::before(move |_| l1.lock().push(format!("{n1}:before"))),
            )
            .with_binding(
                Pointcut::execution("Annotation::Processing"),
                Advice::around(move |ctx, proceed| {
                    l2.lock().push(format!("{n2}:around-in"));
                    proceed(ctx);
                    l2.lock().push(format!("{n2}:around-out"));
                }),
            )
            .with_binding(
                Pointcut::execution("Annotation::Processing"),
                Advice::after(move |_| l3.lock().push(format!("{n3}:after"))),
            )
    }

    #[test]
    fn empty_weaver_runs_body_directly() {
        let woven = WovenProgram::unwoven();
        let mut payload = 0u32;
        woven.dispatch(names::PROCESSING, JoinPointKind::Execution, &mut payload, |ctx| {
            *ctx.payload_mut::<u32>().unwrap() += 1;
        });
        assert_eq!(payload, 1);
        assert_eq!(woven.stats().dispatches(), 1);
        assert_eq!(woven.stats().advised_dispatches(), 0);
    }

    #[test]
    fn advice_ordering_follows_precedence() {
        let log = StdArc::new(Mutex::new(Vec::new()));
        let mut weaver = Weaver::new();
        // Registered in the "wrong" order; precedence must fix it.
        weaver.add_aspect(Box::new(trace_aspect("inner", 20, log.clone())));
        weaver.add_aspect(Box::new(trace_aspect("outer", 10, log.clone())));
        let woven = weaver.weave();

        let mut payload = ();
        woven.dispatch(names::PROCESSING, JoinPointKind::Execution, &mut payload, |_| {
            log.lock().push("body".to_string());
        });

        let got = log.lock().clone();
        assert_eq!(
            got,
            vec![
                "outer:before",
                "inner:before",
                "outer:around-in",
                "inner:around-in",
                "body",
                "inner:around-out",
                "outer:around-out",
                "inner:after",
                "outer:after",
            ]
        );
    }

    #[test]
    fn around_advice_may_proceed_multiple_times() {
        let aspect = ClosureAspect::new("fanout").with_binding(
            Pointcut::execution("Annotation::Processing"),
            Advice::around(|ctx, proceed| {
                proceed(ctx);
                proceed(ctx);
                proceed(ctx);
            }),
        );
        let woven = Weaver::new().with_aspect(Box::new(aspect)).weave();
        let mut payload = 0usize;
        woven.dispatch(names::PROCESSING, JoinPointKind::Execution, &mut payload, |ctx| {
            *ctx.payload_mut::<usize>().unwrap() += 1;
        });
        assert_eq!(payload, 3);
    }

    #[test]
    fn around_advice_may_suppress_the_body() {
        let aspect = ClosureAspect::new("suppress").with_binding(
            Pointcut::call("Memory::refresh"),
            Advice::around(|_ctx, _proceed| { /* never proceeds */ }),
        );
        let woven = Weaver::new().with_aspect(Box::new(aspect)).weave();
        let mut payload = false;
        woven.dispatch(names::REFRESH, JoinPointKind::Call, &mut payload, |ctx| {
            *ctx.payload_mut::<bool>().unwrap() = true;
        });
        assert!(!payload);
    }

    #[test]
    fn non_matching_kind_is_not_advised() {
        let aspect = ClosureAspect::new("call-only")
            .with_binding(Pointcut::call("Memory::refresh"), Advice::before(|_| panic!("no")));
        let woven = Weaver::new().with_aspect(Box::new(aspect)).weave();
        let mut payload = ();
        // Execution kind: the call() pointcut must not fire.
        woven.dispatch(names::REFRESH, JoinPointKind::Execution, &mut payload, |_| {});
        assert_eq!(woven.stats().advised_dispatches(), 0);
    }

    #[test]
    fn attrs_are_visible_to_advice() {
        let seen = StdArc::new(Mutex::new(None));
        let s2 = seen.clone();
        let aspect = ClosureAspect::new("attr").with_binding(
            Pointcut::within("Memory::get_blocks"),
            Advice::before(move |ctx| {
                *s2.lock() = ctx.attr(crate::join_point::attr::TASK_ID);
            }),
        );
        let woven = Weaver::new().with_aspect(Box::new(aspect)).weave();
        let mut payload = ();
        woven.dispatch_with(
            names::GET_BLOCKS,
            JoinPointKind::Call,
            &[(crate::join_point::attr::TASK_ID, 42)],
            &mut payload,
            &mut |_| {},
        );
        assert_eq!(*seen.lock(), Some(42));
    }

    #[test]
    fn weave_report_lists_matches() {
        let log = StdArc::new(Mutex::new(Vec::new()));
        let woven = Weaver::new()
            .with_aspect(Box::new(trace_aspect("mpi-like", 10, log.clone())))
            .with_aspect(Box::new(trace_aspect("omp-like", 20, log)))
            .weave();
        let report = woven.report();
        assert_eq!(report.active_aspects(), vec!["mpi-like".to_string(), "omp-like".to_string()]);
        // Each aspect advises execution(Annotation::Processing) with 3 advice.
        assert_eq!(report.lines.len(), 6);
        assert_eq!(report.advised_join_points(), 1);
        let text = report.to_string();
        assert!(text.contains("execution(Annotation::Processing)"));
    }

    #[test]
    fn matching_advice_count() {
        let aspect = ClosureAspect::new("x")
            .with_binding(Pointcut::within("Memory::%"), Advice::before(|_| {}))
            .with_binding(Pointcut::call("Memory::refresh"), Advice::after(|_| {}));
        let woven = Weaver::new().with_aspect(Box::new(aspect)).weave();
        assert_eq!(woven.matching_advice_count(names::REFRESH, JoinPointKind::Call), 2);
        assert_eq!(woven.matching_advice_count(names::REFRESH, JoinPointKind::Execution), 1);
        assert_eq!(woven.matching_advice_count(names::MAIN, JoinPointKind::Execution), 0);
    }

    #[test]
    fn clone_shares_stats() {
        let woven = WovenProgram::unwoven();
        let clone = woven.clone();
        let mut payload = ();
        clone.dispatch(names::MAIN, JoinPointKind::Execution, &mut payload, |_| {});
        assert_eq!(woven.stats().dispatches(), 1);
    }
}
