//! Join points: the named program events that aspects can intercept.
//!
//! AspectC++ generates join points for both *function calls* (at the caller)
//! and *function executions* (at the callee).  The platform mirrors this with
//! [`JoinPointKind::Call`] and [`JoinPointKind::Execution`]; every platform
//! operation that the paper's aspect modules advise is dispatched with its
//! canonical name (see [`crate::names`]) and kind.

use std::any::Any;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Whether a join point corresponds to a *call* site or an *execution* site.
///
/// The distinction matters for the paper's aspect modules: e.g. the MPI
/// module advises the *execution* of `main` (AspectType I) but the *call* of
/// `Memory::refresh` (AspectType III), so that the advice runs in the caller
/// task's context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum JoinPointKind {
    /// The join point is the call site of a function.
    Call,
    /// The join point is the execution (body) of a function.
    Execution,
}

impl fmt::Display for JoinPointKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinPointKind::Call => write!(f, "call"),
            JoinPointKind::Execution => write!(f, "execution"),
        }
    }
}

/// Context handed to every piece of advice.
///
/// It carries the join-point identity plus a type-erased `payload` describing
/// the intercepted operation (e.g. the block list produced by
/// `Memory::get_blocks`, or the missing-page list consumed by
/// `Memory::refresh`).  Advice downcasts the payload to the concrete type
/// published by the platform for that join point.
///
/// String/integer attributes provide lightweight out-of-band information such
/// as the current task id or layer, without forcing a concrete type onto every
/// advice implementation.
pub struct JoinPointCtx<'a> {
    /// Canonical join-point name, e.g. `"Memory::refresh"`.
    pub name: &'a str,
    /// Call or execution.
    pub kind: JoinPointKind,
    /// Operation-specific data; the platform documents the concrete type per
    /// join point.
    pub payload: &'a mut dyn Any,
    /// Integer attributes (task ids, step counters, parallelism degrees, …).
    attrs: HashMap<&'static str, i64>,
    /// Whether `proceed()` has been invoked by an around advice (or the body
    /// ran because no around advice was present).
    proceeded: bool,
}

impl<'a> JoinPointCtx<'a> {
    /// Create a new context for a dispatch.
    pub fn new(name: &'a str, kind: JoinPointKind, payload: &'a mut dyn Any) -> Self {
        JoinPointCtx { name, kind, payload, attrs: HashMap::new(), proceeded: false }
    }

    /// Attach an integer attribute (builder style).
    pub fn with_attr(mut self, key: &'static str, value: i64) -> Self {
        self.attrs.insert(key, value);
        self
    }

    /// Set an integer attribute.
    pub fn set_attr(&mut self, key: &'static str, value: i64) {
        self.attrs.insert(key, value);
    }

    /// Read an integer attribute.
    pub fn attr(&self, key: &str) -> Option<i64> {
        self.attrs.get(key).copied()
    }

    /// Downcast the payload to a concrete type (shared).
    pub fn payload_ref<T: 'static>(&self) -> Option<&T> {
        self.payload.downcast_ref::<T>()
    }

    /// Downcast the payload to a concrete type (exclusive).
    pub fn payload_mut<T: 'static>(&mut self) -> Option<&mut T> {
        self.payload.downcast_mut::<T>()
    }

    /// Record that the original body has been executed.
    pub(crate) fn mark_proceeded(&mut self) {
        self.proceeded = true;
    }

    /// Whether the original body has been executed (yet).
    ///
    /// Around advice may consult this to detect that an inner advice already
    /// ran the body; the platform uses it to assert that exactly one proceed
    /// happened per dispatch in debug builds.
    pub fn has_proceeded(&self) -> bool {
        self.proceeded
    }
}

impl fmt::Debug for JoinPointCtx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JoinPointCtx")
            .field("name", &self.name)
            .field("kind", &self.kind)
            .field("attrs", &self.attrs)
            .field("proceeded", &self.proceeded)
            .finish()
    }
}

/// Well-known attribute keys used by the platform when dispatching.
pub mod attr {
    /// Global task id of the executing task (`ch_tid` of the paper).
    pub const TASK_ID: &str = "task_id";
    /// Rank within the distributed layer.
    pub const RANK: &str = "rank";
    /// Thread index within the shared-memory layer.
    pub const THREAD: &str = "thread";
    /// Iteration / step counter.
    pub const STEP: &str = "step";
    /// Degree of parallelism of the layer owning this dispatch.
    pub const PARALLELISM: &str = "parallelism";
    /// 1 if the dispatch happens during warm-up (dry-run), 0 otherwise.
    pub const WARMUP: &str = "warmup";
    /// Trace id correlating spans across layers (observability dispatches).
    pub const TRACE: &str = "trace";
    /// Span id of the enclosing span (observability dispatches).
    pub const PARENT: &str = "parent";
    /// Service job id.
    pub const JOB: &str = "job";
    /// Kernel family tag (0 = stencil, 1 = particle, 2 = usgrid).
    pub const FAMILY: &str = "family";
    /// Plan resolution origin (0 = hit, 1 = compiled, 2 = fetched); set by
    /// the dispatched body for around advice to read after `proceed`.
    pub const ORIGIN: &str = "origin";
    /// Block index within a kernel sweep.
    pub const BLOCK: &str = "block";
    /// Number of cells processed by the dispatched operation.
    pub const CELLS: &str = "cells";
    /// Cluster node / rank involved in the dispatched operation.
    pub const NODE: &str = "node";
    /// 1 if the dispatched operation succeeded, 0 otherwise; set by the body.
    pub const OK: &str = "ok";
}

/// Per-join-point dispatch counters.
///
/// The weaver keeps one [`JoinPointStats`] per woven program; it is the
/// mechanism behind the "Platform NOP" measurements (how many dispatches a
/// run performs even when no advice is attached) and is also handy in tests.
#[derive(Debug, Default)]
pub struct JoinPointStats {
    dispatches: AtomicU64,
    advised_dispatches: AtomicU64,
    advice_executions: AtomicU64,
}

impl JoinPointStats {
    /// New, zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_dispatch(&self, advised: bool) {
        self.dispatches.fetch_add(1, Ordering::Relaxed);
        if advised {
            self.advised_dispatches.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_advice(&self, count: u64) {
        self.advice_executions.fetch_add(count, Ordering::Relaxed);
    }

    /// Total number of join-point dispatches.
    pub fn dispatches(&self) -> u64 {
        self.dispatches.load(Ordering::Relaxed)
    }

    /// Number of dispatches that had at least one matching advice.
    pub fn advised_dispatches(&self) -> u64 {
        self.advised_dispatches.load(Ordering::Relaxed)
    }

    /// Number of individual advice executions.
    pub fn advice_executions(&self) -> u64 {
        self.advice_executions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_display() {
        assert_eq!(JoinPointKind::Call.to_string(), "call");
        assert_eq!(JoinPointKind::Execution.to_string(), "execution");
    }

    #[test]
    fn ctx_attrs_roundtrip() {
        let mut payload = 41i32;
        let mut ctx = JoinPointCtx::new("X::y", JoinPointKind::Call, &mut payload)
            .with_attr(attr::TASK_ID, 7);
        ctx.set_attr(attr::STEP, 3);
        assert_eq!(ctx.attr(attr::TASK_ID), Some(7));
        assert_eq!(ctx.attr(attr::STEP), Some(3));
        assert_eq!(ctx.attr("missing"), None);
    }

    #[test]
    fn ctx_payload_downcast() {
        let mut payload: Vec<u32> = vec![1, 2, 3];
        let mut ctx = JoinPointCtx::new("X::y", JoinPointKind::Execution, &mut payload);
        assert!(ctx.payload_ref::<String>().is_none());
        ctx.payload_mut::<Vec<u32>>().unwrap().push(4);
        assert_eq!(ctx.payload_ref::<Vec<u32>>().unwrap(), &vec![1, 2, 3, 4]);
    }

    #[test]
    fn ctx_proceed_flag() {
        let mut payload = ();
        let mut ctx = JoinPointCtx::new("X::y", JoinPointKind::Execution, &mut payload);
        assert!(!ctx.has_proceeded());
        ctx.mark_proceeded();
        assert!(ctx.has_proceeded());
    }

    #[test]
    fn stats_counters() {
        let stats = JoinPointStats::new();
        stats.record_dispatch(false);
        stats.record_dispatch(true);
        stats.record_advice(3);
        assert_eq!(stats.dispatches(), 2);
        assert_eq!(stats.advised_dispatches(), 1);
        assert_eq!(stats.advice_executions(), 3);
    }
}
