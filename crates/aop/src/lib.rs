//! # aohpc-aop — the join-point model underneath the platform
//!
//! The paper builds its DSL-constructing platform on *Aspect-Oriented
//! Programming*: cross-cutting concerns (runtime control, block assignment,
//! inter-task communication) are packaged as **Aspect modules** and woven into
//! the end-user's serial program at well-defined **join points** via
//! **pointcut** patterns and **advice** (before / after / around).
//!
//! The original prototype uses AspectC++, a source-to-source weaver.  Rust has
//! no equivalent compiler, so this crate keeps the *JoinPoint Model* (JPM)
//! intact but performs the weave at dispatch time: the platform names every
//! operation that AspectC++ would expose as a join point (`main`,
//! `Annotation::Initialize|Processing|Finalize`, `Memory::get_blocks`,
//! `Memory::refresh`, …) and routes it through a [`Weaver`].  Aspect modules
//! register [`Pointcut`]s and [`Advice`]; the weaver matches them exactly like
//! the AspectC++ pattern language (`%` wildcards, `call`/`execution` kinds,
//! `&&`/`||`/`!` combinators) and executes the advice chain around the
//! original body.
//!
//! The observable semantics the paper relies on are preserved:
//!
//! * an aspect module written once (e.g. the MPI module) applies unchanged to
//!   every DSL built on the platform, because the join-point names come from
//!   the platform's annotation and memory libraries, not from user code;
//! * "Platform NOP" — transcompiled through the weaver with *no* aspect
//!   modules — is expressible and measurable (the dispatch overhead);
//! * advice ordering is deterministic (aspect precedence, then registration
//!   order), mirroring AspectC++ `aspect order` declarations.
//!
//! ```
//! use aohpc_aop::{Weaver, Aspect, AdviceBinding, Advice, Pointcut, JoinPointKind, JoinPointCtx};
//! use std::sync::Arc;
//! use std::sync::atomic::{AtomicUsize, Ordering};
//!
//! struct Tracer(Arc<AtomicUsize>);
//! impl Aspect for Tracer {
//!     fn name(&self) -> &str { "tracer" }
//!     fn bindings(&self) -> Vec<AdviceBinding> {
//!         let n = self.0.clone();
//!         vec![AdviceBinding::new(
//!             Pointcut::execution("Annotation::Processing"),
//!             Advice::before(move |_ctx: &mut JoinPointCtx| { n.fetch_add(1, Ordering::SeqCst); }),
//!         )]
//!     }
//! }
//!
//! let hits = Arc::new(AtomicUsize::new(0));
//! let mut weaver = Weaver::new();
//! weaver.add_aspect(Box::new(Tracer(hits.clone())));
//! let woven = weaver.weave();
//!
//! let mut payload = ();
//! woven.dispatch("Annotation::Processing", JoinPointKind::Execution, &mut payload, |_ctx| {});
//! assert_eq!(hits.load(Ordering::SeqCst), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod advice;
pub mod aspect;
pub mod join_point;
pub mod names;
pub mod pointcut;
pub mod weaver;

pub use advice::{Advice, AdviceKind};
pub use aspect::{AdviceBinding, Aspect, ClosureAspect};
pub use join_point::{attr, JoinPointCtx, JoinPointKind, JoinPointStats};
pub use names::*;
pub use pointcut::{ParseError, Pointcut};
pub use weaver::{WeaveReport, Weaver, WovenProgram};
