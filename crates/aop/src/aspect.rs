//! Aspect modules: named bundles of pointcut→advice bindings.
//!
//! In the paper each layer of the HPC system (MPI, OpenMP, …) is packaged as
//! one aspect module providing up to three groups of advice (AspectType I:
//! runtime/task control, II: block assignment, III: data communication).
//! Here an aspect is any type implementing [`Aspect`]; the runtime crate
//! provides the MPI-like and OpenMP-like modules, and tests/instrumentation
//! can add ad-hoc aspects via [`ClosureAspect`].

use crate::advice::Advice;
use crate::pointcut::Pointcut;

/// A pointcut bound to an advice.
#[derive(Clone, Debug)]
pub struct AdviceBinding {
    /// The join points this binding applies to.
    pub pointcut: Pointcut,
    /// The advice to run there.
    pub advice: Advice,
}

impl AdviceBinding {
    /// Create a binding.
    pub fn new(pointcut: Pointcut, advice: Advice) -> Self {
        AdviceBinding { pointcut, advice }
    }
}

/// An aspect module.
///
/// `precedence` controls advice ordering across aspects (lower value = outer
/// position, i.e. its before-advice runs first and its around-advice wraps
/// the others), mirroring AspectC++ `aspect order` declarations.  Within one
/// aspect, bindings keep their declaration order.
pub trait Aspect: Send + Sync {
    /// Human-readable module name (used in the weave report).
    fn name(&self) -> &str;

    /// Precedence; lower is outer.  Defaults to 100.
    fn precedence(&self) -> i32 {
        100
    }

    /// The pointcut→advice bindings contributed by this module.
    fn bindings(&self) -> Vec<AdviceBinding>;
}

/// A lightweight aspect assembled from closures — convenient for tests,
/// tracing and ablation experiments.
pub struct ClosureAspect {
    name: String,
    precedence: i32,
    bindings: Vec<AdviceBinding>,
}

impl ClosureAspect {
    /// Create an empty aspect with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        ClosureAspect { name: name.into(), precedence: 100, bindings: Vec::new() }
    }

    /// Set the precedence (lower = outer).
    pub fn with_precedence(mut self, precedence: i32) -> Self {
        self.precedence = precedence;
        self
    }

    /// Add a binding.
    pub fn with_binding(mut self, pointcut: Pointcut, advice: Advice) -> Self {
        self.bindings.push(AdviceBinding::new(pointcut, advice));
        self
    }
}

impl Aspect for ClosureAspect {
    fn name(&self) -> &str {
        &self.name
    }

    fn precedence(&self) -> i32 {
        self.precedence
    }

    fn bindings(&self) -> Vec<AdviceBinding> {
        self.bindings.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_aspect_builder() {
        let aspect = ClosureAspect::new("test")
            .with_precedence(5)
            .with_binding(Pointcut::Any, Advice::before(|_| {}))
            .with_binding(Pointcut::call("Memory::%"), Advice::after(|_| {}));
        assert_eq!(aspect.name(), "test");
        assert_eq!(aspect.precedence(), 5);
        assert_eq!(aspect.bindings().len(), 2);
    }

    #[test]
    fn default_precedence_is_100() {
        struct A;
        impl Aspect for A {
            fn name(&self) -> &str {
                "a"
            }
            fn bindings(&self) -> Vec<AdviceBinding> {
                vec![]
            }
        }
        assert_eq!(A.precedence(), 100);
    }
}
