//! Pointcut expressions.
//!
//! A pointcut selects the set of join points an advice applies to.  The
//! platform supports the subset of the AspectC++ pattern language that the
//! paper's modules need:
//!
//! * `execution("pattern")` — match execution join points whose name matches
//!   `pattern`;
//! * `call("pattern")` — match call join points;
//! * `within("pattern")` — match either kind (name only);
//! * `%` — wildcard matching any (possibly empty) substring inside a pattern,
//!   exactly like AspectC++'s match expressions;
//! * `&&`, `||`, `!` and parentheses to combine pointcuts.
//!
//! Pointcuts can be built programmatically ([`Pointcut::execution`],
//! [`Pointcut::call`], [`Pointcut::and`], …) or parsed from the textual form
//! ([`Pointcut::parse`]), which is convenient when aspect configurations are
//! loaded from a manifest.

use crate::join_point::JoinPointKind;
use std::fmt;

/// A pointcut expression tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pointcut {
    /// Matches execution join points with a matching name.
    Execution(Pattern),
    /// Matches call join points with a matching name.
    Call(Pattern),
    /// Matches any kind of join point with a matching name.
    Within(Pattern),
    /// Logical conjunction.
    And(Box<Pointcut>, Box<Pointcut>),
    /// Logical disjunction.
    Or(Box<Pointcut>, Box<Pointcut>),
    /// Logical negation.
    Not(Box<Pointcut>),
    /// Matches every join point (used by tracing / NOP aspects in tests).
    Any,
}

impl Pointcut {
    /// `execution("name")`
    pub fn execution(pattern: &str) -> Self {
        Pointcut::Execution(Pattern::new(pattern))
    }

    /// `call("name")`
    pub fn call(pattern: &str) -> Self {
        Pointcut::Call(Pattern::new(pattern))
    }

    /// `within("name")` — name match regardless of kind.
    pub fn within(pattern: &str) -> Self {
        Pointcut::Within(Pattern::new(pattern))
    }

    /// Conjunction of two pointcuts.
    pub fn and(self, other: Pointcut) -> Self {
        Pointcut::And(Box::new(self), Box::new(other))
    }

    /// Disjunction of two pointcuts.
    pub fn or(self, other: Pointcut) -> Self {
        Pointcut::Or(Box::new(self), Box::new(other))
    }

    /// Negation of a pointcut.
    pub fn negate(self) -> Self {
        Pointcut::Not(Box::new(self))
    }

    /// Does this pointcut select the given join point?
    pub fn matches(&self, name: &str, kind: JoinPointKind) -> bool {
        match self {
            Pointcut::Execution(p) => kind == JoinPointKind::Execution && p.matches(name),
            Pointcut::Call(p) => kind == JoinPointKind::Call && p.matches(name),
            Pointcut::Within(p) => p.matches(name),
            Pointcut::And(a, b) => a.matches(name, kind) && b.matches(name, kind),
            Pointcut::Or(a, b) => a.matches(name, kind) || b.matches(name, kind),
            Pointcut::Not(a) => !a.matches(name, kind),
            Pointcut::Any => true,
        }
    }

    /// Parse a textual pointcut expression, e.g.
    /// `execution("Annotation::%") && !execution("Annotation::Finalize")`.
    pub fn parse(input: &str) -> Result<Self, ParseError> {
        let tokens = tokenize(input)?;
        let mut parser = Parser { tokens, pos: 0 };
        let pc = parser.parse_or()?;
        if parser.pos != parser.tokens.len() {
            return Err(ParseError::new(format!(
                "unexpected trailing token at position {}",
                parser.pos
            )));
        }
        Ok(pc)
    }
}

impl fmt::Display for Pointcut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pointcut::Execution(p) => write!(f, "execution(\"{}\")", p.raw()),
            Pointcut::Call(p) => write!(f, "call(\"{}\")", p.raw()),
            Pointcut::Within(p) => write!(f, "within(\"{}\")", p.raw()),
            Pointcut::And(a, b) => write!(f, "({a} && {b})"),
            Pointcut::Or(a, b) => write!(f, "({a} || {b})"),
            Pointcut::Not(a) => write!(f, "!{a}"),
            Pointcut::Any => write!(f, "any()"),
        }
    }
}

/// A name pattern with `%` wildcards (AspectC++ match-expression style).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    raw: String,
    segments: Vec<String>,
    leading_wildcard: bool,
    trailing_wildcard: bool,
}

impl Pattern {
    /// Build a pattern from its textual form.
    pub fn new(raw: &str) -> Self {
        let leading_wildcard = raw.starts_with('%');
        let trailing_wildcard = raw.ends_with('%');
        let segments: Vec<String> =
            raw.split('%').filter(|s| !s.is_empty()).map(|s| s.to_string()).collect();
        Pattern { raw: raw.to_string(), segments, leading_wildcard, trailing_wildcard }
    }

    /// The original textual pattern.
    pub fn raw(&self) -> &str {
        &self.raw
    }

    /// Wildcard matching: every literal segment must appear in order; the
    /// first/last segment is anchored to the start/end of the name unless the
    /// pattern starts/ends with `%`.
    pub fn matches(&self, name: &str) -> bool {
        if self.segments.is_empty() {
            // "" matches only the empty string; "%" (or "%%…") matches anything.
            return self.leading_wildcard || self.trailing_wildcard || name.is_empty();
        }
        let mut pos = 0usize;
        let last_idx = self.segments.len() - 1;
        for (i, seg) in self.segments.iter().enumerate() {
            let first = i == 0;
            let last = i == last_idx;
            let anchored_start = first && !self.leading_wildcard;
            let anchored_end = last && !self.trailing_wildcard;
            if anchored_start && anchored_end {
                return name == seg;
            }
            if anchored_start {
                if !name.starts_with(seg.as_str()) {
                    return false;
                }
                pos = seg.len();
            } else if anchored_end {
                if !name.ends_with(seg.as_str()) {
                    return false;
                }
                return name.len() - seg.len() >= pos;
            } else {
                match name[pos..].find(seg.as_str()) {
                    None => return false,
                    Some(found) => pos += found + seg.len(),
                }
            }
        }
        true
    }
}

/// Error produced when parsing a textual pointcut fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    message: String,
}

impl ParseError {
    fn new(message: String) -> Self {
        ParseError { message }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pointcut parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Ident(String),
    Str(String),
    LParen,
    RParen,
    AndAnd,
    OrOr,
    Bang,
}

fn tokenize(input: &str) -> Result<Vec<Token>, ParseError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '!' => {
                tokens.push(Token::Bang);
                i += 1;
            }
            '&' => {
                if chars.get(i + 1) == Some(&'&') {
                    tokens.push(Token::AndAnd);
                    i += 2;
                } else {
                    return Err(ParseError::new("single '&' is not a valid operator".into()));
                }
            }
            '|' => {
                if chars.get(i + 1) == Some(&'|') {
                    tokens.push(Token::OrOr);
                    i += 2;
                } else {
                    return Err(ParseError::new("single '|' is not a valid operator".into()));
                }
            }
            '"' => {
                let mut s = String::new();
                i += 1;
                while i < chars.len() && chars[i] != '"' {
                    s.push(chars[i]);
                    i += 1;
                }
                if i == chars.len() {
                    return Err(ParseError::new("unterminated string literal".into()));
                }
                i += 1; // closing quote
                tokens.push(Token::Str(s));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    s.push(chars[i]);
                    i += 1;
                }
                tokens.push(Token::Ident(s));
            }
            other => {
                return Err(ParseError::new(format!("unexpected character '{other}'")));
            }
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: Token) -> Result<(), ParseError> {
        match self.bump() {
            Some(found) if found == t => Ok(()),
            Some(found) => Err(ParseError::new(format!("expected {t:?}, found {found:?}"))),
            None => Err(ParseError::new(format!("expected {t:?}, found end of input"))),
        }
    }

    fn parse_or(&mut self) -> Result<Pointcut, ParseError> {
        let mut lhs = self.parse_and()?;
        while self.peek() == Some(&Token::OrOr) {
            self.bump();
            let rhs = self.parse_and()?;
            lhs = lhs.or(rhs);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Pointcut, ParseError> {
        let mut lhs = self.parse_unary()?;
        while self.peek() == Some(&Token::AndAnd) {
            self.bump();
            let rhs = self.parse_unary()?;
            lhs = lhs.and(rhs);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Pointcut, ParseError> {
        match self.peek() {
            Some(Token::Bang) => {
                self.bump();
                Ok(self.parse_unary()?.negate())
            }
            Some(Token::LParen) => {
                self.bump();
                let inner = self.parse_or()?;
                self.expect(Token::RParen)?;
                Ok(inner)
            }
            Some(Token::Ident(_)) => self.parse_primary(),
            other => Err(ParseError::new(format!("unexpected token {other:?}"))),
        }
    }

    fn parse_primary(&mut self) -> Result<Pointcut, ParseError> {
        let name = match self.bump() {
            Some(Token::Ident(s)) => s,
            other => return Err(ParseError::new(format!("expected identifier, found {other:?}"))),
        };
        if name == "any" {
            self.expect(Token::LParen)?;
            self.expect(Token::RParen)?;
            return Ok(Pointcut::Any);
        }
        self.expect(Token::LParen)?;
        let pattern = match self.bump() {
            Some(Token::Str(s)) => s,
            other => {
                return Err(ParseError::new(format!("expected string pattern, found {other:?}")))
            }
        };
        self.expect(Token::RParen)?;
        match name.as_str() {
            "execution" => Ok(Pointcut::execution(&pattern)),
            "call" => Ok(Pointcut::call(&pattern)),
            "within" => Ok(Pointcut::within(&pattern)),
            other => Err(ParseError::new(format!("unknown pointcut designator '{other}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn literal_pattern_matches_exactly() {
        let p = Pattern::new("Memory::refresh");
        assert!(p.matches("Memory::refresh"));
        assert!(!p.matches("Memory::refresh2"));
        assert!(!p.matches("XMemory::refresh"));
        assert!(!p.matches("Memory::refres"));
    }

    #[test]
    fn wildcard_prefix_suffix() {
        assert!(Pattern::new("Memory::%").matches("Memory::get_blocks"));
        assert!(Pattern::new("Memory::%").matches("Memory::"));
        assert!(!Pattern::new("Memory::%").matches("Annotation::Processing"));
        assert!(Pattern::new("%::refresh").matches("Memory::refresh"));
        assert!(!Pattern::new("%::refresh").matches("Memory::refresh_all"));
        assert!(Pattern::new("%").matches("anything at all"));
        assert!(Pattern::new("%").matches(""));
    }

    #[test]
    fn wildcard_infix() {
        let p = Pattern::new("Annotation::%ize");
        assert!(p.matches("Annotation::Initialize"));
        assert!(p.matches("Annotation::Finalize"));
        assert!(!p.matches("Annotation::Processing"));
    }

    #[test]
    fn multiple_wildcards() {
        let p = Pattern::new("%::%_blocks");
        assert!(p.matches("Memory::get_blocks"));
        assert!(!p.matches("Memory::get_block"));
    }

    #[test]
    fn empty_pattern() {
        assert!(Pattern::new("").matches(""));
        assert!(!Pattern::new("").matches("x"));
    }

    #[test]
    fn pointcut_kind_filtering() {
        let pc = Pointcut::execution("Annotation::Processing");
        assert!(pc.matches("Annotation::Processing", JoinPointKind::Execution));
        assert!(!pc.matches("Annotation::Processing", JoinPointKind::Call));
        let pc = Pointcut::call("Memory::refresh");
        assert!(pc.matches("Memory::refresh", JoinPointKind::Call));
        assert!(!pc.matches("Memory::refresh", JoinPointKind::Execution));
        let pc = Pointcut::within("Memory::refresh");
        assert!(pc.matches("Memory::refresh", JoinPointKind::Call));
        assert!(pc.matches("Memory::refresh", JoinPointKind::Execution));
    }

    #[test]
    fn pointcut_combinators() {
        let pc = Pointcut::execution("Annotation::%")
            .and(Pointcut::execution("Annotation::Finalize").negate());
        assert!(pc.matches("Annotation::Initialize", JoinPointKind::Execution));
        assert!(!pc.matches("Annotation::Finalize", JoinPointKind::Execution));
        let pc = Pointcut::call("Memory::refresh").or(Pointcut::call("Memory::get_blocks"));
        assert!(pc.matches("Memory::get_blocks", JoinPointKind::Call));
        assert!(!pc.matches("Memory::other", JoinPointKind::Call));
    }

    #[test]
    fn parse_simple() {
        let pc = Pointcut::parse(r#"execution("Annotation::Processing")"#).unwrap();
        assert_eq!(pc, Pointcut::execution("Annotation::Processing"));
    }

    #[test]
    fn parse_complex() {
        let pc = Pointcut::parse(
            r#"(call("Memory::%") || execution("Program::main")) && !call("Memory::refresh")"#,
        )
        .unwrap();
        assert!(pc.matches("Memory::get_blocks", JoinPointKind::Call));
        assert!(!pc.matches("Memory::refresh", JoinPointKind::Call));
        assert!(pc.matches("Program::main", JoinPointKind::Execution));
        assert!(!pc.matches("Program::main", JoinPointKind::Call));
    }

    #[test]
    fn parse_any() {
        let pc = Pointcut::parse("any()").unwrap();
        assert!(pc.matches("whatever", JoinPointKind::Call));
    }

    #[test]
    fn parse_errors() {
        assert!(Pointcut::parse("execution(").is_err());
        assert!(Pointcut::parse(r#"exec("x")"#).is_err());
        assert!(Pointcut::parse(r#"execution("x") &"#).is_err());
        assert!(Pointcut::parse(r#"execution("x") execution("y")"#).is_err());
        assert!(Pointcut::parse(r#"execution("unterminated)"#).is_err());
        assert!(Pointcut::parse("@").is_err());
    }

    #[test]
    fn display_roundtrip() {
        let pc = Pointcut::execution("Annotation::%")
            .and(Pointcut::call("Memory::refresh").negate())
            .or(Pointcut::Any);
        let text = pc.to_string();
        // Display form is parseable except for `any()` capitalisation nuances;
        // here it is exactly parseable.
        let reparsed = Pointcut::parse(&text).unwrap();
        assert!(reparsed.matches("Annotation::Initialize", JoinPointKind::Execution));
    }

    proptest! {
        /// A pattern built by inserting '%' separators between fragments of the
        /// name always matches the name it was derived from.
        #[test]
        fn derived_wildcard_pattern_always_matches(name in "[A-Za-z_:]{1,24}", cuts in proptest::collection::vec(0usize..24, 0..4)) {
            let mut indices: Vec<usize> = cuts.into_iter().map(|c| c % (name.len() + 1)).collect();
            indices.sort_unstable();
            indices.dedup();
            let mut pattern = String::new();
            let mut prev = 0usize;
            for &i in &indices {
                pattern.push_str(&name[prev..i]);
                pattern.push('%');
                prev = i;
            }
            pattern.push_str(&name[prev..]);
            let p = Pattern::new(&pattern);
            prop_assert!(p.matches(&name), "pattern {:?} should match {:?}", pattern, name);
        }

        /// A literal pattern matches exactly the equal string.
        #[test]
        fn literal_pattern_iff_equal(a in "[A-Za-z_:]{0,16}", b in "[A-Za-z_:]{0,16}") {
            let p = Pattern::new(&a);
            prop_assert_eq!(p.matches(&b), a == b);
        }

        /// Negation is an involution on match results.
        #[test]
        fn double_negation(name in "[A-Za-z_:]{1,16}") {
            let pc = Pointcut::within("Memory::%");
            let double_neg = pc.clone().negate().negate();
            prop_assert_eq!(
                pc.matches(&name, JoinPointKind::Call),
                double_neg.matches(&name, JoinPointKind::Call)
            );
        }
    }
}
