//! Canonical join-point names exposed by the platform.
//!
//! These are the names AspectC++ would see for the platform's annotation and
//! memory libraries.  DSL parts and end-user code never introduce new join
//! points (the paper deliberately defines pointcuts only against the platform
//! libraries to avoid accidental matches from generic patterns), so this
//! module is the complete vocabulary that aspect modules can advise.

/// Entry point of the program (`main` of a C++ program in the paper).
///
/// AspectType I advice of the distributed layer (MPI module) brackets this
/// join point with runtime initialisation / finalisation and rank spawning.
pub const MAIN: &str = "Program::main";

/// Execution of the annotation library's `Initialize` virtual function.
pub const INITIALIZE: &str = "Annotation::Initialize";

/// Execution of the annotation library's `Processing` virtual function.
///
/// AspectType I advice of the shared-memory layer (OpenMP module) starts its
/// worker tasks around this join point.
pub const PROCESSING: &str = "Annotation::Processing";

/// Execution of the annotation library's `Finalize` virtual function.
pub const FINALIZE: &str = "Annotation::Finalize";

/// Execution of one kernel step (one sweep over the task's blocks).
///
/// Not advised by the paper's two prototype modules, but exposed so that
/// instrumentation aspects (tracing, cost accounting) can hook it.
pub const KERNEL_STEP: &str = "Annotation::KernelStep";

/// Call of the memory library's `get_blocks` (Env block enumeration).
///
/// AspectType II advice intercepts this to divide the blocks allocated by the
/// upper layer among the tasks of the advising layer.
pub const GET_BLOCKS: &str = "Memory::get_blocks";

/// Call of the memory library's `refresh` (buffer switch + validation).
///
/// AspectType III advice intercepts this to fetch pages recorded as
/// non-existent from the tasks holding the latest data, and to run the
/// Dry-run prefetch plan.
pub const REFRESH: &str = "Memory::refresh";

/// Warm-up invocation (the `WarmUp(Kernel)` macro of Listing 1).
pub const WARM_UP: &str = "Annotation::WarmUp";

/// Execution of one job through the service front door (`execute_spec`).
///
/// Advised by the observability layer (`aohpc-obs`) to open a per-job span
/// and meter end-to-end execution time.  Attrs: `trace`, `parent`, `job`,
/// `family`.
pub const SERVICE_EXECUTE: &str = "Service::execute_spec";

/// Execution of one block of kernel work inside a task sweep.
///
/// Dispatched by `TaskCtx::run_block` only when at least one advice matches
/// (so unadvised runs pay nothing).  Attrs: `task_id`, `step`, `block`,
/// `cells`.
pub const KERNEL_BLOCK: &str = "Kernel::execute_block";

/// Call of the kernel compiler's shape-specialization matcher: a freshly
/// lowered tape either qualified for a monomorphic super-instruction kernel
/// or stayed on the generic interpreter.
///
/// Dispatched at compile/cache-insert time (not per block), so it is cheap
/// enough to observe unconditionally.  Attrs: `family`, `ok` (1 = a
/// specialized kernel was instantiated, 0 = generic).
pub const KERNEL_SPECIALIZE: &str = "Kernel::specialize";

/// Call of the plan cache's `resolve` (hit / cluster-fetch / compile chain).
///
/// The body publishes the resolution origin back through the `origin` attr so
/// around advice can record which lane served the plan.  Attrs: `trace`,
/// `parent`, `family`, `origin` (set by the body).
pub const CACHE_RESOLVE: &str = "PlanCache::resolve";

/// Call of a cross-node plan fetch (`PLAN_REQ` round-trip, requester side).
///
/// Attrs: `trace`, `parent`, `node`, `ok` (set by the body: 1 = plan
/// received, 0 = declined / timed out).
pub const CLUSTER_PLAN_REQ: &str = "Cluster::plan_req";

/// Execution of a plan-request service (`PLAN_REP` production, owner side).
///
/// Attrs: `node`, `ok`.
pub const CLUSTER_PLAN_REP: &str = "Cluster::plan_rep";

/// Call of a failure-detector state transition: a rank was suspected or
/// declared dead by the local membership view.
///
/// Attrs: `node` (the subject rank), `ok` (1 = suspect, 0 = dead), `rank`
/// (the detecting rank).
pub const CLUSTER_SUSPECT: &str = "Cluster::suspect";

/// Execution of a checkpoint-replay failover: a job orphaned by a dead node
/// re-submitted onto a survivor.
///
/// Attrs: `node` (the replay target rank), `job` (the orphaned job id),
/// `ok` (set after the replay resolves: 1 = report, 0 = error).
pub const CLUSTER_FAILOVER: &str = "Cluster::failover";

/// Call of an incarnation-arbitrated revival: a restarted rank rejoining
/// the mesh under a fresh incarnation, or a suspected-but-alive rank
/// refuting an accusation by bumping its own incarnation.
///
/// Attrs: `node` (the reviving rank), `step` (the new incarnation),
/// `ok` (1 = restart rejoin, 0 = refutation).
pub const CLUSTER_REJOIN: &str = "Cluster::rejoin";

/// Call of a scripted link event from the fault harness: one direction of
/// one mesh link cut or healed.
///
/// Attrs: `node` (the sending side of the direction), `rank` (the receiving
/// side), `ok` (1 = heal, 0 = cut).
pub const CLUSTER_PARTITION: &str = "Cluster::partition";

/// All names, useful for exhaustiveness checks in tests and for the weave
/// report.
pub const ALL_JOIN_POINTS: &[&str] = &[
    MAIN,
    INITIALIZE,
    PROCESSING,
    FINALIZE,
    KERNEL_STEP,
    GET_BLOCKS,
    REFRESH,
    WARM_UP,
    SERVICE_EXECUTE,
    KERNEL_BLOCK,
    KERNEL_SPECIALIZE,
    CACHE_RESOLVE,
    CLUSTER_PLAN_REQ,
    CLUSTER_PLAN_REP,
    CLUSTER_SUSPECT,
    CLUSTER_FAILOVER,
    CLUSTER_REJOIN,
    CLUSTER_PARTITION,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_names_unique_and_namespaced() {
        let mut seen = std::collections::HashSet::new();
        for n in ALL_JOIN_POINTS {
            assert!(n.contains("::"), "join point {n} must be namespaced");
            assert!(seen.insert(*n), "duplicate join point name {n}");
        }
        assert_eq!(ALL_JOIN_POINTS.len(), 18);
    }
}
