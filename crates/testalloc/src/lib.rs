//! A thread-scoped counting global allocator for allocation-regression tests
//! and benches.
//!
//! The naive version of this (count *every* allocation routed through the
//! global allocator) is flaky under `cargo test`: libtest's own harness
//! threads allocate concurrently with the measured window, so a
//! "zero allocations" assertion intermittently sees their strays.  This
//! counter therefore only counts allocations made **while the current thread
//! is inside [`count_in`]** — other threads never contribute.
//!
//! Usage: declare the allocator in the binary under test, then measure:
//!
//! ```ignore
//! #[global_allocator]
//! static GLOBAL: aohpc_testalloc::CountingAlloc = aohpc_testalloc::CountingAlloc;
//!
//! let (result, allocs) = aohpc_testalloc::count_in(|| hot_path());
//! assert_eq!(allocs, 0);
//! ```
//!
//! Deallocations are not counted — the assertions are about *new* heap
//! traffic.  `realloc` counts as one allocation.
//!
//! The crate also hosts the workspace's deterministic concurrency test
//! harness ([`sync`]): a step-controlled [`FakeClock`](sync::FakeClock), the
//! [`StepLine`](sync::StepLine) thread coordinator, and
//! [`spin_until`](sync::spin_until) — the building blocks that let
//! backpressure and timeout tests signal instead of sleep.

pub mod sync;

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static TRACKING: Cell<bool> = const { Cell::new(false) };
    // Per-thread count, so two threads inside `count_in` at once (e.g. two
    // parallel libtest cases) never attribute each other's allocations.
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// A `#[global_allocator]` that counts allocations made by threads currently
/// inside [`count_in`], forwarding all actual work to [`System`].
pub struct CountingAlloc;

#[inline]
fn note_alloc() {
    // try_with: the thread-locals may be unavailable during thread teardown;
    // allocations there are simply not counted.
    if TRACKING.try_with(Cell::get).unwrap_or(false) {
        let _ = ALLOCS.try_with(|a| a.set(a.get() + 1));
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note_alloc();
        System.realloc(ptr, layout, new_size)
    }
}

/// Run `f` with allocation tracking enabled on the current thread, returning
/// its result and the number of allocations *this thread* performed inside
/// it.  Nests safely (the inner scope's allocations also count toward the
/// outer one).
pub fn count_in<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let was = TRACKING.with(|t| t.replace(true));
    let before = ALLOCS.with(Cell::get);
    let result = f();
    let after = ALLOCS.with(Cell::get);
    TRACKING.with(|t| t.set(was));
    (result, after - before)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    // The allocator must be registered for the counter to see anything.
    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;

    #[test]
    fn counts_only_inside_the_scope_and_only_this_thread() {
        let warm: Vec<u64> = (0..4).collect(); // outside: not counted
        let (sum, allocs) = count_in(|| {
            let v: Vec<u64> = (0..128).collect();
            v.iter().sum::<u64>()
        });
        assert_eq!(sum, 127 * 128 / 2);
        assert!(allocs >= 1, "the Vec allocation is counted");
        drop(warm);

        // No allocation inside the scope: zero, even if another thread is
        // allocating at full tilt concurrently.
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let noisy = {
            let stop = stop.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    std::hint::black_box(vec![0u8; 64]);
                }
            })
        };
        let (_, allocs) = count_in(|| std::hint::black_box(1 + 1));
        stop.store(true, Ordering::Relaxed);
        noisy.join().unwrap();
        assert_eq!(allocs, 0, "other threads' allocations are not attributed");
    }
}
