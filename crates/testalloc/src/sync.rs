//! Deterministic concurrency test utilities: a step-controlled fake clock and
//! a label-based thread coordinator.
//!
//! Concurrency tests that `thread::sleep` and hope the other thread got there
//! first are flaky by construction.  The utilities here replace timing with
//! *signalling*:
//!
//! * [`FakeClock`] — a virtual monotonic clock.  Code under test reads
//!   [`FakeClock::now`] instead of the wall clock; the test advances it
//!   explicitly with [`FakeClock::advance`], which also fires registered
//!   wake-up callbacks so condvar waiters re-check their deadlines
//!   immediately.  A timeout test becomes: park the waiter, advance past the
//!   deadline, observe the timeout — no real time elapses.
//! * [`StepLine`] — named checkpoints threads `reach` and other threads
//!   `wait_for`.  Orderings that would otherwise be racy ("cancel only after
//!   the submitter has entered `submit`") become explicit edges.
//! * [`spin_until`] — a bounded progress wait on an arbitrary condition, for
//!   the rare cases where the observed state is a counter rather than an
//!   event.  It panics (rather than hangs) when the condition never holds.
//!
//! All waits are capped by [`COORDINATION_TIMEOUT`]: a coordination bug shows
//! up as a panic with the label that never arrived, not a hung test run.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Upper bound on every blocking wait in this module.  Long enough that a
/// loaded CI machine cannot trip it, short enough that a deadlocked test
/// fails instead of timing the whole suite out.
pub const COORDINATION_TIMEOUT: Duration = Duration::from_secs(30);

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A virtual monotonic clock advanced explicitly by the test.
///
/// Holders read [`FakeClock::now`]; the controlling test calls
/// [`FakeClock::advance`].  Components that park on a condition variable
/// while waiting for a deadline register a wake-up callback with
/// [`FakeClock::on_advance`] so an advance is observed immediately instead of
/// at the next poll.
#[derive(Default)]
pub struct FakeClock {
    nanos: AtomicU64,
    #[allow(clippy::type_complexity)]
    wakers: Mutex<Vec<Arc<dyn Fn() + Send + Sync>>>,
}

impl FakeClock {
    /// A clock starting at zero.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Current virtual time (since the clock's creation).
    pub fn now(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::SeqCst))
    }

    /// Advance the clock and fire every registered wake-up callback.
    ///
    /// The callback list is snapshotted out of the internal lock before
    /// invocation, so callbacks may themselves call [`FakeClock::advance`]
    /// or [`FakeClock::on_advance`] without deadlocking.
    pub fn advance(&self, by: Duration) {
        let by = u64::try_from(by.as_nanos()).unwrap_or(u64::MAX);
        self.nanos.fetch_add(by, Ordering::SeqCst);
        let wakers: Vec<_> = lock(&self.wakers).clone();
        for waker in &wakers {
            waker();
        }
    }

    /// Register a callback fired after every [`FakeClock::advance`] (e.g.
    /// "notify the admission condvar so deadline checks re-run").
    ///
    /// Registrations live as long as the clock (there is no deregistration),
    /// so share one clock only across components with the clock's lifetime —
    /// the intended shape is one `FakeClock` per service under test.
    pub fn on_advance(&self, waker: impl Fn() + Send + Sync + 'static) {
        lock(&self.wakers).push(Arc::new(waker));
    }
}

impl std::fmt::Debug for FakeClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FakeClock")
            .field("now", &self.now())
            .field("wakers", &lock(&self.wakers).len())
            .finish()
    }
}

/// Named checkpoints for ordering threads without sleeping.
///
/// A thread calls [`StepLine::reach`] when it passes a point of interest;
/// any other thread blocks in [`StepLine::wait_for`] until that label has
/// been reached.  Labels are permanent (a `wait_for` after the fact returns
/// immediately), so the coordinator never needs to win a race.
#[derive(Default)]
pub struct StepLine {
    reached: Mutex<HashSet<String>>,
    cv: Condvar,
}

impl StepLine {
    /// A line with no labels reached yet.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Mark `label` reached and wake all waiters.
    pub fn reach(&self, label: &str) {
        lock(&self.reached).insert(label.to_string());
        self.cv.notify_all();
    }

    /// Whether `label` has been reached.
    pub fn has_reached(&self, label: &str) -> bool {
        lock(&self.reached).contains(label)
    }

    /// Block until `label` is reached.  Panics after
    /// [`COORDINATION_TIMEOUT`] — a missing checkpoint is a test bug, not a
    /// reason to hang.
    pub fn wait_for(&self, label: &str) {
        let deadline = Instant::now() + COORDINATION_TIMEOUT;
        let mut reached = lock(&self.reached);
        while !reached.contains(label) {
            let remaining = deadline.saturating_duration_since(Instant::now());
            assert!(!remaining.is_zero(), "step label `{label}` never reached");
            let (guard, _) = self
                .cv
                .wait_timeout(reached, remaining)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            reached = guard;
        }
    }
}

impl std::fmt::Debug for StepLine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut labels: Vec<_> = lock(&self.reached).iter().cloned().collect();
        labels.sort();
        f.debug_struct("StepLine").field("reached", &labels).finish()
    }
}

/// Spin (yielding) until `cond` holds.  Panics with `what` after
/// [`COORDINATION_TIMEOUT`].  For observing monotone state (a waiter count,
/// a queue depth) that has no event to wait on.
pub fn spin_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + COORDINATION_TIMEOUT;
    while !cond() {
        assert!(Instant::now() < deadline, "condition `{what}` never became true");
        std::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::thread;

    #[test]
    fn fake_clock_advances_and_wakes() {
        let clock = FakeClock::new();
        assert_eq!(clock.now(), Duration::ZERO);
        let fired = Arc::new(AtomicU64::new(0));
        let observer = fired.clone();
        clock.on_advance(move || {
            observer.fetch_add(1, Ordering::SeqCst);
        });
        clock.advance(Duration::from_secs(3));
        clock.advance(Duration::from_millis(500));
        assert_eq!(clock.now(), Duration::from_millis(3500));
        assert_eq!(fired.load(Ordering::SeqCst), 2);
        assert!(format!("{clock:?}").contains("wakers"));
    }

    #[test]
    fn step_line_orders_two_threads() {
        let line = StepLine::new();
        let flag = Arc::new(AtomicBool::new(false));
        let worker = {
            let line = line.clone();
            let flag = flag.clone();
            thread::spawn(move || {
                line.wait_for("go");
                flag.store(true, Ordering::SeqCst);
                line.reach("done");
            })
        };
        assert!(!line.has_reached("done"));
        assert!(!flag.load(Ordering::SeqCst), "worker must not run before `go`");
        line.reach("go");
        line.wait_for("done");
        assert!(flag.load(Ordering::SeqCst));
        worker.join().unwrap();
        // Labels are permanent: waiting again returns immediately.
        line.wait_for("go");
    }

    #[test]
    fn spin_until_observes_progress() {
        let n = Arc::new(AtomicU64::new(0));
        let bump = {
            let n = n.clone();
            thread::spawn(move || {
                for _ in 0..10 {
                    n.fetch_add(1, Ordering::SeqCst);
                    thread::yield_now();
                }
            })
        };
        spin_until("count reaches 10", || n.load(Ordering::SeqCst) == 10);
        bump.join().unwrap();
    }

    #[test]
    fn fake_clock_saturates_oversized_advances() {
        let clock = FakeClock::new();
        clock.advance(Duration::MAX);
        assert_eq!(clock.now(), Duration::from_nanos(u64::MAX));
    }
}
