//! Convenience re-exports for platform users: the facade, the three sample
//! DSL processing systems, the aspect modules and the most common substrate
//! types.

pub use crate::platform::{ExecutionMode, Platform, RunOutcome};

pub use aohpc_aop::{Advice, AdviceBinding, Aspect, Pointcut, Weaver, WovenProgram};
pub use aohpc_dsl::common::new_field_sink;
pub use aohpc_dsl::{
    Bucket, DslSystem, FieldSink, Particle, ParticleApp, ParticleSystem, SGridJacobiApp,
    SGridSystem, UsCell, UsGridJacobiApp, UsGridSystem,
};
pub use aohpc_env::{
    AccessState, Block, BlockId, BlockKind, Env, EnvBuilder, Extent, GlobalAddress, LocalAddress,
    TreeTopology,
};
pub use aohpc_kernel::{
    FamilyProgram, HeteroDispatcher, IrStencilApp, KernelFamilyId, OptLevel, ParticleProgram,
    Processor, ProgramFingerprint, SchedulePolicy, StencilProgram, UsGridProgram,
};
pub use aohpc_mem::{MemoryPool, MultiBuffer, PageTable, PoolHandle, PoolSet};
pub use aohpc_runtime::{
    CostModel, CostParams, HpcApp, LayerSpec, MpiAspect, OmpAspect, RunConfig, RunReport,
    RunSummary, TaskCtx, TaskSlot, Topology,
};
pub use aohpc_service::{
    AdmissionStats, BatchError, CompletionStream, FamilyLaneStats, JobError, JobErrorKind,
    JobHandle, JobId, JobOutcome, JobReport, JobSpec, JobSpecError, JobStatus, KernelService,
    PlanCache, PlanCacheStats, ServiceConfig, SessionCtx, SessionId, SessionMeter, SessionSpec,
    SubmitError,
};
pub use aohpc_workloads::{checksum, GridLayout, ParticleSize, RegionSize, Scale};
