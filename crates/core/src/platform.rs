//! The platform facade: pick an execution mode, weave the matching aspect
//! modules, run an application, and get back a uniform report.

use aohpc_aop::{WeaveReport, Weaver, WovenProgram};
use aohpc_dsl::DslSystem;
use aohpc_env::{Cell, Env};
use aohpc_runtime::{
    execute, CostModel, HpcApp, LayerSpec, MpiAspect, OmpAspect, RunConfig, RunReport, TaskSlot,
    Topology, WeaveMode,
};
use serde::Serialize;
use std::sync::Arc;

/// The build/run configurations evaluated in the paper's Fig. 6 and beyond.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ExecutionMode {
    /// "Platform": the application linked against the platform libraries and
    /// compiled directly (no weaving at all).
    PlatformDirect,
    /// "Platform NOP": transcompiled through the weaver with no aspect
    /// modules — measures the pure dispatch overhead.
    PlatformNop,
    /// "Platform OMP": woven with the shared-memory (OpenMP-like) module.
    PlatformOmp {
        /// Number of shared-memory tasks.
        threads: usize,
    },
    /// "Platform MPI": woven with the distributed-memory (MPI-like) module.
    PlatformMpi {
        /// Number of ranks.
        ranks: usize,
    },
    /// "Platform MPI+OMP": both modules woven together.
    PlatformHybrid {
        /// Number of ranks.
        ranks: usize,
        /// Shared-memory tasks per rank.
        threads: usize,
    },
}

impl ExecutionMode {
    /// The topology implied by the mode.
    pub fn topology(&self) -> Topology {
        match *self {
            ExecutionMode::PlatformDirect | ExecutionMode::PlatformNop => Topology::serial(),
            ExecutionMode::PlatformOmp { threads } => {
                Topology::new(vec![LayerSpec::shared(threads)])
            }
            ExecutionMode::PlatformMpi { ranks } => {
                Topology::new(vec![LayerSpec::distributed(ranks)])
            }
            ExecutionMode::PlatformHybrid { ranks, threads } => Topology::hybrid(ranks, threads),
        }
    }

    /// Whether join points are dispatched through the weaver.
    pub fn weave_mode(&self) -> WeaveMode {
        match self {
            ExecutionMode::PlatformDirect => WeaveMode::Direct,
            _ => WeaveMode::Woven,
        }
    }

    /// Build the woven program for this mode (which aspect modules are
    /// "selected for the target system", §III-B4).
    pub fn weave<C: Cell>(&self) -> WovenProgram {
        let mut weaver = Weaver::new();
        match self {
            ExecutionMode::PlatformDirect | ExecutionMode::PlatformNop => {}
            ExecutionMode::PlatformOmp { .. } => {
                weaver.add_aspect(Box::new(OmpAspect::<C>::new()));
            }
            ExecutionMode::PlatformMpi { .. } => {
                weaver.add_aspect(Box::new(MpiAspect::<C>::new()));
            }
            ExecutionMode::PlatformHybrid { .. } => {
                weaver.add_aspect(Box::new(MpiAspect::<C>::new()));
                weaver.add_aspect(Box::new(OmpAspect::<C>::new()));
            }
        }
        weaver.weave()
    }

    /// The label used in the paper's figures.
    pub fn label(&self) -> String {
        match self {
            ExecutionMode::PlatformDirect => "Platform".to_string(),
            ExecutionMode::PlatformNop => "Platform NOP".to_string(),
            ExecutionMode::PlatformOmp { .. } => "Platform OMP".to_string(),
            ExecutionMode::PlatformMpi { .. } => "Platform MPI".to_string(),
            ExecutionMode::PlatformHybrid { .. } => "Platform MPI+OMP".to_string(),
        }
    }

    /// Total number of tasks the mode creates.
    pub fn total_tasks(&self) -> usize {
        self.topology().total_tasks()
    }
}

/// Outcome of a platform run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The runtime's detailed report (per-task counters, communication,
    /// memory, wall time).
    pub report: RunReport,
    /// Simulated execution time from the cost model (used by the scaling
    /// figures; see DESIGN.md §5 for why wall-clock is not used there).
    pub simulated_seconds: f64,
    /// Which aspects advised which join points.
    pub weave: WeaveReport,
    /// The mode that produced this outcome.
    pub mode: ExecutionMode,
    /// Whether MMAT was enabled.
    pub mmat: bool,
}

/// The platform facade.
#[derive(Debug, Clone)]
pub struct Platform {
    mode: ExecutionMode,
    mmat: bool,
    dry_run: bool,
    cost: CostModel,
}

impl Platform {
    /// A platform for the given execution mode with the default cost model,
    /// MMAT disabled and Dry-run enabled (the paper's defaults).
    pub fn new(mode: ExecutionMode) -> Self {
        Platform { mode, mmat: false, dry_run: true, cost: CostModel::default() }
    }

    /// Enable or disable MMAT (Memorization of Memory Access Type).
    pub fn with_mmat(mut self, mmat: bool) -> Self {
        self.mmat = mmat;
        self
    }

    /// Enable or disable the Dry-run prefetch of the distributed layer.
    pub fn with_dry_run(mut self, dry_run: bool) -> Self {
        self.dry_run = dry_run;
        self
    }

    /// Use a custom cost model.
    pub fn with_cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// The execution mode.
    pub fn mode(&self) -> ExecutionMode {
        self.mode
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Run an application given explicit Env and app factories.
    pub fn run<C, A>(
        &self,
        env_factory: Arc<dyn Fn() -> Env<C> + Send + Sync>,
        app_factory: Arc<dyn Fn(TaskSlot) -> A + Send + Sync>,
    ) -> RunOutcome
    where
        C: Cell,
        A: HpcApp<C> + 'static,
    {
        let woven = self.mode.weave::<C>();
        let weave = woven.report();
        let config = RunConfig::serial()
            .with_topology(self.mode.topology())
            .with_mmat(self.mmat)
            .with_dry_run(self.dry_run)
            .with_weave_mode(self.mode.weave_mode());
        let report = execute(&config, woven, env_factory, app_factory);
        let simulated_seconds = self.cost.makespan_seconds(&report);
        RunOutcome { report, simulated_seconds, weave, mode: self.mode, mmat: self.mmat }
    }

    /// Run an application on a DSL processing system.
    pub fn run_system<S, A>(
        &self,
        system: Arc<S>,
        app_factory: Arc<dyn Fn(TaskSlot) -> A + Send + Sync>,
    ) -> RunOutcome
    where
        S: DslSystem + 'static,
        A: HpcApp<S::Cell> + 'static,
    {
        self.run(system.env_factory(), app_factory)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aohpc_dsl::{SGridJacobiApp, SGridSystem};
    use aohpc_workloads::RegionSize;

    fn small_system() -> (Arc<SGridSystem>, SGridJacobiApp) {
        let system = Arc::new(SGridSystem::with_block_size(RegionSize::square(32), 8));
        let app = SGridJacobiApp::new(3, 8);
        (system, app)
    }

    #[test]
    fn mode_metadata() {
        assert_eq!(ExecutionMode::PlatformDirect.label(), "Platform");
        assert_eq!(ExecutionMode::PlatformNop.label(), "Platform NOP");
        assert_eq!(ExecutionMode::PlatformMpi { ranks: 4 }.total_tasks(), 4);
        assert_eq!(ExecutionMode::PlatformHybrid { ranks: 2, threads: 8 }.total_tasks(), 16);
        assert_eq!(ExecutionMode::PlatformDirect.weave_mode(), WeaveMode::Direct);
        assert_eq!(ExecutionMode::PlatformNop.weave_mode(), WeaveMode::Woven);
        assert_eq!(ExecutionMode::PlatformOmp { threads: 2 }.topology().threads_per_rank(), 2);
    }

    #[test]
    fn nop_weave_has_no_advice_but_dispatches() {
        let (system, app) = small_system();
        let outcome = Platform::new(ExecutionMode::PlatformNop).run_system(system, app.factory());
        assert!(outcome.report.dispatches > 0);
        assert_eq!(outcome.report.advised_dispatches, 0);
        assert!(outcome.weave.lines.is_empty());
    }

    #[test]
    fn direct_mode_never_touches_the_weaver() {
        let (system, app) = small_system();
        let outcome =
            Platform::new(ExecutionMode::PlatformDirect).run_system(system, app.factory());
        assert_eq!(outcome.report.dispatches, 0);
        assert_eq!(outcome.report.tasks.len(), 1);
    }

    #[test]
    fn every_parallel_mode_completes_all_steps() {
        for mode in [
            ExecutionMode::PlatformOmp { threads: 2 },
            ExecutionMode::PlatformMpi { ranks: 2 },
            ExecutionMode::PlatformHybrid { ranks: 2, threads: 2 },
        ] {
            let (system, app) = small_system();
            let outcome = Platform::new(mode).with_mmat(true).run_system(system, app.factory());
            assert_eq!(outcome.report.tasks.len(), mode.total_tasks(), "{}", mode.label());
            assert!(outcome.report.tasks.iter().all(|t| t.steps == 3));
            assert!(outcome.simulated_seconds > 0.0);
            assert!(!outcome.weave.lines.is_empty());
        }
    }

    #[test]
    fn mpi_mode_communicates_pages() {
        let (system, app) = small_system();
        let outcome = Platform::new(ExecutionMode::PlatformMpi { ranks: 4 })
            .run_system(system, app.factory());
        assert!(outcome.report.total_pages_sent() > 0);
        assert_eq!(outcome.report.ranks.len(), 4);
    }

    #[test]
    fn simulated_time_shrinks_with_more_ranks() {
        let (system1, app1) = small_system();
        let one = Platform::new(ExecutionMode::PlatformMpi { ranks: 1 })
            .run_system(system1, app1.factory());
        let (system4, app4) = small_system();
        let four = Platform::new(ExecutionMode::PlatformMpi { ranks: 4 })
            .run_system(system4, app4.factory());
        assert!(
            four.simulated_seconds < one.simulated_seconds,
            "strong scaling: {} !< {}",
            four.simulated_seconds,
            one.simulated_seconds
        );
    }
}
