//! # aohpc — an AOP-based building-block platform for constructing HPC DSLs
//!
//! This crate is the public facade of the platform the paper describes: DSL
//! developers combine reusable **aspect modules** (one per layer of the
//! target machine) with the platform's annotation, memory and data-model
//! libraries to obtain a DSL processing system; end-users write serial-
//! looking application code against that DSL and get a parallel program.
//!
//! ```
//! use aohpc::prelude::*;
//! use std::sync::Arc;
//!
//! // DSL part: a 64x64 structured grid tiled into 16x16 blocks.
//! let system = Arc::new(SGridSystem::with_block_size(RegionSize::square(64), 16));
//! // App part: 4 Jacobi iterations (Listing 1 of the paper).
//! let app = SGridJacobiApp::new(4, 16);
//! // Weave the OpenMP-like aspect module in and run on 2 shared-memory tasks.
//! let outcome = Platform::new(ExecutionMode::PlatformOmp { threads: 2 })
//!     .run_system(system, app.factory());
//! assert_eq!(outcome.report.tasks.len(), 2);
//! assert!(outcome.simulated_seconds > 0.0);
//! ```
//!
//! The heavy lifting lives in the substrate crates, re-exported here:
//! [`aohpc_aop`] (join-point model), [`aohpc_mem`] (memory pools, pages,
//! multi-buffering), [`aohpc_env`] (the Env block tree, MMAT, Z-order),
//! [`aohpc_runtime`] (layers, aspect modules, the simulated distributed
//! fabric, the cost model) and [`aohpc_dsl`] (the three sample DSL processing
//! systems).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod platform;
pub mod prelude;

pub use platform::{ExecutionMode, Platform, RunOutcome};

pub use aohpc_aop as aop;
pub use aohpc_dsl as dsl;
pub use aohpc_env as env;
pub use aohpc_mem as mem;
pub use aohpc_runtime as runtime;
pub use aohpc_workloads as workloads;
