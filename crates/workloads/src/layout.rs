//! Memory layouts for the unstructured-grid sample (CaseC / CaseR).
//!
//! The unstructured-grid DSL stores, with every grid point, the global
//! addresses of its four neighbours; the two evaluation cases differ only in
//! where points live in memory:
//!
//! * **CaseC** — points are stored at their spatial position, so neighbour
//!   accesses are consecutive and mostly fall inside the same Block
//!   (Assumption III holds);
//! * **CaseR** — points are scattered by a pseudo-random permutation, so
//!   neighbour accesses have no spatial locality (Assumption III is violated)
//!   and most of them leave the Block — which is exactly the stress case the
//!   paper uses to expose Env-search and communication overheads.
//!
//! The paper builds CaseR by permuting the data array.  To avoid materialising
//! a permutation table for large domains, this crate uses a bijective affine
//! permutation `i ↦ (a·i + b) mod n` with `gcd(a, n) = 1`: deterministic,
//! seedable, O(1) memory, and with the same "neighbours are far away"
//! property.

use serde::Serialize;

/// A bijective affine permutation of `0..n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct AffinePermutation {
    n: u64,
    a: u64,
    b: u64,
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl AffinePermutation {
    /// Build a permutation of `0..n` from a seed.  The multiplier is derived
    /// from the seed and adjusted until it is coprime with `n`.
    pub fn new(n: u64, seed: u64) -> Self {
        assert!(n > 0);
        // For n <= 2 the only multiplier coprime with n and different from 0
        // is 1, so the scrambling degenerates to a (possibly shifted)
        // identity; the scan below assumes a coprime >= 2 exists, which holds
        // only for n >= 3 (n - 1 is always one).
        let a = if n <= 2 {
            1
        } else {
            let mut a = (0x9e37_79b9_7f4a_7c15u64 ^ seed.wrapping_mul(0x2545_f491_4f6c_dd1d)) % n;
            if a < 2 {
                a = 2;
            }
            while gcd(a, n) != 1 {
                a += 1;
                if a == n {
                    a = 2;
                }
            }
            a
        };
        let b = seed.wrapping_mul(0x9e37_79b9) % n;
        AffinePermutation { n, a, b }
    }

    /// Domain size.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Whether the domain is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Apply the permutation.
    pub fn apply(&self, i: u64) -> u64 {
        debug_assert!(i < self.n);
        (self.a.wrapping_mul(i) % self.n + self.b) % self.n
    }
}

/// The memory layout of the unstructured-grid sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum GridLayout {
    /// Consecutive layout with spatial locality.
    CaseC,
    /// Scattered layout without spatial locality, derived from a seed.
    CaseR {
        /// Seed of the scattering permutation.
        seed: u64,
    },
}

impl GridLayout {
    /// Map a logical grid point `(x, y)` of an `nx × ny` domain to the storage
    /// position where the unstructured-grid DSL places it.
    pub fn storage_of(&self, x: i64, y: i64, nx: i64, ny: i64) -> (i64, i64) {
        debug_assert!(x >= 0 && y >= 0 && x < nx && y < ny);
        match self {
            GridLayout::CaseC => (x, y),
            GridLayout::CaseR { seed } => {
                let n = (nx * ny) as u64;
                let perm = AffinePermutation::new(n, *seed);
                let flat = perm.apply((y * nx + x) as u64) as i64;
                (flat % nx, flat / nx)
            }
        }
    }

    /// Short name used in reports ("CaseC" / "CaseR").
    pub fn name(&self) -> &'static str {
        match self {
            GridLayout::CaseC => "CaseC",
            GridLayout::CaseR { .. } => "CaseR",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn casec_is_identity() {
        assert_eq!(GridLayout::CaseC.storage_of(3, 5, 16, 16), (3, 5));
        assert_eq!(GridLayout::CaseC.name(), "CaseC");
    }

    #[test]
    fn caser_is_a_permutation_of_the_domain() {
        let layout = GridLayout::CaseR { seed: 42 };
        let (nx, ny) = (16i64, 12i64);
        let mut seen = HashSet::new();
        for y in 0..ny {
            for x in 0..nx {
                let (sx, sy) = layout.storage_of(x, y, nx, ny);
                assert!(sx >= 0 && sx < nx && sy >= 0 && sy < ny);
                assert!(seen.insert((sx, sy)), "storage position reused");
            }
        }
        assert_eq!(seen.len(), (nx * ny) as usize);
        assert_eq!(layout.name(), "CaseR");
    }

    #[test]
    fn caser_destroys_spatial_locality() {
        let layout = GridLayout::CaseR { seed: 7 };
        let (nx, ny) = (64i64, 64i64);
        // Measure the average storage distance of logically adjacent points;
        // it must be far larger than 1 (the CaseC distance).
        let mut total = 0.0;
        let mut count = 0.0;
        for y in 0..ny {
            for x in 0..nx - 1 {
                let (ax, ay) = layout.storage_of(x, y, nx, ny);
                let (bx, by) = layout.storage_of(x + 1, y, nx, ny);
                total += ((ax - bx).abs() + (ay - by).abs()) as f64;
                count += 1.0;
            }
        }
        assert!(total / count > 8.0, "neighbours are scattered far apart");
    }

    #[test]
    fn tiny_domains_terminate_and_are_bijective() {
        // Regression: n = 2 used to loop forever in `new` because the only
        // valid multiplier (1) was excluded by the "bump to 2" rule.
        for n in 1u64..=8 {
            for seed in 0..16 {
                let p = AffinePermutation::new(n, seed);
                let mut seen = vec![false; n as usize];
                for i in 0..n {
                    let j = p.apply(i);
                    assert!(j < n);
                    assert!(!seen[j as usize], "n={n} seed={seed} not a bijection");
                    seen[j as usize] = true;
                }
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = GridLayout::CaseR { seed: 1 }.storage_of(5, 5, 32, 32);
        let b = GridLayout::CaseR { seed: 2 }.storage_of(5, 5, 32, 32);
        assert_ne!(a, b);
    }

    proptest! {
        /// The affine map is a bijection for arbitrary sizes and seeds.
        #[test]
        fn affine_permutation_is_bijective(n in 1u64..3000, seed in 0u64..u64::MAX) {
            let p = AffinePermutation::new(n, seed);
            let mut seen = vec![false; n as usize];
            for i in 0..n {
                let j = p.apply(i);
                prop_assert!(j < n);
                prop_assert!(!seen[j as usize]);
                seen[j as usize] = true;
            }
        }

        /// storage_of stays inside the domain for both cases.
        #[test]
        fn storage_in_bounds(x in 0i64..64, y in 0i64..64, seed in 0u64..1000) {
            let (nx, ny) = (64, 64);
            for layout in [GridLayout::CaseC, GridLayout::CaseR { seed }] {
                let (sx, sy) = layout.storage_of(x, y, nx, ny);
                prop_assert!(sx >= 0 && sx < nx);
                prop_assert!(sy >= 0 && sy < ny);
            }
        }
    }
}
