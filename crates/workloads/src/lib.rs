//! # aohpc-workloads — workload and parameter generators for the evaluation
//!
//! The paper's evaluation sweeps three sample applications (structured grid,
//! unstructured grid, particle method) over region sizes, particle counts,
//! parallelism degrees and memory-layout cases.  This crate centralises those
//! parameters so that the benchmark harnesses, the examples and the tests all
//! draw from the same definitions:
//!
//! * [`Scale`] — the size class of a run.  `Paper` reproduces the paper's
//!   sizes (4096² regions, 2¹⁸ particles); `Default` and `Smoke` are scaled
//!   down so the full suite runs on a single-core container in minutes or
//!   seconds while preserving every ratio the figures report.
//! * [`GridLayout`] — the CaseC (consecutive, spatially local) and CaseR
//!   (scattered, no spatial locality) memory layouts of the unstructured-grid
//!   sample, implemented as a bijective affine permutation so that arbitrarily
//!   large domains need no permutation table.
//! * [`checksum`] — order-insensitive field checksum used to compare platform
//!   runs against handwritten baselines in tests and harnesses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod layout;
pub mod scale;

pub use layout::{AffinePermutation, GridLayout};
pub use scale::{ParticleSize, RegionSize, Scale, ScaleParseError};

/// Order-insensitive checksum of a scalar field (sum and sum of squares
/// folded together).  Used to compare results across execution modes without
/// storing full fields.
pub fn checksum(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0f64;
    let mut sq = 0.0f64;
    for v in values {
        sum += v;
        sq += v * v;
    }
    sum + sq * 1e-3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_is_order_insensitive() {
        let a = checksum([1.0, 2.0, 3.0]);
        let b = checksum([3.0, 1.0, 2.0]);
        assert_eq!(a, b);
        assert_ne!(checksum([1.0, 2.0]), checksum([1.0, 2.5]));
    }
}
