//! Problem-size classes for the evaluation harnesses.
//!
//! Every figure of the paper fixes a region size (structured / unstructured
//! grid) or a particle count.  Reproducing those sizes verbatim (4096² cells,
//! 2¹⁸ particles, 64 ranks) on a single-core container would take hours per
//! figure, so each harness accepts a [`Scale`]:
//!
//! * `Paper` — the sizes printed in the paper;
//! * `Default` — every dimension divided so a figure regenerates in roughly a
//!   minute, preserving the block-to-task and halo-to-interior ratios that
//!   drive the reported effects;
//! * `Smoke` — minimal sizes for CI and unit tests.
//!
//! Harnesses select the scale from the `AOHPC_SCALE` environment variable
//! (`paper`, `default`, `smoke`) or a `--scale` flag.

use serde::Serialize;
use std::fmt;

/// Size class of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Default)]
pub enum Scale {
    /// Minimal sizes for tests.
    Smoke,
    /// Container-friendly sizes (default).
    #[default]
    Default,
    /// The paper's sizes.
    Paper,
}

/// Error returned by [`Scale::parse`] for an unrecognised size class.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ScaleParseError {
    /// The rejected input.
    pub value: String,
}

impl fmt::Display for ScaleParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown scale {:?} (expected one of: smoke, ci, default, paper, full)",
            self.value
        )
    }
}

impl std::error::Error for ScaleParseError {}

impl Scale {
    /// Parse from a string (case-insensitive).
    ///
    /// Unknown values are an error — they used to fall back to `Default`
    /// silently, which turned a typo in `AOHPC_SCALE=paper` into a quietly
    /// wrong (400× smaller) experiment.
    pub fn parse(s: &str) -> Result<Scale, ScaleParseError> {
        match s.to_ascii_lowercase().as_str() {
            "smoke" | "ci" => Ok(Scale::Smoke),
            "default" => Ok(Scale::Default),
            "paper" | "full" => Ok(Scale::Paper),
            _ => Err(ScaleParseError { value: s.to_string() }),
        }
    }

    /// Read the scale from the `AOHPC_SCALE` environment variable.
    ///
    /// An unset variable means `Default`; a set-but-unrecognised value also
    /// falls back to `Default` but prints a warning to stderr (the harness
    /// binaries have no other channel, and aborting a long sweep over a typo
    /// in an auxiliary knob would be worse).
    pub fn from_env() -> Scale {
        match std::env::var("AOHPC_SCALE") {
            Err(_) => Scale::Default,
            Ok(raw) => Scale::parse(&raw).unwrap_or_else(|e| {
                eprintln!("warning: AOHPC_SCALE: {e}; using the default scale");
                Scale::Default
            }),
        }
    }

    /// The region sizes of the single-task overhead experiment (Fig. 6):
    /// the paper uses 2048² and 4096².
    pub fn fig6_regions(&self) -> Vec<RegionSize> {
        match self {
            Scale::Smoke => vec![RegionSize::square(32)],
            Scale::Default => vec![RegionSize::square(128), RegionSize::square(256)],
            Scale::Paper => vec![RegionSize::square(2048), RegionSize::square(4096)],
        }
    }

    /// The particle counts of Fig. 6 (paper: 2¹⁶ and 2¹⁸).
    pub fn fig6_particles(&self) -> Vec<ParticleSize> {
        match self {
            Scale::Smoke => vec![ParticleSize::new(1 << 8)],
            Scale::Default => vec![ParticleSize::new(1 << 10), ParticleSize::new(1 << 12)],
            Scale::Paper => vec![ParticleSize::new(1 << 16), ParticleSize::new(1 << 18)],
        }
    }

    /// Region size used by the scaling experiments (paper: 4096²).
    pub fn scaling_region(&self) -> RegionSize {
        match self {
            Scale::Smoke => RegionSize::square(32),
            Scale::Default => RegionSize::square(256),
            Scale::Paper => RegionSize::square(4096),
        }
    }

    /// Per-task region size used by the weak-scaling experiments
    /// (paper: 2048² per task).
    pub fn weak_scaling_region_per_task(&self) -> RegionSize {
        match self {
            Scale::Smoke => RegionSize::square(16),
            Scale::Default => RegionSize::square(128),
            Scale::Paper => RegionSize::square(2048),
        }
    }

    /// Particle count used by the strong-scaling experiments (paper: 2¹⁸).
    pub fn scaling_particles(&self) -> ParticleSize {
        match self {
            Scale::Smoke => ParticleSize::new(1 << 8),
            Scale::Default => ParticleSize::new(1 << 12),
            Scale::Paper => ParticleSize::new(1 << 18),
        }
    }

    /// Per-task particle count for weak scaling (paper: 2¹⁶ per task).
    pub fn weak_scaling_particles_per_task(&self) -> ParticleSize {
        match self {
            Scale::Smoke => ParticleSize::new(1 << 7),
            Scale::Default => ParticleSize::new(1 << 10),
            Scale::Paper => ParticleSize::new(1 << 16),
        }
    }

    /// Region size of the memory-usage experiment (Fig. 12; paper: 512²).
    pub fn fig12_region(&self) -> RegionSize {
        match self {
            Scale::Smoke => RegionSize::square(32),
            Scale::Default => RegionSize::square(128),
            Scale::Paper => RegionSize::square(512),
        }
    }

    /// Particle count of the memory-usage experiment (paper: 2¹⁴).
    pub fn fig12_particles(&self) -> ParticleSize {
        match self {
            Scale::Smoke => ParticleSize::new(1 << 7),
            Scale::Default => ParticleSize::new(1 << 9),
            Scale::Paper => ParticleSize::new(1 << 14),
        }
    }

    /// Memory-pool size of the Fig. 12 experiment (paper: 300 MB).
    pub fn fig12_pool_bytes(&self) -> u64 {
        match self {
            Scale::Smoke => 8 << 20,
            Scale::Default => 32 << 20,
            Scale::Paper => 300 << 20,
        }
    }

    /// Block size (cells per side) of the grid DSLs (paper: 256).
    pub fn grid_block_size(&self) -> usize {
        match self {
            Scale::Smoke => 8,
            Scale::Default => 32,
            Scale::Paper => 256,
        }
    }

    /// Number of main-loop iterations for the timed benchmarks.
    pub fn loop_count(&self) -> usize {
        match self {
            Scale::Smoke => 3,
            Scale::Default => 8,
            Scale::Paper => 50,
        }
    }

    /// MPI process counts of the strong-scaling experiment (Fig. 7).
    pub fn strong_scaling_processes(&self) -> Vec<usize> {
        match self {
            Scale::Smoke => vec![1, 2],
            _ => vec![1, 2, 4, 8, 16],
        }
    }

    /// MPI process counts of the weak-scaling experiment (Fig. 8).
    pub fn weak_scaling_processes(&self) -> Vec<usize> {
        match self {
            Scale::Smoke => vec![1, 4],
            Scale::Default => vec![1, 4, 16],
            Scale::Paper => vec![1, 4, 16, 64],
        }
    }

    /// OpenMP thread counts of the OpenMP scaling experiments (Figs. 9–10).
    pub fn omp_thread_counts(&self) -> Vec<usize> {
        match self {
            Scale::Smoke => vec![1, 2],
            _ => vec![1, 2, 4, 8, 16],
        }
    }

    /// The (processes × threads) combinations of Fig. 11.
    pub fn hybrid_combinations(&self) -> Vec<(usize, usize)> {
        match self {
            Scale::Smoke => vec![(1, 4), (2, 2), (4, 1)],
            _ => vec![(1, 16), (2, 8), (4, 4), (8, 2), (16, 1)],
        }
    }

    // --- kernel-execution service workloads -------------------------------

    /// Number of concurrent tenants the service harnesses simulate.
    pub fn service_tenants(&self) -> usize {
        match self {
            Scale::Smoke => 4,
            Scale::Default => 6,
            Scale::Paper => 16,
        }
    }

    /// Jobs each tenant submits per round.
    pub fn service_jobs_per_tenant(&self) -> usize {
        match self {
            Scale::Smoke => 2,
            Scale::Default => 4,
            Scale::Paper => 16,
        }
    }

    /// Region size of one service job (small relative to the figure harnesses
    /// — a service run executes many jobs).
    pub fn service_region(&self) -> RegionSize {
        match self {
            Scale::Smoke => RegionSize::square(24),
            Scale::Default => RegionSize::square(64),
            Scale::Paper => RegionSize::square(256),
        }
    }

    /// Block size (cells per side) of a service job.
    pub fn service_block_size(&self) -> usize {
        match self {
            Scale::Smoke => 8,
            Scale::Default => 16,
            Scale::Paper => 64,
        }
    }

    /// Time steps of one service job.
    pub fn service_steps(&self) -> usize {
        match self {
            Scale::Smoke => 2,
            Scale::Default => 4,
            Scale::Paper => 16,
        }
    }

    /// Worker-pool size of the service harnesses.
    pub fn service_workers(&self) -> usize {
        match self {
            Scale::Smoke => 4,
            Scale::Default => 4,
            Scale::Paper => 8,
        }
    }
}

impl fmt::Display for Scale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scale::Smoke => write!(f, "smoke"),
            Scale::Default => write!(f, "default"),
            Scale::Paper => write!(f, "paper"),
        }
    }
}

/// Size of a square (or rectangular) grid region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct RegionSize {
    /// Cells along X.
    pub nx: usize,
    /// Cells along Y.
    pub ny: usize,
}

impl RegionSize {
    /// A square region of side `n`.
    pub const fn square(n: usize) -> Self {
        RegionSize { nx: n, ny: n }
    }

    /// Total cell count.
    pub fn cells(&self) -> usize {
        self.nx * self.ny
    }
}

impl fmt::Display for RegionSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.nx, self.ny)
    }
}

/// Particle-count workload size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ParticleSize {
    /// Number of movable particles.
    pub count: usize,
}

impl ParticleSize {
    /// A workload of `count` particles.
    pub const fn new(count: usize) -> Self {
        ParticleSize { count }
    }
}

impl fmt::Display for ParticleSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count.is_power_of_two() {
            write!(f, "2^{}", self.count.trailing_zeros())
        } else {
            write!(f, "{}", self.count)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        assert_eq!(Scale::parse("paper"), Ok(Scale::Paper));
        assert_eq!(Scale::parse("SMOKE"), Ok(Scale::Smoke));
        assert_eq!(Scale::parse("ci"), Ok(Scale::Smoke));
        assert_eq!(Scale::parse("default"), Ok(Scale::Default));
        assert_eq!(Scale::parse("full"), Ok(Scale::Paper));
        assert_eq!(Scale::Paper.to_string(), "paper");
        assert_eq!(Scale::default(), Scale::Default);
    }

    #[test]
    fn unknown_scales_are_an_error_not_a_silent_default() {
        let err = Scale::parse("anything").unwrap_err();
        assert_eq!(err.value, "anything");
        assert!(err.to_string().contains("anything"));
        assert!(err.to_string().contains("smoke"), "the message lists the accepted values");
        assert!(Scale::parse("").is_err());
    }

    #[test]
    fn service_dimensions_shrink_with_scale() {
        for (small, big) in [(Scale::Smoke, Scale::Default), (Scale::Default, Scale::Paper)] {
            assert!(small.service_region().cells() <= big.service_region().cells());
            assert!(small.service_tenants() <= big.service_tenants());
            assert!(small.service_jobs_per_tenant() <= big.service_jobs_per_tenant());
            assert!(small.service_steps() <= big.service_steps());
        }
        // Regions divide evenly into blocks at every scale, so a service run
        // exercises exactly one block shape (one plan-cache entry per
        // program).
        for s in [Scale::Smoke, Scale::Default, Scale::Paper] {
            assert_eq!(s.service_region().nx % s.service_block_size(), 0);
            assert_eq!(s.service_region().ny % s.service_block_size(), 0);
            assert!(s.service_workers() >= 1);
        }
    }

    #[test]
    fn paper_scale_matches_published_parameters() {
        let s = Scale::Paper;
        assert_eq!(s.fig6_regions(), vec![RegionSize::square(2048), RegionSize::square(4096)]);
        assert_eq!(s.fig6_particles()[0].count, 1 << 16);
        assert_eq!(s.fig6_particles()[1].count, 1 << 18);
        assert_eq!(s.scaling_region(), RegionSize::square(4096));
        assert_eq!(s.weak_scaling_region_per_task(), RegionSize::square(2048));
        assert_eq!(s.fig12_region(), RegionSize::square(512));
        assert_eq!(s.fig12_pool_bytes(), 300 << 20);
        assert_eq!(s.grid_block_size(), 256);
        assert_eq!(s.strong_scaling_processes(), vec![1, 2, 4, 8, 16]);
        assert_eq!(s.weak_scaling_processes(), vec![1, 4, 16, 64]);
        assert_eq!(s.hybrid_combinations().len(), 5);
        assert_eq!(s.hybrid_combinations()[0], (1, 16));
    }

    #[test]
    fn smaller_scales_shrink_every_dimension() {
        for (small, big) in [(Scale::Smoke, Scale::Default), (Scale::Default, Scale::Paper)] {
            assert!(small.scaling_region().cells() < big.scaling_region().cells());
            assert!(small.scaling_particles().count <= big.scaling_particles().count);
            assert!(small.grid_block_size() <= big.grid_block_size());
            assert!(small.loop_count() <= big.loop_count());
        }
    }

    #[test]
    fn region_and_particle_display() {
        assert_eq!(RegionSize::square(2048).to_string(), "2048x2048");
        assert_eq!(ParticleSize::new(1 << 16).to_string(), "2^16");
        assert_eq!(ParticleSize::new(1000).to_string(), "1000");
        assert_eq!(RegionSize::square(8).cells(), 64);
    }
}
