//! Cluster liveness: the per-node membership view and the rendezvous hash
//! that re-homes plan ownership when it changes.
//!
//! Every rank runs a failure detector over the multiplexed control plane:
//! heartbeats ride dedicated liveness frames (tags above
//! [`aohpc_runtime::LIVENESS_TAG_BASE`], metered outside the application
//! control ledger), and each node folds what it hears into a [`Membership`]
//! view — [`NodeState::Alive`] / [`NodeState::Suspect`] /
//! [`NodeState::Dead`] per rank, each transition carrying an **incarnation
//! number** so late frames from a declared-dead rank are recognizably stale
//! and dropped instead of resurrecting it (or fulfilling a stale reply
//! slot — the `shutdown()` vs node-death race).
//!
//! Detection is driven by the service's `Clock` seam: under a
//! [`FakeClock`](aohpc_testalloc::sync::FakeClock) the pacemaker ticks on
//! `advance`, so fault tests control suspicion and death *exactly*; under
//! the wall clock the default [`ClusterTuning`] is generous (suspect after
//! ~1 s of silence, dead after ~3 s) and [`Membership::tick`] forgives its
//! own stalls — if the detector itself was descheduled longer than the
//! suspect threshold, it refreshes every deadline instead of suspecting the
//! whole world.
//!
//! Plan ownership uses **rendezvous (HRW) hashing** over the live view
//! ([`rendezvous_owner`]): each (key, rank) pair gets an independent score
//! and the highest live score owns the key.  When a rank dies only the keys
//! it owned move (to their second-highest scorer); every key owned by a
//! survivor keeps its owner — the minimal-disruption property modulo
//! hashing lacks, and the reason re-ownership restores
//! `compiles == distinct fingerprints` for survivor-owned plans instead of
//! reshuffling everything.

use serde::Serialize;
use std::sync::Mutex;
use std::time::Duration;

/// One rank's state in the local membership view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum NodeState {
    /// Heard from recently (or never yet measured against a deadline).
    Alive,
    /// Silent past the suspect threshold — excluded from plan ownership,
    /// still given the chance to refute by any frame carrying a current
    /// incarnation.
    Suspect,
    /// Silent past the death threshold (or fail-stopped by the fault
    /// harness).  Terminal for the incarnation: only a *higher* incarnation
    /// could revive the rank, which this cluster never issues.
    Dead,
}

/// Failure-detector timing knobs.
///
/// The defaults are deliberately generous for wall-clock runs (the existing
/// cluster tests assert exact compile counts and must never see a false
/// suspicion); fault tests tighten them and drive time with a fake clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterTuning {
    /// Cadence the pacemaker broadcasts heartbeats at.
    pub heartbeat_every: Duration,
    /// Silence after which a rank is suspected (ownership excludes it).
    pub suspect_after: Duration,
    /// Silence after which a suspect is declared dead (failover fires).
    pub dead_after: Duration,
    /// After a suspicion, heartbeats cannot clear it until this cooldown
    /// elapses — a wedged-then-revived fabric must re-earn trust instead of
    /// flapping ownership on every late frame.
    pub suspect_cooldown: Duration,
    /// Cross-node plan-fetch retry budget: how many times a fetcher retries
    /// against the (possibly re-homed) owner before compiling locally.
    pub fetch_retries: u32,
    /// Base backoff between fetch retries (doubles per attempt, capped at
    /// 8×).
    pub fetch_backoff: Duration,
    /// Per-attempt reply deadline for a cross-node plan fetch.
    pub fetch_timeout: Duration,
}

impl Default for ClusterTuning {
    fn default() -> Self {
        ClusterTuning {
            heartbeat_every: Duration::from_millis(100),
            suspect_after: Duration::from_secs(1),
            dead_after: Duration::from_secs(3),
            suspect_cooldown: Duration::from_millis(500),
            fetch_retries: 3,
            fetch_backoff: Duration::from_millis(2),
            fetch_timeout: Duration::from_secs(10),
        }
    }
}

impl ClusterTuning {
    /// Aggressive thresholds for fake-clock fault tests: suspicion at 50 ms
    /// of fake silence, death at 150 ms, heartbeats every 10 ms.
    pub fn fast() -> Self {
        ClusterTuning {
            heartbeat_every: Duration::from_millis(10),
            suspect_after: Duration::from_millis(50),
            dead_after: Duration::from_millis(150),
            suspect_cooldown: Duration::from_millis(25),
            fetch_retries: 3,
            fetch_backoff: Duration::from_millis(1),
            fetch_timeout: Duration::from_millis(200),
        }
    }

    /// Backoff before retry `attempt` (0-based): base × 2^attempt, capped at
    /// 8× base.
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        self.fetch_backoff * (1u32 << attempt.min(3))
    }
}

/// Counters of one node's failure detector.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct MembershipStats {
    /// Alive → Suspect transitions recorded locally.
    pub suspicions: u64,
    /// Transitions into Dead recorded locally.
    pub deaths: u64,
    /// Suspect → Alive recoveries (a suspect refuted past its cooldown).
    pub recoveries: u64,
    /// Frames dropped because they carried a stale incarnation (e.g. a
    /// `PLAN_REP` from a rank declared dead mid-flight).
    pub stale_replies_dropped: u64,
}

#[derive(Debug, Clone, Copy)]
struct NodeView {
    state: NodeState,
    /// The rank's current incarnation as this node believes it.  Frames
    /// carrying an older incarnation are stale; a declared death bumps it so
    /// nothing the dead incarnation sent can be accepted afterwards.
    incarnation: u64,
    /// Detector time the rank was last heard from.
    last_seen: Duration,
    /// While suspect: detector time before which heartbeats cannot clear
    /// the suspicion.
    cooldown_until: Duration,
}

struct ViewInner {
    nodes: Vec<NodeView>,
    last_tick: Duration,
    stats: MembershipStats,
}

/// One node's view of which ranks are alive — the failure detector state all
/// ownership and failover decisions read.  Thread-safe; every method is a
/// short critical section.
pub struct Membership {
    rank: usize,
    tuning: ClusterTuning,
    inner: Mutex<ViewInner>,
}

/// A state transition [`Membership::tick`] or a frame observation produced,
/// for the caller to broadcast / dispatch through the obs join points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// The rank whose state changed.
    pub subject: usize,
    /// Its new state.
    pub to: NodeState,
    /// The subject's incarnation after the transition.
    pub incarnation: u64,
}

impl Membership {
    /// A fresh view for `rank` in a mesh of `ranks`, everyone alive at
    /// incarnation 0 and last seen "now".
    pub fn new(rank: usize, ranks: usize, tuning: ClusterTuning, now: Duration) -> Self {
        Membership {
            rank,
            tuning,
            inner: Mutex::new(ViewInner {
                nodes: (0..ranks)
                    .map(|_| NodeView {
                        state: NodeState::Alive,
                        incarnation: 0,
                        last_seen: now,
                        cooldown_until: Duration::ZERO,
                    })
                    .collect(),
                last_tick: now,
                stats: MembershipStats::default(),
            }),
        }
    }

    /// The local rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total ranks in the mesh (live or not).
    pub fn ranks(&self) -> usize {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).nodes.len()
    }

    /// The detector's timing knobs.
    pub fn tuning(&self) -> ClusterTuning {
        self.tuning
    }

    /// A rank's current state.
    pub fn state_of(&self, rank: usize) -> NodeState {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).nodes[rank].state
    }

    /// A rank's current incarnation.
    pub fn incarnation_of(&self, rank: usize) -> u64 {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).nodes[rank].incarnation
    }

    /// The ranks currently eligible for plan ownership: Alive only (a
    /// suspect is excluded so fetchers re-home immediately instead of
    /// burning their retry budget against a silent owner).  The local rank
    /// is always included — a node never excludes itself.
    pub fn live_view(&self) -> Vec<usize> {
        let inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner
            .nodes
            .iter()
            .enumerate()
            .filter(|(r, n)| *r == self.rank || n.state == NodeState::Alive)
            .map(|(r, _)| r)
            .collect()
    }

    /// Detector counters.
    pub fn stats(&self) -> MembershipStats {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).stats
    }

    /// Liveness evidence: any frame arriving from `from` at detector time
    /// `now` with the current incarnation refreshes its deadline, and — once
    /// a suspicion's cooldown has passed — clears the suspicion.  Returns a
    /// recovery transition when it does.  Evidence from a dead rank (or a
    /// stale incarnation) is ignored; death is terminal.
    pub fn observe_alive(
        &self,
        from: usize,
        incarnation: u64,
        now: Duration,
    ) -> Option<Transition> {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let node = &mut inner.nodes[from];
        if node.state == NodeState::Dead || incarnation < node.incarnation {
            return None;
        }
        node.last_seen = now;
        if node.state == NodeState::Suspect && now >= node.cooldown_until {
            node.state = NodeState::Alive;
            let t =
                Transition { subject: from, to: NodeState::Alive, incarnation: node.incarnation };
            inner.stats.recoveries += 1;
            return Some(t);
        }
        None
    }

    /// Whether a reply from `from` claiming `incarnation` is current — the
    /// guard on `PLAN_REP`: a reply sent before its sender was declared dead
    /// carries the old incarnation and must not fulfil a live slot.  A stale
    /// reply is metered.
    pub fn accepts_reply(&self, from: usize, incarnation: u64) -> bool {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let node = inner.nodes[from];
        if node.state != NodeState::Dead && incarnation >= node.incarnation {
            true
        } else {
            inner.stats.stale_replies_dropped += 1;
            false
        }
    }

    /// Adopt a peer's stronger claim about `subject` (a `SUSPECT` broadcast):
    /// views converge because Dead beats Suspect beats Alive at equal
    /// incarnation, and a higher incarnation always wins.  Returns the local
    /// transition if the claim changed anything.
    pub fn adopt(&self, subject: usize, to: NodeState, incarnation: u64) -> Option<Transition> {
        if subject == self.rank {
            // A peer may suspect *us* (e.g. our fabric wedged); we do not
            // mark ourselves, the pacemaker keeps refuting.
            return None;
        }
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let node = &mut inner.nodes[subject];
        let stronger = incarnation > node.incarnation
            || (incarnation == node.incarnation && rank_of_state(to) > rank_of_state(node.state));
        if !stronger {
            return None;
        }
        node.incarnation = incarnation.max(node.incarnation);
        node.state = to;
        if to == NodeState::Dead {
            // Bump past the dead incarnation so anything it sent is stale.
            node.incarnation += 1;
            inner.stats.deaths += 1;
        } else if to == NodeState::Suspect {
            inner.stats.suspicions += 1;
        }
        let incarnation = inner.nodes[subject].incarnation;
        Some(Transition { subject, to, incarnation })
    }

    /// Unilaterally declare `subject` dead (the fault harness's fail-stop, or
    /// a fetch path that proved the owner gone).  Returns the transition if
    /// the rank was not already dead.
    pub fn declare_dead(&self, subject: usize) -> Option<Transition> {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let node = &mut inner.nodes[subject];
        if node.state == NodeState::Dead {
            return None;
        }
        node.state = NodeState::Dead;
        node.incarnation += 1;
        let incarnation = node.incarnation;
        inner.stats.deaths += 1;
        Some(Transition { subject, to: NodeState::Dead, incarnation })
    }

    /// Mark `subject` suspect immediately (a fetch timeout is direct
    /// evidence, ahead of the deadline sweep), starting its cooldown.
    /// Returns the transition if the rank was alive.
    pub fn suspect(&self, subject: usize, now: Duration) -> Option<Transition> {
        if subject == self.rank {
            return None;
        }
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let node = &mut inner.nodes[subject];
        if node.state != NodeState::Alive {
            return None;
        }
        node.state = NodeState::Suspect;
        node.cooldown_until = now + self.tuning.suspect_cooldown;
        let incarnation = node.incarnation;
        inner.stats.suspicions += 1;
        Some(Transition { subject, to: NodeState::Suspect, incarnation })
    }

    /// One deadline sweep at detector time `now`: Alive ranks silent past
    /// `suspect_after` become Suspect (cooldown started), Suspect ranks
    /// silent past `dead_after` become Dead (incarnation bumped).  Returns
    /// every transition for the caller to broadcast.
    ///
    /// **Stall forgiveness**: if the detector *itself* went longer than
    /// `suspect_after` between sweeps (a descheduled thread on a loaded
    /// host, not silent peers), every deadline is refreshed instead — a
    /// stalled observer must not condemn the observed.
    pub fn tick(&self, now: Duration) -> Vec<Transition> {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let gap = now.saturating_sub(inner.last_tick);
        inner.last_tick = now;
        if gap > self.tuning.suspect_after {
            for node in &mut inner.nodes {
                if node.state != NodeState::Dead {
                    node.last_seen = now;
                }
            }
            return Vec::new();
        }
        let mut transitions = Vec::new();
        let me = self.rank;
        let (suspect_after, dead_after, cooldown) =
            (self.tuning.suspect_after, self.tuning.dead_after, self.tuning.suspect_cooldown);
        for (rank, node) in inner.nodes.iter_mut().enumerate() {
            if rank == me {
                continue;
            }
            let silent = now.saturating_sub(node.last_seen);
            match node.state {
                NodeState::Alive if silent > suspect_after => {
                    node.state = NodeState::Suspect;
                    node.cooldown_until = now + cooldown;
                    transitions.push(Transition {
                        subject: rank,
                        to: NodeState::Suspect,
                        incarnation: node.incarnation,
                    });
                }
                NodeState::Suspect if silent > dead_after => {
                    node.state = NodeState::Dead;
                    node.incarnation += 1;
                    transitions.push(Transition {
                        subject: rank,
                        to: NodeState::Dead,
                        incarnation: node.incarnation,
                    });
                }
                _ => {}
            }
        }
        for t in &transitions {
            match t.to {
                NodeState::Suspect => inner.stats.suspicions += 1,
                NodeState::Dead => inner.stats.deaths += 1,
                NodeState::Alive => {}
            }
        }
        transitions
    }
}

impl std::fmt::Debug for Membership {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        f.debug_struct("Membership")
            .field("rank", &self.rank)
            .field("states", &inner.nodes.iter().map(|n| n.state).collect::<Vec<_>>())
            .field("stats", &inner.stats)
            .finish()
    }
}

/// Severity order for view convergence: a stronger claim overwrites a weaker
/// one at equal incarnation.
fn rank_of_state(state: NodeState) -> u8 {
    match state {
        NodeState::Alive => 0,
        NodeState::Suspect => 1,
        NodeState::Dead => 2,
    }
}

/// splitmix64 — an independent, well-mixed score per (key, rank) pair.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Rendezvous (highest-random-weight) owner of `key_hash` among
/// `live_ranks`: every (key, rank) pair scores independently and the highest
/// score wins, so removing a rank re-homes **only** the keys it owned.
/// Ties break toward the lower rank (scores are 64-bit, ties are
/// astronomically rare; determinism matters more).  Panics on an empty view
/// — the local rank is always live, so a caller can never present one.
pub fn rendezvous_owner(key_hash: u64, live_ranks: &[usize]) -> usize {
    assert!(!live_ranks.is_empty(), "the local rank is always in the live view");
    let mut best = (0u64, usize::MAX);
    for &rank in live_ranks {
        let score = mix64(key_hash ^ mix64(rank as u64 + 1));
        if score > best.0 || (score == best.0 && rank < best.1) {
            best = (score, rank);
        }
    }
    best.1
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: Duration = Duration::from_millis(1);

    fn fast_view(ranks: usize) -> Membership {
        Membership::new(0, ranks, ClusterTuning::fast(), Duration::ZERO)
    }

    #[test]
    fn silence_suspects_then_kills() {
        let view = fast_view(3);
        // Rank 1 keeps talking, rank 2 goes silent.
        let mut transitions = Vec::new();
        for step in 1..=40u32 {
            let now = 10 * step * MS;
            view.observe_alive(1, 0, now);
            transitions.extend(view.tick(now));
        }
        assert_eq!(view.state_of(1), NodeState::Alive);
        assert_eq!(view.state_of(2), NodeState::Dead);
        assert_eq!(
            transitions.iter().map(|t| (t.subject, t.to)).collect::<Vec<_>>(),
            vec![(2, NodeState::Suspect), (2, NodeState::Dead)],
            "one suspicion then one death, nothing else"
        );
        // Death bumped the incarnation: frames from the old one are stale.
        assert_eq!(view.incarnation_of(2), 1);
        assert!(!view.accepts_reply(2, 0));
        assert!(view.accepts_reply(1, 0));
        let stats = view.stats();
        assert_eq!((stats.suspicions, stats.deaths, stats.stale_replies_dropped), (1, 1, 1));
    }

    #[test]
    fn heartbeat_after_cooldown_clears_suspicion() {
        let view = fast_view(2);
        assert!(view.suspect(1, 10 * MS).is_some());
        assert_eq!(view.state_of(1), NodeState::Suspect);
        // Inside the cooldown the heartbeat refreshes the deadline but the
        // suspicion stands.
        assert!(view.observe_alive(1, 0, 20 * MS).is_none());
        assert_eq!(view.state_of(1), NodeState::Suspect);
        // Past the cooldown it recovers.
        let t = view.observe_alive(1, 0, 40 * MS).expect("recovery");
        assert_eq!((t.subject, t.to), (1, NodeState::Alive));
        assert_eq!(view.stats().recoveries, 1);
    }

    #[test]
    fn dead_is_terminal_for_the_incarnation() {
        let view = fast_view(2);
        view.declare_dead(1);
        assert!(view.observe_alive(1, 0, MS).is_none(), "old incarnation cannot revive");
        assert_eq!(view.state_of(1), NodeState::Dead);
        assert!(view.declare_dead(1).is_none(), "idempotent");
        assert!(view.suspect(1, MS).is_none());
    }

    #[test]
    fn adopt_converges_on_the_stronger_claim() {
        let view = fast_view(3);
        assert!(view.adopt(2, NodeState::Suspect, 0).is_some());
        // A weaker or equal claim changes nothing.
        assert!(view.adopt(2, NodeState::Suspect, 0).is_none());
        assert!(view.adopt(2, NodeState::Alive, 0).is_none());
        // The stronger claim wins; death bumps the incarnation.
        let t = view.adopt(2, NodeState::Dead, 0).expect("dead beats suspect");
        assert_eq!(t.incarnation, 1);
        // A node never adopts claims about itself.
        assert!(view.adopt(0, NodeState::Dead, 5).is_none());
        assert_eq!(view.state_of(0), NodeState::Alive);
    }

    #[test]
    fn live_view_excludes_suspects_but_never_self() {
        let view = fast_view(4);
        assert_eq!(view.live_view(), vec![0, 1, 2, 3]);
        view.suspect(2, MS);
        assert_eq!(view.live_view(), vec![0, 1, 3]);
        view.declare_dead(3);
        assert_eq!(view.live_view(), vec![0, 1]);
        // Even if peers suspect us, we stay in our own view.
        let me = Membership::new(2, 3, ClusterTuning::fast(), Duration::ZERO);
        me.declare_dead(0);
        me.declare_dead(1);
        assert_eq!(me.live_view(), vec![2]);
    }

    #[test]
    fn detector_stall_refreshes_instead_of_condemning() {
        let view = fast_view(3);
        view.tick(10 * MS);
        // The detector itself vanishes for a second (way past dead_after):
        // nobody is suspected, everyone's deadline restarts.
        assert!(view.tick(1010 * MS).is_empty());
        assert_eq!(view.state_of(1), NodeState::Alive);
        // Normal cadence after the stall still detects real silence.
        let mut transitions = Vec::new();
        for step in 1..=40u32 {
            transitions.extend(view.tick((1010 + 10 * step) * MS));
        }
        assert!(transitions.iter().any(|t| t.to == NodeState::Dead));
    }

    #[test]
    fn rendezvous_moves_only_the_dead_ranks_keys() {
        let all: Vec<usize> = (0..4).collect();
        let survivors: Vec<usize> = vec![0, 1, 3];
        let keys: Vec<u64> =
            (0..512u64).map(|i| mix64(i.wrapping_mul(0x1234_5678_9abc_def1))).collect();
        let mut moved = 0;
        let mut owned_by_dead = 0;
        for &k in &keys {
            let before = rendezvous_owner(k, &all);
            let after = rendezvous_owner(k, &survivors);
            if before == 2 {
                owned_by_dead += 1;
                assert_ne!(after, 2, "dead rank owns nothing");
            } else {
                assert_eq!(before, after, "survivor-owned keys keep their owner");
            }
            if before != after {
                moved += 1;
            }
        }
        assert_eq!(moved, owned_by_dead, "minimal disruption: only orphaned keys move");
        assert!(owned_by_dead > 0, "rank 2 owned some of 512 keys");
        // The load spread is roughly even (each of 4 ranks near 128 ± wide
        // slack — this guards against a broken mixer, not for balance).
        for rank in 0..4usize {
            let owned = keys.iter().filter(|&&k| rendezvous_owner(k, &all) == rank).count();
            assert!((50..=210).contains(&owned), "rank {rank} owns {owned} of 512");
        }
    }

    #[test]
    fn rendezvous_is_deterministic_and_single_rank_trivial() {
        for k in [0u64, 1, u64::MAX, 0xdead_beef] {
            assert_eq!(rendezvous_owner(k, &[5]), 5);
            assert_eq!(rendezvous_owner(k, &[0, 1, 2]), rendezvous_owner(k, &[0, 1, 2]));
        }
    }

    #[test]
    #[should_panic(expected = "always in the live view")]
    fn rendezvous_rejects_an_empty_view() {
        rendezvous_owner(1, &[]);
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let tuning = ClusterTuning::default();
        assert_eq!(tuning.backoff_for(0), tuning.fetch_backoff);
        assert_eq!(tuning.backoff_for(1), tuning.fetch_backoff * 2);
        assert_eq!(tuning.backoff_for(3), tuning.fetch_backoff * 8);
        assert_eq!(tuning.backoff_for(30), tuning.fetch_backoff * 8, "capped at 8x");
    }
}
