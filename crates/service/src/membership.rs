//! Cluster liveness: the per-node membership view and the rendezvous hash
//! that re-homes plan ownership when it changes.
//!
//! Every rank runs a failure detector over the multiplexed control plane:
//! heartbeats ride dedicated liveness frames (tags above
//! [`aohpc_runtime::LIVENESS_TAG_BASE`], metered outside the application
//! control ledger), and each node folds what it hears into a [`Membership`]
//! view — [`NodeState::Alive`] / [`NodeState::Suspect`] /
//! [`NodeState::Dead`] per rank, each claim carrying an **incarnation
//! number** so late frames from a declared-dead rank are recognizably stale
//! and dropped instead of resurrecting it (or fulfilling a stale reply
//! slot — the `shutdown()` vs node-death race).
//!
//! # Incarnation arbitration (SWIM-style)
//!
//! Every claim is a point `(incarnation, state)` in a lattice ordered by
//! incarnation first and severity second (`Dead > Suspect > Alive` at equal
//! incarnation).  Views converge by always adopting the larger point
//! ([`Membership::adopt`], [`Membership::merge_view`]), which makes three
//! recovery behaviours fall out of one rule:
//!
//! * **Refutation.**  A suspected-but-alive rank that hears an accusation
//!   against its *current* incarnation bumps its own incarnation past the
//!   claim and announces `Alive` at the new number — a strictly larger
//!   point, so the accusation loses everywhere it raced to.  Each
//!   incarnation refutes at most once: a repeated accusation of an already
//!   refuted incarnation is stale and ignored (the "exactly one refutation"
//!   the asymmetric-partition drill asserts).
//! * **Rejoin.**  A restarted rank calls [`Membership::restart`], which
//!   bumps its incarnation past anything its peers can believe about the
//!   old one.  Its next heartbeat is therefore a larger point than the
//!   `Dead` entry peers hold, reviving it ([`MembershipStats::rejoins`])
//!   where a heartbeat from the *old* incarnation would still be ignored —
//!   death is terminal per incarnation, never per rank.
//! * **Anti-entropy.**  Heartbeats carry a digest of the sender's whole
//!   view ([`Membership::digest`]); a receiver whose digest differs pulls
//!   the peer's full `(state, incarnation)` vector and lattice-merges it,
//!   so asymmetric partitions converge once any path between the divided
//!   sides heals — without re-gossiping every transition.
//!
//! Detection is driven by the service's `Clock` seam: under a
//! [`FakeClock`](aohpc_testalloc::sync::FakeClock) the pacemaker ticks on
//! `advance`, so fault tests control suspicion and death *exactly*; under
//! the wall clock the default [`ClusterTuning`] is generous (suspect after
//! ~1 s of silence, dead after ~3 s) and [`Membership::tick`] forgives its
//! own stalls — if the detector itself was descheduled longer than the
//! suspect threshold, it refreshes every deadline instead of suspecting the
//! whole world.
//!
//! Plan ownership uses **rendezvous (HRW) hashing** over the live view
//! ([`rendezvous_owner`]): each (key, rank) pair gets an independent score
//! and the highest live score owns the key.  When a rank dies only the keys
//! it owned move (to their second-highest scorer); every key owned by a
//! survivor keeps its owner — the minimal-disruption property modulo
//! hashing lacks, and the reason re-ownership restores
//! `compiles == distinct fingerprints` for survivor-owned plans instead of
//! reshuffling everything.

use serde::Serialize;
use std::sync::Mutex;
use std::time::Duration;

/// One rank's state in the local membership view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum NodeState {
    /// Heard from recently (or never yet measured against a deadline).
    Alive,
    /// Silent past the suspect threshold — excluded from plan ownership,
    /// still given the chance to refute by any frame carrying a current
    /// incarnation.
    Suspect,
    /// Silent past the death threshold (or fail-stopped by the fault
    /// harness).  Terminal for the *incarnation*: only a strictly higher
    /// incarnation — a restarted rank re-announcing itself — revives the
    /// entry ([`MembershipStats::rejoins`]).
    Dead,
}

/// Failure-detector timing knobs.
///
/// The defaults are deliberately generous for wall-clock runs (the existing
/// cluster tests assert exact compile counts and must never see a false
/// suspicion); fault tests tighten them and drive time with a fake clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterTuning {
    /// Cadence the pacemaker broadcasts heartbeats at.
    pub heartbeat_every: Duration,
    /// Silence after which a rank is suspected (ownership excludes it).
    pub suspect_after: Duration,
    /// Silence after which a suspect is declared dead (failover fires).
    pub dead_after: Duration,
    /// After a suspicion, heartbeats cannot clear it until this cooldown
    /// elapses — a wedged-then-revived fabric must re-earn trust instead of
    /// flapping ownership on every late frame.
    pub suspect_cooldown: Duration,
    /// Cross-node plan-fetch retry budget: how many times a fetcher retries
    /// against the (possibly re-homed) owner before compiling locally.
    pub fetch_retries: u32,
    /// Base backoff between fetch retries (doubles per attempt, capped at
    /// 8×).
    pub fetch_backoff: Duration,
    /// Per-attempt reply deadline for a cross-node plan fetch.
    pub fetch_timeout: Duration,
}

impl Default for ClusterTuning {
    fn default() -> Self {
        ClusterTuning {
            heartbeat_every: Duration::from_millis(100),
            suspect_after: Duration::from_secs(1),
            dead_after: Duration::from_secs(3),
            suspect_cooldown: Duration::from_millis(500),
            fetch_retries: 3,
            fetch_backoff: Duration::from_millis(2),
            fetch_timeout: Duration::from_secs(10),
        }
    }
}

impl ClusterTuning {
    /// Aggressive thresholds for fake-clock fault tests: suspicion at 50 ms
    /// of fake silence, death at 150 ms, heartbeats every 10 ms.
    pub fn fast() -> Self {
        ClusterTuning {
            heartbeat_every: Duration::from_millis(10),
            suspect_after: Duration::from_millis(50),
            dead_after: Duration::from_millis(150),
            suspect_cooldown: Duration::from_millis(25),
            fetch_retries: 3,
            fetch_backoff: Duration::from_millis(1),
            fetch_timeout: Duration::from_millis(200),
        }
    }

    /// Backoff before retry `attempt` (0-based): base × 2^attempt, capped at
    /// 8× base.
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        self.fetch_backoff * (1u32 << attempt.min(3))
    }
}

/// Counters of one node's failure detector.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct MembershipStats {
    /// Alive → Suspect transitions recorded locally.
    pub suspicions: u64,
    /// Transitions into Dead recorded locally.
    pub deaths: u64,
    /// Suspect → Alive recoveries (a suspect refuted past its cooldown).
    pub recoveries: u64,
    /// Dead → Alive revivals: a rank believed dead re-announced itself
    /// under a strictly higher incarnation (a restart, or a refutation that
    /// outran this view's death verdict).
    pub rejoins: u64,
    /// Times *this* rank bumped its own incarnation to refute an accusation
    /// (a peer claimed it Suspect or Dead at its current incarnation).
    pub refutations: u64,
    /// Frames dropped because they carried a stale incarnation (e.g. a
    /// `PLAN_REP` from a rank declared dead mid-flight).
    pub stale_replies_dropped: u64,
    /// `PLAN_REQ` frames this rank refused to serve because they were
    /// addressed to an older incarnation of itself (a request in flight
    /// across its own restart — the old incarnation's obligations are
    /// void; the requester re-homes).
    pub stale_requests_dropped: u64,
}

#[derive(Debug, Clone, Copy)]
struct NodeView {
    state: NodeState,
    /// The rank's current incarnation as this node believes it.  Frames
    /// carrying an older incarnation are stale; a declared death bumps it so
    /// nothing the dead incarnation sent can be accepted afterwards.
    incarnation: u64,
    /// Detector time the rank was last heard from.
    last_seen: Duration,
    /// While suspect: detector time before which heartbeats cannot clear
    /// the suspicion.
    cooldown_until: Duration,
}

struct ViewInner {
    nodes: Vec<NodeView>,
    last_tick: Duration,
    stats: MembershipStats,
}

/// One node's view of which ranks are alive — the failure detector state all
/// ownership and failover decisions read.  Thread-safe; every method is a
/// short critical section.
pub struct Membership {
    rank: usize,
    tuning: ClusterTuning,
    inner: Mutex<ViewInner>,
}

/// A state transition [`Membership::tick`] or a frame observation produced,
/// for the caller to broadcast / dispatch through the obs join points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// The rank whose state changed.
    pub subject: usize,
    /// Its new state.
    pub to: NodeState,
    /// The subject's incarnation after the transition.
    pub incarnation: u64,
}

impl Membership {
    /// A fresh view for `rank` in a mesh of `ranks`, everyone alive at
    /// incarnation 0 and last seen "now".
    pub fn new(rank: usize, ranks: usize, tuning: ClusterTuning, now: Duration) -> Self {
        Membership {
            rank,
            tuning,
            inner: Mutex::new(ViewInner {
                nodes: (0..ranks)
                    .map(|_| NodeView {
                        state: NodeState::Alive,
                        incarnation: 0,
                        last_seen: now,
                        cooldown_until: Duration::ZERO,
                    })
                    .collect(),
                last_tick: now,
                stats: MembershipStats::default(),
            }),
        }
    }

    /// The local rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total ranks in the mesh (live or not).
    pub fn ranks(&self) -> usize {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).nodes.len()
    }

    /// The detector's timing knobs.
    pub fn tuning(&self) -> ClusterTuning {
        self.tuning
    }

    /// A rank's current state.
    pub fn state_of(&self, rank: usize) -> NodeState {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).nodes[rank].state
    }

    /// A rank's current incarnation.
    pub fn incarnation_of(&self, rank: usize) -> u64 {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).nodes[rank].incarnation
    }

    /// The ranks currently eligible for plan ownership: Alive only (a
    /// suspect is excluded so fetchers re-home immediately instead of
    /// burning their retry budget against a silent owner).  The local rank
    /// is always included — a node never excludes itself.
    pub fn live_view(&self) -> Vec<usize> {
        let inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner
            .nodes
            .iter()
            .enumerate()
            .filter(|(r, n)| *r == self.rank || n.state == NodeState::Alive)
            .map(|(r, _)| r)
            .collect()
    }

    /// Detector counters.
    pub fn stats(&self) -> MembershipStats {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).stats
    }

    /// Liveness evidence: any frame arriving from `from` at detector time
    /// `now` with the current incarnation refreshes its deadline, and — once
    /// a suspicion's cooldown has passed — clears the suspicion.  Returns a
    /// recovery transition when it does.
    ///
    /// Evidence carrying a **strictly higher** incarnation is arbitration:
    /// the rank restarted (or refuted an accusation this view had already
    /// escalated), so the claim wins outright — a `Dead` entry revives
    /// ([`MembershipStats::rejoins`]) and a suspicion clears immediately,
    /// cooldown notwithstanding.  Evidence from a dead rank at its dead (or
    /// older) incarnation is ignored; death is terminal per incarnation.
    pub fn observe_alive(
        &self,
        from: usize,
        incarnation: u64,
        now: Duration,
    ) -> Option<Transition> {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let node = &mut inner.nodes[from];
        if incarnation > node.incarnation {
            // A fresh incarnation announced itself: incarnation arbitration
            // overrides Dead and bypasses the suspicion cooldown — the rank
            // provably restarted (or refuted), it need not re-earn trust
            // the way a flapping old incarnation must.
            let was = node.state;
            node.incarnation = incarnation;
            node.state = NodeState::Alive;
            node.last_seen = now;
            node.cooldown_until = Duration::ZERO;
            match was {
                NodeState::Dead => inner.stats.rejoins += 1,
                NodeState::Suspect => inner.stats.recoveries += 1,
                NodeState::Alive => return None,
            }
            return Some(Transition { subject: from, to: NodeState::Alive, incarnation });
        }
        if node.state == NodeState::Dead || incarnation < node.incarnation {
            return None;
        }
        node.last_seen = now;
        if node.state == NodeState::Suspect && now >= node.cooldown_until {
            node.state = NodeState::Alive;
            let t =
                Transition { subject: from, to: NodeState::Alive, incarnation: node.incarnation };
            inner.stats.recoveries += 1;
            return Some(t);
        }
        None
    }

    /// Whether a reply from `from` claiming `incarnation` is current — the
    /// guard on `PLAN_REP`: a reply sent before its sender was declared dead
    /// carries the old incarnation and must not fulfil a live slot.  A stale
    /// reply is metered.
    pub fn accepts_reply(&self, from: usize, incarnation: u64) -> bool {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let node = inner.nodes[from];
        if node.state != NodeState::Dead && incarnation >= node.incarnation {
            true
        } else {
            inner.stats.stale_replies_dropped += 1;
            false
        }
    }

    /// Whether a `PLAN_REQ` addressed to this rank at `expected` incarnation
    /// is current — the request-side twin of [`Membership::accepts_reply`]:
    /// a request sent before this rank restarted names the *old*
    /// incarnation, whose obligations died with it.  Serving it would hand
    /// a requester (that may already have re-homed the key) a reply it no
    /// longer expects; dropping it is metered and forces the requester
    /// through the normal timeout → refresh → retry path, which picks up
    /// the new incarnation from its heartbeats.
    pub fn accepts_request(&self, expected: u64) -> bool {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let own = inner.nodes[self.rank].incarnation;
        if expected >= own {
            true
        } else {
            inner.stats.stale_requests_dropped += 1;
            false
        }
    }

    /// Adopt a peer's claim about `subject` (a `SUSPECT` broadcast or one
    /// anti-entropy vector entry): views converge because claims form a
    /// lattice — a higher incarnation always wins, and Dead beats Suspect
    /// beats Alive at equal incarnation.  Claims are stored *exactly as
    /// claimed* (no local re-bump), so every view settles on the same
    /// `(incarnation, state)` point and digests agree after convergence.
    ///
    /// A claim about **this rank itself** is an accusation: if it would
    /// condemn the current incarnation, the rank refutes SWIM-style —
    /// bumps its own incarnation past the claim
    /// ([`MembershipStats::refutations`]) and returns an `Alive` transition
    /// at the new incarnation for the caller to broadcast.  An accusation
    /// against an already-superseded incarnation is stale and ignored, so
    /// each incarnation refutes at most once.
    ///
    /// Returns the local transition if the claim changed anything.
    pub fn adopt(
        &self,
        subject: usize,
        to: NodeState,
        incarnation: u64,
        now: Duration,
    ) -> Option<Transition> {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        Self::adopt_locked(self.rank, &self.tuning, &mut inner, subject, to, incarnation, now)
    }

    fn adopt_locked(
        rank: usize,
        tuning: &ClusterTuning,
        inner: &mut ViewInner,
        subject: usize,
        to: NodeState,
        incarnation: u64,
        now: Duration,
    ) -> Option<Transition> {
        if subject == rank {
            // An accusation against ourselves: we never mark ourselves down;
            // we refute by outbidding the claim's incarnation.
            let node = &mut inner.nodes[rank];
            if to == NodeState::Alive || incarnation < node.incarnation {
                return None;
            }
            node.incarnation = incarnation + 1;
            let refuted =
                Transition { subject: rank, to: NodeState::Alive, incarnation: node.incarnation };
            inner.stats.refutations += 1;
            return Some(refuted);
        }
        let node = &mut inner.nodes[subject];
        let stronger = incarnation > node.incarnation
            || (incarnation == node.incarnation && rank_of_state(to) > rank_of_state(node.state));
        if !stronger {
            return None;
        }
        let was = node.state;
        node.incarnation = incarnation;
        node.state = to;
        match to {
            NodeState::Dead => inner.stats.deaths += 1,
            NodeState::Suspect => {
                node.cooldown_until = now + tuning.suspect_cooldown;
                inner.stats.suspicions += 1;
            }
            NodeState::Alive => {
                // An adopted revival (a refutation or rejoin that reached us
                // second-hand): treat it as fresh evidence.
                node.last_seen = now;
                node.cooldown_until = Duration::ZERO;
                match was {
                    NodeState::Dead => inner.stats.rejoins += 1,
                    NodeState::Suspect => inner.stats.recoveries += 1,
                    NodeState::Alive => {}
                }
            }
        }
        Some(Transition { subject, to, incarnation })
    }

    /// Unilaterally declare `subject` dead (the fault harness's fail-stop, or
    /// a fetch path that proved the owner gone).  The verdict condemns the
    /// subject's *current* incarnation — a restart announces a higher one
    /// and revives the entry.  Returns the transition if the rank was not
    /// already dead.
    pub fn declare_dead(&self, subject: usize) -> Option<Transition> {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let node = &mut inner.nodes[subject];
        if node.state == NodeState::Dead {
            return None;
        }
        node.state = NodeState::Dead;
        let incarnation = node.incarnation;
        inner.stats.deaths += 1;
        Some(Transition { subject, to: NodeState::Dead, incarnation })
    }

    /// Mark `subject` suspect immediately (a fetch timeout is direct
    /// evidence, ahead of the deadline sweep), starting its cooldown.
    /// Returns the transition if the rank was alive.
    pub fn suspect(&self, subject: usize, now: Duration) -> Option<Transition> {
        if subject == self.rank {
            return None;
        }
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let node = &mut inner.nodes[subject];
        if node.state != NodeState::Alive {
            return None;
        }
        node.state = NodeState::Suspect;
        node.cooldown_until = now + self.tuning.suspect_cooldown;
        let incarnation = node.incarnation;
        inner.stats.suspicions += 1;
        Some(Transition { subject, to: NodeState::Suspect, incarnation })
    }

    /// One deadline sweep at detector time `now`: Alive ranks silent past
    /// `suspect_after` become Suspect (cooldown started), Suspect ranks
    /// silent past `dead_after` become Dead (incarnation bumped).  Returns
    /// every transition for the caller to broadcast.
    ///
    /// **Stall forgiveness**: if the detector *itself* went longer than
    /// `suspect_after` between sweeps (a descheduled thread on a loaded
    /// host, not silent peers), every deadline is refreshed instead — a
    /// stalled observer must not condemn the observed.
    pub fn tick(&self, now: Duration) -> Vec<Transition> {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let gap = now.saturating_sub(inner.last_tick);
        inner.last_tick = now;
        if gap > self.tuning.suspect_after {
            for node in &mut inner.nodes {
                if node.state != NodeState::Dead {
                    node.last_seen = now;
                }
            }
            return Vec::new();
        }
        let mut transitions = Vec::new();
        let me = self.rank;
        let (suspect_after, dead_after, cooldown) =
            (self.tuning.suspect_after, self.tuning.dead_after, self.tuning.suspect_cooldown);
        for (rank, node) in inner.nodes.iter_mut().enumerate() {
            if rank == me {
                continue;
            }
            let silent = now.saturating_sub(node.last_seen);
            match node.state {
                NodeState::Alive if silent > suspect_after => {
                    node.state = NodeState::Suspect;
                    node.cooldown_until = now + cooldown;
                    transitions.push(Transition {
                        subject: rank,
                        to: NodeState::Suspect,
                        incarnation: node.incarnation,
                    });
                }
                NodeState::Suspect if silent > dead_after => {
                    // The verdict condemns the incarnation as claimed: every
                    // view that adopts it lands on the same (incarnation,
                    // Dead) point, and only a strictly higher incarnation —
                    // a restart — revives it.
                    node.state = NodeState::Dead;
                    transitions.push(Transition {
                        subject: rank,
                        to: NodeState::Dead,
                        incarnation: node.incarnation,
                    });
                }
                _ => {}
            }
        }
        for t in &transitions {
            match t.to {
                NodeState::Suspect => inner.stats.suspicions += 1,
                NodeState::Dead => inner.stats.deaths += 1,
                NodeState::Alive => {}
            }
        }
        transitions
    }

    /// Restart this rank's own membership after a fail-stop: bump its
    /// incarnation past anything a peer can believe about the old one and
    /// cold-reset the view (every peer Alive, deadlines from `now`) — the
    /// rejoiner re-learns the world through heartbeats and anti-entropy
    /// rather than trusting a view frozen at its moment of death.  Peers'
    /// believed incarnations are kept: they only ever rise, and keeping
    /// them means a stale frame from before the outage still loses.
    ///
    /// Returns the new incarnation (what the next heartbeat announces).
    ///
    /// The `+1` suffices because a peer's belief about this rank only ever
    /// comes from this rank's own frames: a death verdict condemns the
    /// *claimed* incarnation without re-bumping it, so no view can hold an
    /// incarnation above our own.
    pub fn restart(&self, now: Duration) -> u64 {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.last_tick = now;
        let me = self.rank;
        for (rank, node) in inner.nodes.iter_mut().enumerate() {
            if rank == me {
                node.incarnation += 1;
            } else {
                node.state = NodeState::Alive;
            }
            node.last_seen = now;
            node.cooldown_until = Duration::ZERO;
        }
        inner.nodes[me].incarnation
    }

    /// An order-sensitive digest of the whole view's `(state, incarnation)`
    /// vector — what heartbeats carry so a peer holding a *different* view
    /// knows to pull ours ([`Membership::view_entries`]) and lattice-merge
    /// it.  Converged views produce equal digests, so a quiescent cluster
    /// exchanges no anti-entropy traffic at all.
    pub fn digest(&self) -> u64 {
        let inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let mut acc = 0xa09_c0de_u64;
        for node in &inner.nodes {
            acc = mix64(acc ^ mix64(node.incarnation ^ ((rank_of_state(node.state) as u64) << 62)));
        }
        acc
    }

    /// The full `(state, incarnation)` vector, one entry per rank — the
    /// anti-entropy sync payload a digest mismatch requests.
    pub fn view_entries(&self) -> Vec<(NodeState, u64)> {
        let inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.nodes.iter().map(|n| (n.state, n.incarnation)).collect()
    }

    /// Lattice-merge a peer's full view into ours: each entry is adopted
    /// under the same arbitration as a gossiped claim (higher incarnation
    /// wins; severity breaks ties), and an entry condemning *this* rank's
    /// current incarnation triggers a refutation.  Because the merge only
    /// ever moves entries up the lattice, repeated exchanges converge and
    /// the digests stop differing.  Returns every local transition for the
    /// caller to act on (waking fetchers, broadcasting refutations).
    pub fn merge_view(&self, entries: &[(NodeState, u64)], now: Duration) -> Vec<Transition> {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let ranks = inner.nodes.len();
        let mut transitions = Vec::new();
        for (subject, &(state, incarnation)) in entries.iter().enumerate().take(ranks) {
            if let Some(t) = Self::adopt_locked(
                self.rank,
                &self.tuning,
                &mut inner,
                subject,
                state,
                incarnation,
                now,
            ) {
                transitions.push(t);
            }
        }
        transitions
    }
}

impl std::fmt::Debug for Membership {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        f.debug_struct("Membership")
            .field("rank", &self.rank)
            .field("states", &inner.nodes.iter().map(|n| n.state).collect::<Vec<_>>())
            .field("stats", &inner.stats)
            .finish()
    }
}

/// Severity order for view convergence: a stronger claim overwrites a weaker
/// one at equal incarnation.
fn rank_of_state(state: NodeState) -> u8 {
    match state {
        NodeState::Alive => 0,
        NodeState::Suspect => 1,
        NodeState::Dead => 2,
    }
}

/// splitmix64 — an independent, well-mixed score per (key, rank) pair.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Rendezvous (highest-random-weight) owner of `key_hash` among
/// `live_ranks`: every (key, rank) pair scores independently and the highest
/// score wins, so removing a rank re-homes **only** the keys it owned.
/// Ties break toward the lower rank (scores are 64-bit, ties are
/// astronomically rare; determinism matters more).  Panics on an empty view
/// — the local rank is always live, so a caller can never present one.
pub fn rendezvous_owner(key_hash: u64, live_ranks: &[usize]) -> usize {
    assert!(!live_ranks.is_empty(), "the local rank is always in the live view");
    let mut best = (0u64, usize::MAX);
    for &rank in live_ranks {
        let score = mix64(key_hash ^ mix64(rank as u64 + 1));
        if score > best.0 || (score == best.0 && rank < best.1) {
            best = (score, rank);
        }
    }
    best.1
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: Duration = Duration::from_millis(1);

    fn fast_view(ranks: usize) -> Membership {
        Membership::new(0, ranks, ClusterTuning::fast(), Duration::ZERO)
    }

    #[test]
    fn silence_suspects_then_kills() {
        let view = fast_view(3);
        // Rank 1 keeps talking, rank 2 goes silent.
        let mut transitions = Vec::new();
        for step in 1..=40u32 {
            let now = 10 * step * MS;
            view.observe_alive(1, 0, now);
            transitions.extend(view.tick(now));
        }
        assert_eq!(view.state_of(1), NodeState::Alive);
        assert_eq!(view.state_of(2), NodeState::Dead);
        assert_eq!(
            transitions.iter().map(|t| (t.subject, t.to)).collect::<Vec<_>>(),
            vec![(2, NodeState::Suspect), (2, NodeState::Dead)],
            "one suspicion then one death, nothing else"
        );
        // The verdict condemns the incarnation as claimed (no re-bump), and
        // a reply from the dead incarnation is stale regardless.
        assert_eq!(view.incarnation_of(2), 0);
        assert!(!view.accepts_reply(2, 0));
        assert!(view.accepts_reply(1, 0));
        let stats = view.stats();
        assert_eq!((stats.suspicions, stats.deaths, stats.stale_replies_dropped), (1, 1, 1));
    }

    #[test]
    fn heartbeat_after_cooldown_clears_suspicion() {
        let view = fast_view(2);
        assert!(view.suspect(1, 10 * MS).is_some());
        assert_eq!(view.state_of(1), NodeState::Suspect);
        // Inside the cooldown the heartbeat refreshes the deadline but the
        // suspicion stands.
        assert!(view.observe_alive(1, 0, 20 * MS).is_none());
        assert_eq!(view.state_of(1), NodeState::Suspect);
        // Past the cooldown it recovers.
        let t = view.observe_alive(1, 0, 40 * MS).expect("recovery");
        assert_eq!((t.subject, t.to), (1, NodeState::Alive));
        assert_eq!(view.stats().recoveries, 1);
    }

    #[test]
    fn dead_is_terminal_for_the_incarnation() {
        let view = fast_view(2);
        view.declare_dead(1);
        assert!(view.observe_alive(1, 0, MS).is_none(), "old incarnation cannot revive");
        assert_eq!(view.state_of(1), NodeState::Dead);
        assert!(view.declare_dead(1).is_none(), "idempotent");
        assert!(view.suspect(1, MS).is_none());
    }

    #[test]
    fn higher_incarnation_revives_a_dead_entry() {
        let view = fast_view(2);
        view.declare_dead(1);
        // The old incarnation keeps knocking; the door stays shut.
        assert!(view.observe_alive(1, 0, 5 * MS).is_none());
        assert_eq!(view.state_of(1), NodeState::Dead);
        // The restarted rank announces incarnation 1: revival.
        let t = view.observe_alive(1, 1, 10 * MS).expect("rejoin transition");
        assert_eq!((t.subject, t.to, t.incarnation), (1, NodeState::Alive, 1));
        assert_eq!(view.state_of(1), NodeState::Alive);
        assert_eq!(view.incarnation_of(1), 1);
        assert_eq!(view.stats().rejoins, 1);
        // Replies from the new incarnation are current; the old stays stale.
        assert!(view.accepts_reply(1, 1));
        assert!(!view.accepts_reply(1, 0));
    }

    #[test]
    fn fresh_incarnation_clears_suspicion_without_cooldown() {
        let view = fast_view(2);
        view.suspect(1, 10 * MS);
        // Still inside the cooldown — but the incarnation bumped, so this
        // is a refutation, not a flap: trust is restored immediately.
        let t = view.observe_alive(1, 1, 12 * MS).expect("refutation observed");
        assert_eq!((t.to, t.incarnation), (NodeState::Alive, 1));
        assert_eq!(view.state_of(1), NodeState::Alive);
        assert_eq!(view.stats().recoveries, 1);
    }

    #[test]
    fn adopt_converges_on_the_stronger_claim() {
        let view = fast_view(3);
        assert!(view.adopt(2, NodeState::Suspect, 0, MS).is_some());
        // A weaker or equal claim changes nothing.
        assert!(view.adopt(2, NodeState::Suspect, 0, MS).is_none());
        assert!(view.adopt(2, NodeState::Alive, 0, MS).is_none());
        // The stronger claim wins and is stored exactly as claimed, so
        // every adopter lands on the same lattice point.
        let t = view.adopt(2, NodeState::Dead, 0, MS).expect("dead beats suspect");
        assert_eq!(t.incarnation, 0);
        assert_eq!(view.incarnation_of(2), 0);
        // An Alive claim at a higher incarnation revives the dead entry.
        let t = view.adopt(2, NodeState::Alive, 1, 2 * MS).expect("second-hand rejoin");
        assert_eq!((t.to, t.incarnation), (NodeState::Alive, 1));
        assert_eq!(view.stats().rejoins, 1);
    }

    #[test]
    fn accusation_against_self_is_refuted_exactly_once() {
        let view = fast_view(3);
        // A peer suspects us at our current incarnation: refute by outbid.
        let t = view.adopt(0, NodeState::Suspect, 0, MS).expect("refutation");
        assert_eq!((t.subject, t.to, t.incarnation), (0, NodeState::Alive, 1));
        assert_eq!(view.state_of(0), NodeState::Alive, "we never mark ourselves down");
        assert_eq!(view.incarnation_of(0), 1);
        // The same accusation again — and a death verdict on the already
        // refuted incarnation — are stale: no second refutation.
        assert!(view.adopt(0, NodeState::Suspect, 0, 2 * MS).is_none());
        assert!(view.adopt(0, NodeState::Dead, 0, 2 * MS).is_none());
        assert_eq!(view.stats().refutations, 1);
        // A fresh accusation of the *new* incarnation is refuted anew.
        let t = view.adopt(0, NodeState::Dead, 1, 3 * MS).expect("second refutation");
        assert_eq!(t.incarnation, 2);
        assert_eq!(view.stats().refutations, 2);
    }

    #[test]
    fn restart_outbids_every_peer_belief_and_cold_resets_the_view() {
        // Peer view: rank 1 suspected, then declared dead at incarnation 0.
        let peer = fast_view(3);
        peer.suspect(1, 10 * MS);
        peer.declare_dead(1);
        // Rank 1 restarts; its own view had condemned rank 2 meanwhile.
        let me = Membership::new(1, 3, ClusterTuning::fast(), Duration::ZERO);
        me.declare_dead(2);
        let incarnation = me.restart(100 * MS);
        assert_eq!(incarnation, 1);
        assert_eq!(me.incarnation_of(1), 1);
        assert_eq!(me.state_of(2), NodeState::Alive, "cold reset: re-learn the world");
        // The announced incarnation revives the peer's dead entry.
        assert!(peer.observe_alive(1, incarnation, 110 * MS).is_some());
        assert_eq!(peer.state_of(1), NodeState::Alive);
    }

    #[test]
    fn stale_requests_are_refused_and_metered() {
        let me = Membership::new(1, 2, ClusterTuning::fast(), Duration::ZERO);
        assert!(me.accepts_request(0));
        me.restart(10 * MS);
        // A request addressed to the pre-restart incarnation is void.
        assert!(!me.accepts_request(0));
        assert!(me.accepts_request(1));
        assert_eq!(me.stats().stale_requests_dropped, 1);
    }

    #[test]
    fn digests_differ_on_divergence_and_converge_after_merge() {
        let a = Membership::new(0, 3, ClusterTuning::fast(), Duration::ZERO);
        let b = Membership::new(1, 3, ClusterTuning::fast(), Duration::ZERO);
        assert_eq!(a.digest(), b.digest(), "fresh views agree");
        a.suspect(2, 10 * MS);
        a.declare_dead(2);
        assert_ne!(a.digest(), b.digest(), "divergence is visible");
        let transitions = b.merge_view(&a.view_entries(), 20 * MS);
        assert_eq!(transitions.len(), 1);
        assert_eq!((transitions[0].subject, transitions[0].to), (2, NodeState::Dead));
        assert_eq!(a.digest(), b.digest(), "lattice merge converges the views");
        // Merging the other way is now a no-op.
        assert!(a.merge_view(&b.view_entries(), 30 * MS).is_empty());
    }

    #[test]
    fn merge_refutes_an_embedded_accusation_of_self() {
        let a = Membership::new(0, 2, ClusterTuning::fast(), Duration::ZERO);
        a.suspect(1, 10 * MS);
        // Rank 1 pulls rank 0's view and finds itself suspected: the merge
        // produces the refutation transition for the caller to broadcast.
        let b = Membership::new(1, 2, ClusterTuning::fast(), Duration::ZERO);
        let transitions = b.merge_view(&a.view_entries(), 20 * MS);
        assert_eq!(transitions.len(), 1);
        assert_eq!(
            (transitions[0].subject, transitions[0].to, transitions[0].incarnation),
            (1, NodeState::Alive, 1)
        );
        assert_eq!(b.stats().refutations, 1);
        // Rank 0 hears the refutation (as a heartbeat at the new
        // incarnation) and clears the suspicion despite the cooldown.
        assert!(a.observe_alive(1, 1, 21 * MS).is_some());
        assert_eq!(a.state_of(1), NodeState::Alive);
    }

    #[test]
    fn live_view_excludes_suspects_but_never_self() {
        let view = fast_view(4);
        assert_eq!(view.live_view(), vec![0, 1, 2, 3]);
        view.suspect(2, MS);
        assert_eq!(view.live_view(), vec![0, 1, 3]);
        view.declare_dead(3);
        assert_eq!(view.live_view(), vec![0, 1]);
        // Even if peers suspect us, we stay in our own view.
        let me = Membership::new(2, 3, ClusterTuning::fast(), Duration::ZERO);
        me.declare_dead(0);
        me.declare_dead(1);
        assert_eq!(me.live_view(), vec![2]);
    }

    #[test]
    fn detector_stall_refreshes_instead_of_condemning() {
        let view = fast_view(3);
        view.tick(10 * MS);
        // The detector itself vanishes for a second (way past dead_after):
        // nobody is suspected, everyone's deadline restarts.
        assert!(view.tick(1010 * MS).is_empty());
        assert_eq!(view.state_of(1), NodeState::Alive);
        // Normal cadence after the stall still detects real silence.
        let mut transitions = Vec::new();
        for step in 1..=40u32 {
            transitions.extend(view.tick((1010 + 10 * step) * MS));
        }
        assert!(transitions.iter().any(|t| t.to == NodeState::Dead));
    }

    #[test]
    fn rendezvous_moves_only_the_dead_ranks_keys() {
        let all: Vec<usize> = (0..4).collect();
        let survivors: Vec<usize> = vec![0, 1, 3];
        let keys: Vec<u64> =
            (0..512u64).map(|i| mix64(i.wrapping_mul(0x1234_5678_9abc_def1))).collect();
        let mut moved = 0;
        let mut owned_by_dead = 0;
        for &k in &keys {
            let before = rendezvous_owner(k, &all);
            let after = rendezvous_owner(k, &survivors);
            if before == 2 {
                owned_by_dead += 1;
                assert_ne!(after, 2, "dead rank owns nothing");
            } else {
                assert_eq!(before, after, "survivor-owned keys keep their owner");
            }
            if before != after {
                moved += 1;
            }
        }
        assert_eq!(moved, owned_by_dead, "minimal disruption: only orphaned keys move");
        assert!(owned_by_dead > 0, "rank 2 owned some of 512 keys");
        // The load spread is roughly even (each of 4 ranks near 128 ± wide
        // slack — this guards against a broken mixer, not for balance).
        for rank in 0..4usize {
            let owned = keys.iter().filter(|&&k| rendezvous_owner(k, &all) == rank).count();
            assert!((50..=210).contains(&owned), "rank {rank} owns {owned} of 512");
        }
    }

    #[test]
    fn rendezvous_is_deterministic_and_single_rank_trivial() {
        for k in [0u64, 1, u64::MAX, 0xdead_beef] {
            assert_eq!(rendezvous_owner(k, &[5]), 5);
            assert_eq!(rendezvous_owner(k, &[0, 1, 2]), rendezvous_owner(k, &[0, 1, 2]));
        }
    }

    #[test]
    #[should_panic(expected = "always in the live view")]
    fn rendezvous_rejects_an_empty_view() {
        rendezvous_owner(1, &[]);
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let tuning = ClusterTuning::default();
        assert_eq!(tuning.backoff_for(0), tuning.fetch_backoff);
        assert_eq!(tuning.backoff_for(1), tuning.fetch_backoff * 2);
        assert_eq!(tuning.backoff_for(3), tuning.fetch_backoff * 8);
        assert_eq!(tuning.backoff_for(30), tuning.fetch_backoff * 8, "capped at 8x");
    }
}
