//! Session contexts: the per-tenant execution state every submission flows
//! through.
//!
//! A [`SessionCtx`] is the service-layer analogue of the runtime's `TaskCtx`:
//! where a task context carries one task's view of one run, a session context
//! carries one tenant's view of the *service* — an environment/metadata
//! key-value store, accumulated metering, and an optional parent link so a
//! tenant can nest scoped child sessions (a sweep inside an experiment inside
//! a project) whose accounting stays separable.

use serde::Serialize;
use std::collections::BTreeMap;

/// Identifier of a session within one [`KernelService`](crate::KernelService).
pub type SessionId = u64;

/// What a session has consumed so far.
///
/// All figures are cumulative since `open_session`.  Simulated seconds come
/// from the runtime's deterministic [`CostModel`](aohpc_runtime::CostModel),
/// so metering is reproducible across hosts — the property that makes the
/// numbers usable for admission decisions and tests alike.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct SessionMeter {
    /// Jobs accepted through `submit`.
    pub jobs_submitted: u64,
    /// Jobs whose report has been recorded.
    pub jobs_completed: u64,
    /// Submissions rejected at admission (quota, validation).
    pub jobs_rejected: u64,
    /// Jobs whose primary plan was already cached.
    pub plan_cache_hits: u64,
    /// Jobs whose primary plan had to be compiled.
    pub plan_cache_misses: u64,
    /// Cell updates (platform writes) executed on behalf of the session.
    pub cells_updated: u64,
    /// Deterministic simulated execution time consumed.
    pub simulated_seconds: f64,
}

/// What a caller supplies when opening a session: a tenant label plus
/// arbitrary environment / metadata key-value pairs.
#[derive(Debug, Clone, Default)]
pub struct SessionSpec {
    pub(crate) tenant: String,
    pub(crate) environment: BTreeMap<String, String>,
    pub(crate) metadata: BTreeMap<String, String>,
}

impl SessionSpec {
    /// A spec for the given tenant.
    pub fn tenant(name: impl Into<String>) -> Self {
        SessionSpec { tenant: name.into(), ..Default::default() }
    }

    /// Add an environment entry.  Recorded on the session for callers to
    /// read back via [`SessionCtx::env`] (e.g. a data-source label shared by
    /// the client code that builds this session's jobs); the execution
    /// pipeline itself does not consult it.
    pub fn with_env(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.environment.insert(key.into(), value.into());
        self
    }

    /// Add a metadata entry (opaque to the service; e.g. a priority label).
    pub fn with_metadata(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.metadata.insert(key.into(), value.into());
        self
    }
}

/// One tenant's execution context.
///
/// Obtained as a point-in-time snapshot from
/// [`KernelService::session`](crate::KernelService::session); the service
/// owns the live copy.
#[derive(Debug, Clone, Serialize)]
pub struct SessionCtx {
    id: SessionId,
    tenant: String,
    environment: BTreeMap<String, String>,
    metadata: BTreeMap<String, String>,
    parent: Option<SessionId>,
    active: bool,
    in_flight: usize,
    meter: SessionMeter,
}

impl SessionCtx {
    pub(crate) fn create(id: SessionId, spec: SessionSpec, parent: Option<SessionId>) -> Self {
        SessionCtx {
            id,
            tenant: spec.tenant,
            environment: spec.environment,
            metadata: spec.metadata,
            parent,
            active: true,
            in_flight: 0,
            meter: SessionMeter::default(),
        }
    }

    /// The session's id.
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// The tenant label.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Look up an environment entry.
    pub fn env(&self, key: &str) -> Option<&str> {
        self.environment.get(key).map(String::as_str)
    }

    /// Look up a metadata entry.
    pub fn metadata(&self, key: &str) -> Option<&str> {
        self.metadata.get(key).map(String::as_str)
    }

    /// The parent session, if this one was opened as a child.
    pub fn parent(&self) -> Option<SessionId> {
        self.parent
    }

    /// Whether the session still accepts submissions.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Jobs submitted but not yet completed.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Accumulated metering.
    pub fn meter(&self) -> &SessionMeter {
        &self.meter
    }

    pub(crate) fn close(&mut self) {
        self.active = false;
    }

    pub(crate) fn meter_mut(&mut self) -> &mut SessionMeter {
        &mut self.meter
    }

    pub(crate) fn note_submitted(&mut self) {
        self.in_flight += 1;
        self.meter.jobs_submitted += 1;
    }

    pub(crate) fn note_rejected(&mut self) {
        self.meter.jobs_rejected += 1;
    }

    pub(crate) fn note_completed(&mut self) {
        self.in_flight = self.in_flight.saturating_sub(1);
        self.meter.jobs_completed += 1;
    }

    /// A queued job discarded at shutdown: releases the in-flight slot
    /// without counting a completion.
    pub(crate) fn note_abandoned(&mut self) {
        self.in_flight = self.in_flight.saturating_sub(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builders_populate_the_context() {
        let spec = SessionSpec::tenant("acme")
            .with_env("data_source", "s3://bucket")
            .with_env("precision", "f64")
            .with_metadata("priority", "high");
        let ctx = SessionCtx::create(7, spec, Some(3));
        assert_eq!(ctx.id(), 7);
        assert_eq!(ctx.tenant(), "acme");
        assert_eq!(ctx.env("data_source"), Some("s3://bucket"));
        assert_eq!(ctx.env("precision"), Some("f64"));
        assert_eq!(ctx.env("missing"), None);
        assert_eq!(ctx.metadata("priority"), Some("high"));
        assert_eq!(ctx.metadata("absent"), None);
        assert_eq!(ctx.parent(), Some(3));
        assert!(ctx.is_active());
        assert_eq!(ctx.in_flight(), 0);
        assert_eq!(ctx.meter(), &SessionMeter::default());
    }

    #[test]
    fn lifecycle_bookkeeping() {
        let mut ctx = SessionCtx::create(1, SessionSpec::tenant("t"), None);
        ctx.note_submitted();
        ctx.note_submitted();
        assert_eq!(ctx.in_flight(), 2);
        assert_eq!(ctx.meter().jobs_submitted, 2);
        ctx.note_completed();
        assert_eq!(ctx.in_flight(), 1);
        assert_eq!(ctx.meter().jobs_completed, 1);
        ctx.note_rejected();
        assert_eq!(ctx.meter().jobs_rejected, 1);
        ctx.close();
        assert!(!ctx.is_active());
        // Completion after close still settles in-flight accounting.
        ctx.note_completed();
        assert_eq!(ctx.in_flight(), 0);
        ctx.note_completed();
        assert_eq!(ctx.in_flight(), 0, "saturates at zero");
    }
}
