//! Session contexts: the per-tenant execution state every submission flows
//! through.
//!
//! A [`SessionCtx`] is the service-layer analogue of the runtime's `TaskCtx`:
//! where a task context carries one task's view of one run, a session context
//! carries one tenant's view of the *service* — an environment/metadata
//! key-value store, accumulated metering, and an optional parent link so a
//! tenant can nest scoped child sessions (a sweep inside an experiment inside
//! a project) whose accounting stays separable.
//!
//! The module also hosts the session's asynchronous delivery surface: a
//! [`CompletionStream`] attached via
//! [`KernelService::completion_stream`](crate::KernelService::completion_stream)
//! receives every subsequently-submitted job's [`JobOutcome`] **in
//! submission order**, regardless of the order workers finish them (an
//! internal reorder buffer holds early finishers until their turn).

use crate::job::{JobId, JobOutcome};
use serde::Serialize;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Identifier of a session within one [`KernelService`](crate::KernelService).
pub type SessionId = u64;

/// What a session has consumed so far.
///
/// All figures are cumulative since `open_session`.  Simulated seconds come
/// from the runtime's deterministic [`CostModel`](aohpc_runtime::CostModel),
/// so metering is reproducible across hosts — the property that makes the
/// numbers usable for admission decisions and tests alike.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct SessionMeter {
    /// Jobs accepted through `submit`.
    pub jobs_submitted: u64,
    /// Jobs whose report has been recorded.
    pub jobs_completed: u64,
    /// Submissions rejected at admission (unknown/closed session or a
    /// malformed spec — the fatal rejections).
    pub jobs_rejected: u64,
    /// Submissions that gave up under backpressure: `try_submit` at a full
    /// quota/queue, or a `submit_timeout` deadline expiring unadmitted.
    pub jobs_throttled: u64,
    /// Jobs revoked by [`JobHandle::cancel`](crate::JobHandle::cancel)
    /// before a worker picked them up.
    pub jobs_cancelled: u64,
    /// Jobs whose primary plan was already cached.
    pub plan_cache_hits: u64,
    /// Jobs whose primary plan had to be compiled.
    pub plan_cache_misses: u64,
    /// Cell updates (platform writes) executed on behalf of the session.
    pub cells_updated: u64,
    /// Deterministic simulated execution time consumed.
    pub simulated_seconds: f64,
}

/// What a caller supplies when opening a session: a tenant label plus
/// arbitrary environment / metadata key-value pairs.
#[derive(Debug, Clone, Default)]
pub struct SessionSpec {
    pub(crate) tenant: String,
    pub(crate) environment: BTreeMap<String, String>,
    pub(crate) metadata: BTreeMap<String, String>,
    pub(crate) pin_plans: bool,
}

impl SessionSpec {
    /// A spec for the given tenant.
    pub fn tenant(name: impl Into<String>) -> Self {
        SessionSpec { tenant: name.into(), ..Default::default() }
    }

    /// Add an environment entry.  Recorded on the session for callers to
    /// read back via [`SessionCtx::env`] (e.g. a data-source label shared by
    /// the client code that builds this session's jobs); the execution
    /// pipeline itself does not consult it.
    pub fn with_env(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.environment.insert(key.into(), value.into());
        self
    }

    /// Add a metadata entry (opaque to the service; e.g. a priority label).
    pub fn with_metadata(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.metadata.insert(key.into(), value.into());
        self
    }

    /// Mark the session *hot*: every plan it resolves is pinned in the plan
    /// cache, so eviction pressure from other tenants' churn cannot flush
    /// this tenant's working set (pins are advisory — a shard whose entries
    /// are all pinned still evicts; see the cache module docs).
    pub fn pin_plans(mut self) -> Self {
        self.pin_plans = true;
        self
    }
}

/// One tenant's execution context.
///
/// Obtained as a point-in-time snapshot from
/// [`KernelService::session`](crate::KernelService::session); the service
/// owns the live copy.
#[derive(Debug, Clone, Serialize)]
pub struct SessionCtx {
    id: SessionId,
    tenant: String,
    environment: BTreeMap<String, String>,
    metadata: BTreeMap<String, String>,
    parent: Option<SessionId>,
    active: bool,
    pin_plans: bool,
    in_flight: usize,
    meter: SessionMeter,
}

impl SessionCtx {
    pub(crate) fn create(id: SessionId, spec: SessionSpec, parent: Option<SessionId>) -> Self {
        SessionCtx {
            id,
            tenant: spec.tenant,
            environment: spec.environment,
            metadata: spec.metadata,
            parent,
            active: true,
            pin_plans: spec.pin_plans,
            in_flight: 0,
            meter: SessionMeter::default(),
        }
    }

    /// The session's id.
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// The tenant label.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Look up an environment entry.
    pub fn env(&self, key: &str) -> Option<&str> {
        self.environment.get(key).map(String::as_str)
    }

    /// Look up a metadata entry.
    pub fn metadata(&self, key: &str) -> Option<&str> {
        self.metadata.get(key).map(String::as_str)
    }

    /// The parent session, if this one was opened as a child.
    pub fn parent(&self) -> Option<SessionId> {
        self.parent
    }

    /// Whether the session still accepts submissions.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Whether the session pins every plan it resolves (hot tenant; see
    /// [`SessionSpec::pin_plans`]).
    pub fn pins_plans(&self) -> bool {
        self.pin_plans
    }

    /// Jobs submitted but not yet completed.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Accumulated metering.
    pub fn meter(&self) -> &SessionMeter {
        &self.meter
    }

    pub(crate) fn close(&mut self) {
        self.active = false;
    }

    pub(crate) fn meter_mut(&mut self) -> &mut SessionMeter {
        &mut self.meter
    }

    pub(crate) fn note_submitted(&mut self) {
        self.in_flight += 1;
        self.meter.jobs_submitted += 1;
    }

    pub(crate) fn note_rejected(&mut self) {
        self.meter.jobs_rejected += 1;
    }

    pub(crate) fn note_throttled(&mut self) {
        self.meter.jobs_throttled += 1;
    }

    /// A queued job revoked by `JobHandle::cancel`: releases the in-flight
    /// slot (unblocking backpressured submitters) without a completion.
    pub(crate) fn note_cancelled(&mut self) {
        self.in_flight = self.in_flight.saturating_sub(1);
        self.meter.jobs_cancelled += 1;
    }

    pub(crate) fn note_completed(&mut self) {
        self.in_flight = self.in_flight.saturating_sub(1);
        self.meter.jobs_completed += 1;
    }

    /// A queued job discarded at shutdown: releases the in-flight slot
    /// without counting a completion.
    pub(crate) fn note_abandoned(&mut self) {
        self.in_flight = self.in_flight.saturating_sub(1);
    }
}

// ---------------------------------------------------------------------------
// Completion streams
// ---------------------------------------------------------------------------

/// Upper bound on a single condvar wait inside the blocking stream methods.
/// This is a missed-notification safety net, **not** an overall deadline:
/// [`CompletionStream::next`] keeps re-waiting in these slices for as long
/// as an undelivered job is owed, so it blocks indefinitely when that job
/// never resolves (e.g. queued on an admission-only service).  Callers
/// needing a bounded wait use [`CompletionStream::next_timeout`].
const STREAM_WAIT_SLICE: Duration = Duration::from_millis(200);

struct StreamInner {
    /// Job ids this stream owes the consumer, in submission order.
    expected: VecDeque<JobId>,
    /// Outcomes that arrived ahead of their turn (reorder buffer).
    ready: BTreeMap<JobId, JobOutcome>,
    /// The first job id ever owed.  Job ids are global and ascending and
    /// `expect` is called in admission order, so "is this job owed?" is the
    /// O(1) comparison `job >= watermark` — no scan of `expected` (jobs
    /// submitted before the stream attached all have smaller ids).
    watermark: Option<JobId>,
}

/// Shared state between a session's [`CompletionStream`] handles and the
/// service's completion paths.
///
/// Delivery is gated on live consumers: while at least one
/// [`CompletionStream`] handle exists, admissions are owed and outcomes
/// buffered; when the last handle drops, the buffers are cleared and both
/// sides become no-ops, so an attached-then-abandoned stream cannot
/// accumulate reports without bound.  Re-attaching resumes delivery for
/// jobs submitted from that point on.
pub(crate) struct StreamState {
    inner: Mutex<StreamInner>,
    cv: Condvar,
    /// Live `CompletionStream` handles sharing this state.
    consumers: AtomicUsize,
}

impl StreamState {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(StreamState {
            inner: Mutex::new(StreamInner {
                expected: VecDeque::new(),
                ready: BTreeMap::new(),
                watermark: None,
            }),
            cv: Condvar::new(),
            consumers: AtomicUsize::new(0),
        })
    }

    fn lock(&self) -> MutexGuard<'_, StreamInner> {
        self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Whether any consumer handle is attached (completion paths skip the
    /// report clone entirely when none is).
    pub(crate) fn has_consumers(&self) -> bool {
        self.consumers.load(Ordering::SeqCst) > 0
    }

    /// Admission-side: the stream owes the consumer this job's outcome.
    /// Called in submission order (under the service's session lock).  A
    /// no-op while no consumer is attached.
    pub(crate) fn expect(&self, job: JobId) {
        let mut inner = self.lock();
        // Re-checked under the lock: a concurrent last-consumer drop clears
        // the buffers under this same lock, so either this push lands before
        // the clear (and is cleared) or the check below sees zero consumers.
        if !self.has_consumers() {
            return;
        }
        inner.watermark.get_or_insert(job);
        inner.expected.push_back(job);
    }

    /// Completion-side: a job resolved.  Outcomes for jobs submitted before
    /// the stream was attached (or while it was detached — the watermark
    /// resets when the last consumer drops) are not owed and are dropped;
    /// the ownership test is an O(1) watermark comparison, not a scan of
    /// the backlog.
    pub(crate) fn resolve(&self, job: JobId, outcome: JobOutcome) {
        let mut inner = self.lock();
        if inner.watermark.is_some_and(|first_owed| job >= first_owed) {
            inner.ready.insert(job, outcome);
            drop(inner);
            self.cv.notify_all();
        }
    }

    fn pop_ready(inner: &mut StreamInner) -> Option<JobOutcome> {
        let next = *inner.expected.front()?;
        let outcome = inner.ready.remove(&next)?;
        inner.expected.pop_front();
        Some(outcome)
    }
}

/// In-order delivery of one session's [`JobOutcome`]s.
///
/// Obtained from
/// [`KernelService::completion_stream`](crate::KernelService::completion_stream);
/// jobs submitted to the session **after** the stream is attached are
/// delivered here in submission order — a job that finishes early waits in a
/// reorder buffer until every earlier job of the session has been delivered.
/// Cancelled and abandoned jobs are delivered too (as `Err`), so the stream
/// never stalls on a hole.
///
/// Further `completion_stream` calls for the same session return handles
/// sharing this buffer; each outcome goes to exactly one consumer.  The
/// stream is also a blocking [`Iterator`], ending (`None`) when no
/// undelivered job remains.
pub struct CompletionStream {
    session: SessionId,
    state: Arc<StreamState>,
}

impl CompletionStream {
    pub(crate) fn new(session: SessionId, state: Arc<StreamState>) -> Self {
        state.consumers.fetch_add(1, Ordering::SeqCst);
        CompletionStream { session, state }
    }

    /// The session this stream delivers for.
    pub fn session(&self) -> SessionId {
        self.session
    }

    /// Jobs submitted-but-not-yet-delivered (including ones still running).
    pub fn pending(&self) -> usize {
        self.state.lock().expected.len()
    }

    /// The next in-order outcome if it is already available (non-blocking).
    pub fn try_next(&self) -> Option<JobOutcome> {
        StreamState::pop_ready(&mut self.state.lock())
    }

    /// Block until the next in-order outcome is available and return it.
    /// Returns `None` immediately when the stream owes nothing (no
    /// undelivered submission) — the natural end-of-batch signal.
    #[allow(clippy::should_implement_trait)] // the Iterator impl delegates here
    pub fn next(&self) -> Option<JobOutcome> {
        let mut inner = self.state.lock();
        loop {
            if let Some(outcome) = StreamState::pop_ready(&mut inner) {
                return Some(outcome);
            }
            if inner.expected.is_empty() {
                return None;
            }
            let (guard, _) = self
                .state
                .cv
                .wait_timeout(inner, STREAM_WAIT_SLICE)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            inner = guard;
        }
    }

    /// Like [`CompletionStream::next`], but gives up after `timeout` even if
    /// an undelivered job is still in flight.
    pub fn next_timeout(&self, timeout: Duration) -> Option<JobOutcome> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.state.lock();
        loop {
            if let Some(outcome) = StreamState::pop_ready(&mut inner) {
                return Some(outcome);
            }
            if inner.expected.is_empty() {
                return None;
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return None;
            }
            let (guard, _) = self
                .state
                .cv
                .wait_timeout(inner, remaining.min(STREAM_WAIT_SLICE))
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            inner = guard;
        }
    }
}

impl Drop for CompletionStream {
    fn drop(&mut self) {
        if self.state.consumers.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last consumer gone: nobody can ever read the buffers, so clear
            // them and reset the watermark — completions for in-flight and
            // future jobs become no-ops until a new stream attaches (which
            // starts a fresh watermark at its first admission).
            let mut inner = self.state.lock();
            inner.expected.clear();
            inner.ready.clear();
            inner.watermark = None;
        }
    }
}

impl Iterator for CompletionStream {
    type Item = JobOutcome;

    fn next(&mut self) -> Option<JobOutcome> {
        CompletionStream::next(self)
    }
}

impl std::fmt::Debug for CompletionStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.state.lock();
        f.debug_struct("CompletionStream")
            .field("session", &self.session)
            .field("pending", &inner.expected.len())
            .field("buffered", &inner.ready.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builders_populate_the_context() {
        let spec = SessionSpec::tenant("acme")
            .with_env("data_source", "s3://bucket")
            .with_env("precision", "f64")
            .with_metadata("priority", "high");
        let ctx = SessionCtx::create(7, spec, Some(3));
        assert_eq!(ctx.id(), 7);
        assert_eq!(ctx.tenant(), "acme");
        assert_eq!(ctx.env("data_source"), Some("s3://bucket"));
        assert_eq!(ctx.env("precision"), Some("f64"));
        assert_eq!(ctx.env("missing"), None);
        assert_eq!(ctx.metadata("priority"), Some("high"));
        assert_eq!(ctx.metadata("absent"), None);
        assert_eq!(ctx.parent(), Some(3));
        assert!(ctx.is_active());
        assert_eq!(ctx.in_flight(), 0);
        assert_eq!(ctx.meter(), &SessionMeter::default());
    }

    #[test]
    fn lifecycle_bookkeeping() {
        let mut ctx = SessionCtx::create(1, SessionSpec::tenant("t"), None);
        ctx.note_submitted();
        ctx.note_submitted();
        assert_eq!(ctx.in_flight(), 2);
        assert_eq!(ctx.meter().jobs_submitted, 2);
        ctx.note_completed();
        assert_eq!(ctx.in_flight(), 1);
        assert_eq!(ctx.meter().jobs_completed, 1);
        ctx.note_rejected();
        assert_eq!(ctx.meter().jobs_rejected, 1);
        ctx.close();
        assert!(!ctx.is_active());
        // Completion after close still settles in-flight accounting.
        ctx.note_completed();
        assert_eq!(ctx.in_flight(), 0);
        ctx.note_completed();
        assert_eq!(ctx.in_flight(), 0, "saturates at zero");
    }
}
