//! Failure injection for cluster fault tests: scripted kills, wedges and
//! control-frame perturbations, all keyed to detector time.
//!
//! A [`FaultPlan`] is a declarative schedule — *kill rank 2 at t=40 ms, wedge
//! rank 1's fabric at t=10 ms, delay every `PLAN_REP` from 0 to 1 until
//! t=120 ms* — armed into a [`FaultState`] the
//! [`ClusterService`](crate::cluster::ClusterService) threads consult:
//!
//! * The cluster's per-node pacemaker calls [`FaultState::drive`] whenever
//!   detector time moves (on a [`FakeClock`](aohpc_testalloc::sync::FakeClock)
//!   that is every `advance`), executing due [`FaultAction`]s: a **kill** is
//!   fail-stop — the node's service orphans its queue, its fabric goes
//!   silent — and a **wedge** parks the fabric without killing the node
//!   (frames pile up; heartbeats stop; peers suspect it until the scripted
//!   unwedge lets it refute).
//! * Each fabric loop passes every received frame through
//!   [`FaultState::intercept`], which delivers, drops, or holds it; held
//!   frames come back from [`FaultState::take_released`] once their release
//!   time passes — the seam the stale-`PLAN_REP` regression test uses to
//!   make a reply from a now-dead incarnation arrive *after* the death was
//!   declared.
//!
//! The harness is pure bookkeeping: it never spawns threads and never
//! touches a clock itself, so the same plan replays identically under any
//! interleaving — determinism comes from the fake clock driving it.

use aohpc_runtime::ControlFrame;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// One scripted fault, executed by [`FaultState::drive`] when its time comes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Fail-stop `rank`: its service stops admitting and orphans its queue,
    /// its fabric neither serves nor beats.  Permanent (this cluster never
    /// restarts a rank).
    Kill(usize),
    /// Park `rank`'s fabric thread: frames queue up undelivered and no
    /// heartbeats leave, but workers keep running — the node *looks* dead to
    /// its peers without being dead.
    Wedge(usize),
    /// Release a wedged fabric: it drains its backlog and resumes beating,
    /// eventually refuting the suspicion it earned.
    Unwedge(usize),
}

impl FaultAction {
    /// The rank the action targets.
    pub fn rank(&self) -> usize {
        match *self {
            FaultAction::Kill(r) | FaultAction::Wedge(r) | FaultAction::Unwedge(r) => r,
        }
    }
}

/// What [`FaultState::intercept`] decided about one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interception {
    /// Hand the frame to the protocol as usual.
    Deliver,
    /// The frame never happened (a lossy link).
    Dropped,
    /// The frame is parked inside the harness; it will surface from
    /// [`FaultState::take_released`] at its scripted release time.
    Held,
}

/// A frame-matching rule: which (from → to, tag) traffic a perturbation
/// applies to.  `None` fields are wildcards.
#[derive(Debug, Clone, Copy)]
struct FrameRule {
    from: Option<usize>,
    to: Option<usize>,
    tag: Option<u32>,
    effect: Effect,
}

#[derive(Debug, Clone, Copy)]
enum Effect {
    Drop,
    DelayUntil(Duration),
}

impl FrameRule {
    fn matches(&self, to: usize, frame: &ControlFrame) -> bool {
        self.from.is_none_or(|f| f == frame.from)
            && self.to.is_none_or(|t| t == to)
            && self.tag.is_none_or(|t| t == frame.tag)
    }
}

/// A declarative failure schedule, built by tests and armed into the cluster
/// via `ClusterService::with_faults`.
#[derive(Debug, Default)]
pub struct FaultPlan {
    actions: Vec<(Duration, FaultAction)>,
    rules: Vec<FrameRule>,
}

impl FaultPlan {
    /// An empty plan (no faults — the cluster behaves as without a harness).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Fail-stop `rank` at detector time `at`.
    pub fn kill_at(mut self, rank: usize, at: Duration) -> Self {
        self.actions.push((at, FaultAction::Kill(rank)));
        self
    }

    /// Wedge `rank`'s fabric at detector time `at`.
    pub fn wedge_at(mut self, rank: usize, at: Duration) -> Self {
        self.actions.push((at, FaultAction::Wedge(rank)));
        self
    }

    /// Un-wedge `rank`'s fabric at detector time `at`.
    pub fn unwedge_at(mut self, rank: usize, at: Duration) -> Self {
        self.actions.push((at, FaultAction::Unwedge(rank)));
        self
    }

    /// Drop every frame matching (`from` → `to`, `tag`); `None` = wildcard.
    pub fn drop_frames(mut self, from: Option<usize>, to: Option<usize>, tag: Option<u32>) -> Self {
        self.rules.push(FrameRule { from, to, tag, effect: Effect::Drop });
        self
    }

    /// Hold every frame matching (`from` → `to`, `tag`) until detector time
    /// `until` — the delayed-delivery seam for stale-reply races.
    pub fn delay_frames(
        mut self,
        from: Option<usize>,
        to: Option<usize>,
        tag: Option<u32>,
        until: Duration,
    ) -> Self {
        self.rules.push(FrameRule { from, to, tag, effect: Effect::DelayUntil(until) });
        self
    }

    /// Arm the plan for a mesh of `ranks` nodes.
    pub fn arm(mut self, ranks: usize) -> FaultState {
        // Sorted by fire time so `drive` pops a due prefix.  The sort is
        // stable: same-instant actions fire in scripted order.
        self.actions.sort_by_key(|(at, _)| *at);
        for (_, action) in &self.actions {
            assert!(action.rank() < ranks, "fault targets rank {} of {ranks}", action.rank());
        }
        FaultState {
            pending: Mutex::new(self.actions),
            rules: self.rules,
            killed: (0..ranks).map(|_| AtomicBool::new(false)).collect(),
            wedged: (0..ranks).map(|_| AtomicBool::new(false)).collect(),
            held: Mutex::new(Vec::new()),
        }
    }
}

/// A held frame waiting for its release time.
struct HeldFrame {
    release: Duration,
    to: usize,
    frame: ControlFrame,
}

/// The armed, thread-shared runtime of a [`FaultPlan`].
///
/// Every method is a short lock-or-atomic operation safe to call from
/// pacemakers and fabric loops; the harness never blocks.
pub struct FaultState {
    pending: Mutex<Vec<(Duration, FaultAction)>>,
    rules: Vec<FrameRule>,
    killed: Vec<AtomicBool>,
    wedged: Vec<AtomicBool>,
    held: Mutex<Vec<HeldFrame>>,
}

impl FaultState {
    /// Advance the schedule to detector time `now`: flips the kill/wedge
    /// flags of every action due and returns those actions for the caller to
    /// execute their side effects (orphaning a killed node's queue, waking a
    /// parked fabric).  Idempotent per action — each fires exactly once.
    pub fn drive(&self, now: Duration) -> Vec<FaultAction> {
        let mut pending = self.pending.lock().unwrap_or_else(|p| p.into_inner());
        let due = pending.iter().take_while(|(at, _)| *at <= now).count();
        let fired: Vec<FaultAction> = pending.drain(..due).map(|(_, a)| a).collect();
        drop(pending);
        for action in &fired {
            match *action {
                FaultAction::Kill(r) => self.killed[r].store(true, Ordering::SeqCst),
                FaultAction::Wedge(r) => self.wedged[r].store(true, Ordering::SeqCst),
                FaultAction::Unwedge(r) => self.wedged[r].store(false, Ordering::SeqCst),
            }
        }
        fired
    }

    /// Whether `rank` has been fail-stopped.
    pub fn is_killed(&self, rank: usize) -> bool {
        self.killed[rank].load(Ordering::SeqCst)
    }

    /// Whether `rank`'s fabric is currently wedged.
    pub fn is_wedged(&self, rank: usize) -> bool {
        self.wedged[rank].load(Ordering::SeqCst)
    }

    /// Pass one frame received at `to` through the perturbation rules.  The
    /// first matching rule wins; with none the frame is delivered.  A held
    /// frame whose release time has already passed delivers immediately.
    pub fn intercept(&self, to: usize, frame: &ControlFrame, now: Duration) -> Interception {
        for rule in &self.rules {
            if !rule.matches(to, frame) {
                continue;
            }
            return match rule.effect {
                Effect::Drop => Interception::Dropped,
                Effect::DelayUntil(release) if release <= now => Interception::Deliver,
                Effect::DelayUntil(release) => {
                    self.held.lock().unwrap_or_else(|p| p.into_inner()).push(HeldFrame {
                        release,
                        to,
                        frame: clone_frame(frame),
                    });
                    Interception::Held
                }
            };
        }
        Interception::Deliver
    }

    /// Frames held for `to` whose release time has passed, in hold order.
    pub fn take_released(&self, to: usize, now: Duration) -> Vec<ControlFrame> {
        let mut held = self.held.lock().unwrap_or_else(|p| p.into_inner());
        let mut released = Vec::new();
        held.retain_mut(|h| {
            if h.to == to && h.release <= now {
                released.push(clone_frame(&h.frame));
                false
            } else {
                true
            }
        });
        released
    }

    /// How many frames are still parked in the harness (test visibility).
    pub fn held_count(&self) -> usize {
        self.held.lock().unwrap_or_else(|p| p.into_inner()).len()
    }
}

impl std::fmt::Debug for FaultState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let killed: Vec<usize> = (0..self.killed.len()).filter(|&r| self.is_killed(r)).collect();
        let wedged: Vec<usize> = (0..self.wedged.len()).filter(|&r| self.is_wedged(r)).collect();
        f.debug_struct("FaultState")
            .field("killed", &killed)
            .field("wedged", &wedged)
            .field("held", &self.held_count())
            .finish()
    }
}

fn clone_frame(frame: &ControlFrame) -> ControlFrame {
    ControlFrame { from: frame.from, tag: frame.tag, bytes: frame.bytes.clone() }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: Duration = Duration::from_millis(1);

    fn frame(from: usize, tag: u32) -> ControlFrame {
        ControlFrame { from, tag, bytes: vec![1, 2, 3] }
    }

    #[test]
    fn scheduled_actions_fire_once_in_time_order() {
        let state =
            FaultPlan::new().wedge_at(1, 10 * MS).kill_at(2, 30 * MS).unwedge_at(1, 20 * MS).arm(3);
        assert!(state.drive(5 * MS).is_empty());
        assert_eq!(state.drive(25 * MS), vec![FaultAction::Wedge(1), FaultAction::Unwedge(1)]);
        assert!(!state.is_wedged(1), "wedge then unwedge both fired");
        assert!(!state.is_killed(2), "not yet due");
        assert_eq!(state.drive(30 * MS), vec![FaultAction::Kill(2)]);
        assert!(state.is_killed(2));
        assert!(state.drive(100 * MS).is_empty(), "each action fires exactly once");
    }

    #[test]
    fn drop_rule_swallows_matching_frames_only() {
        let state = FaultPlan::new().drop_frames(Some(0), Some(1), Some(7)).arm(2);
        assert_eq!(state.intercept(1, &frame(0, 7), MS), Interception::Dropped);
        assert_eq!(state.intercept(1, &frame(0, 8), MS), Interception::Deliver, "other tag");
        assert_eq!(state.intercept(0, &frame(0, 7), MS), Interception::Deliver, "other dest");
        assert_eq!(state.intercept(1, &frame(1, 7), MS), Interception::Deliver, "other source");
    }

    #[test]
    fn wildcard_rule_matches_everything() {
        let state = FaultPlan::new().drop_frames(None, None, None).arm(2);
        assert_eq!(state.intercept(0, &frame(1, 42), MS), Interception::Dropped);
        assert_eq!(state.intercept(1, &frame(0, 0), MS), Interception::Dropped);
    }

    #[test]
    fn delayed_frames_release_at_their_time() {
        let state = FaultPlan::new().delay_frames(Some(0), Some(1), None, 50 * MS).arm(2);
        assert_eq!(state.intercept(1, &frame(0, 2), 10 * MS), Interception::Held);
        assert_eq!(state.held_count(), 1);
        assert!(state.take_released(1, 40 * MS).is_empty(), "not yet due");
        assert!(state.take_released(0, 60 * MS).is_empty(), "wrong destination");
        let released = state.take_released(1, 60 * MS);
        assert_eq!(released.len(), 1);
        assert_eq!(
            (released[0].from, released[0].tag, &released[0].bytes[..]),
            (0, 2, &[1u8, 2, 3][..])
        );
        assert_eq!(state.held_count(), 0);
        // A frame arriving after the release time passes straight through.
        assert_eq!(state.intercept(1, &frame(0, 2), 60 * MS), Interception::Deliver);
    }

    #[test]
    fn empty_plan_perturbs_nothing() {
        let state = FaultPlan::new().arm(4);
        assert!(state.drive(Duration::from_secs(10)).is_empty());
        for rank in 0..4 {
            assert!(!state.is_killed(rank));
            assert!(!state.is_wedged(rank));
            assert_eq!(state.intercept(rank, &frame(0, 1), MS), Interception::Deliver);
        }
    }

    #[test]
    #[should_panic(expected = "fault targets rank 9")]
    fn arming_rejects_out_of_range_targets() {
        let _ = FaultPlan::new().kill_at(9, MS).arm(3);
    }
}
