//! Failure injection for cluster fault tests: scripted kills, restarts,
//! wedges, directional partitions and control-frame perturbations, all keyed
//! to detector time.
//!
//! A [`FaultPlan`] is a declarative schedule — *kill rank 2 at t=40 ms,
//! restart it at t=200 ms, cut the link 1→0 at t=10 ms and heal it at
//! t=120 ms, delay every `PLAN_REP` from 0 to 1 until t=120 ms* — armed into
//! a [`FaultState`] the [`ClusterService`](crate::cluster::ClusterService)
//! threads consult:
//!
//! * The cluster's per-node pacemaker calls [`FaultState::drive`] whenever
//!   detector time moves (on a [`FakeClock`](aohpc_testalloc::sync::FakeClock)
//!   that is every `advance`), executing due [`FaultAction`]s: a **kill** is
//!   fail-stop — the node's service orphans its queue, its fabric goes
//!   silent; a **restart** brings the killed rank back as a *fresh
//!   incarnation* (its service re-admits, its membership view restarts with
//!   a bumped incarnation, and it rejoins the mesh through the normal
//!   heartbeat / anti-entropy path); a **wedge** parks the fabric without
//!   killing the node (frames pile up; heartbeats stop; peers suspect it
//!   until the scripted unwedge lets it refute).
//! * A **partition** cuts one *direction* of one link: every frame sent by
//!   `from` stops arriving at `to` (the reverse direction is untouched —
//!   asymmetric partitions are scripted as a single cut, symmetric ones as
//!   two).  A **heal** restores the direction.  Cuts are consulted by
//!   [`FaultState::intercept`] before the frame rules, so a partitioned
//!   direction silences heartbeats, gossip and plan traffic alike.
//! * Each fabric loop passes every received frame through
//!   [`FaultState::intercept`], which delivers, drops, or holds it; held
//!   frames come back from [`FaultState::take_released`] once their release
//!   time passes — the seam the stale-`PLAN_REP` regression test uses to
//!   make a reply from a now-dead incarnation arrive *after* the death was
//!   declared.
//!
//! The harness is pure bookkeeping: it never spawns threads and never
//! touches a clock itself, so the same plan replays identically under any
//! interleaving — determinism comes from the fake clock driving it.

use aohpc_runtime::ControlFrame;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// One scripted fault, executed by [`FaultState::drive`] when its time comes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Fail-stop `rank`: its service stops admitting and orphans its queue,
    /// its fabric neither serves nor beats — until a scripted
    /// [`FaultAction::Restart`] brings it back as a fresh incarnation.
    Kill(usize),
    /// Restart a killed `rank`: its service re-admits and its membership
    /// view restarts under a bumped incarnation, so the returning rank's
    /// heartbeats are recognizably *new* — peers revive their Dead entry
    /// (incarnation arbitration) instead of ignoring a stale ghost.
    Restart(usize),
    /// Park `rank`'s fabric thread: frames queue up undelivered and no
    /// heartbeats leave, but workers keep running — the node *looks* dead to
    /// its peers without being dead.
    Wedge(usize),
    /// Release a wedged fabric: it drains its backlog and resumes beating,
    /// eventually refuting the suspicion it earned.
    Unwedge(usize),
    /// Cut the directed link `from → to`: frames sent by `from` stop
    /// arriving at `to`.  The reverse direction keeps flowing — this is the
    /// asymmetric-partition primitive.
    Partition {
        /// The sending side of the severed direction.
        from: usize,
        /// The receiving side that goes deaf to `from`.
        to: usize,
    },
    /// Restore the directed link `from → to`.
    Heal {
        /// The sending side of the restored direction.
        from: usize,
        /// The receiving side that hears `from` again.
        to: usize,
    },
}

impl FaultAction {
    /// The primary rank the action targets (for link actions, the sending
    /// side of the affected direction).
    pub fn rank(&self) -> usize {
        match *self {
            FaultAction::Kill(r)
            | FaultAction::Restart(r)
            | FaultAction::Wedge(r)
            | FaultAction::Unwedge(r) => r,
            FaultAction::Partition { from, .. } | FaultAction::Heal { from, .. } => from,
        }
    }

    /// Every rank the action involves (both ends of a link action).
    fn involved(&self) -> (usize, Option<usize>) {
        match *self {
            FaultAction::Kill(r)
            | FaultAction::Restart(r)
            | FaultAction::Wedge(r)
            | FaultAction::Unwedge(r) => (r, None),
            FaultAction::Partition { from, to } | FaultAction::Heal { from, to } => {
                (from, Some(to))
            }
        }
    }
}

/// What [`FaultState::intercept`] decided about one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interception {
    /// Hand the frame to the protocol as usual.
    Deliver,
    /// The frame never happened (a lossy link).
    Dropped,
    /// The frame is parked inside the harness; it will surface from
    /// [`FaultState::take_released`] at its scripted release time.
    Held,
}

/// A frame-matching rule: which (from → to, tag) traffic a perturbation
/// applies to.  `None` fields are wildcards.
#[derive(Debug, Clone, Copy)]
struct FrameRule {
    from: Option<usize>,
    to: Option<usize>,
    tag: Option<u32>,
    effect: Effect,
}

#[derive(Debug, Clone, Copy)]
enum Effect {
    Drop,
    DelayUntil(Duration),
}

impl FrameRule {
    fn matches(&self, to: usize, frame: &ControlFrame) -> bool {
        self.from.is_none_or(|f| f == frame.from)
            && self.to.is_none_or(|t| t == to)
            && self.tag.is_none_or(|t| t == frame.tag)
    }
}

/// A declarative failure schedule, built by tests and armed into the cluster
/// via `ClusterService::with_faults`.
#[derive(Debug, Default)]
pub struct FaultPlan {
    actions: Vec<(Duration, FaultAction)>,
    rules: Vec<FrameRule>,
}

impl FaultPlan {
    /// An empty plan (no faults — the cluster behaves as without a harness).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Fail-stop `rank` at detector time `at`.
    pub fn kill_at(mut self, rank: usize, at: Duration) -> Self {
        self.actions.push((at, FaultAction::Kill(rank)));
        self
    }

    /// Restart a killed `rank` at detector time `at` (fresh incarnation;
    /// the rank rejoins through heartbeats and anti-entropy).
    pub fn restart_at(mut self, rank: usize, at: Duration) -> Self {
        self.actions.push((at, FaultAction::Restart(rank)));
        self
    }

    /// Cut the directed link `from → to` at detector time `at` (frames sent
    /// by `from` stop arriving at `to`; the reverse direction keeps
    /// flowing).  Script both directions for a symmetric partition.
    pub fn partition_at(mut self, from: usize, to: usize, at: Duration) -> Self {
        self.actions.push((at, FaultAction::Partition { from, to }));
        self
    }

    /// Restore the directed link `from → to` at detector time `at`.
    pub fn heal_at(mut self, from: usize, to: usize, at: Duration) -> Self {
        self.actions.push((at, FaultAction::Heal { from, to }));
        self
    }

    /// Wedge `rank`'s fabric at detector time `at`.
    pub fn wedge_at(mut self, rank: usize, at: Duration) -> Self {
        self.actions.push((at, FaultAction::Wedge(rank)));
        self
    }

    /// Un-wedge `rank`'s fabric at detector time `at`.
    pub fn unwedge_at(mut self, rank: usize, at: Duration) -> Self {
        self.actions.push((at, FaultAction::Unwedge(rank)));
        self
    }

    /// Drop every frame matching (`from` → `to`, `tag`); `None` = wildcard.
    pub fn drop_frames(mut self, from: Option<usize>, to: Option<usize>, tag: Option<u32>) -> Self {
        self.rules.push(FrameRule { from, to, tag, effect: Effect::Drop });
        self
    }

    /// Hold every frame matching (`from` → `to`, `tag`) until detector time
    /// `until` — the delayed-delivery seam for stale-reply races.
    pub fn delay_frames(
        mut self,
        from: Option<usize>,
        to: Option<usize>,
        tag: Option<u32>,
        until: Duration,
    ) -> Self {
        self.rules.push(FrameRule { from, to, tag, effect: Effect::DelayUntil(until) });
        self
    }

    /// Arm the plan for a mesh of `ranks` nodes.
    pub fn arm(mut self, ranks: usize) -> FaultState {
        // Sorted by fire time so `drive` pops a due prefix.  The sort is
        // stable: same-instant actions fire in scripted order.
        self.actions.sort_by_key(|(at, _)| *at);
        for (_, action) in &self.actions {
            let (a, b) = action.involved();
            assert!(a < ranks, "fault targets rank {a} of {ranks}");
            if let Some(b) = b {
                assert!(b < ranks, "fault targets rank {b} of {ranks}");
                assert!(a != b, "a link action needs two distinct ranks, got {a} → {b}");
            }
        }
        FaultState {
            pending: Mutex::new(self.actions),
            rules: self.rules,
            ranks,
            killed: (0..ranks).map(|_| AtomicBool::new(false)).collect(),
            wedged: (0..ranks).map(|_| AtomicBool::new(false)).collect(),
            cut: (0..ranks * ranks).map(|_| AtomicBool::new(false)).collect(),
            held: Mutex::new(Vec::new()),
        }
    }
}

/// A held frame waiting for its release time.
struct HeldFrame {
    release: Duration,
    to: usize,
    frame: ControlFrame,
}

/// The armed, thread-shared runtime of a [`FaultPlan`].
///
/// Every method is a short lock-or-atomic operation safe to call from
/// pacemakers and fabric loops; the harness never blocks.
pub struct FaultState {
    pending: Mutex<Vec<(Duration, FaultAction)>>,
    rules: Vec<FrameRule>,
    ranks: usize,
    killed: Vec<AtomicBool>,
    wedged: Vec<AtomicBool>,
    /// Directional link cuts, indexed `from * ranks + to`; a set flag drops
    /// every frame `from` sends toward `to` at the receiver.
    cut: Vec<AtomicBool>,
    held: Mutex<Vec<HeldFrame>>,
}

impl FaultState {
    /// Advance the schedule to detector time `now`: flips the kill/wedge
    /// flags of every action due and returns those actions for the caller to
    /// execute their side effects (orphaning a killed node's queue, waking a
    /// parked fabric).  Idempotent per action — each fires exactly once.
    pub fn drive(&self, now: Duration) -> Vec<FaultAction> {
        let mut pending = self.pending.lock().unwrap_or_else(|p| p.into_inner());
        let due = pending.iter().take_while(|(at, _)| *at <= now).count();
        let fired: Vec<FaultAction> = pending.drain(..due).map(|(_, a)| a).collect();
        drop(pending);
        for action in &fired {
            match *action {
                FaultAction::Kill(r) => self.killed[r].store(true, Ordering::SeqCst),
                FaultAction::Restart(r) => self.killed[r].store(false, Ordering::SeqCst),
                FaultAction::Wedge(r) => self.wedged[r].store(true, Ordering::SeqCst),
                FaultAction::Unwedge(r) => self.wedged[r].store(false, Ordering::SeqCst),
                FaultAction::Partition { from, to } => {
                    self.cut[from * self.ranks + to].store(true, Ordering::SeqCst);
                }
                FaultAction::Heal { from, to } => {
                    self.cut[from * self.ranks + to].store(false, Ordering::SeqCst);
                }
            }
        }
        fired
    }

    /// Whether `rank` has been fail-stopped.
    pub fn is_killed(&self, rank: usize) -> bool {
        self.killed[rank].load(Ordering::SeqCst)
    }

    /// Whether `rank`'s fabric is currently wedged.
    pub fn is_wedged(&self, rank: usize) -> bool {
        self.wedged[rank].load(Ordering::SeqCst)
    }

    /// Whether the directed link `from → to` is currently cut.
    pub fn is_cut(&self, from: usize, to: usize) -> bool {
        self.cut[from * self.ranks + to].load(Ordering::SeqCst)
    }

    /// Pass one frame received at `to` through the link cuts and
    /// perturbation rules.  A cut `from → to` direction drops the frame
    /// outright; otherwise the first matching rule wins; with none the frame
    /// is delivered.  A held frame whose release time has already passed
    /// delivers immediately.
    pub fn intercept(&self, to: usize, frame: &ControlFrame, now: Duration) -> Interception {
        if frame.from < self.ranks && frame.from != to && self.is_cut(frame.from, to) {
            return Interception::Dropped;
        }
        for rule in &self.rules {
            if !rule.matches(to, frame) {
                continue;
            }
            return match rule.effect {
                Effect::Drop => Interception::Dropped,
                Effect::DelayUntil(release) if release <= now => Interception::Deliver,
                Effect::DelayUntil(release) => {
                    self.held.lock().unwrap_or_else(|p| p.into_inner()).push(HeldFrame {
                        release,
                        to,
                        frame: clone_frame(frame),
                    });
                    Interception::Held
                }
            };
        }
        Interception::Deliver
    }

    /// Frames held for `to` whose release time has passed, in hold order.
    pub fn take_released(&self, to: usize, now: Duration) -> Vec<ControlFrame> {
        let mut held = self.held.lock().unwrap_or_else(|p| p.into_inner());
        let mut released = Vec::new();
        held.retain_mut(|h| {
            if h.to == to && h.release <= now {
                released.push(clone_frame(&h.frame));
                false
            } else {
                true
            }
        });
        released
    }

    /// How many frames are still parked in the harness (test visibility).
    pub fn held_count(&self) -> usize {
        self.held.lock().unwrap_or_else(|p| p.into_inner()).len()
    }
}

impl std::fmt::Debug for FaultState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let killed: Vec<usize> = (0..self.killed.len()).filter(|&r| self.is_killed(r)).collect();
        let wedged: Vec<usize> = (0..self.wedged.len()).filter(|&r| self.is_wedged(r)).collect();
        let mut cut = Vec::new();
        for from in 0..self.ranks {
            for to in 0..self.ranks {
                if self.is_cut(from, to) {
                    cut.push((from, to));
                }
            }
        }
        f.debug_struct("FaultState")
            .field("killed", &killed)
            .field("wedged", &wedged)
            .field("cut", &cut)
            .field("held", &self.held_count())
            .finish()
    }
}

fn clone_frame(frame: &ControlFrame) -> ControlFrame {
    ControlFrame { from: frame.from, tag: frame.tag, bytes: frame.bytes.clone() }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: Duration = Duration::from_millis(1);

    fn frame(from: usize, tag: u32) -> ControlFrame {
        ControlFrame { from, tag, bytes: vec![1, 2, 3] }
    }

    #[test]
    fn scheduled_actions_fire_once_in_time_order() {
        let state =
            FaultPlan::new().wedge_at(1, 10 * MS).kill_at(2, 30 * MS).unwedge_at(1, 20 * MS).arm(3);
        assert!(state.drive(5 * MS).is_empty());
        assert_eq!(state.drive(25 * MS), vec![FaultAction::Wedge(1), FaultAction::Unwedge(1)]);
        assert!(!state.is_wedged(1), "wedge then unwedge both fired");
        assert!(!state.is_killed(2), "not yet due");
        assert_eq!(state.drive(30 * MS), vec![FaultAction::Kill(2)]);
        assert!(state.is_killed(2));
        assert!(state.drive(100 * MS).is_empty(), "each action fires exactly once");
    }

    #[test]
    fn drop_rule_swallows_matching_frames_only() {
        let state = FaultPlan::new().drop_frames(Some(0), Some(1), Some(7)).arm(2);
        assert_eq!(state.intercept(1, &frame(0, 7), MS), Interception::Dropped);
        assert_eq!(state.intercept(1, &frame(0, 8), MS), Interception::Deliver, "other tag");
        assert_eq!(state.intercept(0, &frame(0, 7), MS), Interception::Deliver, "other dest");
        assert_eq!(state.intercept(1, &frame(1, 7), MS), Interception::Deliver, "other source");
    }

    #[test]
    fn wildcard_rule_matches_everything() {
        let state = FaultPlan::new().drop_frames(None, None, None).arm(2);
        assert_eq!(state.intercept(0, &frame(1, 42), MS), Interception::Dropped);
        assert_eq!(state.intercept(1, &frame(0, 0), MS), Interception::Dropped);
    }

    #[test]
    fn delayed_frames_release_at_their_time() {
        let state = FaultPlan::new().delay_frames(Some(0), Some(1), None, 50 * MS).arm(2);
        assert_eq!(state.intercept(1, &frame(0, 2), 10 * MS), Interception::Held);
        assert_eq!(state.held_count(), 1);
        assert!(state.take_released(1, 40 * MS).is_empty(), "not yet due");
        assert!(state.take_released(0, 60 * MS).is_empty(), "wrong destination");
        let released = state.take_released(1, 60 * MS);
        assert_eq!(released.len(), 1);
        assert_eq!(
            (released[0].from, released[0].tag, &released[0].bytes[..]),
            (0, 2, &[1u8, 2, 3][..])
        );
        assert_eq!(state.held_count(), 0);
        // A frame arriving after the release time passes straight through.
        assert_eq!(state.intercept(1, &frame(0, 2), 60 * MS), Interception::Deliver);
    }

    #[test]
    fn empty_plan_perturbs_nothing() {
        let state = FaultPlan::new().arm(4);
        assert!(state.drive(Duration::from_secs(10)).is_empty());
        for rank in 0..4 {
            assert!(!state.is_killed(rank));
            assert!(!state.is_wedged(rank));
            assert_eq!(state.intercept(rank, &frame(0, 1), MS), Interception::Deliver);
        }
    }

    #[test]
    #[should_panic(expected = "fault targets rank 9")]
    fn arming_rejects_out_of_range_targets() {
        let _ = FaultPlan::new().kill_at(9, MS).arm(3);
    }

    #[test]
    fn restart_clears_the_kill_flag_once_due() {
        let state = FaultPlan::new().kill_at(1, 10 * MS).restart_at(1, 50 * MS).arm(2);
        state.drive(20 * MS);
        assert!(state.is_killed(1));
        assert_eq!(state.drive(60 * MS), vec![FaultAction::Restart(1)]);
        assert!(!state.is_killed(1), "a restarted rank is no longer fail-stopped");
    }

    #[test]
    fn partition_cuts_exactly_one_direction() {
        let state = FaultPlan::new().partition_at(0, 1, 10 * MS).arm(3);
        state.drive(10 * MS);
        assert!(state.is_cut(0, 1));
        assert!(!state.is_cut(1, 0), "the reverse direction keeps flowing");
        assert_eq!(state.intercept(1, &frame(0, 7), 20 * MS), Interception::Dropped);
        assert_eq!(state.intercept(0, &frame(1, 7), 20 * MS), Interception::Deliver);
        assert_eq!(state.intercept(2, &frame(0, 7), 20 * MS), Interception::Deliver, "other dest");
    }

    #[test]
    fn heal_restores_the_cut_direction() {
        let state = FaultPlan::new().partition_at(0, 1, 10 * MS).heal_at(0, 1, 40 * MS).arm(2);
        state.drive(10 * MS);
        assert_eq!(state.intercept(1, &frame(0, 7), 20 * MS), Interception::Dropped);
        state.drive(40 * MS);
        assert!(!state.is_cut(0, 1));
        assert_eq!(state.intercept(1, &frame(0, 7), 50 * MS), Interception::Deliver);
    }

    #[test]
    fn link_cut_takes_precedence_over_delay_rules() {
        let state = FaultPlan::new()
            .delay_frames(Some(0), Some(1), None, 100 * MS)
            .partition_at(0, 1, 5 * MS)
            .arm(2);
        state.drive(5 * MS);
        // A cut direction never holds frames — they are simply gone.
        assert_eq!(state.intercept(1, &frame(0, 2), 10 * MS), Interception::Dropped);
        assert_eq!(state.held_count(), 0);
    }

    #[test]
    #[should_panic(expected = "two distinct ranks")]
    fn arming_rejects_a_self_link() {
        let _ = FaultPlan::new().partition_at(1, 1, MS).arm(3);
    }
}
