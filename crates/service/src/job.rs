//! Job descriptions and results.
//!
//! A [`JobSpec`] is everything one submission needs: the program, its runtime
//! parameters, the region to sweep, how it is blocked, how many steps to run,
//! and the execution knobs the one-shot harnesses already understand
//! ([`SchedulePolicy`], [`Topology`], [`WeaveMode`], [`OptLevel`]).  A
//! [`JobReport`] is the compact result the service hands back per job.

use crate::session::SessionId;
use aohpc_kernel::{OptLevel, ProgramFingerprint, SchedulePolicy, StencilProgram};
use aohpc_runtime::{RunSummary, Topology, WeaveMode};
use aohpc_workloads::{RegionSize, Scale};
use serde::Serialize;

/// Identifier of a job within one [`KernelService`](crate::KernelService).
pub type JobId = u64;

/// One unit of work a tenant submits.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The subkernel to execute.
    pub program: StencilProgram,
    /// Runtime parameters (must cover `program.num_params()`).
    pub params: Vec<f64>,
    /// Region the job sweeps.
    pub region: RegionSize,
    /// Block side length the region is partitioned into.
    pub block: usize,
    /// Time steps to run.
    pub steps: usize,
    /// Optimization level for the compiled plan.
    pub opt_level: OptLevel,
    /// Which backend executes which block.
    pub policy: SchedulePolicy,
    /// Parallel topology of the run.
    pub topology: Topology,
    /// Whether join points dispatch through the weaver.
    pub weave_mode: WeaveMode,
}

impl JobSpec {
    /// A serial, fully-optimized job over `region` (block 8, one step).
    pub fn new(program: StencilProgram, params: Vec<f64>, region: RegionSize) -> Self {
        JobSpec {
            program,
            params,
            region,
            block: 8,
            steps: 1,
            opt_level: OptLevel::Full,
            policy: SchedulePolicy::default(),
            topology: Topology::serial(),
            weave_mode: WeaveMode::Woven,
        }
    }

    /// The stock 5-point Jacobi job sized for a [`Scale`].
    pub fn jacobi(scale: Scale) -> Self {
        JobSpec::new(StencilProgram::jacobi_5pt(), vec![0.5, 0.125], scale.service_region())
            .with_block(scale.service_block_size())
            .with_steps(scale.service_steps())
    }

    /// The stock 9-point smoothing job sized for a [`Scale`].
    pub fn smooth(scale: Scale) -> Self {
        JobSpec::new(StencilProgram::smooth_9pt(), vec![0.6, 0.05], scale.service_region())
            .with_block(scale.service_block_size())
            .with_steps(scale.service_steps())
    }

    /// Set the block side length.
    pub fn with_block(mut self, block: usize) -> Self {
        self.block = block;
        self
    }

    /// Set the step count.
    pub fn with_steps(mut self, steps: usize) -> Self {
        self.steps = steps;
        self
    }

    /// Set the optimization level.
    pub fn with_opt_level(mut self, level: OptLevel) -> Self {
        self.opt_level = level;
        self
    }

    /// Set the block-to-processor policy.
    pub fn with_policy(mut self, policy: SchedulePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Set the parallel topology.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Set the weave mode.
    pub fn with_weave_mode(mut self, mode: WeaveMode) -> Self {
        self.weave_mode = mode;
        self
    }
}

/// The result of one completed job.
#[derive(Debug, Clone, Serialize)]
pub struct JobReport {
    /// Job id (submission order within the service).
    pub job: JobId,
    /// Session the job ran under.
    pub session: SessionId,
    /// Tenant label of that session.
    pub tenant: String,
    /// Program name (the submitter's label).
    pub program: String,
    /// Structural fingerprint the plan cache keyed on.
    pub fingerprint: ProgramFingerprint,
    /// Whether the job's primary plan was already cached when a worker began
    /// executing it (a job queued behind one that compiles the same plan
    /// reports a hit even if the plan was absent at submission time).
    /// Meaningless when `error` is set and the failure preceded plan
    /// resolution — only count hit rates over reports with `error: None`.
    pub plan_cache_hit: bool,
    /// Checksum of the final field.  Accumulated in sink order, so runs with
    /// the same topology agree bit-for-bit; across different topologies the
    /// summation order changes and equality holds only to float-accumulation
    /// tolerance (compare with a relative epsilon).
    pub checksum: f64,
    /// Deterministic simulated execution time of the run.
    pub simulated_seconds: f64,
    /// Digest of the underlying run.
    pub summary: RunSummary,
    /// Panic message if the job failed (bookkeeping still settles).
    pub error: Option<String>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use aohpc_kernel::Processor;

    #[test]
    fn builders_override_defaults() {
        let spec =
            JobSpec::new(StencilProgram::jacobi_5pt(), vec![0.5, 0.125], RegionSize::square(32))
                .with_block(16)
                .with_steps(5)
                .with_opt_level(OptLevel::None)
                .with_policy(SchedulePolicy::Single(Processor::Simd))
                .with_topology(Topology::hybrid(2, 2))
                .with_weave_mode(WeaveMode::Direct);
        assert_eq!(spec.block, 16);
        assert_eq!(spec.steps, 5);
        assert_eq!(spec.opt_level, OptLevel::None);
        assert_eq!(spec.policy, SchedulePolicy::Single(Processor::Simd));
        assert_eq!(spec.topology.total_tasks(), 4);
        assert_eq!(spec.weave_mode, WeaveMode::Direct);
    }

    #[test]
    fn scale_sized_stock_jobs() {
        for scale in [Scale::Smoke, Scale::Default, Scale::Paper] {
            for spec in [JobSpec::jacobi(scale), JobSpec::smooth(scale)] {
                assert_eq!(spec.region, scale.service_region());
                assert_eq!(spec.block, scale.service_block_size());
                assert_eq!(spec.steps, scale.service_steps());
                assert!(spec.params.len() >= spec.program.num_params());
                assert_eq!(spec.region.nx % spec.block, 0, "one block shape per job");
            }
        }
        assert_ne!(
            JobSpec::jacobi(Scale::Smoke).program.fingerprint(),
            JobSpec::smooth(Scale::Smoke).program.fingerprint(),
        );
    }
}
