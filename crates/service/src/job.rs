//! Job descriptions, results and the asynchronous job lifecycle.
//!
//! A [`JobSpec`] is everything one submission needs: the program, its runtime
//! parameters, the region to sweep, how it is blocked, how many steps to run,
//! and the execution knobs the one-shot harnesses already understand
//! ([`SchedulePolicy`], [`Topology`], [`WeaveMode`], [`OptLevel`]).  A
//! [`JobReport`] is the compact result the service hands back per job.
//!
//! Submission returns a [`JobHandle`] — a poll/wait future backed by a
//! shared [`CompletionSlot`].  Every accepted job **resolves exactly once**
//! with a [`JobOutcome`]: `Ok(JobReport)` when it executed (even if the
//! kernel panicked — the report carries the error), or `Err(JobError)` when
//! it was [cancelled](JobHandle::cancel) before a worker picked it up or
//! abandoned at shutdown.  The handle can be polled ([`JobHandle::poll`]),
//! blocked on ([`JobHandle::wait`] / [`JobHandle::wait_timeout`]), awaited
//! (it implements [`Future`]), or dropped — dropping never leaks the
//! worker slot, the outcome still settles all accounting.

use crate::session::SessionId;
use aohpc_kernel::{
    FamilyProgram, OptLevel, ParticleProgram, ProgramFingerprint, SchedulePolicy, SpecializationId,
    StencilProgram, UsGridProgram,
};
use aohpc_runtime::{CompletionSlot, Progress, ProgressNotifier, RunSummary, Topology, WeaveMode};
use aohpc_workloads::{RegionSize, Scale};
use serde::Serialize;
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Weak};
use std::task::{Context, Poll};
use std::time::Duration;

/// Identifier of a job within one [`KernelService`](crate::KernelService).
pub type JobId = u64;

/// Why a [`JobSpec`] is malformed — detected by [`JobSpec::validate`] at
/// build/admission time instead of a downstream panic inside a worker.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum JobSpecError {
    /// `with_block(0)`: a zero block side cannot tile any region.
    ZeroBlock,
    /// `with_steps(0)`: a zero-step job would sweep nothing.
    ZeroSteps,
    /// The region has a zero side.
    EmptyRegion,
    /// Fewer parameters than the program declares (including an empty
    /// `params` vector for a program that needs any).
    MissingParams {
        /// The submitted program's name.
        program: String,
        /// How many parameters it declares.
        declared: usize,
        /// How many were given.
        given: usize,
    },
}

impl fmt::Display for JobSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobSpecError::ZeroBlock => write!(f, "block side length must be non-zero"),
            JobSpecError::ZeroSteps => write!(f, "step count must be non-zero"),
            JobSpecError::EmptyRegion => write!(f, "region must be non-empty"),
            JobSpecError::MissingParams { program, declared, given } => {
                write!(f, "program {program} declares {declared} parameters, {given} given")
            }
        }
    }
}

impl std::error::Error for JobSpecError {}

/// One unit of work a tenant submits.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The subkernel to execute — any [`FamilyProgram`] (stencil, particle,
    /// unstructured-grid).  Constructors take `impl Into<FamilyProgram>`, so
    /// existing `JobSpec::new(StencilProgram, ..)` call sites compile
    /// unchanged.
    pub program: FamilyProgram,
    /// Runtime parameters (must cover `program.num_params()`).
    pub params: Vec<f64>,
    /// Region the job sweeps: grid cells for stencil/usgrid jobs, the
    /// neighbour-bucket grid for particle jobs.
    pub region: RegionSize,
    /// Block side length the region is partitioned into.
    pub block: usize,
    /// Time steps to run.
    pub steps: usize,
    /// Particle count for particle-family jobs (`None` uses a fill-derived
    /// default; ignored by the other families).
    pub particles: Option<usize>,
    /// Optimization level for the compiled plan.
    pub opt_level: OptLevel,
    /// Which backend executes which block.
    pub policy: SchedulePolicy,
    /// Parallel topology of the run.
    pub topology: Topology,
    /// Whether join points dispatch through the weaver.
    pub weave_mode: WeaveMode,
}

impl JobSpec {
    /// A serial, fully-optimized job over `region` (block 8, one step).
    pub fn new(program: impl Into<FamilyProgram>, params: Vec<f64>, region: RegionSize) -> Self {
        JobSpec {
            program: program.into(),
            params,
            region,
            block: 8,
            steps: 1,
            particles: None,
            opt_level: OptLevel::Full,
            policy: SchedulePolicy::default(),
            topology: Topology::serial(),
            weave_mode: WeaveMode::Woven,
        }
    }

    /// The stock 5-point Jacobi job sized for a [`Scale`].
    pub fn jacobi(scale: Scale) -> Self {
        JobSpec::new(StencilProgram::jacobi_5pt(), vec![0.5, 0.125], scale.service_region())
            .with_block(scale.service_block_size())
            .with_steps(scale.service_steps())
    }

    /// The stock 9-point smoothing job sized for a [`Scale`].
    pub fn smooth(scale: Scale) -> Self {
        JobSpec::new(StencilProgram::smooth_9pt(), vec![0.6, 0.05], scale.service_region())
            .with_block(scale.service_block_size())
            .with_steps(scale.service_steps())
    }

    /// The stock bucketed pair-sweep particle job sized for a [`Scale`]
    /// (params: cutoff radius, dt).  The region is the same bucket grid
    /// `ParticleSystem::paper` derives for the count, so service runs match
    /// the direct DSL path bit-for-bit.
    pub fn particle(scale: Scale) -> Self {
        let count = scale.scaling_particles();
        let system = aohpc_dsl::ParticleSystem::paper(count);
        let region = RegionSize { nx: system.buckets_x, ny: system.buckets_y };
        JobSpec::new(ParticleProgram::pair_sweep(), vec![1.0, 1e-3], region)
            .with_block(8)
            .with_steps(scale.service_steps())
            .with_particles(count.count)
    }

    /// The stock 4-neighbour unstructured-grid sweep sized for a [`Scale`]
    /// (params: alpha, beta — the paper's Jacobi weights).
    pub fn usgrid(scale: Scale) -> Self {
        JobSpec::new(UsGridProgram::jacobi4(), vec![0.5, 0.125], scale.service_region())
            .with_block(scale.service_block_size())
            .with_steps(scale.service_steps())
    }

    /// Check the spec is well-formed (the typed admission gate; the service
    /// wraps failures in [`SubmitError::InvalidJob`](crate::SubmitError)).
    pub fn validate(&self) -> Result<(), JobSpecError> {
        if self.params.len() < self.program.num_params() {
            return Err(JobSpecError::MissingParams {
                program: self.program.name().to_string(),
                declared: self.program.num_params(),
                given: self.params.len(),
            });
        }
        if self.block == 0 {
            return Err(JobSpecError::ZeroBlock);
        }
        if self.steps == 0 {
            return Err(JobSpecError::ZeroSteps);
        }
        if self.region.nx == 0 || self.region.ny == 0 {
            return Err(JobSpecError::EmptyRegion);
        }
        Ok(())
    }

    /// Set the block side length.
    pub fn with_block(mut self, block: usize) -> Self {
        self.block = block;
        self
    }

    /// Set the particle count (particle-family jobs).
    pub fn with_particles(mut self, particles: usize) -> Self {
        self.particles = Some(particles);
        self
    }

    /// Set the step count.
    pub fn with_steps(mut self, steps: usize) -> Self {
        self.steps = steps;
        self
    }

    /// Set the optimization level.
    pub fn with_opt_level(mut self, level: OptLevel) -> Self {
        self.opt_level = level;
        self
    }

    /// Set the block-to-processor policy.
    pub fn with_policy(mut self, policy: SchedulePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Set the parallel topology.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Set the weave mode.
    pub fn with_weave_mode(mut self, mode: WeaveMode) -> Self {
        self.weave_mode = mode;
        self
    }
}

/// How a job that survived a node death was recovered — attached to its
/// [`JobReport`] so failover is auditable per job, not just in aggregate.
///
/// The deterministic execution stack (compiled tape + simulated fabric) makes
/// the replay **bit-identical**: the job restarts from step 0 on the target
/// node and produces the same checksum a healthy run would have, which the
/// fault-injection tests assert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct FailoverProvenance {
    /// The rank the job was originally admitted on (the node that died).
    pub from_node: usize,
    /// The surviving rank the job was replayed on.
    pub to_node: usize,
    /// The job id the dead node assigned at original admission (`job` in the
    /// report is the replay id on the target node).
    pub original_job: JobId,
    /// Kernel steps the dead node had completed when it was killed (the
    /// checkpoint watermark; replay re-runs from step 0 — the watermark
    /// records how much progress the failure discarded).
    pub checkpoint_steps: u64,
}

/// How a job's execution shared a worker pass with other jobs — attached to
/// its [`JobReport`] when the service's opt-in cross-job batch fuser ran the
/// job as one member of a fused multi-root pass.
///
/// Fusion is transparent to results: the fused tape keeps every member's
/// register file, root, and [`RunSummary`] accounting separate, so checksum,
/// summary, and completion order are bit-identical to an unfused run — this
/// record is provenance, not a semantic change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct FusionProvenance {
    /// Number of jobs fused into the shared pass (including this one).
    pub width: usize,
    /// This job's member index within the fused pass (0-based, admission
    /// order).
    pub member: usize,
}

/// The result of one completed job.
#[derive(Debug, Clone, Serialize)]
pub struct JobReport {
    /// Job id (submission order within the service).
    pub job: JobId,
    /// Session the job ran under.
    pub session: SessionId,
    /// Tenant label of that session.
    pub tenant: String,
    /// Program name (the submitter's label).
    pub program: String,
    /// Structural fingerprint the plan cache keyed on.
    pub fingerprint: ProgramFingerprint,
    /// Whether the job's primary plan was already cached when a worker began
    /// executing it (a job queued behind one that compiles the same plan
    /// reports a hit even if the plan was absent at submission time).
    /// Meaningless when `error` is set and the failure preceded plan
    /// resolution — only count hit rates over reports with `error: None`.
    pub plan_cache_hit: bool,
    /// Checksum of the final field.  Accumulated in sink order, so runs with
    /// the same topology agree bit-for-bit; across different topologies the
    /// summation order changes and equality holds only to float-accumulation
    /// tolerance (compare with a relative epsilon).
    pub checksum: f64,
    /// Deterministic simulated execution time of the run.
    pub simulated_seconds: f64,
    /// Digest of the underlying run.
    pub summary: RunSummary,
    /// Panic message if the job failed (bookkeeping still settles).
    pub error: Option<String>,
    /// The job's trace id in the installed flight recorder — every span of
    /// the job's tree (root, resolve, execute, supersteps, blocks, plan
    /// fetches) carries this id.  `None` when the service runs without an
    /// observer ([`KernelService::with_observer`](crate::KernelService)).
    pub trace_id: Option<u64>,
    /// How long the job sat admitted before a worker picked it up.
    pub queue_wait: Duration,
    /// The plan-resolution phase (the admission pre-warm lookup: cache hit,
    /// cluster fetch, or local compile).
    pub resolve_time: Duration,
    /// The execute phase (weave + run of the kernel itself).
    pub execute_time: Duration,
    /// Set when the job was orphaned by a dead node and replayed on a
    /// survivor; `None` for jobs that ran where they were admitted.
    pub failover: Option<FailoverProvenance>,
    /// The specialization tier the job's primary plan executed on:
    /// [`SpecializationId::Generic`] for the tape interpreter, a shape id
    /// (e.g. `weighted-sum/4pt/form7`) when the compiler instantiated a
    /// monomorphic super-instruction kernel.  Always `Generic` for
    /// non-stencil families.
    pub specialization: SpecializationId,
    /// Set when the opt-in batch fuser ran this job as one member of a fused
    /// multi-root pass; `None` for jobs that executed solo.
    pub fusion: Option<FusionProvenance>,
}

/// Why a job resolved without a report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum JobErrorKind {
    /// [`JobHandle::cancel`] won the race: the job was dequeued unexecuted.
    Cancelled,
    /// The service shut down with the job still queued.
    Abandoned,
}

/// The error half of a [`JobOutcome`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct JobError {
    /// The job that resolved without running.
    pub job: JobId,
    /// The session it was submitted under.
    pub session: SessionId,
    /// Why it never ran.
    pub kind: JobErrorKind,
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            JobErrorKind::Cancelled => write!(f, "job {} was cancelled before execution", self.job),
            JobErrorKind::Abandoned => {
                write!(f, "job {} was abandoned at service shutdown", self.job)
            }
        }
    }
}

impl std::error::Error for JobError {}

/// How every accepted job resolves, exactly once: a report, or the reason it
/// never ran.
pub type JobOutcome = Result<JobReport, JobError>;

/// Where a job currently is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum JobStatus {
    /// Admitted, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Resolved with a report.
    Completed,
    /// Resolved by [`JobHandle::cancel`].
    Cancelled,
    /// Resolved by service shutdown.
    Abandoned,
}

const STATE_QUEUED: u8 = 0;
const STATE_RUNNING: u8 = 1;
const STATE_COMPLETED: u8 = 2;
const STATE_CANCELLED: u8 = 3;
const STATE_ABANDONED: u8 = 4;

/// The shared per-job cell: lifecycle state, the one-shot completion slot,
/// and the live progress counters.  One `Arc` is carried by the queue
/// message, one by every [`JobHandle`] clone.
pub(crate) struct JobCell {
    pub(crate) job: JobId,
    pub(crate) session: SessionId,
    state: AtomicU8,
    pub(crate) slot: CompletionSlot<JobOutcome>,
    pub(crate) progress: Arc<ProgressNotifier>,
}

impl JobCell {
    pub(crate) fn new(job: JobId, session: SessionId) -> Arc<Self> {
        Arc::new(JobCell {
            job,
            session,
            state: AtomicU8::new(STATE_QUEUED),
            slot: CompletionSlot::new(),
            progress: ProgressNotifier::new(),
        })
    }

    /// Worker-side claim: `Queued -> Running`.  `false` means the job was
    /// cancelled first and must not execute.
    pub(crate) fn begin_running(&self) -> bool {
        self.state
            .compare_exchange(STATE_QUEUED, STATE_RUNNING, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Cancel-side claim: `Queued -> Cancelled`.  `false` means a worker got
    /// there first (or the job already resolved).
    pub(crate) fn mark_cancelled(&self) -> bool {
        self.state
            .compare_exchange(STATE_QUEUED, STATE_CANCELLED, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Shutdown-side claim: `Queued -> Abandoned`.
    pub(crate) fn mark_abandoned(&self) -> bool {
        self.state
            .compare_exchange(STATE_QUEUED, STATE_ABANDONED, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Completion: `Running -> Completed` (no contention possible).
    pub(crate) fn mark_completed(&self) {
        self.state.store(STATE_COMPLETED, Ordering::Release);
    }

    pub(crate) fn status(&self) -> JobStatus {
        match self.state.load(Ordering::Acquire) {
            STATE_QUEUED => JobStatus::Queued,
            STATE_RUNNING => JobStatus::Running,
            STATE_COMPLETED => JobStatus::Completed,
            STATE_CANCELLED => JobStatus::Cancelled,
            _ => JobStatus::Abandoned,
        }
    }
}

/// A poll/wait future for one submitted job.
///
/// Returned by [`KernelService::submit`](crate::KernelService::submit) and
/// friends.  All clones observe the same [`JobOutcome`] through a shared
/// [`CompletionSlot`]; the handle can be freely dropped — resolution and
/// session accounting do not depend on it.
///
/// Synchronous callers use [`JobHandle::wait`] /
/// [`JobHandle::wait_timeout`]; pollers use [`JobHandle::poll`]; async
/// callers `.await` it (the slot stores the waker).  [`JobHandle::cancel`]
/// revokes a still-queued job, and [`JobHandle::progress`] samples the
/// runtime's live step counters while the job executes.
#[derive(Clone)]
pub struct JobHandle {
    pub(crate) cell: Arc<JobCell>,
    pub(crate) service: Weak<crate::service::Inner>,
}

impl JobHandle {
    /// The job's id (submission order within the service).
    pub fn id(&self) -> JobId {
        self.cell.job
    }

    /// The session the job was submitted under.
    pub fn session(&self) -> SessionId {
        self.cell.session
    }

    /// Where the job currently is in its lifecycle.
    pub fn status(&self) -> JobStatus {
        self.cell.status()
    }

    /// Whether the job has resolved (report or error).
    pub fn is_complete(&self) -> bool {
        self.cell.slot.is_complete()
    }

    /// The outcome, if resolved (non-blocking).
    pub fn poll(&self) -> Option<JobOutcome> {
        self.cell.slot.poll()
    }

    /// Block until the job resolves.
    ///
    /// This is the per-job migration target for
    /// [`KernelService::drain`](crate::KernelService::drain) callers.  On an
    /// admission-only service (zero workers) a queued job only resolves at
    /// shutdown, so prefer [`JobHandle::wait_timeout`] when the worker pool
    /// may be empty.
    pub fn wait(&self) -> JobOutcome {
        self.cell.slot.wait()
    }

    /// Block until the job resolves or `timeout` elapses (`None`).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<JobOutcome> {
        self.cell.slot.wait_timeout(timeout)
    }

    /// Revoke the job if no worker has picked it up yet.
    ///
    /// `true` means the cancel won: the job will never execute, the handle
    /// resolves with [`JobErrorKind::Cancelled`], and its **session quota
    /// slot** is released immediately (unblocking submitters parked on
    /// `WouldBlock`).  The job's **bounded-queue slot** is different: the
    /// cancelled message stays in the channel as a tombstone until a worker
    /// dequeues and discards it, so submitters parked on `QueueFull` are
    /// unblocked by worker progress, not by the cancel itself (and never in
    /// admission-only mode, where no worker exists to drain tombstones).
    /// `false` means the job already runs or has resolved; it proceeds
    /// normally.
    pub fn cancel(&self) -> bool {
        if !self.cell.mark_cancelled() {
            return false;
        }
        if let Some(inner) = self.service.upgrade() {
            inner.settle_cancelled(&self.cell);
        } else {
            // The service is gone; just resolve the slot so waiters return.
            self.cell.slot.complete(Err(JobError {
                job: self.cell.job,
                session: self.cell.session,
                kind: JobErrorKind::Cancelled,
            }));
        }
        true
    }

    /// Live progress of the executing job (completed kernel steps across its
    /// tasks, finished tasks).  Always a valid lower bound; zeros before a
    /// worker starts the job.
    pub fn progress(&self) -> Progress {
        self.cell.progress.snapshot()
    }
}

impl Future for JobHandle {
    type Output = JobOutcome;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<JobOutcome> {
        match self.cell.slot.poll_with_waker(cx.waker()) {
            Some(outcome) => Poll::Ready(outcome),
            None => Poll::Pending,
        }
    }
}

impl fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobHandle")
            .field("job", &self.cell.job)
            .field("session", &self.cell.session)
            .field("status", &self.cell.status())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aohpc_kernel::Processor;

    #[test]
    fn builders_override_defaults() {
        let spec =
            JobSpec::new(StencilProgram::jacobi_5pt(), vec![0.5, 0.125], RegionSize::square(32))
                .with_block(16)
                .with_steps(5)
                .with_opt_level(OptLevel::None)
                .with_policy(SchedulePolicy::Single(Processor::Simd))
                .with_topology(Topology::hybrid(2, 2))
                .with_weave_mode(WeaveMode::Direct);
        assert_eq!(spec.block, 16);
        assert_eq!(spec.steps, 5);
        assert_eq!(spec.opt_level, OptLevel::None);
        assert_eq!(spec.policy, SchedulePolicy::Single(Processor::Simd));
        assert_eq!(spec.topology.total_tasks(), 4);
        assert_eq!(spec.weave_mode, WeaveMode::Direct);
    }

    #[test]
    fn scale_sized_stock_jobs() {
        for scale in [Scale::Smoke, Scale::Default, Scale::Paper] {
            for spec in [JobSpec::jacobi(scale), JobSpec::smooth(scale), JobSpec::usgrid(scale)] {
                assert_eq!(spec.region, scale.service_region());
                assert_eq!(spec.block, scale.service_block_size());
                assert_eq!(spec.steps, scale.service_steps());
                assert!(spec.params.len() >= spec.program.num_params());
                assert_eq!(spec.region.nx % spec.block, 0, "one block shape per job");
            }
        }
        assert_ne!(
            JobSpec::jacobi(Scale::Smoke).program.fingerprint(),
            JobSpec::smooth(Scale::Smoke).program.fingerprint(),
        );
    }

    #[test]
    fn stock_jobs_cover_every_family() {
        use aohpc_kernel::KernelFamilyId;
        let jacobi = JobSpec::jacobi(Scale::Smoke);
        let particle = JobSpec::particle(Scale::Smoke);
        let usgrid = JobSpec::usgrid(Scale::Smoke);
        assert_eq!(jacobi.program.family(), KernelFamilyId::Stencil);
        assert_eq!(particle.program.family(), KernelFamilyId::Particle);
        assert_eq!(usgrid.program.family(), KernelFamilyId::UsGrid);
        // The particle region is the bucket grid the DSL derives itself.
        let system = aohpc_dsl::ParticleSystem::paper(Scale::Smoke.scaling_particles());
        assert_eq!(particle.region.nx, system.buckets_x);
        assert_eq!(particle.region.ny, system.buckets_y);
        assert_eq!(particle.particles, Some(Scale::Smoke.scaling_particles().count));
        for spec in [jacobi, particle, usgrid] {
            spec.validate().expect("stock jobs are well-formed");
        }
    }

    #[test]
    fn validate_rejects_malformed_specs_with_typed_errors() {
        let good = JobSpec::jacobi(Scale::Smoke);
        assert_eq!(good.clone().with_block(0).validate(), Err(JobSpecError::ZeroBlock));
        assert_eq!(good.clone().with_steps(0).validate(), Err(JobSpecError::ZeroSteps));
        let mut empty = good.clone();
        empty.region = RegionSize { nx: 0, ny: 8 };
        assert_eq!(empty.validate(), Err(JobSpecError::EmptyRegion));
        let mut starved = good;
        starved.params = Vec::new();
        match starved.validate() {
            Err(JobSpecError::MissingParams { declared, given, .. }) => {
                assert_eq!((declared, given), (2, 0));
            }
            other => panic!("expected MissingParams, got {other:?}"),
        }
        // Display keeps the substrings the admission tests (and users' error
        // matching) rely on.
        assert!(JobSpecError::ZeroBlock.to_string().contains("block"));
        assert!(JobSpecError::MissingParams { program: "p".into(), declared: 2, given: 0 }
            .to_string()
            .contains("parameters"));
    }
}
