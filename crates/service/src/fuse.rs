//! Cross-job batch fusion: one tape sweep updates several queued jobs.
//!
//! When [`ServiceConfig::batch_fusion`](crate::ServiceConfig::batch_fusion)
//! is ≥ 2, an idle worker that dequeues a job peeks at the rest of the queue
//! and drains every immediately-available job that is
//! [`fusion_compatible`] with it (same region, blocking, step count,
//! optimization level, schedule policy, weave mode and serial topology — the
//! *programs* may differ).  The batch then runs as **one interleaved pass**:
//!
//! * each member keeps its own environment, task context, woven program,
//!   progress counters, plan-cache ledger, trace root and field sink — every
//!   per-job observable (checksum, [`RunSummary`](aohpc_runtime::RunSummary)
//!   modulo wall time, dispatch counts, session metering, completion-stream
//!   order) is **bit-identical** to running the job alone;
//! * the per-block inner loops are replaced by a single
//!   [`FusedKernel`] sweep over a member-major cell buffer: one prelude, one
//!   interior walk, `width ×` the arithmetic.  Blocks the fuser rejects fall
//!   back, block by block, to their own solo `execute_block` inside the same
//!   interleaved pass.
//!
//! The parity argument, piece by piece: fused-eligible jobs are serial, so
//! their weaves carry no MPI/OpenMP aspects and nothing advises the
//! `Main` / `Initialize` / `Processing` / `Finalize` join points — the
//! driver here re-dispatches them as markers through each member's own woven
//! program, keeping `RunSummary::dispatches` exact.  The per-step and
//! per-block join points go through each member's own [`TaskCtx`] (the
//! `begin_kernel_step` / `finish_kernel_step` split exists for exactly this
//! driver), and [`FusedKernel::execute_block`] is bit-identical, member by
//! member, to the solo kernels by construction.
//!
//! The one intentional divergence: a panic anywhere in the fused pass fails
//! *every* member of the batch (solo execution isolates it).  Compiled
//! stencil jobs only panic on service bugs, and the error reports name the
//! shared pass, so the trade was taken for simplicity.

use crate::cache::PlanOrigin;
use crate::job::{FusionProvenance, JobCell, JobId, JobSpec};
use crate::service::{
    resolve_primary, run_claimed, settle_finished, weave_for, FinishedJob, Inner, Queued,
};
use aohpc_aop::{attr, names, JoinPointKind, WovenProgram, FINALIZE, INITIALIZE, MAIN, PROCESSING};
use aohpc_dsl::{DslSystem, SGridSystem};
use aohpc_env::{Env, EnvStats, Extent, LocalAddress};
use aohpc_kernel::{
    default_initial_value, new_stencil_field_sink, CompiledKernel, ExecScratch, ExecStats,
    FusedKernel, HeteroDispatcher, OptLevel, PlanSource, SpecializationId, StencilFieldSink,
    StencilProgram,
};
use aohpc_obs::push_context;
use aohpc_runtime::annotation::MAX_RETRIES_PER_STEP;
use aohpc_runtime::{
    CostModel, PoolStats, RankReport, RankShared, RunReport, RunSummary, TaskCtx, WeaveMode,
};
use aohpc_workloads::checksum;
use std::cell::Cell as MetaCell;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Whether two queued specs may share one fused pass.
///
/// Everything that shapes the *sweep structure* must agree — region,
/// blocking, step count, optimization level, schedule policy, weave mode —
/// and the topology must be serial (rank/thread parallel jobs weave the MPI
/// / OpenMP aspects, whose driver-level advice the marker re-dispatch in
/// this module does not replicate).  The stencil programs and their
/// parameters may differ: the fuser concatenates their tapes.
pub(crate) fn fusion_compatible(a: &JobSpec, b: &JobSpec) -> bool {
    a.program.as_stencil().is_some()
        && b.program.as_stencil().is_some()
        && a.region == b.region
        && a.block == b.block
        && a.steps == b.steps
        && a.opt_level == b.opt_level
        && a.policy == b.policy
        && a.weave_mode == b.weave_mode
        && a.topology == b.topology
        && a.topology.ranks() == 1
        && a.topology.threads_per_rank() == 1
}

/// Run a drained batch of compatible jobs as one fused pass.
///
/// Members whose cells were cancelled before the worker claimed them drop
/// out; a single survivor takes the ordinary solo path.
pub(crate) fn run_batch(inner: &Inner, batch: Vec<Queued>) {
    let mut claimed: Vec<Queued> = batch.into_iter().filter(|q| q.cell.begin_running()).collect();
    if claimed.is_empty() {
        return;
    }
    if claimed.len() == 1 {
        let Queued { cell, spec, admitted_at } = claimed.pop().expect("one survivor");
        run_claimed(inner, cell, spec, admitted_at);
        return;
    }
    run_fused(inner, claimed);
}

/// Per-member bookkeeping that must survive a panic in the fused pass (the
/// solo path uses the same `Cell` escape hatch; see `run_claimed`).
struct MemberMeta {
    cache_hit: MetaCell<Option<bool>>,
    resolve_time: MetaCell<Duration>,
    spec_tier: MetaCell<SpecializationId>,
}

/// What one member's run resolves to: checksum, simulated seconds, summary,
/// error.
type MemberResult = (f64, f64, RunSummary, Option<String>);

fn run_fused(inner: &Inner, claimed: Vec<Queued>) {
    let width = claimed.len();

    // Per-member admission bookkeeping: queue-wait histograms and the obs
    // trace roots, exactly as the solo path records them per job.
    let mut cells: Vec<Arc<JobCell>> = Vec::with_capacity(width);
    let mut specs: Vec<JobSpec> = Vec::with_capacity(width);
    let mut queue_waits: Vec<Duration> = Vec::with_capacity(width);
    let mut obs_roots = Vec::with_capacity(width);
    let mut trace_ctxs: Vec<Option<(u64, u64)>> = Vec::with_capacity(width);
    for q in claimed {
        let queue_wait = inner.clock.now().saturating_sub(q.admitted_at);
        inner.queue_wait.record(queue_wait.as_nanos() as u64);
        let obs_job = inner.obs.as_ref().map(|hub| {
            hub.metrics().queue_wait_ns.record(queue_wait.as_nanos() as u64);
            let trace = hub.recorder().next_trace_id();
            (trace, hub.recorder().start("Service::job", trace, 0))
        });
        trace_ctxs.push(obs_job.as_ref().map(|(trace, open)| (*trace, open.span)));
        obs_roots.push(obs_job.map(|(_, open)| open));
        queue_waits.push(queue_wait);
        cells.push(q.cell);
        specs.push(q.spec);
    }

    let metas: Vec<MemberMeta> = (0..width)
        .map(|_| MemberMeta {
            cache_hit: MetaCell::new(None),
            resolve_time: MetaCell::new(Duration::ZERO),
            spec_tier: MetaCell::new(SpecializationId::Generic),
        })
        .collect();

    let execute_start = inner.clock.now();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        execute_fused(inner, &specs, &cells, &trace_ctxs, &metas)
    }));
    let execute_time = inner.clock.now().saturating_sub(execute_start);

    let results: Vec<MemberResult> = match outcome {
        Ok(per_member) => per_member,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "job panicked".to_string());
            specs
                .iter()
                .map(|spec| {
                    let summary = RunReport::empty(spec.topology.clone()).summary();
                    (f64::NAN, 0.0, summary, Some(format!("fused batch failed: {msg}")))
                })
                .collect()
        }
    };

    // Settle in admission order so each session's completion stream sees its
    // jobs in submission order, exactly as a solo worker delivers them.
    for (m, ((cell, spec), (cks, sim, summary, error))) in
        cells.into_iter().zip(specs).zip(results).enumerate()
    {
        settle_finished(
            inner,
            FinishedJob {
                cell,
                fingerprint: spec.program.fingerprint(),
                program: spec.program.name().to_string(),
                cache_hit: metas[m].cache_hit.get(),
                checksum: cks,
                simulated_seconds: sim,
                summary,
                error,
                trace_ctx: trace_ctxs[m],
                obs_root: obs_roots[m].take(),
                queue_wait: queue_waits[m],
                resolve_time: metas[m].resolve_time.get(),
                execute_time,
                specialization: metas[m].spec_tier.get(),
                fusion: Some(FusionProvenance { width, member: m }),
            },
        );
    }
}

/// Pre-warm every member's primary plan (attributing each hit/miss to its
/// job), then run the interleaved pass inside the nested per-member
/// `Service::execute_spec` spans.
fn execute_fused(
    inner: &Inner,
    specs: &[JobSpec],
    cells: &[Arc<JobCell>],
    trace_ctxs: &[Option<(u64, u64)>],
    metas: &[MemberMeta],
) -> Vec<MemberResult> {
    for (m, spec) in specs.iter().enumerate() {
        let pin_plans = inner
            .sessions
            .lock()
            .get(&cells[m].session)
            .map(|ctx| ctx.pins_plans())
            .unwrap_or(false);
        let _scope = trace_ctxs[m].map(|(trace, span)| push_context(trace, span));
        let primary = Extent::new2d(spec.block.min(spec.region.nx), spec.block.min(spec.region.ny));
        let resolve_start = inner.clock.now();
        let (artifact, origin) = resolve_primary(inner, spec, primary, pin_plans, trace_ctxs[m]);
        metas[m].cache_hit.set(Some(origin == PlanOrigin::Hit));
        if let Some(kernel) = artifact.as_stencil() {
            metas[m].spec_tier.set(kernel.specialization());
        }
        metas[m].resolve_time.set(inner.clock.now().saturating_sub(resolve_start));
    }

    let spans: Vec<(u64, u64, u8, JobId)> = specs
        .iter()
        .enumerate()
        .filter_map(|(m, spec)| {
            trace_ctxs[m]
                .map(|(trace, parent)| (trace, parent, spec.program.family().tag(), cells[m].job))
        })
        .collect();
    let mut result: Option<Vec<MemberResult>> = None;
    {
        let mut body = || {
            result = Some(drive_members(inner, specs, cells, trace_ctxs));
        };
        dispatch_execute_spans(inner, &spans, 0, &mut body);
    }
    result.expect("fused execute body runs exactly once")
}

/// Recursively nest every traced member's `Service::execute_spec` dispatch
/// around the fused body, so each per-job trace keeps its execute span.
fn dispatch_execute_spans(
    inner: &Inner,
    spans: &[(u64, u64, u8, JobId)],
    idx: usize,
    body: &mut dyn FnMut(),
) {
    if idx == spans.len() {
        body();
        return;
    }
    let (trace, parent, family, job) = spans[idx];
    let attrs = [
        (attr::TRACE, trace as i64),
        (attr::PARENT, parent as i64),
        (attr::FAMILY, i64::from(family)),
        (attr::JOB, job as i64),
    ];
    let mut payload = ();
    inner.service_woven.dispatch_with(
        names::SERVICE_EXECUTE,
        JoinPointKind::Execution,
        &attrs,
        &mut payload,
        &mut |_| dispatch_execute_spans(inner, spans, idx + 1, body),
    );
}

/// One member's live execution state inside the fused pass.
struct Member {
    program: StencilProgram,
    params: Vec<f64>,
    dispatcher: HeteroDispatcher,
    ctx: TaskCtx<f64>,
    master_ctx: TaskCtx<f64>,
    woven: WovenProgram,
    use_weaver: bool,
    sink: StencilFieldSink,
    compiled: HashMap<(usize, usize), Arc<CompiledKernel>>,
    trace_ctx: Option<(u64, u64)>,
    env_stats: EnvStats,
    pool_stats: PoolStats,
    start: Instant,
}

impl Member {
    /// The member's compiled plan for a block shape, memoized per shape and
    /// resolved through the shared cache — the same once-per-(member, shape)
    /// ledger `IrStencilApp::compiled_for` charges in solo runs.  The
    /// member's trace context scopes the lookup so a cluster fetch fired
    /// from inside the cache parents into the right job tree.
    fn compiled_for(
        &mut self,
        inner: &Inner,
        extent: Extent,
        level: OptLevel,
    ) -> Arc<CompiledKernel> {
        let key = (extent.nx, extent.ny);
        if let Some(k) = self.compiled.get(&key) {
            return Arc::clone(k);
        }
        let _scope = self.trace_ctx.map(|(trace, span)| push_context(trace, span));
        let plan = inner.cache.plan_for(&self.program, extent, level);
        self.compiled.insert(key, Arc::clone(&plan));
        plan
    }
}

/// Build every member's environment and contexts, run the interleaved
/// warm-up + step loop, and assemble per-member reports — the exact
/// observable sequence of `width` solo `runtime::execute` calls.
fn drive_members(
    inner: &Inner,
    specs: &[JobSpec],
    cells: &[Arc<JobCell>],
    trace_ctxs: &[Option<(u64, u64)>],
) -> Vec<MemberResult> {
    let width = specs.len();
    let spec0 = &specs[0];
    let topology = spec0.topology.clone();
    let loops = spec0.steps;
    let opt_level = spec0.opt_level;

    let mut members: Vec<Member> = Vec::with_capacity(width);
    let mut finishers = Vec::with_capacity(width);
    for (m, spec) in specs.iter().enumerate() {
        let program = spec.program.as_stencil().expect("fusion_compatible checked stencil").clone();
        let (woven, config, finisher) = weave_for(inner, spec, &cells[m], trace_ctxs[m]);
        let use_weaver = config.weave_mode == WeaveMode::Woven;
        let start = Instant::now();

        // MAIN marker: serial jobs weave no aspect that advises it, so only
        // the dispatch itself must happen (for the count) — rank 0's work
        // runs inline below, as the driver's un-advised body would.
        let main_attrs = [(attr::PARALLELISM, topology.ranks() as i64)];
        dispatch_marker(&woven, use_weaver, MAIN, &main_attrs);

        // Rank 0's environment replica and Z-order block assignment, exactly
        // as the driver builds them.
        let system = Arc::new(SGridSystem::with_block_size(spec.region, spec.block));
        let env: Env<f64> = (system.env_factory())();
        let parts = env.partition_by_morton(topology.ranks());
        for (r, ids) in parts.iter().enumerate() {
            let master = topology.rank_master_task(r);
            for &id in ids {
                env.block(id).meta.set_dm_tid(Some(master));
                env.block(id).meta.set_ch_tid(Some(master));
            }
        }
        let env = Arc::new(env);
        let env_stats = env.stats();
        let pool_stats = env.pool().stats();

        let shared = Arc::new(RankShared::new(topology.clone(), 0, None, config.dry_run));
        let master_slot = topology.slot(0, 0);
        let mut master_ctx = TaskCtx::new(
            master_slot,
            env.clone(),
            shared.clone(),
            woven.clone(),
            use_weaver,
            config.mmat,
        );

        // INITIALIZE: the same default initial condition `IrStencilApp`
        // installs, dispatched through the member's weave.
        let init_attrs = [(attr::TASK_ID, master_slot.task_id as i64), (attr::RANK, 0i64)];
        dispatch_body(&woven, use_weaver, INITIALIZE, &init_attrs, &mut || {
            for bid in master_ctx.owned_blocks() {
                let (ext, origin) = {
                    let b = master_ctx.env().block(bid);
                    (b.meta.extent, b.meta.origin)
                };
                for j in 0..ext.ny as i64 {
                    for i in 0..ext.nx as i64 {
                        let g = origin + LocalAddress::new2d(i, j);
                        master_ctx.set_initial(
                            bid,
                            LocalAddress::new2d(i, j),
                            default_initial_value(g),
                        );
                    }
                }
            }
        });

        // PROCESSING marker: the interleaved loop below plays the thread-0
        // body; nothing advises this join point for serial jobs either.
        let proc_attrs =
            [(attr::RANK, 0i64), (attr::PARALLELISM, topology.threads_per_rank() as i64)];
        dispatch_marker(&woven, use_weaver, PROCESSING, &proc_attrs);

        // The processing task's own context — distinct from the master
        // context, exactly as in the driver: only this one enters the task
        // report, so the initialize/finalize reads stay out of the summary.
        let mut ctx = TaskCtx::new(
            master_slot,
            env.clone(),
            shared.clone(),
            woven.clone(),
            use_weaver,
            config.mmat,
        );
        if let Some(progress) = &config.progress {
            ctx.set_progress(progress.clone());
        }

        let dispatcher =
            HeteroDispatcher::try_new(spec.policy.clone()).expect("policy validated at submit");
        members.push(Member {
            program,
            params: spec.params.clone(),
            dispatcher,
            ctx,
            master_ctx,
            woven,
            use_weaver,
            sink: new_stencil_field_sink(),
            compiled: HashMap::new(),
            trace_ctx: trace_ctxs[m],
            env_stats,
            pool_stats,
            start,
        });
        finishers.push(finisher);
    }

    // The interleaved processing loop — `HpcApp::processing`'s default body,
    // phase by phase across all members.
    let mut scratch = inner.scratch.acquire();
    for member in members.iter_mut() {
        member.ctx.begin_warmup();
    }
    fused_step(inner, &mut members, opt_level, true, &mut scratch);
    for member in members.iter_mut() {
        member.ctx.end_warmup();
    }
    let mut consecutive_failures = 0u64;
    while members.iter().any(|m| (m.ctx.steps_done() as usize) < loops) {
        let all_ok = fused_step(inner, &mut members, opt_level, false, &mut scratch);
        if all_ok {
            consecutive_failures = 0;
        } else {
            consecutive_failures += 1;
            if consecutive_failures > MAX_RETRIES_PER_STEP {
                break;
            }
        }
    }
    inner.scratch.release(scratch);

    // Close every member's run: task report, FINALIZE, rank report, run
    // report — and from the report the job-facing (checksum, simulated
    // seconds, summary) triple.
    let mut results = Vec::with_capacity(width);
    for mut member in members.into_iter() {
        let task_report = member.ctx.into_report();

        let master_slot = topology.slot(0, 0);
        let init_attrs = [(attr::TASK_ID, master_slot.task_id as i64), (attr::RANK, 0i64)];
        let sink = member.sink.clone();
        let master_ctx = &mut member.master_ctx;
        dispatch_body(&member.woven, member.use_weaver, FINALIZE, &init_attrs, &mut || {
            let mut outputs = Vec::new();
            for bid in master_ctx.owned_blocks() {
                let (ext, origin) = {
                    let b = master_ctx.env().block(bid);
                    (b.meta.extent, b.meta.origin)
                };
                for j in 0..ext.ny as i64 {
                    for i in 0..ext.nx as i64 {
                        let v = master_ctx.get_dd(bid, LocalAddress::new2d(i, j));
                        outputs.push((origin + LocalAddress::new2d(i, j), v));
                    }
                }
            }
            sink.lock().extend(outputs);
        });

        let report = RunReport {
            topology: topology.clone(),
            tasks: vec![task_report],
            ranks: vec![RankReport { rank: 0, comm: Default::default() }],
            env_stats: member.env_stats,
            pool_stats: member.pool_stats,
            wall_time: member.start.elapsed(),
            dispatches: member.woven.stats().dispatches(),
            advised_dispatches: member.woven.stats().advised_dispatches(),
            runtime_events: Vec::new(),
        };
        let cks = checksum(member.sink.lock().iter().map(|(_, v)| *v));
        let sim = CostModel::default().makespan_seconds(&report);
        results.push((cks, sim, report.summary(), None));
    }
    for finisher in finishers.into_iter().flatten() {
        finisher.finish();
    }
    results
}

/// One interleaved kernel step across every member: markers, gathers, the
/// fused (or per-member fallback) sweeps, scatters, refreshes, accounting.
/// Returns whether every member's refresh succeeded.
fn fused_step(
    inner: &Inner,
    members: &mut [Member],
    opt_level: OptLevel,
    warmup: bool,
    scratch: &mut ExecScratch,
) -> bool {
    let width = members.len();
    for member in members.iter_mut() {
        member.ctx.begin_kernel_step(warmup);
    }

    // Per-member block lists and schedules.  Compatible members share the
    // region/blocking and the schedule policy, so with the deterministic
    // dispatcher the lists line up index by index; if they ever diverged the
    // uniformity check below would route that index to the solo fallback.
    let mut schedules = Vec::with_capacity(width);
    for member in members.iter_mut() {
        let blocks = member.ctx.get_blocks();
        schedules.push(member.dispatcher.assign(&blocks));
    }
    let blocks_per_member = schedules[0].len();

    let mut cells_buf: Vec<f64> = Vec::new();
    let mut out_buf: Vec<f64> = Vec::new();
    let mut stats = vec![ExecStats::default(); width];

    for i in 0..blocks_per_member {
        let uniform = schedules.iter().all(|s| s.get(i) == schedules[0].get(i));
        let mut compiled = Vec::with_capacity(width);
        for (m, member) in members.iter_mut().enumerate() {
            let (bid, _) = schedules[m][i];
            let ext = member.ctx.env().block(bid).meta.extent;
            compiled.push(member.compiled_for(inner, ext, opt_level));
        }
        let (bid, processor) = schedules[0][i];
        let ext = members[0].ctx.env().block(bid).meta.extent;
        let b = ext.nx * ext.ny;

        // 1. Gather, inside each member's `Kernel::execute_block` join point
        //    (one dispatch per member per block, matching solo counts).
        cells_buf.resize(width * b, 0.0);
        for (m, member) in members.iter_mut().enumerate() {
            let (bid_m, _) = schedules[m][i];
            let seg = &mut cells_buf[m * b..(m + 1) * b];
            member.ctx.run_block(bid_m as i64, b, |ctx| {
                for (idx, cell) in seg.iter_mut().enumerate() {
                    *cell = ctx.get_dd(bid_m, ext.delinearize(idx));
                }
            });
        }

        // 2. Execute: one fused sweep when the plans agree, per-member solo
        //    sweeps otherwise — bit-identical either way.
        out_buf.resize(width * b, 0.0);
        let fused = if uniform { FusedKernel::fuse(compiled.clone()) } else { None };
        match fused {
            Some(fused) => {
                fused.prepare_scratch(scratch, processor);
                let mut fused_params = Vec::with_capacity(fused.num_params());
                for (m, k) in compiled.iter().enumerate() {
                    fused_params.extend_from_slice(&members[m].params[..k.num_params()]);
                }
                let mut halo = |m: usize, x: i64, y: i64| {
                    members[m].ctx.get(bid, LocalAddress::new2d(x, y), false)
                };
                fused.execute_block(
                    &cells_buf,
                    &fused_params,
                    &mut halo,
                    &mut out_buf,
                    processor,
                    &mut stats,
                    scratch,
                );
            }
            None => {
                for (m, k) in compiled.iter().enumerate() {
                    let (bid_m, proc_m) = schedules[m][i];
                    k.prepare_scratch(scratch, proc_m);
                    let Member { params, ctx, .. } = &mut members[m];
                    let mut halo =
                        |x: i64, y: i64| ctx.get(bid_m, LocalAddress::new2d(x, y), false);
                    k.execute_block(
                        &cells_buf[m * b..(m + 1) * b],
                        params,
                        &mut halo,
                        &mut out_buf[m * b..(m + 1) * b],
                        proc_m,
                        &mut stats[m],
                        scratch,
                    );
                }
            }
        }

        // 3. Scatter each member's next-step values back.
        for (m, member) in members.iter_mut().enumerate() {
            let (bid_m, _) = schedules[m][i];
            for (idx, &value) in out_buf[m * b..(m + 1) * b].iter().enumerate() {
                member.ctx.set(bid_m, ext.delinearize(idx), value);
            }
        }
    }

    let mut all_ok = true;
    for member in members.iter_mut() {
        let ok = member.ctx.refresh();
        all_ok &= member.ctx.finish_kernel_step(warmup, ok);
    }
    all_ok
}

/// Dispatch a join point through the member's weave purely for its marker
/// (and dispatch-count) effect — valid only where no advice matches, which
/// `fusion_compatible`'s serial-topology requirement guarantees for the
/// driver-level join points.
fn dispatch_marker(
    woven: &WovenProgram,
    use_weaver: bool,
    name: &str,
    attrs: &[(&'static str, i64)],
) {
    dispatch_body(woven, use_weaver, name, attrs, &mut || {});
}

/// Dispatch a join point running `body`, honoring the spec's weave mode the
/// way the runtime driver's private `dispatch` helper does.
fn dispatch_body(
    woven: &WovenProgram,
    use_weaver: bool,
    name: &str,
    attrs: &[(&'static str, i64)],
    body: &mut dyn FnMut(),
) {
    let mut payload = ();
    if use_weaver {
        woven.dispatch_with(name, JoinPointKind::Execution, attrs, &mut payload, &mut |_| body());
    } else {
        body();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{KernelService, ServiceConfig};
    use crate::session::SessionSpec;
    use crate::JobReport;
    use aohpc_kernel::MAX_FUSION_WIDTH;
    use aohpc_runtime::Topology;
    use aohpc_workloads::Scale;

    /// Dequeue everything currently in the service's job channel, with the
    /// same slot bookkeeping a worker performs — the deterministic stand-in
    /// for the worker loop in these tests (the services run zero workers).
    fn drain_queue(service: &KernelService) -> Vec<Queued> {
        let mut out = Vec::new();
        while let Ok(q) = service.queue_rx.try_recv() {
            service.inner.note_dequeued();
            out.push(q);
        }
        out
    }

    fn workerless(fusion: usize) -> KernelService {
        KernelService::new(
            ServiceConfig::default()
                .with_workers(0)
                .with_admission_timeout(Duration::ZERO)
                .with_batch_fusion(fusion),
        )
    }

    /// The job mix every parity test uses: two distinct stencil programs,
    /// alternating, all sharing the Smoke region/blocking/steps — compatible
    /// for fusion while exercising heterogeneous tapes in one sweep.
    fn mixed_jobs() -> Vec<JobSpec> {
        vec![
            JobSpec::jacobi(Scale::Smoke),
            JobSpec::smooth(Scale::Smoke),
            JobSpec::jacobi(Scale::Smoke),
            JobSpec::smooth(Scale::Smoke),
        ]
    }

    fn zero_times(mut s: RunSummary) -> RunSummary {
        s.wall_time = Duration::ZERO;
        s
    }

    fn assert_report_parity(fused: &JobReport, solo: &JobReport) {
        assert_eq!(fused.job, solo.job);
        assert_eq!(
            fused.checksum.to_bits(),
            solo.checksum.to_bits(),
            "job {}: fused checksum {} vs solo {}",
            fused.job,
            fused.checksum,
            solo.checksum
        );
        assert_eq!(fused.simulated_seconds.to_bits(), solo.simulated_seconds.to_bits());
        assert_eq!(zero_times(fused.summary.clone()), zero_times(solo.summary.clone()));
        assert_eq!(fused.specialization, solo.specialization);
        assert_eq!(fused.plan_cache_hit, solo.plan_cache_hit);
        assert_eq!(fused.error, solo.error);
    }

    #[test]
    fn config_clamps_fusion_width() {
        assert_eq!(ServiceConfig::default().with_batch_fusion(64).batch_fusion, MAX_FUSION_WIDTH);
        assert_eq!(ServiceConfig::default().with_batch_fusion(0).batch_fusion, 0);
    }

    #[test]
    fn compatibility_requires_matching_sweep_structure() {
        let a = JobSpec::jacobi(Scale::Smoke);
        assert!(fusion_compatible(&a, &JobSpec::smooth(Scale::Smoke)));
        assert!(fusion_compatible(&a, &a.clone()));
        assert!(!fusion_compatible(&a, &JobSpec::jacobi(Scale::Smoke).with_steps(99)));
        assert!(!fusion_compatible(&a, &JobSpec::jacobi(Scale::Smoke).with_block(a.block * 2)));
        assert!(!fusion_compatible(&a, &JobSpec::particle(Scale::Smoke)));
        assert!(!fusion_compatible(&a, &JobSpec::usgrid(Scale::Smoke)));
        // Parallel topologies weave rank/thread aspects: never fused.
        let parallel = JobSpec::jacobi(Scale::Smoke).with_topology(Topology::hybrid(2, 2));
        assert!(!fusion_compatible(&parallel, &parallel.clone()));
    }

    #[test]
    fn fused_batch_is_bit_identical_to_solo() {
        // Reference: every job alone, through the ordinary worker path.
        let solo = KernelService::new(ServiceConfig::default().with_workers(1));
        let session_s = solo.open_session(SessionSpec::tenant("acme"));
        for spec in mixed_jobs() {
            solo.submit(session_s, spec).unwrap();
        }
        let solo_reports = solo.drain();
        assert_eq!(solo_reports.len(), 4);

        // Fused: same four jobs drained as one batch.
        let fused = workerless(4);
        let session_f = fused.open_session(SessionSpec::tenant("acme"));
        for spec in mixed_jobs() {
            fused.try_submit(session_f, spec).unwrap();
        }
        let batch = drain_queue(&fused);
        assert_eq!(batch.len(), 4);
        run_batch(&fused.inner, batch);
        let fused_reports = fused.drain();
        assert_eq!(fused_reports.len(), 4);

        for (f, s) in fused_reports.iter().zip(&solo_reports) {
            assert_report_parity(f, s);
            assert_eq!(f.fusion, Some(FusionProvenance { width: 4, member: (f.job - 1) as usize }));
            assert_eq!(s.fusion, None);
        }

        // The ledgers agree too: per-session metering and the plan cache.
        let ms = solo.session(session_s).unwrap();
        let mf = fused.session(session_f).unwrap();
        assert_eq!(mf.meter().plan_cache_hits, ms.meter().plan_cache_hits);
        assert_eq!(mf.meter().plan_cache_misses, ms.meter().plan_cache_misses);
        assert_eq!(mf.meter().cells_updated, ms.meter().cells_updated);
        assert_eq!(mf.meter().simulated_seconds.to_bits(), ms.meter().simulated_seconds.to_bits());
        assert_eq!(fused.cache_stats().misses, solo.cache_stats().misses);
    }

    #[test]
    fn completion_stream_sees_fused_jobs_in_submission_order() {
        let service = workerless(4);
        let session = service.open_session(SessionSpec::tenant("t"));
        let stream = service.completion_stream(session).unwrap();
        let handles: Vec<_> =
            mixed_jobs().into_iter().map(|s| service.try_submit(session, s).unwrap()).collect();
        run_batch(&service.inner, drain_queue(&service));
        for handle in &handles {
            let report = stream.next().expect("stream open").expect("job succeeded");
            assert_eq!(report.job, handle.id());
            assert!(report.error.is_none());
            assert_eq!(report.fusion.as_ref().unwrap().width, 4);
        }
    }

    #[test]
    fn cancelled_member_drops_out_and_batch_renumbers() {
        let service = workerless(4);
        let session = service.open_session(SessionSpec::tenant("t"));
        let handles: Vec<_> = (0..3)
            .map(|_| service.try_submit(session, JobSpec::jacobi(Scale::Smoke)).unwrap())
            .collect();
        assert!(handles[1].cancel());
        run_batch(&service.inner, drain_queue(&service));
        let reports = service.drain();
        assert_eq!(reports.len(), 2);
        // The survivors fused as a width-2 pass, renumbered 0 and 1.
        assert_eq!(reports[0].job, handles[0].id());
        assert_eq!(reports[0].fusion, Some(FusionProvenance { width: 2, member: 0 }));
        assert_eq!(reports[1].job, handles[2].id());
        assert_eq!(reports[1].fusion, Some(FusionProvenance { width: 2, member: 1 }));
        assert!(handles[1].wait().is_err());
    }

    #[test]
    fn single_survivor_falls_back_to_solo() {
        let service = workerless(4);
        let session = service.open_session(SessionSpec::tenant("t"));
        let h1 = service.try_submit(session, JobSpec::jacobi(Scale::Smoke)).unwrap();
        let h2 = service.try_submit(session, JobSpec::jacobi(Scale::Smoke)).unwrap();
        assert!(h2.cancel());
        run_batch(&service.inner, drain_queue(&service));
        let reports = service.drain();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].job, h1.id());
        assert_eq!(reports[0].fusion, None, "a lone survivor runs the solo path");
        assert!(reports[0].error.is_none());
    }

    #[test]
    fn worker_loop_fuses_a_backlog_end_to_end() {
        // Through the real worker: a slow head job holds the single worker
        // while the compatible backlog queues behind it, so the next drain
        // picks the backlog up as one fused batch.
        let service =
            KernelService::new(ServiceConfig::default().with_workers(1).with_batch_fusion(4));
        let session = service.open_session(SessionSpec::tenant("t"));
        let blocker = JobSpec::jacobi(Scale::Smoke).with_steps(60);
        service.submit(session, blocker).unwrap();
        for spec in mixed_jobs() {
            service.submit(session, spec).unwrap();
        }
        let reports = service.drain();
        assert_eq!(reports.len(), 5);
        for report in &reports {
            assert!(report.error.is_none(), "job {} failed: {:?}", report.job, report.error);
            assert!(report.checksum.is_finite());
        }
        // Determinism across the fused/solo boundary: identical specs agree
        // bit-for-bit on their results no matter how they were batched.
        assert_eq!(reports[1].checksum.to_bits(), reports[3].checksum.to_bits());
        assert_eq!(reports[2].checksum.to_bits(), reports[4].checksum.to_bits());
    }
}
