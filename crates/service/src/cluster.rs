//! The cluster mesh: N service nodes sharing compiled plans over the
//! simulated fabric.
//!
//! A [`ClusterService`] stands up `N` [`KernelService`] nodes — each with its
//! own worker pool, session registry and [`PlanCache`] — connected by a
//! [`Communicator::mesh`] whose **control plane** carries the plan-sharing
//! protocol.  The result is the MPI-scale deployment shape the paper targets:
//! tenants land on a node (session affinity), execution stays node-local, and
//! the only cross-node traffic is metered control frames.
//!
//! # The plan-sharing protocol
//!
//! Every [`PlanKey`] has a deterministic **owner rank**
//! (`hash(fingerprint, shape, level) % N`), the cluster's single-flight
//! arbiter for that plan:
//!
//! 1. A node missing locally asks its cache's chained
//!    [`PlanFetcher`](crate::cache::PlanFetcher) — here a [`ClusterFetcher`]
//!    holding a [`ControlHandle`] onto the mesh.  If the node *is* the
//!    owner (or the cluster is shutting down), the fetcher declines and the
//!    cache compiles locally.
//! 2. Otherwise the fetcher sends a `PLAN_REQ` control frame to the owner:
//!    a request id plus the [`PortableKernel`] wire form of the wanted plan
//!    (program, block shape, opt level — enough for the owner to compile a
//!    plan it has never seen).
//! 3. The owner's **fabric thread** — the thread owning the node's
//!    [`Communicator`] endpoint — resolves the request against the owner's
//!    own cache (compiling at most once, its local single-flight) and
//!    replies with a `PLAN_REP` frame carrying the portable form.
//! 4. The requester hydrates the portable form (re-lowering to a
//!    bit-identical tape; see [`aohpc_kernel::portable`]) and caches it.
//!
//! Each distinct plan is therefore **compiled exactly once per cluster** —
//! on its owner — and fetched (not recompiled) everywhere else: summed over
//! all nodes, [`PlanCacheStats::compiles`] equals the number of distinct
//! plans, the invariant the cluster tests assert.  A fetch that times out or
//! races shutdown degrades to a local compile, trading the invariant for
//! availability (never a wrong answer, at worst a duplicate compile).
//!
//! Requesters block on a reply holding **no lock** (the cache resolves
//! flights outside its shards), and owners serve requests with node-local
//! compilation only (the owner of a key never forwards), so the
//! request/serve mesh cannot deadlock.

use crate::cache::{EvictionPolicy, LruPolicy, PlanCache, PlanCacheStats, PlanFetcher, PlanKey};
use crate::job::{JobHandle, JobReport, JobSpec};
use crate::service::{KernelService, ServiceClock, ServiceConfig, SubmitError};
use crate::session::{CompletionStream, SessionCtx, SessionId, SessionMeter, SessionSpec};
use aohpc_aop::{attr, names, JoinPointKind, Weaver, WovenProgram};
use aohpc_kernel::{FamilyProgram, OptLevel, PortableKernel};
use aohpc_obs::{
    current_context, AdmissionCounters, CacheCounters, CommCounters, JobCounters, ObsHub,
    ObsServiceAspect, ObsSnapshot,
};
use aohpc_runtime::{CommProbe, CommStats, Communicator, ControlHandle};
use aohpc_testalloc::sync::FakeClock;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Control-plane tag: stop the receiving fabric thread.
const TAG_SHUTDOWN: u32 = 0;
/// Control-plane tag: plan request (`req_id` + portable kernel bytes).
const TAG_PLAN_REQ: u32 = 1;
/// Control-plane tag: plan reply (`req_id` + status + portable kernel bytes).
const TAG_PLAN_REP: u32 = 2;

/// How long a requester waits for the owner's reply before degrading to a
/// local compile (a liveness bound, not a correctness knob: the fabric is
/// in-process, so in practice replies arrive in microseconds).
const FETCH_TIMEOUT: Duration = Duration::from_secs(10);

/// The owner rank of a plan key: the cluster-wide single-flight arbiter that
/// compiles it.  Deterministic and uniform-ish over ranks; every node
/// computes the same owner for the same key.
fn owner_of(key: &PlanKey, ranks: usize) -> usize {
    let fp = key.fingerprint.as_u128();
    let mix = (fp as u64)
        ^ ((fp >> 64) as u64)
        ^ ((key.nx as u64) << 32)
        ^ (key.ny as u64)
        ^ ((key.family.tag() as u64) << 48)
        ^ match key.level {
            OptLevel::None => 0,
            OptLevel::Full => 1 << 16,
        };
    (mix % ranks as u64) as usize
}

/// One in-flight plan request: the fabric thread resolves it with the reply
/// payload (`Some(bytes)`) or a decline (`None`).
struct ReplySlot {
    state: StdMutex<Option<Option<Vec<u8>>>>,
    cv: Condvar,
}

impl ReplySlot {
    fn new() -> Arc<Self> {
        Arc::new(ReplySlot { state: StdMutex::new(None), cv: Condvar::new() })
    }

    fn resolve(&self, payload: Option<Vec<u8>>) {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        if state.is_none() {
            *state = Some(payload);
        }
        drop(state);
        self.cv.notify_all();
    }

    fn wait(&self, timeout: Duration) -> Option<Vec<u8>> {
        // A fixed deadline, not a per-iteration timeout: spurious condvar
        // wakeups (which std permits) must not restart the window.
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(payload) = state.take() {
                return payload;
            }
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return None;
            }
            let (next, _) =
                self.cv.wait_timeout(state, remaining).unwrap_or_else(|p| p.into_inner());
            state = next;
        }
    }
}

/// The reply router one node's fetchers and fabric thread share.
struct PendingReplies {
    next_req: AtomicU64,
    slots: StdMutex<HashMap<u64, Arc<ReplySlot>>>,
}

impl PendingReplies {
    fn new() -> Arc<Self> {
        Arc::new(PendingReplies {
            next_req: AtomicU64::new(0),
            slots: StdMutex::new(HashMap::new()),
        })
    }

    fn register(&self) -> (u64, Arc<ReplySlot>) {
        let id = self.next_req.fetch_add(1, Ordering::Relaxed) + 1;
        let slot = ReplySlot::new();
        self.slots.lock().unwrap_or_else(|p| p.into_inner()).insert(id, Arc::clone(&slot));
        (id, slot)
    }

    fn take(&self, id: u64) -> Option<Arc<ReplySlot>> {
        self.slots.lock().unwrap_or_else(|p| p.into_inner()).remove(&id)
    }

    /// Fail every outstanding request (fabric thread exit): waiters wake and
    /// degrade to local compiles.
    fn fail_all(&self) {
        let slots: Vec<_> = {
            let mut map = self.slots.lock().unwrap_or_else(|p| p.into_inner());
            map.drain().map(|(_, slot)| slot).collect()
        };
        for slot in slots {
            slot.resolve(None);
        }
    }
}

/// The cluster-fetch stage of one node's plan-resolution chain: asks the
/// key's owner rank for the portable plan over the mesh's control plane.
pub struct ClusterFetcher {
    rank: usize,
    ranks: usize,
    handle: ControlHandle<f64>,
    pending: Arc<PendingReplies>,
    shutting_down: Arc<AtomicBool>,
    /// When the cluster carries an observer, cross-node requests dispatch
    /// through this woven program so the obs aspect wraps each round trip in
    /// a span — parented, via the calling worker's thread-local span
    /// context, into the requesting job's trace.
    obs_woven: Option<WovenProgram>,
}

impl ClusterFetcher {
    /// The actual request/reply round trip to the key's owner rank.
    fn fetch_from(
        &self,
        owner: usize,
        key: &PlanKey,
        program: &FamilyProgram,
    ) -> Option<PortableKernel> {
        let (req_id, slot) = self.pending.register();
        let portable =
            PortableKernel::pack(program, aohpc_env::Extent::new2d(key.nx, key.ny), key.level);
        let mut payload = req_id.to_le_bytes().to_vec();
        payload.extend_from_slice(&portable.to_bytes());
        if !self.handle.send(owner, TAG_PLAN_REQ, payload) {
            self.pending.take(req_id);
            return None;
        }
        let bytes = slot.wait(FETCH_TIMEOUT);
        self.pending.take(req_id);
        PortableKernel::from_bytes(&bytes?).ok()
    }
}

impl PlanFetcher for ClusterFetcher {
    fn fetch(&self, key: &PlanKey, program: &FamilyProgram) -> Option<PortableKernel> {
        if self.ranks <= 1 || self.shutting_down.load(Ordering::SeqCst) {
            return None;
        }
        let owner = owner_of(key, self.ranks);
        if owner == self.rank {
            // This node IS the single-flight arbiter: compile locally.
            return None;
        }
        let Some(woven) = &self.obs_woven else {
            return self.fetch_from(owner, key, program);
        };
        // The declines above are local decisions, not cross-node traffic, so
        // only a real request gets a span.
        let (trace, parent) = current_context().unwrap_or((0, 0));
        let attrs = [
            (attr::TRACE, trace as i64),
            (attr::PARENT, parent as i64),
            (attr::NODE, owner as i64),
        ];
        let mut fetched = None;
        let mut payload = ();
        woven.dispatch_with(
            names::CLUSTER_PLAN_REQ,
            JoinPointKind::Call,
            &attrs,
            &mut payload,
            &mut |ctx| {
                let plan = self.fetch_from(owner, key, program);
                ctx.set_attr(attr::OK, i64::from(plan.is_some()));
                fetched = Some(plan);
            },
        );
        fetched.flatten()
    }
}

impl fmt::Debug for ClusterFetcher {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClusterFetcher")
            .field("rank", &self.rank)
            .field("ranks", &self.ranks)
            .finish()
    }
}

/// Serve one `PLAN_REQ` payload against the owner's local cache, returning
/// the reply frame (req id + status byte + compiled portable bytes).
fn serve_plan_req(cache: &PlanCache, bytes: &[u8]) -> Vec<u8> {
    let req_id: [u8; 8] = bytes[..8].try_into().expect("eight bytes");
    let mut reply = req_id.to_vec();
    match PortableKernel::from_bytes(&bytes[8..]) {
        Ok(portable) => {
            // Resolve against the local cache: the owner's local
            // single-flight makes this the cluster's one compile for the key
            // (its own fetcher declines owned keys, so no forwarding loop is
            // possible).  The reply carries the *compiled* form — optimized
            // DAG attached — so the requester skips the optimizer and only
            // re-lowers plan and tape.
            let (artifact, _) =
                cache.resolve(portable.program(), portable.extent(), portable.level(), false);
            let compiled =
                PortableKernel::from_compiled(portable.program(), &artifact, portable.level());
            reply.push(1);
            reply.extend_from_slice(&compiled.to_bytes());
        }
        Err(_) => reply.push(0),
    }
    reply
}

/// The per-node fabric loop: owns the node's [`Communicator`] endpoint,
/// serves `PLAN_REQ` frames from its cache and routes `PLAN_REP` frames to
/// waiting fetchers.  Exits on `TAG_SHUTDOWN` (the only reliable stop
/// signal — a live endpoint's channel never disconnects, see
/// [`Communicator::recv_control`]), failing all outstanding requests on the
/// way out.  With an observer, each serve dispatches through `obs_woven` so
/// the obs aspect records the owner-side serve span (a trace root — the
/// fabric thread has no job context — keyed by the serving node's rank).
fn fabric_loop(
    mut comm: Communicator<f64>,
    cache: Arc<PlanCache>,
    pending: Arc<PendingReplies>,
    obs_woven: Option<WovenProgram>,
) {
    let rank = comm.rank() as i64;
    while let Some(frame) = comm.recv_control() {
        match frame.tag {
            TAG_SHUTDOWN => break,
            TAG_PLAN_REQ => {
                if frame.bytes.len() < 8 {
                    continue; // malformed: no req id to even decline under
                }
                let reply = match &obs_woven {
                    None => serve_plan_req(&cache, &frame.bytes),
                    Some(woven) => {
                        let attrs = [(attr::NODE, rank)];
                        let mut reply = None;
                        let mut payload = ();
                        woven.dispatch_with(
                            names::CLUSTER_PLAN_REP,
                            JoinPointKind::Execution,
                            &attrs,
                            &mut payload,
                            &mut |ctx| {
                                let bytes = serve_plan_req(&cache, &frame.bytes);
                                ctx.set_attr(attr::OK, i64::from(bytes.get(8) == Some(&1)));
                                reply = Some(bytes);
                            },
                        );
                        reply.expect("serve body runs exactly once")
                    }
                };
                // A vanished requester is not an error mid-shutdown.
                let _ = comm.send_control(frame.from, TAG_PLAN_REP, reply);
            }
            TAG_PLAN_REP => {
                if frame.bytes.len() < 9 {
                    continue;
                }
                let req_id = u64::from_le_bytes(frame.bytes[..8].try_into().expect("eight bytes"));
                let payload = (frame.bytes[8] == 1).then(|| frame.bytes[9..].to_vec());
                if let Some(slot) = pending.take(req_id) {
                    slot.resolve(payload);
                }
            }
            _ => {} // unknown tags are ignored (future protocol extensions)
        }
    }
    pending.fail_all();
}

/// A session opened on a cluster: which node owns it plus the node-local id.
///
/// All job routing is **session-affine**: every submission under this id
/// executes on `node`, so per-session ordering, quotas and completion
/// streams behave exactly as on a single [`KernelService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClusterSessionId {
    /// The node the session lives on.
    pub node: usize,
    /// The node-local session id.
    pub session: SessionId,
}

impl fmt::Display for ClusterSessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}/session{}", self.node, self.session)
    }
}

/// Cluster-aggregated cache counters plus the per-node breakdown.
#[derive(Debug, Clone)]
pub struct ClusterCacheStats {
    /// Sum over all nodes (entries included — cluster-resident plan count).
    pub total: PlanCacheStats,
    /// One snapshot per node, indexed by rank.
    pub per_node: Vec<PlanCacheStats>,
}

/// Cluster-aggregated fabric counters plus the per-node breakdown.
#[derive(Debug, Clone)]
pub struct ClusterCommStats {
    /// Sum over all nodes.
    pub total: CommStats,
    /// One snapshot per node, indexed by rank.
    pub per_node: Vec<CommStats>,
}

/// `N` kernel-service nodes over a simulated fabric, sharing compiled plans
/// so each distinct plan is compiled once per **cluster**, not once per node.
///
/// See the [module docs](self) for the protocol.  Dropping the cluster (or
/// calling [`ClusterService::shutdown`]) drains every node, stops the fabric
/// threads and joins all workers.
pub struct ClusterService {
    nodes: Vec<KernelService>,
    probes: Vec<CommProbe>,
    control: Vec<ControlHandle<f64>>,
    fabrics: Vec<JoinHandle<()>>,
    shutting_down: Arc<AtomicBool>,
    /// The cluster-wide observability hub, when one was installed
    /// ([`ClusterService::with_observer`]) — shared by every node, so spans
    /// from all ranks land in one flight recorder.
    obs: Option<Arc<ObsHub>>,
}

impl ClusterService {
    /// Start a cluster of `nodes` services, each sized by `config`, with the
    /// default (LRU) eviction policy on every node's plan cache.
    pub fn new(nodes: usize, config: ServiceConfig) -> Self {
        Self::start(nodes, config, Arc::new(LruPolicy), None, None)
    }

    /// [`ClusterService::new`] with an explicit eviction policy (shared by
    /// every node's cache — policies are stateless strategies).
    pub fn with_policy(
        nodes: usize,
        config: ServiceConfig,
        policy: Arc<dyn EvictionPolicy>,
    ) -> Self {
        Self::start(nodes, config, policy, None, None)
    }

    /// A cluster whose nodes' admission deadlines run on one shared
    /// test-controlled [`FakeClock`] (the deterministic-harness seam; see
    /// [`KernelService::with_fake_clock`]).
    pub fn with_fake_clock(nodes: usize, config: ServiceConfig, clock: Arc<FakeClock>) -> Self {
        Self::start(nodes, config, Arc::new(LruPolicy), Some(clock), None)
    }

    /// A cluster sharing one observability hub across every node: each job's
    /// span tree, the cross-node plan requests it triggers, and the peers'
    /// serve spans all land in the same flight recorder, linked by the job's
    /// trace id.  Snapshot with [`ClusterService::obs_snapshot`].
    pub fn with_observer(nodes: usize, config: ServiceConfig, hub: Arc<ObsHub>) -> Self {
        Self::start(nodes, config, Arc::new(LruPolicy), None, Some(hub))
    }

    /// [`ClusterService::with_observer`] on a shared fake clock — give the
    /// hub the same clock for fully deterministic cluster traces.
    pub fn with_observer_and_clock(
        nodes: usize,
        config: ServiceConfig,
        hub: Arc<ObsHub>,
        clock: Arc<FakeClock>,
    ) -> Self {
        Self::start(nodes, config, Arc::new(LruPolicy), Some(clock), Some(hub))
    }

    fn start(
        nodes: usize,
        config: ServiceConfig,
        policy: Arc<dyn EvictionPolicy>,
        clock: Option<Arc<FakeClock>>,
        obs: Option<Arc<ObsHub>>,
    ) -> Self {
        assert!(nodes > 0, "a cluster needs at least one node");
        let comms = Communicator::<f64>::mesh(nodes);
        let shutting_down = Arc::new(AtomicBool::new(false));
        let probes: Vec<CommProbe> = comms.iter().map(Communicator::probe).collect();
        let control: Vec<ControlHandle<f64>> =
            comms.iter().map(Communicator::control_handle).collect();
        // One woven program serves every node's fetcher and fabric thread:
        // the obs aspect is stateless beyond the hub, and cloning a woven
        // program is an Arc bump.
        let obs_woven = obs.as_ref().map(|hub| {
            Weaver::new().with_aspect(Box::new(ObsServiceAspect::new(Arc::clone(hub)))).weave()
        });

        let mut services = Vec::with_capacity(nodes);
        let mut fabrics = Vec::with_capacity(nodes);
        for comm in comms {
            let rank = comm.rank();
            let pending = PendingReplies::new();
            let fetcher = ClusterFetcher {
                rank,
                ranks: nodes,
                handle: comm.control_handle(),
                pending: Arc::clone(&pending),
                shutting_down: Arc::clone(&shutting_down),
                obs_woven: obs_woven.clone(),
            };
            let cache = Arc::new(
                PlanCache::with_policy(
                    config.cache_shards,
                    config.cache_capacity,
                    Arc::clone(&policy),
                )
                .with_fetcher(Arc::new(fetcher)),
            );
            let fabric_cache = Arc::clone(&cache);
            let fabric_woven = obs_woven.clone();
            fabrics.push(
                std::thread::Builder::new()
                    .name(format!("aohpc-fabric-{rank}"))
                    .spawn(move || fabric_loop(comm, fabric_cache, pending, fabric_woven))
                    .expect("spawn fabric thread"),
            );
            let service_clock = match &clock {
                Some(fake) => ServiceClock::Fake(Arc::clone(fake)),
                None => ServiceClock::real(),
            };
            services.push(KernelService::start(config, service_clock, Some(cache), obs.clone()));
        }
        ClusterService { nodes: services, probes, control, fabrics, shutting_down, obs }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Direct access to one node's service (stats, completion streams, or
    /// node-local administration).
    pub fn node(&self, rank: usize) -> &KernelService {
        &self.nodes[rank]
    }

    /// The node a tenant label is affine to: a stable hash, so every session
    /// a tenant opens lands on the same node and reuses its warm plans and
    /// scratches.
    pub fn home_node(&self, tenant: &str) -> usize {
        let mut hasher = DefaultHasher::new();
        tenant.hash(&mut hasher);
        (hasher.finish() % self.nodes.len() as u64) as usize
    }

    /// Open a session on the tenant's [`ClusterService::home_node`].
    pub fn open_session(&self, spec: SessionSpec) -> ClusterSessionId {
        let node = self.home_node(&spec.tenant);
        self.open_session_on(node, spec)
    }

    /// Open a session on an explicit node (placement override).
    pub fn open_session_on(&self, node: usize, spec: SessionSpec) -> ClusterSessionId {
        ClusterSessionId { node, session: self.nodes[node].open_session(spec) }
    }

    /// Submit one job under a cluster session (session-affine: runs on the
    /// session's node).  Semantics match [`KernelService::submit`].
    pub fn submit(&self, id: ClusterSessionId, spec: JobSpec) -> Result<JobHandle, SubmitError> {
        self.nodes[id.node].submit(id.session, spec)
    }

    /// Non-blocking submit; see [`KernelService::try_submit`].
    pub fn try_submit(
        &self,
        id: ClusterSessionId,
        spec: JobSpec,
    ) -> Result<JobHandle, SubmitError> {
        self.nodes[id.node].try_submit(id.session, spec)
    }

    /// Attach the session's completion stream on its node.
    pub fn completion_stream(&self, id: ClusterSessionId) -> Result<CompletionStream, SubmitError> {
        self.nodes[id.node].completion_stream(id.session)
    }

    /// Snapshot a cluster session's context.
    pub fn session(&self, id: ClusterSessionId) -> Option<SessionCtx> {
        self.nodes[id.node].session(id.session)
    }

    /// Close a cluster session; see [`KernelService::close_session`].
    pub fn close_session(&self, id: ClusterSessionId) -> Option<SessionMeter> {
        self.nodes[id.node].close_session(id.session)
    }

    /// Drain one session's reports on its node.
    pub fn drain_session(&self, id: ClusterSessionId) -> Vec<JobReport> {
        self.nodes[id.node].drain_session(id.session)
    }

    /// Drain every node (waiting for cluster-wide quiescence) and return all
    /// reports in node-major order (node 0's reports by job id, then node
    /// 1's, ...; job ids are node-local).
    pub fn drain(&self) -> Vec<JobReport> {
        self.nodes.iter().flat_map(KernelService::drain).collect()
    }

    /// Per-node and cluster-aggregated plan-cache counters.  The
    /// compile-once-per-cluster invariant reads directly off the aggregate:
    /// `total.compiles` equals the number of distinct plans resolved anywhere
    /// in the cluster.
    pub fn cache_stats(&self) -> ClusterCacheStats {
        let per_node: Vec<PlanCacheStats> = self.nodes.iter().map(|n| n.cache_stats()).collect();
        let total = per_node.iter().fold(PlanCacheStats::default(), |acc, s| acc + *s);
        ClusterCacheStats { total, per_node }
    }

    /// Per-node and cluster-aggregated fabric counters (the control plane's
    /// request/reply traffic; send/receive totals balance once quiesced).
    pub fn comm_stats(&self) -> ClusterCommStats {
        let per_node: Vec<CommStats> = self.probes.iter().map(CommProbe::stats).collect();
        let total = per_node.iter().fold(CommStats::default(), |acc, s| acc + *s);
        ClusterCommStats { total, per_node }
    }

    /// The shared observability hub, when one was installed.
    pub fn observer(&self) -> Option<Arc<ObsHub>> {
        self.obs.clone()
    }

    /// One cross-validated snapshot over the whole cluster: aggregated
    /// plan-cache and fabric counters, admission state summed across nodes,
    /// and the shared hub's job metrics and recorder state.  `None` without
    /// an installed observer.  At quiescence (after
    /// [`ClusterService::drain`]) [`validate`](ObsSnapshot::validate)
    /// returns no violations.
    pub fn obs_snapshot(&self) -> Option<ObsSnapshot> {
        let hub = self.obs.as_ref()?;
        let metrics = hub.metrics();
        let cache = self.cache_stats().total;
        let comm = self.comm_stats().total;
        let mut waiting = 0u64;
        let mut queued = 0u64;
        let mut queue_limit = 0u64;
        for node in &self.nodes {
            let stats = node.admission_stats();
            waiting += stats.waiting as u64;
            queued += stats.queued as u64;
            queue_limit += stats.queue_limit as u64;
        }
        Some(ObsSnapshot {
            cache: Some(CacheCounters {
                hits: cache.hits,
                misses: cache.misses,
                compiles: cache.compiles,
                fetches: cache.fetches,
                evictions: cache.evictions,
                collisions: cache.collisions,
                lanes: cache.family.iter().map(|lane| (lane.hits, lane.misses)).collect(),
            }),
            comm: Some(CommCounters {
                messages_sent: comm.messages_sent,
                messages_received: comm.messages_received,
                bytes_sent: comm.bytes_sent,
                bytes_received: comm.bytes_received,
                control_sent: comm.control_sent,
                control_received: comm.control_received,
            }),
            admission: AdmissionCounters {
                waiting,
                queued,
                queue_limit,
                queue_wait: metrics.queue_wait_ns.snapshot(),
            },
            jobs: JobCounters {
                completed: metrics.jobs_completed.get(),
                failed: metrics.jobs_failed.get(),
                worker_busy_ns: metrics.worker_busy_ns.get(),
            },
            retained_spans: hub.recorder().len() as u64,
            dropped_spans: hub.recorder().dropped(),
        })
    }

    /// Clean shutdown: drain every node to quiescence (in-flight fetches
    /// need the fabric alive), stop the fabric threads, then stop every
    /// node's workers.  Implied by `Drop`.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        if self.fabrics.is_empty() {
            return;
        }
        // Quiesce the data path first: a worker blocked on a plan fetch
        // needs its peer's fabric thread to still be serving.
        for node in &self.nodes {
            let _ = node.drain();
        }
        // New fetches decline from here on (degrading to local compiles).
        self.shutting_down.store(true, Ordering::SeqCst);
        for (rank, handle) in self.control.iter().enumerate() {
            let _ = handle.send(rank, TAG_SHUTDOWN, Vec::new());
        }
        for fabric in self.fabrics.drain(..) {
            let _ = fabric.join();
        }
        // Worker pools stop when the services drop; doing it explicitly here
        // keeps shutdown observable and ordered.
        for node in self.nodes.drain(..) {
            node.shutdown();
        }
    }
}

impl Drop for ClusterService {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

impl fmt::Debug for ClusterService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClusterService")
            .field("nodes", &self.nodes.len())
            .field("cache", &self.cache_stats().total)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owners_are_deterministic_and_in_range() {
        let p = FamilyProgram::from(aohpc_kernel::StencilProgram::jacobi_5pt());
        for ranks in 1..=7 {
            for nx in [4usize, 8, 16] {
                let key = PlanKey::of(&p, aohpc_env::Extent::new2d(nx, nx), OptLevel::Full);
                let owner = owner_of(&key, ranks);
                assert!(owner < ranks);
                assert_eq!(owner, owner_of(&key, ranks), "stable");
            }
        }
    }

    #[test]
    fn reply_slot_timeout_returns_none() {
        let slot = ReplySlot::new();
        assert_eq!(slot.wait(Duration::from_millis(5)), None);
        slot.resolve(Some(vec![1]));
        assert_eq!(slot.wait(Duration::from_millis(5)), Some(vec![1]));
        // Resolve-at-most-once: a second resolve cannot overwrite.
        let slot = ReplySlot::new();
        slot.resolve(None);
        slot.resolve(Some(vec![2]));
        assert_eq!(slot.wait(Duration::from_millis(5)), None);
    }

    #[test]
    fn pending_replies_route_and_fail() {
        let pending = PendingReplies::new();
        let (id_a, slot_a) = pending.register();
        let (id_b, _slot_b) = pending.register();
        assert_ne!(id_a, id_b);
        pending.take(id_a).expect("registered").resolve(Some(vec![7]));
        assert_eq!(slot_a.wait(Duration::from_millis(5)), Some(vec![7]));
        assert!(pending.take(id_a).is_none(), "taken slots leave the router");
        pending.fail_all();
        assert!(pending.take(id_b).is_none());
    }
}
