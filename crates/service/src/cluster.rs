//! The cluster mesh: N service nodes sharing compiled plans over the
//! simulated fabric — and surviving the death of any of them.
//!
//! A [`ClusterService`] stands up `N` [`KernelService`] nodes — each with its
//! own worker pool, session registry and [`PlanCache`] — connected by a
//! [`Communicator::mesh`] whose **control plane** carries the plan-sharing
//! protocol.  The result is the MPI-scale deployment shape the paper targets:
//! tenants land on a node (session affinity), execution stays node-local, and
//! the only cross-node traffic is metered control frames.
//!
//! # The plan-sharing protocol
//!
//! Every [`PlanKey`] has a deterministic **owner rank** — the highest
//! rendezvous-hash scorer among the *live* ranks
//! ([`rendezvous_owner`](crate::membership::rendezvous_owner)) — the
//! cluster's single-flight arbiter for that plan:
//!
//! 1. A node missing locally asks its cache's chained
//!    [`PlanFetcher`](crate::cache::PlanFetcher) — here a [`ClusterFetcher`]
//!    holding a [`ControlHandle`] onto the mesh.  If the node *is* the
//!    owner (or the cluster is shutting down), the fetcher declines and the
//!    cache compiles locally.
//! 2. Otherwise the fetcher sends a `PLAN_REQ` control frame to the owner:
//!    a request id, the owner incarnation the requester believes it is
//!    addressing, plus the [`PortableKernel`] wire form of the wanted plan
//!    (program, block shape, opt level — enough for the owner to compile a
//!    plan it has never seen).
//! 3. The owner's **fabric thread** — the thread owning the node's
//!    [`Communicator`] endpoint — resolves the request against the owner's
//!    own cache (compiling at most once, its local single-flight) and
//!    replies with a `PLAN_REP` frame carrying the portable form plus the
//!    owner's incarnation number.
//! 4. The requester hydrates the portable form (re-lowering to a
//!    bit-identical tape; see [`aohpc_kernel::portable`]) and caches it.
//!
//! Each distinct plan is therefore **compiled exactly once per cluster** —
//! on its owner — and fetched (not recompiled) everywhere else: summed over
//! all nodes, [`PlanCacheStats::compiles`] equals the number of distinct
//! plans, the invariant the cluster tests assert.
//!
//! Requesters block on a reply holding **no lock** (the cache resolves
//! flights outside its shards), and owners serve requests with node-local
//! compilation only (the owner of a key never forwards), so the
//! request/serve mesh cannot deadlock.
//!
//! # Fault tolerance
//!
//! The cluster survives fail-stop node deaths without losing a job or
//! changing an answer, built from four mechanisms (see also
//! [`membership`](crate::membership) and [`fault`](crate::fault)):
//!
//! * **Liveness.**  Every node runs a *pacemaker* broadcasting heartbeats on
//!   the liveness frame class (tags above
//!   [`aohpc_runtime::LIVENESS_TAG_BASE`], metered outside the application
//!   control ledger) and sweeping a per-node [`Membership`] view: silent
//!   peers become *suspect*, then *dead*, each transition carrying an
//!   incarnation number and gossiped on `SUSPECT` frames so views converge.
//!   Under a [`FakeClock`] the pacemaker ticks on `advance`, making
//!   detection fully test-controlled.
//! * **Rejoin and arbitration.**  A heartbeat carries its sender's
//!   incarnation *and* a digest of its whole membership view.  A scripted
//!   [`FaultAction::Restart`] revives a killed service (cold cache — the
//!   process restarted) under a bumped incarnation; the returning rank's
//!   heartbeats announce the new incarnation, which revives peers' Dead
//!   entries outright (higher incarnation wins), and its plan ownership
//!   returns with the live view.  Digest mismatches trigger an
//!   anti-entropy exchange (`VIEW_PULL` → `VIEW_SYNC`: the full
//!   `(state, incarnation)` vector, lattice-merged), so views diverged by
//!   an asymmetric partition converge without waiting for every detector
//!   to re-time-out.  A rank that learns it stands accused refutes
//!   SWIM-style — outbids the accusation with a fresh incarnation and
//!   broadcasts it ([`MembershipStats::refutations`]).  Because nobody
//!   heartbeats a peer it believes dead, every eighth beat is also sent to
//!   Dead peers as a *probe*: harmless toward a truly dead rank (its old
//!   incarnation cannot resurrect the entry), but a rank falsely condemned
//!   behind a symmetric partition receives it, pulls the condemner's view,
//!   finds the accusation and refutes — so even a both-directions cut held
//!   past the death deadline heals into a rejoin instead of a deadlock of
//!   mutual silence.
//! * **Plan re-ownership.**  Owners are rendezvous-hashed over the *live*
//!   view, so when a rank dies only the keys it owned re-home (each to its
//!   second-highest scorer).  A fetch that times out suspects the owner,
//!   backs off (capped exponential, [`ClusterTuning::backoff_for`]), and
//!   retries against the freshly computed owner; only after the retry
//!   budget is spent does it degrade to a local compile — metered as
//!   [`PlanCacheStats::degraded_resolves`], never silent.
//! * **Checkpoint replay.**  A kill fail-stops a node at the **dequeue
//!   boundary**: jobs a worker already started finish (their superstep
//!   state is node-local and deterministic), queued jobs are orphaned to
//!   the cluster's *failover supervisor*, which replays them on a surviving
//!   node.  The deterministic stack makes the replay bit-identical; the
//!   report resolves the original submitter's [`JobHandle`] carrying a
//!   [`FailoverProvenance`], so zero jobs are lost and every failover is
//!   auditable per job.
//! * **Failure injection.**  A [`FaultPlan`](crate::fault::FaultPlan) arms
//!   scripted kills, restarts, directional link cuts/heals, fabric wedges,
//!   and frame drops/delays into the cluster
//!   ([`ClusterService::with_fault_plan`]), driven by the same clock seam —
//!   the harness the fault-tolerance tests (and nobody else) pay for.
//!
//! Stale incarnations are fenced on both sides of the plan protocol: a late
//! `PLAN_REP` from a rank already declared dead carries a stale incarnation
//! and is dropped (metered as
//! [`MembershipStats::stale_replies_dropped`]) — the shutdown-vs-death race
//! cannot fulfil a live request with a dead node's reply — and a `PLAN_REQ`
//! addressed to an incarnation the owner has since superseded is dropped
//! unserved (metered as [`MembershipStats::stale_requests_dropped`]), so
//! the requester re-homes through its normal retry path instead of
//! trusting a plan negotiated with a previous life.

use crate::cache::{
    EvictionPolicy, FetchOutcome, LruPolicy, PlanCache, PlanCacheStats, PlanFetcher, PlanKey,
};
use crate::fault::{FaultAction, FaultPlan, FaultState, Interception};
use crate::job::{
    FailoverProvenance, JobError, JobErrorKind, JobHandle, JobId, JobOutcome, JobReport, JobSpec,
};
use crate::membership::{
    rendezvous_owner, ClusterTuning, Membership, MembershipStats, NodeState, Transition,
};
use crate::service::{
    KernelService, OrphanSink, OrphanedJob, ServiceClock, ServiceConfig, SubmitError,
};
use crate::session::{CompletionStream, SessionCtx, SessionId, SessionMeter, SessionSpec};
use aohpc_aop::{attr, names, JoinPointKind, Weaver, WovenProgram};
use aohpc_kernel::{FamilyProgram, OptLevel, PortableKernel};
use aohpc_obs::{
    current_context, AdmissionCounters, CacheCounters, CommCounters, JobCounters, ObsHub,
    ObsServiceAspect, ObsSnapshot,
};
use aohpc_runtime::{
    CommProbe, CommStats, Communicator, ControlFrame, ControlHandle, LIVENESS_TAG_BASE,
};
use aohpc_testalloc::sync::FakeClock;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Control-plane tag: stop the receiving fabric thread.
pub const TAG_SHUTDOWN: u32 = 0;
/// Control-plane tag: plan request (`req_id` + portable kernel bytes).
pub const TAG_PLAN_REQ: u32 = 1;
/// Control-plane tag: plan reply (`req_id` + sender incarnation + status +
/// portable kernel bytes).
pub const TAG_PLAN_REP: u32 = 2;
/// Liveness-class tag: heartbeat (payload: sender's incarnation + a digest
/// of its whole membership view, [`Membership::digest`]).  The digest is
/// the anti-entropy trigger: a receiver holding a different view pulls the
/// sender's full vector and lattice-merges it.
pub const TAG_HEARTBEAT: u32 = LIVENESS_TAG_BASE;
/// Liveness-class tag: membership gossip (`subject` + state + incarnation).
/// The originator of a suspect/dead transition — or of a refutation —
/// broadcasts it so views converge without every detector timing out
/// independently.
pub const TAG_SUSPECT: u32 = LIVENESS_TAG_BASE + 1;
/// Liveness-class tag: anti-entropy pull (empty payload) — "your heartbeat
/// digest differs from my view; send me your full vector".
pub const TAG_VIEW_PULL: u32 = LIVENESS_TAG_BASE + 2;
/// Liveness-class tag: anti-entropy sync — the sender's full
/// `(state, incarnation)` vector, one 9-byte entry per rank, lattice-merged
/// by the receiver ([`Membership::merge_view`]).
pub const TAG_VIEW_SYNC: u32 = LIVENESS_TAG_BASE + 3;

/// The well-mixed hash of a plan key that rendezvous scoring runs on; every
/// node computes the same hash for the same key.
fn key_hash(key: &PlanKey) -> u64 {
    let fp = key.fingerprint.as_u128();
    (fp as u64)
        ^ ((fp >> 64) as u64)
        ^ ((key.nx as u64) << 32)
        ^ (key.ny as u64)
        ^ ((key.family.tag() as u64) << 48)
        ^ match key.level {
            OptLevel::None => 0,
            OptLevel::Full => 1 << 16,
        }
}

/// The rank that would own `spec`'s plan among `candidates` — the
/// re-ownership preview surface.
///
/// Matches the fetch path exactly: the plan key is the spec's program
/// fingerprint plus its primary block extent and optimization level, and the
/// scoring is the same rendezvous hash every fetcher runs.  Operators use it
/// to predict plan placement; fault drills use it to build deterministic
/// schedules ("kill the owner of this plan and watch the key re-home").
pub fn plan_owner_among(spec: &JobSpec, candidates: &[usize]) -> usize {
    let primary =
        aohpc_env::Extent::new2d(spec.block.min(spec.region.nx), spec.block.min(spec.region.ny));
    let key = PlanKey::of(&spec.program, primary, spec.opt_level);
    rendezvous_owner(key_hash(&key), candidates)
}

/// The `SUSPECT` gossip payload: subject rank, claimed state, incarnation.
fn suspect_payload(t: &Transition) -> Vec<u8> {
    let mut bytes = (t.subject as u64).to_le_bytes().to_vec();
    bytes.push(match t.to {
        NodeState::Alive => 0,
        NodeState::Suspect => 1,
        NodeState::Dead => 2,
    });
    bytes.extend_from_slice(&t.incarnation.to_le_bytes());
    bytes
}

fn decode_suspect(bytes: &[u8]) -> Option<(usize, NodeState, u64)> {
    if bytes.len() != 17 {
        return None;
    }
    let subject = u64::from_le_bytes(bytes[..8].try_into().ok()?) as usize;
    let state = match bytes[8] {
        0 => NodeState::Alive,
        1 => NodeState::Suspect,
        2 => NodeState::Dead,
        _ => return None,
    };
    let incarnation = u64::from_le_bytes(bytes[9..17].try_into().ok()?);
    Some((subject, state, incarnation))
}

/// The `VIEW_SYNC` payload: the full membership vector, 9 bytes per rank
/// (state byte + incarnation).
fn view_payload(entries: &[(NodeState, u64)]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(entries.len() * 9);
    for (state, incarnation) in entries {
        bytes.push(match state {
            NodeState::Alive => 0,
            NodeState::Suspect => 1,
            NodeState::Dead => 2,
        });
        bytes.extend_from_slice(&incarnation.to_le_bytes());
    }
    bytes
}

fn decode_view(bytes: &[u8]) -> Option<Vec<(NodeState, u64)>> {
    if bytes.is_empty() || !bytes.len().is_multiple_of(9) {
        return None;
    }
    bytes
        .chunks_exact(9)
        .map(|entry| {
            let state = match entry[0] {
                0 => NodeState::Alive,
                1 => NodeState::Suspect,
                2 => NodeState::Dead,
                _ => return None,
            };
            Some((state, u64::from_le_bytes(entry[1..9].try_into().ok()?)))
        })
        .collect()
}

/// Record an incarnation-arbitrated revival through the `CLUSTER_REJOIN`
/// join point: `node` = the reviving rank, `step` = its new incarnation,
/// `ok` = 1 for a restart rejoin, 0 for a refutation.
fn dispatch_rejoin(woven: Option<&WovenProgram>, node: usize, incarnation: u64, restart: bool) {
    if let Some(woven) = woven {
        let attrs = [(attr::NODE, node as i64), (attr::STEP, incarnation as i64)];
        let mut payload = ();
        woven.dispatch_with(
            names::CLUSTER_REJOIN,
            JoinPointKind::Call,
            &attrs,
            &mut payload,
            &mut |ctx| {
                ctx.set_attr(attr::OK, i64::from(restart));
            },
        );
    }
}

/// Broadcast a locally-originated membership transition to every peer and
/// record it through the `CLUSTER_SUSPECT` join point (attrs: `node` = the
/// subject, `ok` = 1 for a suspicion, 0 for a death).  Only the originator
/// broadcasts — adopted claims are not re-gossiped, so there is no storm.
fn publish_transition(
    handle: &ControlHandle<f64>,
    ranks: usize,
    woven: Option<&WovenProgram>,
    t: &Transition,
) {
    let payload = suspect_payload(t);
    for peer in 0..ranks {
        if peer != handle.rank() {
            let _ = handle.send(peer, TAG_SUSPECT, payload.clone());
        }
    }
    if let Some(woven) = woven {
        if t.to != NodeState::Alive {
            let attrs = [(attr::NODE, t.subject as i64)];
            let mut payload = ();
            woven.dispatch_with(
                names::CLUSTER_SUSPECT,
                JoinPointKind::Call,
                &attrs,
                &mut payload,
                &mut |ctx| {
                    ctx.set_attr(attr::OK, i64::from(t.to == NodeState::Suspect));
                },
            );
        }
    }
}

/// One in-flight plan request: the fabric thread resolves it with the reply
/// payload (`Some(bytes)`) or a decline (`None`).
struct ReplySlot {
    state: StdMutex<Option<Option<Vec<u8>>>>,
    cv: Condvar,
}

impl ReplySlot {
    fn new() -> Arc<Self> {
        Arc::new(ReplySlot { state: StdMutex::new(None), cv: Condvar::new() })
    }

    fn resolve(&self, payload: Option<Vec<u8>>) {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        if state.is_none() {
            *state = Some(payload);
        }
        drop(state);
        self.cv.notify_all();
    }

    fn wait(&self, timeout: Duration) -> Option<Vec<u8>> {
        // A fixed deadline, not a per-iteration timeout: spurious condvar
        // wakeups (which std permits) must not restart the window.
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(payload) = state.take() {
                return payload;
            }
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return None;
            }
            let (next, _) =
                self.cv.wait_timeout(state, remaining).unwrap_or_else(|p| p.into_inner());
            state = next;
        }
    }
}

/// The reply router one node's fetchers and fabric thread share.  Every slot
/// remembers which rank it is waiting on, so a suspicion or death verdict
/// can fail the slots aimed at that rank immediately instead of letting
/// their fetchers wait out the timeout.
struct PendingReplies {
    next_req: AtomicU64,
    slots: StdMutex<HashMap<u64, (usize, Arc<ReplySlot>)>>,
}

impl PendingReplies {
    fn new() -> Arc<Self> {
        Arc::new(PendingReplies {
            next_req: AtomicU64::new(0),
            slots: StdMutex::new(HashMap::new()),
        })
    }

    fn register(&self, owner: usize) -> (u64, Arc<ReplySlot>) {
        let id = self.next_req.fetch_add(1, Ordering::Relaxed) + 1;
        let slot = ReplySlot::new();
        self.slots.lock().unwrap_or_else(|p| p.into_inner()).insert(id, (owner, Arc::clone(&slot)));
        (id, slot)
    }

    fn take(&self, id: u64) -> Option<Arc<ReplySlot>> {
        self.slots.lock().unwrap_or_else(|p| p.into_inner()).remove(&id).map(|(_, slot)| slot)
    }

    /// Fail every request waiting on `rank`: its waiters wake now and re-home
    /// against the next owner.
    fn fail_rank(&self, rank: usize) {
        let slots: Vec<_> = {
            let mut map = self.slots.lock().unwrap_or_else(|p| p.into_inner());
            let ids: Vec<u64> =
                map.iter().filter(|(_, (owner, _))| *owner == rank).map(|(id, _)| *id).collect();
            ids.into_iter().filter_map(|id| map.remove(&id)).map(|(_, slot)| slot).collect()
        };
        for slot in slots {
            slot.resolve(None);
        }
    }

    /// Fail every outstanding request (fabric thread exit): waiters wake and
    /// degrade to local compiles.
    fn fail_all(&self) {
        let slots: Vec<_> = {
            let mut map = self.slots.lock().unwrap_or_else(|p| p.into_inner());
            map.drain().map(|(_, (_, slot))| slot).collect()
        };
        for slot in slots {
            slot.resolve(None);
        }
    }
}

/// The cluster-fetch stage of one node's plan-resolution chain: asks the
/// key's owner rank — rendezvous-hashed over the live membership view — for
/// the portable plan, retrying with capped exponential backoff (and a fresh
/// owner computation) when the owner goes silent.
pub struct ClusterFetcher {
    rank: usize,
    handle: ControlHandle<f64>,
    pending: Arc<PendingReplies>,
    membership: Arc<Membership>,
    clock: ServiceClock,
    shutting_down: Arc<AtomicBool>,
    /// When the cluster carries an observer, cross-node requests dispatch
    /// through this woven program so the obs aspect wraps each round trip in
    /// a span — parented, via the calling worker's thread-local span
    /// context, into the requesting job's trace.
    obs_woven: Option<WovenProgram>,
}

impl ClusterFetcher {
    /// The actual request/reply round trip to `owner`.
    fn fetch_from(
        &self,
        owner: usize,
        key: &PlanKey,
        program: &FamilyProgram,
    ) -> Option<PortableKernel> {
        let (req_id, slot) = self.pending.register(owner);
        let portable =
            PortableKernel::pack(program, aohpc_env::Extent::new2d(key.nx, key.ny), key.level);
        let mut payload = req_id.to_le_bytes().to_vec();
        // Name the incarnation this request is addressed to: if the owner
        // restarts before serving it, the request is provably from its
        // previous life and the owner drops it rather than honoring it.
        payload.extend_from_slice(&self.membership.incarnation_of(owner).to_le_bytes());
        payload.extend_from_slice(&portable.to_bytes());
        if !self.handle.send(owner, TAG_PLAN_REQ, payload) {
            self.pending.take(req_id);
            return None;
        }
        let bytes = slot.wait(self.membership.tuning().fetch_timeout);
        self.pending.take(req_id);
        PortableKernel::from_bytes(&bytes?).ok()
    }

    /// One attempt against `owner`, wrapped in a `CLUSTER_PLAN_REQ` span when
    /// an observer is installed (declines and backoffs are local decisions,
    /// not cross-node traffic, so only real requests get spans).
    fn fetch_attempt(
        &self,
        owner: usize,
        key: &PlanKey,
        program: &FamilyProgram,
    ) -> Option<PortableKernel> {
        let Some(woven) = &self.obs_woven else {
            return self.fetch_from(owner, key, program);
        };
        let (trace, parent) = current_context().unwrap_or((0, 0));
        let attrs = [
            (attr::TRACE, trace as i64),
            (attr::PARENT, parent as i64),
            (attr::NODE, owner as i64),
        ];
        let mut fetched = None;
        let mut payload = ();
        woven.dispatch_with(
            names::CLUSTER_PLAN_REQ,
            JoinPointKind::Call,
            &attrs,
            &mut payload,
            &mut |ctx| {
                let plan = self.fetch_from(owner, key, program);
                ctx.set_attr(attr::OK, i64::from(plan.is_some()));
                fetched = Some(plan);
            },
        );
        fetched.flatten()
    }
}

impl PlanFetcher for ClusterFetcher {
    fn fetch(&self, key: &PlanKey, program: &FamilyProgram) -> FetchOutcome {
        if self.membership.ranks() <= 1 || self.shutting_down.load(Ordering::SeqCst) {
            return FetchOutcome::Declined;
        }
        let hash = key_hash(key);
        let tuning = self.membership.tuning();
        let mut attempt = 0u32;
        loop {
            if self.shutting_down.load(Ordering::SeqCst) {
                return FetchOutcome::Declined;
            }
            // Re-read the live view every attempt: a dead owner's keys
            // re-home, so the retry goes to the *new* owner, not the corpse.
            let owner = rendezvous_owner(hash, &self.membership.live_view());
            if owner == self.rank {
                // This node IS the single-flight arbiter: compile locally.
                return FetchOutcome::Declined;
            }
            if let Some(plan) = self.fetch_attempt(owner, key, program) {
                return FetchOutcome::Fetched(plan);
            }
            // Silence is evidence: suspect the owner (starting its cooldown)
            // so the next attempt — and every other fetcher — re-homes
            // instead of burning its budget against the same silent rank.
            if let Some(t) = self.membership.suspect(owner, self.clock.now()) {
                publish_transition(
                    &self.handle,
                    self.membership.ranks(),
                    self.obs_woven.as_ref(),
                    &t,
                );
            }
            self.pending.fail_rank(owner);
            if attempt >= tuning.fetch_retries {
                // Budget spent: the cache compiles locally and meters the
                // degraded resolve.
                return FetchOutcome::Failed;
            }
            std::thread::sleep(tuning.backoff_for(attempt));
            attempt += 1;
        }
    }
}

impl fmt::Debug for ClusterFetcher {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClusterFetcher")
            .field("rank", &self.rank)
            .field("ranks", &self.membership.ranks())
            .finish()
    }
}

/// Serve one `PLAN_REQ` payload (req id + expected owner incarnation +
/// portable kernel bytes) against the owner's local cache, returning the
/// reply frame (req id + serving rank's incarnation + status byte +
/// compiled portable bytes).  The expected-incarnation guard runs *before*
/// this (a stale request is dropped, not served).
fn serve_plan_req(cache: &PlanCache, bytes: &[u8], incarnation: u64) -> Vec<u8> {
    let req_id: [u8; 8] = bytes[..8].try_into().expect("eight bytes");
    let mut reply = req_id.to_vec();
    reply.extend_from_slice(&incarnation.to_le_bytes());
    match PortableKernel::from_bytes(&bytes[16..]) {
        Ok(portable) => {
            // Resolve against the local cache: the owner's local
            // single-flight makes this the cluster's one compile for the key
            // (its own fetcher declines owned keys, so no forwarding loop is
            // possible).  The reply carries the *compiled* form — optimized
            // DAG attached — so the requester skips the optimizer and only
            // re-lowers plan and tape.
            let (artifact, _) =
                cache.resolve(portable.program(), portable.extent(), portable.level(), false);
            let compiled =
                PortableKernel::from_compiled(portable.program(), &artifact, portable.level());
            reply.push(1);
            reply.extend_from_slice(&compiled.to_bytes());
        }
        Err(_) => reply.push(0),
    }
    reply
}

/// Everything one fabric thread works with besides the communicator it owns.
struct Fabric {
    cache: Arc<PlanCache>,
    pending: Arc<PendingReplies>,
    membership: Arc<Membership>,
    fault: Option<Arc<FaultState>>,
    clock: ServiceClock,
    shutting_down: Arc<AtomicBool>,
    obs_woven: Option<WovenProgram>,
}

impl Fabric {
    /// The per-node fabric loop: owns the node's [`Communicator`] endpoint,
    /// serves `PLAN_REQ` frames from its cache, routes `PLAN_REP` frames to
    /// waiting fetchers, folds heartbeats and gossip into the membership
    /// view, and applies the fault harness's frame perturbations.  Exits on
    /// `TAG_SHUTDOWN` (the only reliable stop signal — a live endpoint's
    /// channel never disconnects, see [`Communicator::recv_control`]),
    /// failing all outstanding requests on the way out.
    fn run(self, mut comm: Communicator<f64>) {
        let rank = comm.rank();
        'fabric: while let Some(frame) = comm.recv_control() {
            if !self.process(rank, &mut comm, frame, true) {
                break 'fabric;
            }
            // Frames the fault harness held are re-injected once due —
            // skipping re-interception, or a delay rule would re-hold them.
            if let Some(fault) = &self.fault {
                for released in fault.take_released(rank, self.clock.now()) {
                    if !self.process(rank, &mut comm, released, false) {
                        break 'fabric;
                    }
                }
            }
        }
        self.pending.fail_all();
    }

    /// Handle one frame; `false` means shutdown.
    fn process(
        &self,
        rank: usize,
        comm: &mut Communicator<f64>,
        frame: ControlFrame,
        intercept: bool,
    ) -> bool {
        if frame.tag == TAG_SHUTDOWN {
            return false;
        }
        let now = self.clock.now();
        if let Some(fault) = &self.fault {
            if intercept {
                match fault.intercept(rank, &frame, now) {
                    Interception::Dropped | Interception::Held => return true,
                    Interception::Deliver => {}
                }
            }
            // A wedged fabric parks mid-stream: frames pile up behind it and
            // its silence earns it a suspicion, exactly like a descheduled
            // or livelocked fabric thread would.  Shutdown un-parks it so
            // teardown cannot hang on a script that never unwedges.
            while fault.is_wedged(rank) && !self.shutting_down.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_micros(200));
            }
            if fault.is_killed(rank) && frame.tag != TAG_PLAN_REP {
                // Fail-stop: a dead node neither serves, gossips, nor
                // observes.  Replies to fetches its still-running jobs
                // issued are the one exception — the kill boundary is the
                // dequeue, so work a worker already started completes.
                return true;
            }
        }
        // Any frame from a current-incarnation peer is liveness evidence.
        if frame.from != rank && frame.from < self.membership.ranks() {
            let evidence_incarnation = if frame.tag == TAG_HEARTBEAT {
                frame
                    .bytes
                    .get(..8)
                    .and_then(|b| b.try_into().ok())
                    .map(u64::from_le_bytes)
                    .unwrap_or_else(|| self.membership.incarnation_of(frame.from))
            } else {
                self.membership.incarnation_of(frame.from)
            };
            let _ = self.membership.observe_alive(frame.from, evidence_incarnation, now);
        }
        match frame.tag {
            TAG_HEARTBEAT => {
                // Liveness evidence was folded above; what remains is the
                // anti-entropy trigger: a sender advertising a different
                // view digest holds evidence we lack (or vice versa), so
                // pull its full vector.  Converged views — the steady state
                // — exchange no sync traffic at all.
                let theirs =
                    frame.bytes.get(8..16).and_then(|b| b.try_into().ok()).map(u64::from_le_bytes);
                if theirs.is_some_and(|digest| digest != self.membership.digest()) {
                    let _ = comm.send_control(frame.from, TAG_VIEW_PULL, Vec::new());
                }
            }
            TAG_SUSPECT => {
                if let Some((subject, state, incarnation)) = decode_suspect(&frame.bytes) {
                    if subject < self.membership.ranks() {
                        if let Some(t) = self.membership.adopt(subject, state, incarnation, now) {
                            self.react(rank, comm, &t);
                        }
                    }
                }
            }
            TAG_VIEW_PULL => {
                let reply = view_payload(&self.membership.view_entries());
                let _ = comm.send_control(frame.from, TAG_VIEW_SYNC, reply);
            }
            TAG_VIEW_SYNC => {
                if let Some(entries) = decode_view(&frame.bytes) {
                    for t in self.membership.merge_view(&entries, now) {
                        self.react(rank, comm, &t);
                    }
                }
            }
            TAG_PLAN_REQ => {
                if frame.bytes.len() < 16 {
                    return true; // malformed: no req id / expected incarnation
                }
                let expected =
                    u64::from_le_bytes(frame.bytes[8..16].try_into().expect("eight bytes"));
                // A request addressed to a previous life of this rank: the
                // requester (or its view) predates our restart.  Drop it —
                // the requester's timeout re-homes the key against the live
                // view, which its heartbeats have meanwhile refreshed.
                if !self.membership.accepts_request(expected) {
                    return true;
                }
                let incarnation = self.membership.incarnation_of(rank);
                let reply = match &self.obs_woven {
                    None => serve_plan_req(&self.cache, &frame.bytes, incarnation),
                    Some(woven) => {
                        let attrs = [(attr::NODE, rank as i64)];
                        let mut reply = None;
                        let mut payload = ();
                        woven.dispatch_with(
                            names::CLUSTER_PLAN_REP,
                            JoinPointKind::Execution,
                            &attrs,
                            &mut payload,
                            &mut |ctx| {
                                let bytes = serve_plan_req(&self.cache, &frame.bytes, incarnation);
                                ctx.set_attr(attr::OK, i64::from(bytes.get(16) == Some(&1)));
                                reply = Some(bytes);
                            },
                        );
                        reply.expect("serve body runs exactly once")
                    }
                };
                // A vanished requester is not an error mid-shutdown.
                let _ = comm.send_control(frame.from, TAG_PLAN_REP, reply);
            }
            TAG_PLAN_REP => {
                if frame.bytes.len() < 17 {
                    return true;
                }
                let req_id = u64::from_le_bytes(frame.bytes[..8].try_into().expect("eight bytes"));
                let incarnation =
                    u64::from_le_bytes(frame.bytes[8..16].try_into().expect("eight bytes"));
                // The shutdown-vs-death race: a reply sent before its sender
                // was declared dead carries the stale incarnation and must
                // not fulfil a live slot.
                if !self.membership.accepts_reply(frame.from, incarnation) {
                    return true;
                }
                let payload = (frame.bytes[16] == 1).then(|| frame.bytes[17..].to_vec());
                if let Some(slot) = self.pending.take(req_id) {
                    slot.resolve(payload);
                }
            }
            _ => {} // unknown tags are ignored (future protocol extensions)
        }
        true
    }

    /// Act on one locally-adopted membership transition.  A condemnation
    /// wakes the fetchers parked on the subject (they re-home now, not at
    /// their timeout).  A refutation — an accusation against *this* rank
    /// that [`Membership::adopt`] outbid with a fresh incarnation — is
    /// broadcast so the accuser (and everyone it gossiped to) adopts the
    /// new incarnation, and is recorded through the `CLUSTER_REJOIN` join
    /// point (`ok` = 0).
    fn react(&self, rank: usize, comm: &mut Communicator<f64>, t: &Transition) {
        if t.subject == rank && t.to == NodeState::Alive {
            let payload = suspect_payload(t);
            for peer in 0..self.membership.ranks() {
                if peer != rank {
                    let _ = comm.send_control(peer, TAG_SUSPECT, payload.clone());
                }
            }
            dispatch_rejoin(self.obs_woven.as_ref(), rank, t.incarnation, false);
        } else if t.to != NodeState::Alive {
            self.pending.fail_rank(t.subject);
        }
    }
}

/// One node's heartbeat source and deadline sweeper, plus the fault
/// schedule's driver.
struct PacemakerCtx {
    rank: usize,
    stop: Arc<AtomicBool>,
    handle: ControlHandle<f64>,
    membership: Arc<Membership>,
    pending: Arc<PendingReplies>,
    fault: Option<Arc<FaultState>>,
    clock: ServiceClock,
    supervisor_tx: Sender<SupervisorMsg>,
    obs_woven: Option<WovenProgram>,
    beats: AtomicU64,
}

/// Every this-many beats, a heartbeat is also sent to peers this node
/// believes dead.  An old-incarnation heartbeat can never resurrect a dead
/// entry, so the probe is harmless toward ranks that really died — but a
/// rank falsely condemned during a symmetric partition receives the probe,
/// notices the digest mismatch, pulls the condemner's view, finds the
/// accusation against itself, and refutes with a fresh incarnation.
/// Without the probe nobody beats toward a Dead peer, so such a rank would
/// never learn of its condemnation and could never rejoin after the heal.
const DEAD_PROBE_EVERY: u64 = 8;

impl PacemakerCtx {
    fn beat(&self) {
        if self.stop.load(Ordering::SeqCst) {
            return;
        }
        let now = self.clock.now();
        if let Some(fault) = &self.fault {
            // Whichever pacemaker observes the schedule first executes it
            // (`drive` pops each action exactly once); kills and restarts
            // are routed to the supervisor, which owns the node handles,
            // and link events are recorded at the `CLUSTER_PARTITION` join
            // point (`drive` already flipped the cut matrix).
            for action in fault.drive(now) {
                match action {
                    FaultAction::Kill(rank) => {
                        let _ = self.supervisor_tx.send(SupervisorMsg::Kill(rank));
                    }
                    FaultAction::Restart(rank) => {
                        let _ = self.supervisor_tx.send(SupervisorMsg::Restart(rank));
                    }
                    FaultAction::Partition { from, to } => self.link_event(from, to, false),
                    FaultAction::Heal { from, to } => self.link_event(from, to, true),
                    FaultAction::Wedge(_) | FaultAction::Unwedge(_) => {}
                }
            }
            if fault.is_killed(self.rank) || fault.is_wedged(self.rank) {
                return; // a dead or wedged node goes silent
            }
        }
        let probe = self.beats.fetch_add(1, Ordering::Relaxed).is_multiple_of(DEAD_PROBE_EVERY);
        let incarnation = self.membership.incarnation_of(self.rank);
        let mut beat = incarnation.to_le_bytes().to_vec();
        beat.extend_from_slice(&self.membership.digest().to_le_bytes());
        for peer in 0..self.membership.ranks() {
            if peer != self.rank && (probe || self.membership.state_of(peer) != NodeState::Dead) {
                let _ = self.handle.send(peer, TAG_HEARTBEAT, beat.clone());
            }
        }
        for t in self.membership.tick(now) {
            // Fetchers parked on a condemned rank wake and re-home now, not
            // at their timeout.
            self.pending.fail_rank(t.subject);
            publish_transition(&self.handle, self.membership.ranks(), self.obs_woven.as_ref(), &t);
        }
    }

    /// Record one scripted link event through the `CLUSTER_PARTITION` join
    /// point (`node` = sending side of the direction, `rank` = receiving
    /// side, `ok` = 1 for a heal, 0 for a cut).
    fn link_event(&self, from: usize, to: usize, healed: bool) {
        if let Some(woven) = &self.obs_woven {
            let attrs = [(attr::NODE, from as i64), (attr::RANK, to as i64)];
            let mut payload = ();
            woven.dispatch_with(
                names::CLUSTER_PARTITION,
                JoinPointKind::Call,
                &attrs,
                &mut payload,
                &mut |ctx| {
                    ctx.set_attr(attr::OK, i64::from(healed));
                },
            );
        }
    }
}

/// A running pacemaker: a joinable thread (wall clock) or a permanent
/// `on_advance` registration gated by its stop flag (fake clock — the
/// registration outlives the cluster, so the flag is the off switch).
enum Pacemaker {
    Thread { stop: Arc<AtomicBool>, handle: JoinHandle<()> },
    FakeHook { stop: Arc<AtomicBool> },
}

impl Pacemaker {
    fn stop(&self) {
        match self {
            Pacemaker::Thread { stop, .. } | Pacemaker::FakeHook { stop } => {
                stop.store(true, Ordering::SeqCst);
            }
        }
    }

    fn join(self) {
        if let Pacemaker::Thread { handle, .. } = self {
            let _ = handle.join();
        }
    }
}

/// The failover supervisor's intake.
enum SupervisorMsg {
    /// Execute a scripted fail-stop of `rank` (from the fault schedule).
    Kill(usize),
    /// Execute a scripted restart of a killed `rank`: revive its service
    /// (cold cache) and restart its membership under a fresh incarnation.
    Restart(usize),
    /// A job stranded on killed rank `from`, to be replayed on a survivor.
    Orphan { from: usize, orphan: Box<OrphanedJob> },
    /// Cluster shutdown: finish in-flight replays, then exit.
    Stop,
}

/// One orphan mid-replay on its target node.
struct Replay {
    from: usize,
    to: usize,
    orphan: OrphanedJob,
    handle: JobHandle,
}

/// The cluster's recovery authority: executes scripted kills, replays
/// orphaned jobs on survivors, and settles each orphan's original handle
/// with the replay's (bit-identical) report plus failover provenance.
struct Supervisor {
    nodes: Vec<Arc<KernelService>>,
    /// The per-rank membership views, for restarting a revived rank's view
    /// under its bumped incarnation.
    memberships: Vec<Arc<Membership>>,
    clock: ServiceClock,
    rx: Receiver<SupervisorMsg>,
    obs_woven: Option<WovenProgram>,
    /// One replay session per target node, opened lazily.
    sessions: HashMap<usize, SessionId>,
    inflight: Vec<Replay>,
}

impl Supervisor {
    fn run(mut self) {
        let mut stopping = false;
        loop {
            // Block only when truly idle; while replays are in flight, poll
            // them between short waits (event-driven, never a serial wait —
            // a second kill arriving mid-replay must still be executed).
            let msg = if self.inflight.is_empty() && !stopping {
                match self.rx.recv() {
                    Ok(msg) => Some(msg),
                    Err(_) => break,
                }
            } else {
                match self.rx.recv_timeout(Duration::from_millis(2)) {
                    Ok(msg) => Some(msg),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => {
                        stopping = true;
                        None
                    }
                }
            };
            match msg {
                Some(SupervisorMsg::Kill(rank)) => self.nodes[rank].kill_for_failover(),
                Some(SupervisorMsg::Restart(rank)) => self.restart(rank),
                Some(SupervisorMsg::Orphan { from, orphan }) => self.replay(from, *orphan),
                Some(SupervisorMsg::Stop) => stopping = true,
                None => {}
            }
            self.poll_inflight();
            if stopping && self.inflight.is_empty() {
                // Late orphans (a kill racing shutdown) still get replayed.
                let mut drained_any = false;
                while let Ok(msg) = self.rx.try_recv() {
                    match msg {
                        SupervisorMsg::Kill(rank) => self.nodes[rank].kill_for_failover(),
                        SupervisorMsg::Restart(rank) => self.restart(rank),
                        SupervisorMsg::Orphan { from, orphan } => self.replay(from, *orphan),
                        SupervisorMsg::Stop => {}
                    }
                    drained_any = true;
                }
                if !drained_any && self.inflight.is_empty() {
                    break;
                }
            }
        }
    }

    /// Execute a scripted restart: revive the killed service — cold cache,
    /// the process restarted — and restart its membership view under a
    /// bumped incarnation.  The revived rank re-announces itself through
    /// its own pacemaker's next heartbeat; peers revive their Dead entry by
    /// incarnation arbitration, its plan ownership returns with the live
    /// view, and its cache re-warms through the normal fetcher path.
    /// Recorded at the `CLUSTER_REJOIN` join point (`ok` = 1).
    fn restart(&self, rank: usize) {
        if !self.nodes[rank].revive_after_failover() {
            return; // a restart without a preceding kill is a no-op
        }
        let incarnation = self.memberships[rank].restart(self.clock.now());
        dispatch_rejoin(self.obs_woven.as_ref(), rank, incarnation, true);
    }

    /// The survivor a stranded job re-homes to: rendezvous-hashed over the
    /// not-killed ranks so a batch of orphans spreads instead of dogpiling
    /// one node.
    fn pick_target(&self, from: usize, job: JobId, candidates: &[usize]) -> Option<usize> {
        if candidates.is_empty() {
            return None;
        }
        Some(rendezvous_owner(job ^ ((from as u64) << 48), candidates))
    }

    fn replay(&mut self, from: usize, orphan: OrphanedJob) {
        let original_job = orphan.cell.job;
        let mut candidates: Vec<usize> =
            (0..self.nodes.len()).filter(|&r| r != from && !self.nodes[r].is_killed()).collect();
        // A target can die between pick and submit (a second kill racing
        // this replay); fall through to the remaining survivors before
        // giving up on the job.
        while let Some(to) = self.pick_target(from, original_job, &candidates) {
            let session = *self.sessions.entry(to).or_insert_with(|| {
                self.nodes[to].open_session(SessionSpec::tenant("cluster-failover"))
            });
            match self.nodes[to].submit(session, orphan.spec.clone()) {
                Ok(handle) => {
                    self.inflight.push(Replay { from, to, orphan, handle });
                    return;
                }
                Err(_) => candidates.retain(|&r| r != to),
            }
        }
        Self::abandon(&self.nodes, from, orphan);
    }

    /// No survivor exists: resolve the orphan's handle so nothing hangs.
    fn abandon(nodes: &[Arc<KernelService>], from: usize, orphan: OrphanedJob) {
        let error = JobError {
            job: orphan.cell.job,
            session: orphan.session,
            kind: JobErrorKind::Abandoned,
        };
        orphan.cell.slot.complete(Err(error));
        nodes[from].push_stream_outcome(orphan.session, orphan.cell.job, Err(error));
    }

    fn poll_inflight(&mut self) {
        let mut index = 0;
        while index < self.inflight.len() {
            if let Some(outcome) = self.inflight[index].handle.poll() {
                let replay = self.inflight.swap_remove(index);
                self.finalize(replay, outcome);
            } else {
                index += 1;
            }
        }
    }

    /// Settle one finished replay: stamp the report with provenance, resolve
    /// the original handle (exactly once — the orphan's slot was left open
    /// for this), deliver the original session's stream outcome, and record
    /// the `CLUSTER_FAILOVER` join point.
    fn finalize(&self, replay: Replay, outcome: JobOutcome) {
        let Replay { from, to, orphan, .. } = replay;
        let original_job = orphan.cell.job;
        let outcome: JobOutcome = match outcome {
            Ok(mut report) => {
                report.failover = Some(FailoverProvenance {
                    from_node: from,
                    to_node: to,
                    original_job,
                    checkpoint_steps: orphan.watermark.steps,
                });
                Ok(report)
            }
            Err(err) => {
                Err(JobError { job: original_job, session: orphan.session, kind: err.kind })
            }
        };
        let ok = outcome.is_ok();
        if orphan.cell.slot.complete(outcome.clone()) && ok {
            orphan.cell.mark_completed();
        }
        self.nodes[from].push_stream_outcome(orphan.session, original_job, outcome);
        if let Some(woven) = &self.obs_woven {
            let attrs = [(attr::NODE, to as i64), (attr::JOB, original_job as i64)];
            let mut payload = ();
            woven.dispatch_with(
                names::CLUSTER_FAILOVER,
                JoinPointKind::Execution,
                &attrs,
                &mut payload,
                &mut |ctx| {
                    ctx.set_attr(attr::OK, i64::from(ok));
                },
            );
        }
    }
}

/// A session opened on a cluster: which node owns it plus the node-local id.
///
/// All job routing is **session-affine**: every submission under this id
/// executes on `node`, so per-session ordering, quotas and completion
/// streams behave exactly as on a single [`KernelService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClusterSessionId {
    /// The node the session lives on.
    pub node: usize,
    /// The node-local session id.
    pub session: SessionId,
}

impl fmt::Display for ClusterSessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}/session{}", self.node, self.session)
    }
}

/// Cluster-aggregated cache counters plus the per-node breakdown.
#[derive(Debug, Clone)]
pub struct ClusterCacheStats {
    /// Sum over all nodes (entries included — cluster-resident plan count).
    pub total: PlanCacheStats,
    /// One snapshot per node, indexed by rank.
    pub per_node: Vec<PlanCacheStats>,
}

/// Cluster-aggregated fabric counters plus the per-node breakdown.
#[derive(Debug, Clone)]
pub struct ClusterCommStats {
    /// Sum over all nodes.
    pub total: CommStats,
    /// One snapshot per node, indexed by rank.
    pub per_node: Vec<CommStats>,
}

/// `N` kernel-service nodes over a simulated fabric, sharing compiled plans
/// so each distinct plan is compiled once per **cluster**, not once per node
/// — and surviving fail-stop node deaths without losing a job (see the
/// [module docs](self) for the protocol and the failure model).
///
/// Dropping the cluster (or calling [`ClusterService::shutdown`]) drains
/// every node, stops the failover supervisor, pacemakers and fabric
/// threads, and joins all workers.
pub struct ClusterService {
    nodes: Vec<Arc<KernelService>>,
    probes: Vec<CommProbe>,
    control: Vec<ControlHandle<f64>>,
    fabrics: Vec<JoinHandle<()>>,
    pacemakers: Vec<Pacemaker>,
    memberships: Vec<Arc<Membership>>,
    supervisor: Option<JoinHandle<()>>,
    supervisor_tx: Option<Sender<SupervisorMsg>>,
    fault: Option<Arc<FaultState>>,
    tuning: ClusterTuning,
    shutting_down: Arc<AtomicBool>,
    /// The cluster-wide observability hub, when one was installed
    /// ([`ClusterService::with_observer`]) — shared by every node, so spans
    /// from all ranks land in one flight recorder.
    obs: Option<Arc<ObsHub>>,
}

impl ClusterService {
    /// Start a cluster of `nodes` services, each sized by `config`, with the
    /// default (LRU) eviction policy on every node's plan cache.
    pub fn new(nodes: usize, config: ServiceConfig) -> Self {
        Self::start(nodes, config, Arc::new(LruPolicy), None, None, ClusterTuning::default(), None)
    }

    /// [`ClusterService::new`] with an explicit eviction policy (shared by
    /// every node's cache — policies are stateless strategies).
    pub fn with_policy(
        nodes: usize,
        config: ServiceConfig,
        policy: Arc<dyn EvictionPolicy>,
    ) -> Self {
        Self::start(nodes, config, policy, None, None, ClusterTuning::default(), None)
    }

    /// A cluster whose nodes' admission deadlines — and failure detectors —
    /// run on one shared test-controlled [`FakeClock`] (the
    /// deterministic-harness seam; see [`KernelService::with_fake_clock`]).
    pub fn with_fake_clock(nodes: usize, config: ServiceConfig, clock: Arc<FakeClock>) -> Self {
        Self::start(
            nodes,
            config,
            Arc::new(LruPolicy),
            Some(clock),
            None,
            ClusterTuning::default(),
            None,
        )
    }

    /// A cluster sharing one observability hub across every node: each job's
    /// span tree, the cross-node plan requests it triggers, and the peers'
    /// serve spans all land in the same flight recorder, linked by the job's
    /// trace id.  Snapshot with [`ClusterService::obs_snapshot`].
    pub fn with_observer(nodes: usize, config: ServiceConfig, hub: Arc<ObsHub>) -> Self {
        Self::start(
            nodes,
            config,
            Arc::new(LruPolicy),
            None,
            Some(hub),
            ClusterTuning::default(),
            None,
        )
    }

    /// [`ClusterService::with_observer`] on a shared fake clock — give the
    /// hub the same clock for fully deterministic cluster traces.
    pub fn with_observer_and_clock(
        nodes: usize,
        config: ServiceConfig,
        hub: Arc<ObsHub>,
        clock: Arc<FakeClock>,
    ) -> Self {
        Self::start(
            nodes,
            config,
            Arc::new(LruPolicy),
            Some(clock),
            Some(hub),
            ClusterTuning::default(),
            None,
        )
    }

    /// A cluster with explicit failure-detector timing.
    pub fn with_tuning(nodes: usize, config: ServiceConfig, tuning: ClusterTuning) -> Self {
        Self::start(nodes, config, Arc::new(LruPolicy), None, None, tuning, None)
    }

    /// The fault-tolerance test harness: a cluster on a shared fake clock
    /// with explicit detector `tuning` (usually [`ClusterTuning::fast`]) and
    /// a scripted [`FaultPlan`] — kills, wedges and frame perturbations fire
    /// exactly when the test advances the clock past their scheduled times.
    pub fn with_fault_plan(
        nodes: usize,
        config: ServiceConfig,
        clock: Arc<FakeClock>,
        tuning: ClusterTuning,
        plan: FaultPlan,
    ) -> Self {
        Self::start(nodes, config, Arc::new(LruPolicy), Some(clock), None, tuning, Some(plan))
    }

    /// [`ClusterService::with_fault_plan`] with an observability hub, so
    /// fault drills land suspect/failover records in the flight recorder.
    pub fn with_fault_plan_observed(
        nodes: usize,
        config: ServiceConfig,
        clock: Arc<FakeClock>,
        tuning: ClusterTuning,
        plan: FaultPlan,
        hub: Arc<ObsHub>,
    ) -> Self {
        Self::start(nodes, config, Arc::new(LruPolicy), Some(clock), Some(hub), tuning, Some(plan))
    }

    fn start(
        nodes: usize,
        config: ServiceConfig,
        policy: Arc<dyn EvictionPolicy>,
        clock: Option<Arc<FakeClock>>,
        obs: Option<Arc<ObsHub>>,
        tuning: ClusterTuning,
        fault_plan: Option<FaultPlan>,
    ) -> Self {
        assert!(nodes > 0, "a cluster needs at least one node");
        let comms = Communicator::<f64>::mesh(nodes);
        let shutting_down = Arc::new(AtomicBool::new(false));
        let probes: Vec<CommProbe> = comms.iter().map(Communicator::probe).collect();
        let control: Vec<ControlHandle<f64>> =
            comms.iter().map(Communicator::control_handle).collect();
        // One woven program serves every node's fetcher, fabric thread,
        // pacemaker and the supervisor: the obs aspect is stateless beyond
        // the hub, and cloning a woven program is an Arc bump.
        let obs_woven = obs.as_ref().map(|hub| {
            Weaver::new().with_aspect(Box::new(ObsServiceAspect::new(Arc::clone(hub)))).weave()
        });
        let cluster_clock = match &clock {
            Some(fake) => ServiceClock::Fake(Arc::clone(fake)),
            None => ServiceClock::real(),
        };
        let fault = fault_plan.map(|plan| Arc::new(plan.arm(nodes)));
        let now = cluster_clock.now();
        let memberships: Vec<Arc<Membership>> =
            (0..nodes).map(|r| Arc::new(Membership::new(r, nodes, tuning, now))).collect();
        let (supervisor_tx, supervisor_rx) = unbounded::<SupervisorMsg>();

        let mut services: Vec<Arc<KernelService>> = Vec::with_capacity(nodes);
        let mut fabrics = Vec::with_capacity(nodes);
        let mut pacemakers = Vec::with_capacity(nodes);
        for comm in comms {
            let rank = comm.rank();
            let pending = PendingReplies::new();
            let membership = Arc::clone(&memberships[rank]);
            let fetcher = ClusterFetcher {
                rank,
                handle: comm.control_handle(),
                pending: Arc::clone(&pending),
                membership: Arc::clone(&membership),
                clock: cluster_clock.clone(),
                shutting_down: Arc::clone(&shutting_down),
                obs_woven: obs_woven.clone(),
            };
            let cache = Arc::new(
                PlanCache::with_policy(
                    config.cache_shards,
                    config.cache_capacity,
                    Arc::clone(&policy),
                )
                .with_fetcher(Arc::new(fetcher)),
            );
            let pacemaker_handle = comm.control_handle();
            let fabric = Fabric {
                cache: Arc::clone(&cache),
                pending: Arc::clone(&pending),
                membership: Arc::clone(&membership),
                fault: fault.clone(),
                clock: cluster_clock.clone(),
                shutting_down: Arc::clone(&shutting_down),
                obs_woven: obs_woven.clone(),
            };
            fabrics.push(
                std::thread::Builder::new()
                    .name(format!("aohpc-fabric-{rank}"))
                    .spawn(move || fabric.run(comm))
                    .expect("spawn fabric thread"),
            );
            let service_clock = match &clock {
                Some(fake) => ServiceClock::Fake(Arc::clone(fake)),
                None => ServiceClock::real(),
            };
            let service =
                Arc::new(KernelService::start(config, service_clock, Some(cache), obs.clone()));
            // The node's stranded jobs flow to the supervisor; with the
            // supervisor gone (a kill racing teardown) the handle is failed
            // so nothing hangs.
            let sink_tx = supervisor_tx.clone();
            let sink: OrphanSink = Arc::new(move |orphan: OrphanedJob| {
                if let Err(send) =
                    sink_tx.send(SupervisorMsg::Orphan { from: rank, orphan: Box::new(orphan) })
                {
                    if let SupervisorMsg::Orphan { orphan, .. } = send.0 {
                        let error = JobError {
                            job: orphan.cell.job,
                            session: orphan.session,
                            kind: JobErrorKind::Abandoned,
                        };
                        orphan.cell.slot.complete(Err(error));
                    }
                }
            });
            service.install_orphan_sink(sink);
            services.push(service);

            let stop = Arc::new(AtomicBool::new(false));
            let ctx = PacemakerCtx {
                rank,
                stop: Arc::clone(&stop),
                handle: pacemaker_handle,
                membership,
                pending,
                fault: fault.clone(),
                clock: cluster_clock.clone(),
                supervisor_tx: supervisor_tx.clone(),
                obs_woven: obs_woven.clone(),
                beats: AtomicU64::new(0),
            };
            match &clock {
                Some(fake) => {
                    // The registration is permanent (the clock keeps it for
                    // its lifetime); the stop flag is the off switch.  The
                    // closure holds no node Arc, so shutdown's try_unwrap
                    // stays possible.
                    fake.on_advance(move || ctx.beat());
                    pacemakers.push(Pacemaker::FakeHook { stop });
                }
                None => {
                    let beat_every = tuning.heartbeat_every;
                    let thread_stop = Arc::clone(&stop);
                    let handle = std::thread::Builder::new()
                        .name(format!("aohpc-pacemaker-{rank}"))
                        .spawn(move || {
                            while !thread_stop.load(Ordering::SeqCst) {
                                ctx.beat();
                                // Sliced sleep so shutdown joins promptly.
                                let mut slept = Duration::ZERO;
                                while slept < beat_every {
                                    if thread_stop.load(Ordering::SeqCst) {
                                        return;
                                    }
                                    let slice = Duration::from_millis(5).min(beat_every - slept);
                                    std::thread::sleep(slice);
                                    slept += slice;
                                }
                            }
                        })
                        .expect("spawn pacemaker thread");
                    pacemakers.push(Pacemaker::Thread { stop, handle });
                }
            }
        }
        let supervisor = Supervisor {
            nodes: services.clone(),
            memberships: memberships.clone(),
            clock: cluster_clock.clone(),
            rx: supervisor_rx,
            obs_woven,
            sessions: HashMap::new(),
            inflight: Vec::new(),
        };
        let supervisor_handle = std::thread::Builder::new()
            .name("aohpc-failover".into())
            .spawn(move || supervisor.run())
            .expect("spawn failover supervisor");
        ClusterService {
            nodes: services,
            probes,
            control,
            fabrics,
            pacemakers,
            memberships,
            supervisor: Some(supervisor_handle),
            supervisor_tx: Some(supervisor_tx),
            fault,
            tuning,
            shutting_down,
            obs,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Direct access to one node's service (stats, completion streams, or
    /// node-local administration).
    pub fn node(&self, rank: usize) -> &KernelService {
        &self.nodes[rank]
    }

    /// The failure-detector timing this cluster runs with.
    pub fn tuning(&self) -> ClusterTuning {
        self.tuning
    }

    /// Rank `observer`'s failure-detector counters.
    pub fn membership_stats(&self, observer: usize) -> MembershipStats {
        self.memberships[observer].stats()
    }

    /// What rank `observer` currently believes about rank `subject`.
    pub fn node_state(&self, observer: usize, subject: usize) -> NodeState {
        self.memberships[observer].state_of(subject)
    }

    /// The incarnation rank `observer` currently believes rank `subject`
    /// runs (for `observer == subject`, the rank's own incarnation).
    /// Converged views agree on every rank's incarnation.
    pub fn incarnation(&self, observer: usize, subject: usize) -> u64 {
        self.memberships[observer].incarnation_of(subject)
    }

    /// The ranks `observer` considers eligible for plan ownership.
    pub fn live_view(&self, observer: usize) -> Vec<usize> {
        self.memberships[observer].live_view()
    }

    /// The armed fault schedule, when one was installed
    /// ([`ClusterService::with_fault_plan`]).
    pub fn fault_state(&self) -> Option<Arc<FaultState>> {
        self.fault.clone()
    }

    /// The node a tenant label is affine to: a stable hash, so every session
    /// a tenant opens lands on the same node and reuses its warm plans and
    /// scratches.
    pub fn home_node(&self, tenant: &str) -> usize {
        let mut hasher = DefaultHasher::new();
        tenant.hash(&mut hasher);
        (hasher.finish() % self.nodes.len() as u64) as usize
    }

    /// Open a session on the tenant's [`ClusterService::home_node`].
    pub fn open_session(&self, spec: SessionSpec) -> ClusterSessionId {
        let node = self.home_node(&spec.tenant);
        self.open_session_on(node, spec)
    }

    /// Open a session on an explicit node (placement override).
    pub fn open_session_on(&self, node: usize, spec: SessionSpec) -> ClusterSessionId {
        ClusterSessionId { node, session: self.nodes[node].open_session(spec) }
    }

    /// Submit one job under a cluster session (session-affine: runs on the
    /// session's node).  Semantics match [`KernelService::submit`].
    pub fn submit(&self, id: ClusterSessionId, spec: JobSpec) -> Result<JobHandle, SubmitError> {
        self.nodes[id.node].submit(id.session, spec)
    }

    /// Non-blocking submit; see [`KernelService::try_submit`].
    pub fn try_submit(
        &self,
        id: ClusterSessionId,
        spec: JobSpec,
    ) -> Result<JobHandle, SubmitError> {
        self.nodes[id.node].try_submit(id.session, spec)
    }

    /// Attach the session's completion stream on its node.
    pub fn completion_stream(&self, id: ClusterSessionId) -> Result<CompletionStream, SubmitError> {
        self.nodes[id.node].completion_stream(id.session)
    }

    /// Snapshot a cluster session's context.
    pub fn session(&self, id: ClusterSessionId) -> Option<SessionCtx> {
        self.nodes[id.node].session(id.session)
    }

    /// Close a cluster session; see [`KernelService::close_session`].
    pub fn close_session(&self, id: ClusterSessionId) -> Option<SessionMeter> {
        self.nodes[id.node].close_session(id.session)
    }

    /// Drain one session's reports on its node.
    pub fn drain_session(&self, id: ClusterSessionId) -> Vec<JobReport> {
        self.nodes[id.node].drain_session(id.session)
    }

    /// Drain every node (waiting for cluster-wide quiescence) and return all
    /// reports in node-major order (node 0's reports by job id, then node
    /// 1's, ...; job ids are node-local).
    pub fn drain(&self) -> Vec<JobReport> {
        self.nodes.iter().flat_map(|node| node.drain()).collect()
    }

    /// Per-node and cluster-aggregated plan-cache counters.  The
    /// compile-once-per-cluster invariant reads directly off the aggregate:
    /// `total.compiles` equals the number of distinct plans resolved anywhere
    /// in the cluster.
    pub fn cache_stats(&self) -> ClusterCacheStats {
        let per_node: Vec<PlanCacheStats> = self.nodes.iter().map(|n| n.cache_stats()).collect();
        let total = per_node.iter().fold(PlanCacheStats::default(), |acc, s| acc + *s);
        ClusterCacheStats { total, per_node }
    }

    /// Per-node and cluster-aggregated fabric counters (the control plane's
    /// request/reply traffic; send/receive totals balance once quiesced —
    /// heartbeats and gossip are metered separately as liveness frames).
    pub fn comm_stats(&self) -> ClusterCommStats {
        let per_node: Vec<CommStats> = self.probes.iter().map(CommProbe::stats).collect();
        let total = per_node.iter().fold(CommStats::default(), |acc, s| acc + *s);
        ClusterCommStats { total, per_node }
    }

    /// The shared observability hub, when one was installed.
    pub fn observer(&self) -> Option<Arc<ObsHub>> {
        self.obs.clone()
    }

    /// One cross-validated snapshot over the whole cluster: aggregated
    /// plan-cache and fabric counters, admission state summed across nodes,
    /// and the shared hub's job metrics and recorder state.  `None` without
    /// an installed observer.  At quiescence (after
    /// [`ClusterService::drain`]) [`validate`](ObsSnapshot::validate)
    /// returns no violations.
    pub fn obs_snapshot(&self) -> Option<ObsSnapshot> {
        let hub = self.obs.as_ref()?;
        let metrics = hub.metrics();
        let cache = self.cache_stats().total;
        let comm = self.comm_stats().total;
        let mut waiting = 0u64;
        let mut queued = 0u64;
        let mut queue_limit = 0u64;
        for node in &self.nodes {
            let stats = node.admission_stats();
            waiting += stats.waiting as u64;
            queued += stats.queued as u64;
            queue_limit += stats.queue_limit as u64;
        }
        Some(ObsSnapshot {
            cache: Some(CacheCounters {
                hits: cache.hits,
                misses: cache.misses,
                compiles: cache.compiles,
                fetches: cache.fetches,
                evictions: cache.evictions,
                collisions: cache.collisions,
                degraded_resolves: cache.degraded_resolves,
                lanes: cache.family.iter().map(|lane| (lane.hits, lane.misses)).collect(),
            }),
            comm: Some(CommCounters {
                messages_sent: comm.messages_sent,
                messages_received: comm.messages_received,
                bytes_sent: comm.bytes_sent,
                bytes_received: comm.bytes_received,
                control_sent: comm.control_sent,
                control_received: comm.control_received,
            }),
            admission: AdmissionCounters {
                waiting,
                queued,
                queue_limit,
                queue_wait: metrics.queue_wait_ns.snapshot(),
            },
            jobs: JobCounters {
                completed: metrics.jobs_completed.get(),
                failed: metrics.jobs_failed.get(),
                worker_busy_ns: metrics.worker_busy_ns.get(),
            },
            retained_spans: hub.recorder().len() as u64,
            dropped_spans: hub.recorder().dropped(),
        })
    }

    /// Clean shutdown: drain every node to quiescence (in-flight fetches
    /// need the fabric alive, in-flight replays the supervisor), stop the
    /// pacemakers, stop the failover supervisor, stop the fabric threads,
    /// then stop every node's workers.  Implied by `Drop`.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        if self.fabrics.is_empty() {
            return;
        }
        // Quiesce the data path first: a worker blocked on a plan fetch
        // needs its peer's fabric thread to still be serving, and a replayed
        // orphan resolves through the still-running supervisor.
        for node in &self.nodes {
            let _ = node.drain();
        }
        // New fetches decline from here on (degrading to local compiles),
        // and a wedged fabric un-parks so teardown cannot hang on it.
        self.shutting_down.store(true, Ordering::SeqCst);
        // Silence the pacemakers: no more heartbeats, sweeps or scripted
        // kills.  Fake-clock hooks stay registered but inert.
        for pacemaker in &self.pacemakers {
            pacemaker.stop();
        }
        for pacemaker in self.pacemakers.drain(..) {
            pacemaker.join();
        }
        // The supervisor finishes every in-flight replay before exiting, so
        // no orphan's handle is left unresolved.
        if let Some(tx) = self.supervisor_tx.take() {
            let _ = tx.send(SupervisorMsg::Stop);
        }
        if let Some(handle) = self.supervisor.take() {
            let _ = handle.join();
        }
        for (rank, handle) in self.control.iter().enumerate() {
            let _ = handle.send(rank, TAG_SHUTDOWN, Vec::new());
        }
        for fabric in self.fabrics.drain(..) {
            let _ = fabric.join();
        }
        // Worker pools stop when the services drop; doing it explicitly here
        // keeps shutdown observable and ordered.  The supervisor (the only
        // other Arc holder) is joined, so the unwrap normally succeeds; a
        // straggling clone defers to the Arc's own drop (KernelService shuts
        // down on Drop).
        for node in self.nodes.drain(..) {
            match Arc::try_unwrap(node) {
                Ok(service) => service.shutdown(),
                Err(arc) => drop(arc),
            }
        }
    }
}

impl Drop for ClusterService {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

impl fmt::Debug for ClusterService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClusterService")
            .field("nodes", &self.nodes.len())
            .field("cache", &self.cache_stats().total)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owners_are_deterministic_and_in_range() {
        let p = FamilyProgram::from(aohpc_kernel::StencilProgram::jacobi_5pt());
        for ranks in 1..=7usize {
            let live: Vec<usize> = (0..ranks).collect();
            for nx in [4usize, 8, 16] {
                let key = PlanKey::of(&p, aohpc_env::Extent::new2d(nx, nx), OptLevel::Full);
                let owner = rendezvous_owner(key_hash(&key), &live);
                assert!(owner < ranks);
                assert_eq!(owner, rendezvous_owner(key_hash(&key), &live), "stable");
            }
        }
    }

    #[test]
    fn reply_slot_timeout_returns_none() {
        let slot = ReplySlot::new();
        assert_eq!(slot.wait(Duration::from_millis(5)), None);
        slot.resolve(Some(vec![1]));
        assert_eq!(slot.wait(Duration::from_millis(5)), Some(vec![1]));
        // Resolve-at-most-once: a second resolve cannot overwrite.
        let slot = ReplySlot::new();
        slot.resolve(None);
        slot.resolve(Some(vec![2]));
        assert_eq!(slot.wait(Duration::from_millis(5)), None);
    }

    #[test]
    fn pending_replies_route_and_fail() {
        let pending = PendingReplies::new();
        let (id_a, slot_a) = pending.register(1);
        let (id_b, _slot_b) = pending.register(2);
        assert_ne!(id_a, id_b);
        pending.take(id_a).expect("registered").resolve(Some(vec![7]));
        assert_eq!(slot_a.wait(Duration::from_millis(5)), Some(vec![7]));
        assert!(pending.take(id_a).is_none(), "taken slots leave the router");
        pending.fail_all();
        assert!(pending.take(id_b).is_none());
    }

    #[test]
    fn pending_replies_fail_only_the_dead_ranks_slots() {
        let pending = PendingReplies::new();
        let (id_dead, slot_dead) = pending.register(3);
        let (id_live, slot_live) = pending.register(1);
        pending.fail_rank(3);
        assert_eq!(slot_dead.wait(Duration::from_millis(5)), None, "failed immediately");
        assert!(pending.take(id_dead).is_none(), "failed slots leave the router");
        // The slot aimed at the live rank is untouched and still routable.
        pending.take(id_live).expect("still registered").resolve(Some(vec![9]));
        assert_eq!(slot_live.wait(Duration::from_millis(5)), Some(vec![9]));
    }

    #[test]
    fn suspect_payload_roundtrips() {
        for (state, byte_state) in
            [(NodeState::Alive, 0u8), (NodeState::Suspect, 1), (NodeState::Dead, 2)]
        {
            let t = Transition { subject: 5, to: state, incarnation: 7 };
            let bytes = suspect_payload(&t);
            assert_eq!(bytes.len(), 17);
            assert_eq!(bytes[8], byte_state);
            assert_eq!(decode_suspect(&bytes), Some((5, state, 7)));
        }
        assert_eq!(decode_suspect(&[0; 16]), None, "short payload rejected");
        let mut bad =
            suspect_payload(&Transition { subject: 1, to: NodeState::Suspect, incarnation: 0 });
        bad[8] = 9;
        assert_eq!(decode_suspect(&bad), None, "unknown state byte rejected");
    }
}
