//! The kernel-execution service: admission, queue, worker pool, results.
//!
//! [`KernelService`] owns a [`PlanCache`], a session registry and a pool of
//! worker threads draining one bounded MPMC job queue.  A submission flows:
//!
//! 1. **Admission** — the session must exist and be active and the spec must
//!    be well-formed (fatal rejections, returned as [`SubmitError`]s).  A
//!    full per-session quota or a full global queue is *not* fatal: it is
//!    **backpressure**.  [`KernelService::try_submit`] reports it immediately
//!    as [`SubmitError::WouldBlock`] / [`SubmitError::QueueFull`];
//!    [`KernelService::submit_timeout`] (and [`KernelService::submit`], which
//!    uses the configured default deadline) parks the caller until capacity
//!    frees or the deadline passes.
//! 2. **Queue** — accepted jobs carry a shared [`JobCell`](crate::job) onto
//!    the bounded crossbeam channel; any idle worker picks them up (work
//!    stealing, no per-worker queues).  The admission bound guarantees the
//!    channel never overflows.
//! 3. **Execution** — the worker claims the cell (losing the claim means the
//!    job was [cancelled](JobHandle::cancel)), resolves the job's primary
//!    plan through the shared cache (attributing the hit/miss to the job),
//!    then drives the existing `runtime::execute` + `IrStencilApp` path with
//!    the cache installed as the app's
//!    [`PlanSource`](aohpc_kernel::PlanSource) and the job's live
//!    [`ProgressNotifier`](aohpc_runtime::ProgressNotifier) installed in the
//!    run config.
//! 4. **Results** — the job **resolves exactly once**: its [`JobHandle`]
//!    completes (report or [`JobError`]), the session's
//!    [`CompletionStream`] receives the outcome in submission order, and —
//!    for the synchronous path — the [`JobReport`] is recorded so
//!    [`KernelService::drain`] / [`KernelService::drain_session`] keep
//!    working exactly as before.  The synchronous drains are now thin
//!    wrappers over the same completion plumbing: they wait for the pending
//!    count the resolution paths settle.

use crate::cache::{PlanCache, PlanCacheStats, PlanOrigin};
use crate::job::{JobCell, JobError, JobErrorKind, JobHandle, JobId, JobReport, JobSpec};
use crate::session::{
    CompletionStream, SessionCtx, SessionId, SessionMeter, SessionSpec, StreamState,
};
use aohpc_aop::{attr, names, JoinPointKind, Weaver, WovenProgram};
use aohpc_dsl::{
    new_field_sink, DslSystem, PairForce, ParticleApp, ParticleSystem, SGridSystem,
    UsGridJacobiApp, UsGridSystem, UsUpdate,
};
use aohpc_env::Extent;
use aohpc_kernel::{
    new_stencil_field_sink, FamilyArtifact, HeteroDispatcher, IrStencilApp, ScratchPool,
    ScratchPoolStats, SpecializationId,
};
use aohpc_obs::{
    push_context, AdmissionCounters, CacheCounters, Histogram, JobCounters, ObsHub, ObsRunAspect,
    ObsServiceAspect, ObsSnapshot, RunFinisher,
};
use aohpc_runtime::{execute, CostModel, MpiAspect, OmpAspect, RunConfig, Topology};
use aohpc_testalloc::sync::FakeClock;
use aohpc_workloads::{checksum, GridLayout, ParticleSize, Scale};
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use serde::Serialize;
use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Sizing of a [`KernelService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Worker threads draining the queue.  `0` is admission-only mode: jobs
    /// queue but never execute (used by tests to pin in-flight counts).
    pub workers: usize,
    /// Shards of the plan cache.
    pub cache_shards: usize,
    /// Total plan-cache capacity (entries).
    pub cache_capacity: usize,
    /// Maximum jobs one session may have in flight; further submissions are
    /// backpressured ([`SubmitError::WouldBlock`] from `try_submit`, a
    /// bounded wait from `submit` / `submit_timeout`).
    pub max_in_flight_per_session: usize,
    /// Maximum jobs admitted but not yet picked up by a worker, across all
    /// sessions — the depth of the bounded admission queue.
    pub max_queued_jobs: usize,
    /// How long a plain [`KernelService::submit`] waits for capacity before
    /// giving up with the backpressure error.  `Duration::ZERO` makes
    /// `submit` behave exactly like [`KernelService::try_submit`].
    pub admission_timeout: Duration,
    /// Whether completed [`JobReport`]s are retained for the synchronous
    /// [`KernelService::drain`] / [`KernelService::drain_session`] path.
    /// Handle/stream-only deployments can switch this off so an undrained
    /// service does not accumulate reports without bound.
    pub retain_reports: bool,
    /// Maximum cross-job batch-fusion width (`0` or `1` disables fusion, the
    /// default).  When ≥ 2, a worker that dequeues a job drains up to
    /// `batch_fusion - 1` further *compatible* queued jobs (same stencil
    /// geometry, serial topology — see the [`fuse`](crate::service) driver)
    /// and runs the whole batch as one fused sweep: one traversal of the
    /// shared block structure executes every member's tape, amortizing
    /// gather/scatter and dispatch across the batch.  Reports, checksums and
    /// completion streams are bit-identical to unfused execution; each
    /// member's [`JobReport::fusion`](crate::JobReport) records its batch
    /// provenance.
    pub batch_fusion: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            cache_shards: 8,
            cache_capacity: 64,
            max_in_flight_per_session: 32,
            max_queued_jobs: 1024,
            admission_timeout: Duration::from_secs(30),
            retain_reports: true,
            batch_fusion: 0,
        }
    }
}

impl ServiceConfig {
    /// Sizing for an evaluation [`Scale`].
    pub fn for_scale(scale: Scale) -> Self {
        ServiceConfig { workers: scale.service_workers(), ..Default::default() }
    }

    /// One worker per task of a [`Topology`] (the service-side analogue of
    /// "one task per core").
    pub fn for_topology(topology: &Topology) -> Self {
        ServiceConfig { workers: topology.total_tasks(), ..Default::default() }
    }

    /// Set the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Set the plan-cache geometry.
    pub fn with_cache(mut self, shards: usize, capacity: usize) -> Self {
        self.cache_shards = shards;
        self.cache_capacity = capacity;
        self
    }

    /// Set the per-session in-flight quota.
    pub fn with_quota(mut self, max_in_flight: usize) -> Self {
        self.max_in_flight_per_session = max_in_flight;
        self
    }

    /// Set the bounded admission queue's depth.
    pub fn with_queue_bound(mut self, max_queued: usize) -> Self {
        self.max_queued_jobs = max_queued.max(1);
        self
    }

    /// Set how long a plain `submit` waits under backpressure.
    pub fn with_admission_timeout(mut self, timeout: Duration) -> Self {
        self.admission_timeout = timeout;
        self
    }

    /// Enable or disable report retention for the synchronous drain path.
    pub fn with_report_retention(mut self, retain: bool) -> Self {
        self.retain_reports = retain;
        self
    }

    /// Enable cross-job batch fusion up to `width` members per batch
    /// (clamped to the kernel layer's
    /// [`MAX_FUSION_WIDTH`](aohpc_kernel::MAX_FUSION_WIDTH); `0` / `1`
    /// disables fusion).
    pub fn with_batch_fusion(mut self, width: usize) -> Self {
        self.batch_fusion = width.min(aohpc_kernel::MAX_FUSION_WIDTH);
        self
    }
}

/// Why a submission was refused.
///
/// [`SubmitError::UnknownSession`], [`SubmitError::SessionClosed`],
/// [`SubmitError::InvalidJob`] and [`SubmitError::ShuttingDown`] are fatal —
/// retrying cannot help.  [`SubmitError::WouldBlock`] and
/// [`SubmitError::QueueFull`] are **backpressure**: capacity is momentarily
/// exhausted and a later retry (or a blocking
/// [`KernelService::submit_timeout`]) can succeed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// No session with this id was ever opened.
    UnknownSession(SessionId),
    /// The session has been closed.
    SessionClosed(SessionId),
    /// The session is at its in-flight quota; admitting now would block.
    WouldBlock {
        /// The session at quota.
        session: SessionId,
        /// The configured limit.
        limit: usize,
    },
    /// The global admission queue is at its bound.
    QueueFull {
        /// The configured queue depth.
        limit: usize,
    },
    /// The spec itself is malformed (reason inside).
    InvalidJob(String),
    /// The service is shutting down and accepts no further work.
    ShuttingDown,
}

impl SubmitError {
    /// Whether the error is backpressure (retryable) rather than fatal.
    pub fn is_backpressure(&self) -> bool {
        matches!(self, SubmitError::WouldBlock { .. } | SubmitError::QueueFull { .. })
    }
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::UnknownSession(id) => write!(f, "unknown session {id}"),
            SubmitError::SessionClosed(id) => write!(f, "session {id} is closed"),
            SubmitError::WouldBlock { session, limit } => {
                write!(
                    f,
                    "session {session} is at its in-flight quota ({limit}); admission would block"
                )
            }
            SubmitError::QueueFull { limit } => {
                write!(f, "the admission queue is full ({limit} jobs queued)")
            }
            SubmitError::InvalidJob(reason) => write!(f, "invalid job: {reason}"),
            SubmitError::ShuttingDown => write!(f, "the service is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A batch submission that was cut short: the accepted prefix keeps running,
/// and this error says exactly where admission stopped and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchError {
    /// Ids of the specs accepted before the rejection (in submission order).
    pub accepted: Vec<JobId>,
    /// Index (into the submitted `Vec`) of the rejected spec.
    pub index: usize,
    /// Why that spec was rejected.
    pub error: SubmitError,
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "batch stopped at spec {} after accepting {} jobs: {}",
            self.index,
            self.accepted.len(),
            self.error
        )
    }
}

impl std::error::Error for BatchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// Point-in-time admission/backpressure counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct AdmissionStats {
    /// Submitters currently parked waiting for capacity.
    pub waiting: usize,
    /// Jobs admitted but not yet picked up by a worker.
    pub queued: usize,
    /// The configured queue depth ([`ServiceConfig::max_queued_jobs`]).
    pub queue_limit: usize,
    /// Median queue wait (admission to worker pickup) across finished jobs,
    /// in nanoseconds — a power-of-two-bucket upper-bound estimate, 0 before
    /// the first job is picked up.
    pub queue_wait_p50_ns: u64,
    /// 99th-percentile queue wait across finished jobs, in nanoseconds.
    pub queue_wait_p99_ns: u64,
}

/// The clock admission deadlines are measured on: the wall clock in
/// production, a test-controlled [`FakeClock`] under the deterministic
/// harness (see [`KernelService::with_fake_clock`]).
pub(crate) enum ServiceClock {
    Real(Instant),
    Fake(Arc<FakeClock>),
}

impl Clone for ServiceClock {
    fn clone(&self) -> Self {
        match self {
            ServiceClock::Real(start) => ServiceClock::Real(*start),
            ServiceClock::Fake(clock) => ServiceClock::Fake(Arc::clone(clock)),
        }
    }
}

impl ServiceClock {
    pub(crate) fn real() -> Self {
        ServiceClock::Real(Instant::now())
    }
}

impl ServiceClock {
    pub(crate) fn now(&self) -> Duration {
        match self {
            ServiceClock::Real(start) => start.elapsed(),
            ServiceClock::Fake(clock) => clock.now(),
        }
    }

    fn is_fake(&self) -> bool {
        matches!(self, ServiceClock::Fake(_))
    }
}

/// When parked on a fake clock, re-check at this real cadence as a safety
/// net; the primary wake-up is the clock's `on_advance` hook bumping the
/// capacity epoch.
const FAKE_CLOCK_WAIT_SLICE: Duration = Duration::from_millis(100);

/// The capacity condition submitters park on: an epoch bumped (and
/// broadcast) whenever queue or quota capacity may have changed — a worker
/// dequeued, a job completed or was cancelled, a session closed, the fake
/// clock advanced, the service began shutting down.
pub(crate) struct CapacitySignal {
    epoch: StdMutex<u64>,
    cv: Condvar,
    waiting: AtomicUsize,
}

impl CapacitySignal {
    fn new() -> Arc<Self> {
        Arc::new(CapacitySignal {
            epoch: StdMutex::new(0),
            cv: Condvar::new(),
            waiting: AtomicUsize::new(0),
        })
    }

    pub(crate) fn bump(&self) {
        let mut epoch = self.epoch.lock().unwrap_or_else(|p| p.into_inner());
        *epoch += 1;
        drop(epoch);
        self.cv.notify_all();
    }

    fn current(&self) -> u64 {
        *self.epoch.lock().unwrap_or_else(|p| p.into_inner())
    }
}

pub(crate) struct Queued {
    pub(crate) cell: Arc<JobCell>,
    pub(crate) spec: JobSpec,
    /// When admission accepted the job (on the service clock), so the worker
    /// that dequeues it can meter the queue-wait latency.
    pub(crate) admitted_at: Duration,
}

/// A job stranded on a killed node, handed to the failover supervisor for
/// replay on a survivor (see [`KernelService::kill_for_failover`]).
pub(crate) struct OrphanedJob {
    /// The session the job was admitted under on the dead node.
    pub(crate) session: SessionId,
    /// The full spec, so the replay is the same work.
    pub(crate) spec: JobSpec,
    /// The original cell: the supervisor resolves its slot with the replay's
    /// rewritten report, so the submitter's handle settles exactly once.
    pub(crate) cell: Arc<JobCell>,
    /// Progress the dead node had made (the checkpoint watermark; zeros for
    /// jobs still queued at kill time).
    pub(crate) watermark: aohpc_runtime::Progress,
}

/// Where a killed node's orphans go: installed per node by the cluster's
/// failover supervisor, absent on standalone services (orphaning then
/// degrades to abandonment so every handle still resolves).
pub(crate) type OrphanSink = Arc<dyn Fn(OrphanedJob) + Send + Sync>;

pub(crate) struct Inner {
    pub(crate) config: ServiceConfig,
    pub(crate) cache: Arc<PlanCache>,
    /// Execution-scratch recycling across jobs: each job's tasks check their
    /// tape register files out of this pool and the task-context drop returns
    /// them, so a worker's steady-state jobs run on warm buffers.
    pub(crate) scratch: Arc<ScratchPool>,
    pub(crate) sessions: Mutex<HashMap<SessionId, SessionCtx>>,
    /// Per-session completion streams (attached lazily; see
    /// [`KernelService::completion_stream`]).  Lock order: `sessions` may be
    /// held while taking this lock, never the reverse.
    streams: Mutex<HashMap<SessionId, Arc<StreamState>>>,
    pub(crate) results: Mutex<Vec<JobReport>>,
    pub(crate) pending: StdMutex<u64>,
    pub(crate) idle: Condvar,
    pub(crate) capacity: Arc<CapacitySignal>,
    /// Jobs admitted but not yet dequeued by a worker.  Checked and
    /// incremented under the `sessions` lock, so it never exceeds
    /// `config.max_queued_jobs` — which is also the channel's capacity, so
    /// sends never block.
    queued: AtomicUsize,
    next_session: AtomicU64,
    next_job: AtomicU64,
    /// Set by shutdown/Drop: workers abandon queued-but-unstarted jobs
    /// (resolving their handles with [`JobErrorKind::Abandoned`]) instead of
    /// executing the backlog.
    shutting_down: AtomicBool,
    /// Fail-stop switch ([`KernelService::kill_for_failover`]): admissions
    /// are rejected and queued-but-unstarted jobs are orphaned to the
    /// failover sink instead of executed.  Jobs a worker already started
    /// complete normally — the kill boundary is the dequeue, matching the
    /// superstep-checkpoint failure model.
    killed: AtomicBool,
    /// The failover supervisor's orphan intake, when this node runs inside a
    /// cluster with fault tolerance enabled.
    orphan_sink: Mutex<Option<OrphanSink>>,
    pub(crate) clock: ServiceClock,
    /// Queue-wait latency distribution, always on (recording is a handful of
    /// relaxed atomics) — backs the `admission_stats` p50/p99 whether or not
    /// an observer is installed.
    pub(crate) queue_wait: Histogram,
    /// The observability hub, when one was installed at construction
    /// ([`KernelService::with_observer`]).
    pub(crate) obs: Option<Arc<ObsHub>>,
    /// The service plane's own woven program: carries the obs aspect around
    /// `Service::execute_spec` and `PlanCache::resolve`.  Empty — and the
    /// dispatch sites skipped entirely — when no hub is installed, so the
    /// unobserved path pays nothing.
    pub(crate) service_woven: WovenProgram,
}

impl Inner {
    /// The session's stream state, if one is attached *and* has a live
    /// consumer — callers skip building the outcome (a report clone on the
    /// completion hot path) entirely otherwise.
    pub(crate) fn consumer_stream(&self, session: SessionId) -> Option<Arc<StreamState>> {
        self.streams.lock().get(&session).filter(|s| s.has_consumers()).cloned()
    }

    /// Bookkeeping for taking one job off the bounded channel outside the
    /// worker loop (the fusion drain, and the fusion unit tests): free the
    /// queue slot and wake backpressured submitters.
    pub(crate) fn note_dequeued(&self) {
        self.queued.fetch_sub(1, Ordering::SeqCst);
        self.capacity.bump();
    }

    /// Deliver an outcome to the session's stream, if a consumer is
    /// attached.
    fn push_stream_outcome(&self, session: SessionId, job: JobId, outcome: crate::job::JobOutcome) {
        if let Some(stream) = self.consumer_stream(session) {
            stream.resolve(job, outcome);
        }
    }

    /// Settle a job [`JobHandle::cancel`] has claimed: resolve the handle,
    /// deliver the stream outcome, release the quota slot and wake both the
    /// drains and any backpressured submitters.  The bounded-queue slot is
    /// *not* released here — the message stays in the channel as a tombstone
    /// until a worker dequeues it (see [`JobHandle::cancel`]).
    pub(crate) fn settle_cancelled(&self, cell: &JobCell) {
        let error =
            JobError { job: cell.job, session: cell.session, kind: JobErrorKind::Cancelled };
        cell.slot.complete(Err(error));
        self.push_stream_outcome(cell.session, cell.job, Err(error));
        if let Some(ctx) = self.sessions.lock().get_mut(&cell.session) {
            ctx.note_cancelled();
        }
        let mut pending = self.pending.lock().expect("pending lock");
        *pending -= 1;
        drop(pending);
        self.idle.notify_all();
        self.capacity.bump();
    }
}

/// A multi-tenant, concurrent kernel-execution service.
///
/// See the [module docs](self) for the submission pipeline.  Dropping the
/// service (or calling [`KernelService::shutdown`]) closes the queue and
/// joins the workers; queued-but-unstarted jobs are abandoned — their
/// handles and streams resolve with [`JobErrorKind::Abandoned`] — so call
/// [`KernelService::drain`] (or wait the handles) first if their results
/// matter.
pub struct KernelService {
    pub(crate) inner: Arc<Inner>,
    queue: Option<Sender<Queued>>,
    // Kept so `submit` stays valid in admission-only mode (0 workers), so
    // shutdown can abandon a backlog no worker will ever drain, and so the
    // batch-fusion unit tests can dequeue deterministically.
    pub(crate) queue_rx: Receiver<Queued>,
    workers: Vec<JoinHandle<()>>,
}

impl KernelService {
    /// Start a service with the given sizing (wall clock).
    pub fn new(config: ServiceConfig) -> Self {
        Self::start(config, ServiceClock::real(), None, None)
    }

    /// Start a service with an observability hub installed: every job gets a
    /// span tree (job → resolve/execute → superstep → block) in the hub's
    /// flight recorder, and the hub's [`Metrics`](aohpc_obs::Metrics) unify
    /// the queue-wait / resolve / execute latency distributions and job
    /// counters.  Snapshot with [`KernelService::obs_snapshot`], export the
    /// recorder with [`aohpc_obs::chrome_trace_json`].
    pub fn with_observer(config: ServiceConfig, hub: Arc<ObsHub>) -> Self {
        Self::start(config, ServiceClock::real(), None, Some(hub))
    }

    /// [`KernelService::with_observer`] on a test-controlled [`FakeClock`]:
    /// give the hub the same clock (`ObsHub::with_clock`) and both admission
    /// deadlines *and* span timestamps become deterministic.
    pub fn with_observer_and_clock(
        config: ServiceConfig,
        hub: Arc<ObsHub>,
        clock: Arc<FakeClock>,
    ) -> Self {
        Self::start(config, ServiceClock::Fake(clock), None, Some(hub))
    }

    /// Start a service whose admission deadlines run on a test-controlled
    /// [`FakeClock`]: `submit_timeout` deadlines only pass when the test
    /// calls [`FakeClock::advance`], which also wakes parked submitters so
    /// timeout tests signal instead of sleeping.
    pub fn with_fake_clock(config: ServiceConfig, clock: Arc<FakeClock>) -> Self {
        Self::start(config, ServiceClock::Fake(clock), None, None)
    }

    /// Start a service around an externally built plan cache — a cache with
    /// a non-default [`EvictionPolicy`](crate::cache::EvictionPolicy) or a
    /// chained [`PlanFetcher`](crate::cache::PlanFetcher) (how each
    /// [`ClusterService`](crate::cluster::ClusterService) node joins the
    /// cluster-wide plan-sharing path).  The `cache_shards` /
    /// `cache_capacity` fields of `config` are ignored; the cache's own
    /// geometry governs.
    pub fn with_plan_cache(config: ServiceConfig, cache: Arc<PlanCache>) -> Self {
        Self::start(config, ServiceClock::real(), Some(cache), None)
    }

    pub(crate) fn start(
        config: ServiceConfig,
        clock: ServiceClock,
        cache: Option<Arc<PlanCache>>,
        obs: Option<Arc<ObsHub>>,
    ) -> Self {
        // Normalize directly-constructed configs (the builder already
        // clamps): a zero queue bound would make every admission QueueFull
        // forever.
        let config = ServiceConfig { max_queued_jobs: config.max_queued_jobs.max(1), ..config };
        let cache = cache.unwrap_or_else(|| {
            Arc::new(PlanCache::new(config.cache_shards, config.cache_capacity))
        });
        // Enough idle scratches for every worker to run a hybrid-topology job
        // (a few tasks each) without dropping warm buffers on release.
        let scratch = ScratchPool::new(config.workers.max(1) * 4);
        let capacity = CapacitySignal::new();
        if let ServiceClock::Fake(fake) = &clock {
            let capacity = Arc::clone(&capacity);
            fake.on_advance(move || capacity.bump());
        }
        // With a hub installed the service's own join points dispatch through
        // this woven program; without one it stays empty and the dispatch
        // sites are gated off before building any attributes.
        let service_woven = match &obs {
            Some(hub) => {
                Weaver::new().with_aspect(Box::new(ObsServiceAspect::new(Arc::clone(hub)))).weave()
            }
            None => Weaver::new().weave(),
        };
        let inner = Arc::new(Inner {
            config,
            cache,
            scratch,
            sessions: Mutex::new(HashMap::new()),
            streams: Mutex::new(HashMap::new()),
            results: Mutex::new(Vec::new()),
            pending: StdMutex::new(0),
            idle: Condvar::new(),
            capacity,
            queued: AtomicUsize::new(0),
            next_session: AtomicU64::new(0),
            next_job: AtomicU64::new(0),
            shutting_down: AtomicBool::new(false),
            killed: AtomicBool::new(false),
            orphan_sink: Mutex::new(None),
            clock,
            queue_wait: Histogram::new(),
            obs,
            service_woven,
        });
        let (tx, rx) = bounded::<Queued>(config.max_queued_jobs.max(1));
        let workers = (0..config.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("aohpc-service-{i}"))
                    .spawn(move || {
                        while let Ok(queued) = rx.recv() {
                            // The queue slot frees as soon as the job is
                            // dequeued; tell backpressured submitters.
                            inner.note_dequeued();
                            if inner.killed.load(Ordering::SeqCst) {
                                // Fail-stop: anything dequeued after the kill
                                // goes to the failover sink, never a worker.
                                orphan_one(&inner, queued);
                            } else if inner.shutting_down.load(Ordering::Relaxed) {
                                abandon_one(&inner, &queued.cell);
                            } else if inner.config.batch_fusion >= 2 {
                                // Batch fusion: drain compatible backlog
                                // behind this job and run it as one fused
                                // sweep.  An incompatible job stops the
                                // drain and becomes the head of the next
                                // one, so it still gets a chance to fuse
                                // with whatever queued behind it.
                                let mut head = Some(queued);
                                while let Some(first) = head.take() {
                                    let (batch, stashed) = drain_batch(&inner, &rx, first);
                                    crate::fuse::run_batch(&inner, batch);
                                    head = stashed;
                                }
                            } else {
                                run_one(&inner, queued);
                            }
                        }
                    })
                    .expect("spawn service worker")
            })
            .collect();
        KernelService { inner, queue: Some(tx), queue_rx: rx, workers }
    }

    /// A service sized for an evaluation [`Scale`].
    pub fn for_scale(scale: Scale) -> Self {
        Self::new(ServiceConfig::for_scale(scale))
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Plan-cache counters.
    pub fn cache_stats(&self) -> PlanCacheStats {
        self.inner.cache.stats()
    }

    /// Execution-scratch pool counters (created / reused / idle).
    pub fn scratch_stats(&self) -> ScratchPoolStats {
        self.inner.scratch.stats()
    }

    /// Admission/backpressure counters (parked submitters, queue depth) plus
    /// the queue-wait latency quantiles over all jobs workers have picked up.
    pub fn admission_stats(&self) -> AdmissionStats {
        AdmissionStats {
            waiting: self.inner.capacity.waiting.load(Ordering::SeqCst),
            queued: self.inner.queued.load(Ordering::SeqCst),
            queue_limit: self.inner.config.max_queued_jobs,
            queue_wait_p50_ns: self.inner.queue_wait.quantile(0.50),
            queue_wait_p99_ns: self.inner.queue_wait.quantile(0.99),
        }
    }

    /// The installed observability hub, if any.
    pub fn observer(&self) -> Option<Arc<ObsHub>> {
        self.inner.obs.clone()
    }

    /// One cross-validated snapshot over the service's stat islands: plan
    /// cache, admission queue, and the hub's job metrics and recorder state.
    /// `None` without an installed observer.  At quiescence (after a
    /// [`KernelService::drain`]) the snapshot's
    /// [`validate`](ObsSnapshot::validate) returns no violations; note the
    /// job/admission numbers are **hub-wide**, so on a hub shared across a
    /// cluster use [`ClusterService::obs_snapshot`](crate::ClusterService)
    /// instead of per-node snapshots.
    pub fn obs_snapshot(&self) -> Option<ObsSnapshot> {
        let hub = self.inner.obs.as_ref()?;
        let metrics = hub.metrics();
        let cache = self.cache_stats();
        Some(ObsSnapshot {
            cache: Some(CacheCounters {
                hits: cache.hits,
                misses: cache.misses,
                compiles: cache.compiles,
                fetches: cache.fetches,
                evictions: cache.evictions,
                collisions: cache.collisions,
                degraded_resolves: cache.degraded_resolves,
                lanes: cache.family.iter().map(|lane| (lane.hits, lane.misses)).collect(),
            }),
            comm: None,
            admission: AdmissionCounters {
                waiting: self.inner.capacity.waiting.load(Ordering::SeqCst) as u64,
                queued: self.inner.queued.load(Ordering::SeqCst) as u64,
                queue_limit: self.inner.config.max_queued_jobs as u64,
                queue_wait: metrics.queue_wait_ns.snapshot(),
            },
            jobs: JobCounters {
                completed: metrics.jobs_completed.get(),
                failed: metrics.jobs_failed.get(),
                worker_busy_ns: metrics.worker_busy_ns.get(),
            },
            retained_spans: hub.recorder().len() as u64,
            dropped_spans: hub.recorder().dropped(),
        })
    }

    /// The shared plan cache (e.g. to install into an out-of-band app).
    pub fn plan_cache(&self) -> Arc<PlanCache> {
        Arc::clone(&self.inner.cache)
    }

    /// Open a session for a tenant.
    pub fn open_session(&self, spec: SessionSpec) -> SessionId {
        self.open(spec, None)
    }

    /// Open a child session nested under `parent` (its accounting stays
    /// separate; the link records provenance).
    pub fn open_child_session(
        &self,
        parent: SessionId,
        spec: SessionSpec,
    ) -> Result<SessionId, SubmitError> {
        if !self.inner.sessions.lock().contains_key(&parent) {
            return Err(SubmitError::UnknownSession(parent));
        }
        Ok(self.open(spec, Some(parent)))
    }

    fn open(&self, spec: SessionSpec, parent: Option<SessionId>) -> SessionId {
        let id = self.inner.next_session.fetch_add(1, Ordering::Relaxed) + 1;
        self.inner.sessions.lock().insert(id, SessionCtx::create(id, spec, parent));
        id
    }

    /// Snapshot a session's context (None if never opened).
    pub fn session(&self, id: SessionId) -> Option<SessionCtx> {
        self.inner.sessions.lock().get(&id).cloned()
    }

    /// Close a session: further submissions are rejected, in-flight jobs
    /// finish normally.  Returns the final meter (None if never opened).
    /// Submitters parked on the session's quota wake and fail with
    /// [`SubmitError::SessionClosed`].
    pub fn close_session(&self, id: SessionId) -> Option<SessionMeter> {
        let meter = {
            let mut sessions = self.inner.sessions.lock();
            let ctx = sessions.get_mut(&id)?;
            ctx.close();
            *ctx.meter()
        };
        self.inner.capacity.bump();
        Some(meter)
    }

    /// Attach (or re-obtain) the session's [`CompletionStream`]: jobs
    /// submitted to the session **from this point on** are delivered on it
    /// in submission order, as `Ok(JobReport)` or `Err(JobError)` for
    /// cancelled/abandoned jobs.  Handles from repeated calls share one
    /// buffer — each outcome is delivered to exactly one consumer.
    pub fn completion_stream(&self, session: SessionId) -> Result<CompletionStream, SubmitError> {
        if !self.inner.sessions.lock().contains_key(&session) {
            return Err(SubmitError::UnknownSession(session));
        }
        let state =
            self.inner.streams.lock().entry(session).or_insert_with(StreamState::new).clone();
        Ok(CompletionStream::new(session, state))
    }

    /// Submit one job under a session, waiting up to the configured
    /// [`ServiceConfig::admission_timeout`] for quota/queue capacity.
    ///
    /// Returns a [`JobHandle`] that resolves exactly once with the job's
    /// outcome — poll it, block on [`JobHandle::wait`], `.await` it, or
    /// ignore it and collect through [`KernelService::drain`] /
    /// [`CompletionStream`] as before.
    ///
    /// Fatal admission checks run in the order the module docs list them:
    /// the session must exist and be active (so callers keying re-auth logic
    /// on [`SubmitError::UnknownSession`] / [`SubmitError::SessionClosed`]
    /// see them regardless of the spec), then the spec itself; only then is
    /// capacity considered.
    pub fn submit(&self, session: SessionId, spec: JobSpec) -> Result<JobHandle, SubmitError> {
        self.submit_timeout(session, spec, self.inner.config.admission_timeout)
    }

    /// Submit without waiting: a full quota or queue returns the
    /// backpressure error ([`SubmitError::WouldBlock`] /
    /// [`SubmitError::QueueFull`]) immediately.
    pub fn try_submit(&self, session: SessionId, spec: JobSpec) -> Result<JobHandle, SubmitError> {
        self.submit_timeout(session, spec, Duration::ZERO)
    }

    /// Submit, parking the caller up to `timeout` while the session quota or
    /// the global queue is full.  Admission happens as soon as capacity
    /// frees (a job completes or is cancelled, a worker dequeues); if the
    /// deadline passes first, the backpressure error that blocked admission
    /// is returned and the attempt is metered as throttled.
    pub fn submit_timeout(
        &self,
        session: SessionId,
        spec: JobSpec,
        timeout: Duration,
    ) -> Result<JobHandle, SubmitError> {
        let inner = &self.inner;
        let deadline = inner.clock.now().saturating_add(timeout);
        let capacity = &inner.capacity;
        let mut seen = capacity.current();
        let mut registered = false;
        let result = loop {
            match self.admit_once(session, &spec) {
                Ok(handle) => break Ok(handle),
                Err(AdmitDenied::Fatal(error)) => break Err(error),
                Err(AdmitDenied::Throttled(error)) => {
                    if timeout.is_zero() || inner.clock.now() >= deadline {
                        break Err(error);
                    }
                }
            }
            if !registered {
                registered = true;
                capacity.waiting.fetch_add(1, Ordering::SeqCst);
            }
            // Park until the capacity epoch moves or the deadline passes.
            // The epoch is re-read under the lock, so a release between the
            // failed admission above and this wait is never lost.
            let guard = capacity.epoch.lock().unwrap_or_else(|p| p.into_inner());
            if *guard == seen {
                let wait_for = if inner.clock.is_fake() {
                    FAKE_CLOCK_WAIT_SLICE
                } else {
                    deadline.saturating_sub(inner.clock.now())
                };
                let (guard, _) =
                    capacity.cv.wait_timeout(guard, wait_for).unwrap_or_else(|p| p.into_inner());
                seen = *guard;
            } else {
                seen = *guard;
            }
        };
        if registered {
            capacity.waiting.fetch_sub(1, Ordering::SeqCst);
        }
        if let Err(error) = &result {
            if error.is_backpressure() {
                if let Some(ctx) = inner.sessions.lock().get_mut(&session) {
                    ctx.note_throttled();
                }
            }
        }
        result
    }

    /// One admission attempt.  On success the job is queued and its handle
    /// returned; `Throttled` means capacity was momentarily exhausted.
    fn admit_once(&self, session: SessionId, spec: &JobSpec) -> Result<JobHandle, AdmitDenied> {
        let inner = &self.inner;
        if inner.shutting_down.load(Ordering::Relaxed) || inner.killed.load(Ordering::SeqCst) {
            return Err(AdmitDenied::Fatal(SubmitError::ShuttingDown));
        }
        let cell = {
            let mut sessions = inner.sessions.lock();
            let ctx = sessions
                .get_mut(&session)
                .ok_or(AdmitDenied::Fatal(SubmitError::UnknownSession(session)))?;
            if !ctx.is_active() {
                return Err(AdmitDenied::Fatal(SubmitError::SessionClosed(session)));
            }
            if let Err(reason) = validate(spec) {
                ctx.note_rejected();
                return Err(AdmitDenied::Fatal(SubmitError::InvalidJob(reason)));
            }
            if inner.queued.load(Ordering::SeqCst) >= inner.config.max_queued_jobs {
                return Err(AdmitDenied::Throttled(SubmitError::QueueFull {
                    limit: inner.config.max_queued_jobs,
                }));
            }
            if ctx.in_flight() >= inner.config.max_in_flight_per_session {
                return Err(AdmitDenied::Throttled(SubmitError::WouldBlock {
                    session,
                    limit: inner.config.max_in_flight_per_session,
                }));
            }
            ctx.note_submitted();
            // Job id assignment and the stream's expected-order entry happen
            // under the session lock, so per-session stream order always
            // matches ascending job ids.
            let job = inner.next_job.fetch_add(1, Ordering::Relaxed) + 1;
            let cell = JobCell::new(job, session);
            if let Some(stream) = inner.streams.lock().get(&session) {
                stream.expect(job);
            }
            inner.queued.fetch_add(1, Ordering::SeqCst);
            cell
        };
        *inner.pending.lock().expect("pending lock") += 1;
        let queued =
            Queued { cell: Arc::clone(&cell), spec: spec.clone(), admitted_at: inner.clock.now() };
        if self.queue.as_ref().expect("queue open while service exists").try_send(queued).is_err() {
            unreachable!("admission bounds the queue and workers hold the receiver");
        }
        Ok(JobHandle { cell, service: Arc::downgrade(inner) })
    }

    /// Submit a batch under one session, stopping at the first rejection.
    ///
    /// Returns the handles of the accepted jobs on success.  On a rejection
    /// the already accepted prefix keeps running (its results arrive via the
    /// handles, the stream, or `drain`); the returned [`BatchError`] carries
    /// that prefix's ids and the index of the rejected spec so the caller
    /// can correlate and retry only the rest.  Each spec is admitted with
    /// the plain [`KernelService::submit`] semantics, so backpressure inside
    /// a batch waits rather than failing (up to the configured timeout).
    pub fn submit_batch(
        &self,
        session: SessionId,
        specs: Vec<JobSpec>,
    ) -> Result<Vec<JobHandle>, BatchError> {
        let mut accepted = Vec::with_capacity(specs.len());
        for (index, spec) in specs.into_iter().enumerate() {
            match self.submit(session, spec) {
                Ok(handle) => accepted.push(handle),
                Err(error) => {
                    return Err(BatchError {
                        accepted: accepted.iter().map(JobHandle::id).collect(),
                        index,
                        error,
                    })
                }
            }
        }
        Ok(accepted)
    }

    /// Block until nothing is in flight, then take **all** accumulated
    /// reports — every session's — ordered by job id.
    ///
    /// This is the synchronous wrapper over the async completion plumbing:
    /// it waits on the same pending counter every resolution path settles,
    /// then hands back the retained reports.  It is destructive across
    /// tenants, so use it from the single caller that owns the service.
    /// Independent tenants sharing one service should collect with
    /// [`KernelService::drain_session`], a [`CompletionStream`], or their
    /// own [`JobHandle`]s instead.  With
    /// [`ServiceConfig::retain_reports`] off, `drain` still waits for
    /// quiescence but returns nothing.
    ///
    /// In admission-only mode (0 workers) queued jobs can never complete, so
    /// `drain` does not wait for them — it returns whatever has been
    /// recorded instead of blocking forever.
    pub fn drain(&self) -> Vec<JobReport> {
        if !self.workers.is_empty() {
            let mut pending = self.inner.pending.lock().expect("pending lock");
            while *pending > 0 {
                pending = self.inner.idle.wait(pending).expect("pending lock");
            }
        }
        let mut out = std::mem::take(&mut *self.inner.results.lock());
        out.sort_by_key(|r| r.job);
        out
    }

    /// Block until `session` has nothing in flight, then take *its* reports
    /// only (ordered by job id).  Other sessions' results stay queued for
    /// their own owners — the tenant-safe counterpart of
    /// [`KernelService::drain`].
    ///
    /// A session that was never opened (or has nothing in flight) returns
    /// whatever is already recorded for it without blocking; admission-only
    /// mode (0 workers) never blocks, as with `drain`.
    pub fn drain_session(&self, session: SessionId) -> Vec<JobReport> {
        if !self.workers.is_empty() {
            let mut pending = self.inner.pending.lock().expect("pending lock");
            loop {
                let in_flight = self
                    .inner
                    .sessions
                    .lock()
                    .get(&session)
                    .map(|ctx| ctx.in_flight())
                    .unwrap_or(0);
                if in_flight == 0 {
                    break;
                }
                pending = self.inner.idle.wait(pending).expect("pending lock");
            }
        }
        let mut results = self.inner.results.lock();
        let (mut out, rest): (Vec<_>, Vec<_>) =
            results.drain(..).partition(|r| r.session == session);
        *results = rest;
        drop(results);
        out.sort_by_key(|r| r.job);
        out
    }

    /// Install the failover supervisor's orphan intake (cluster-internal;
    /// one sink per node, set before any kill can fire).
    pub(crate) fn install_orphan_sink(&self, sink: OrphanSink) {
        *self.inner.orphan_sink.lock() = Some(sink);
    }

    /// Fail-stop this node for a failover drill: reject further admissions,
    /// orphan every queued-but-unstarted job to the installed orphan sink,
    /// and let jobs workers already started finish (the kill boundary is the
    /// dequeue — the superstep-checkpoint failure model, under which replay
    /// from step 0 on a survivor is bit-identical).  Idempotent.
    pub(crate) fn kill_for_failover(&self) {
        if self.inner.killed.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake parked submitters so they observe the kill and fail fast.
        self.inner.capacity.bump();
        // Drain the backlog directly: with zero workers (or workers all busy)
        // nobody else will, and the orphans must reach the supervisor now,
        // not at shutdown.  Workers racing this drain orphan their own
        // dequeues via the killed check in their loop.
        while let Ok(queued) = self.queue_rx.try_recv() {
            self.inner.queued.fetch_sub(1, Ordering::SeqCst);
            self.inner.capacity.bump();
            orphan_one(&self.inner, queued);
        }
    }

    /// Whether [`KernelService::kill_for_failover`] has fired.
    pub(crate) fn is_killed(&self) -> bool {
        self.inner.killed.load(Ordering::SeqCst)
    }

    /// Revive a node killed by [`KernelService::kill_for_failover`]: the
    /// restart seam of the rejoin path.  Models a fresh process on the same
    /// rank — the plan cache is dropped cold (re-warmed through the fetcher
    /// chain), then admissions reopen.  Returns `false` (no-op) if the node
    /// was not killed.
    pub(crate) fn revive_after_failover(&self) -> bool {
        if !self.inner.killed.load(Ordering::SeqCst) {
            return false;
        }
        // Cold cache *before* reopening admissions: a job admitted into the
        // revived node must not resolve against pre-crash state.
        self.inner.cache.invalidate_all();
        self.inner.killed.store(false, Ordering::SeqCst);
        // Wake parked submitters that backed off while the node was dead.
        self.inner.capacity.bump();
        true
    }

    /// Deliver a failover outcome to the session's completion stream on this
    /// node (the supervisor finalizing an orphan; the stream entry was
    /// registered at original admission).
    pub(crate) fn push_stream_outcome(
        &self,
        session: SessionId,
        job: JobId,
        outcome: crate::job::JobOutcome,
    ) {
        self.inner.push_stream_outcome(session, job, outcome);
    }

    /// Close the queue and join the workers.  Implied by `Drop`; explicit
    /// form for callers that want to observe worker termination.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        // The flag makes workers discard the remaining backlog (resolving
        // every queued handle with `Abandoned`); the in-flight job of each
        // worker still finishes.  Parked submitters wake and fail fast.
        self.inner.shutting_down.store(true, Ordering::Relaxed);
        self.inner.capacity.bump();
        drop(self.queue.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        // Whatever no worker drained (always the case in admission-only
        // mode) is abandoned inline so every job still resolves exactly
        // once.
        while let Ok(queued) = self.queue_rx.try_recv() {
            self.inner.queued.fetch_sub(1, Ordering::SeqCst);
            abandon_one(&self.inner, &queued.cell);
        }
    }
}

impl Drop for KernelService {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

impl fmt::Debug for KernelService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KernelService")
            .field("workers", &self.workers.len())
            .field("config", &self.inner.config)
            .field("cache", &self.inner.cache.stats())
            .field("admission", &self.admission_stats())
            .finish()
    }
}

/// How one admission attempt failed.
enum AdmitDenied {
    /// Retrying cannot help (unknown/closed session, malformed spec,
    /// shutdown).
    Fatal(SubmitError),
    /// Capacity was momentarily exhausted; a later attempt can succeed.
    Throttled(SubmitError),
}

fn validate(spec: &JobSpec) -> Result<(), String> {
    spec.validate().map_err(|e| e.to_string())?;
    if let Err(e) = HeteroDispatcher::try_new(spec.policy.clone()) {
        return Err(format!("schedule policy: {e}"));
    }
    Ok(())
}

/// Discard a queued job during shutdown: resolve its handle and stream entry
/// with [`JobErrorKind::Abandoned`] and settle the counters so a concurrent
/// `drain` cannot hang on work that will never run.  A job already claimed
/// by [`JobHandle::cancel`] was settled there.
fn abandon_one(inner: &Inner, cell: &JobCell) {
    if !cell.mark_abandoned() {
        return;
    }
    let error = JobError { job: cell.job, session: cell.session, kind: JobErrorKind::Abandoned };
    cell.slot.complete(Err(error));
    inner.push_stream_outcome(cell.session, cell.job, Err(error));
    if let Some(ctx) = inner.sessions.lock().get_mut(&cell.session) {
        ctx.note_abandoned();
    }
    let mut pending = inner.pending.lock().expect("pending lock");
    *pending -= 1;
    drop(pending);
    inner.idle.notify_all();
    inner.capacity.bump();
}

/// Strand-side of a fail-stop kill: settle the dead node's accounting for a
/// queued job and hand it to the failover sink **without** resolving its
/// completion slot — the supervisor resolves it with the replay's report, so
/// the submitter's handle still settles exactly once.  Without a sink
/// (standalone service) the orphan degrades to an abandonment.
fn orphan_one(inner: &Inner, queued: Queued) {
    let Queued { cell, spec, .. } = queued;
    if !cell.mark_abandoned() {
        // A cancel won the race and settled everything already.
        return;
    }
    let watermark = cell.progress.snapshot();
    // The job leaves this node's books: its in-flight slot frees and the
    // pending count drops, so the dead node's drain/shutdown never waits on
    // work that will finish elsewhere.
    if let Some(ctx) = inner.sessions.lock().get_mut(&cell.session) {
        ctx.note_abandoned();
    }
    let mut pending = inner.pending.lock().expect("pending lock");
    *pending -= 1;
    drop(pending);
    inner.idle.notify_all();
    inner.capacity.bump();
    let sink = inner.orphan_sink.lock().clone();
    match sink {
        Some(sink) => {
            let session = cell.session;
            sink(OrphanedJob { session, spec, cell, watermark });
        }
        None => {
            let error =
                JobError { job: cell.job, session: cell.session, kind: JobErrorKind::Abandoned };
            cell.slot.complete(Err(error));
            inner.push_stream_outcome(cell.session, cell.job, Err(error));
        }
    }
}

/// Drain up to `batch_fusion - 1` further jobs behind `first` from the
/// queue's backlog, stopping at the first fusion-incompatible job (returned
/// separately so the worker runs it solo right after the batch).  Draining
/// performs the same dequeue bookkeeping the worker loop does; fail-stop and
/// shutdown checks stop the drain and route the job the same way the loop
/// head would.
fn drain_batch(
    inner: &Inner,
    rx: &Receiver<Queued>,
    first: Queued,
) -> (Vec<Queued>, Option<Queued>) {
    let mut batch = vec![first];
    let mut stashed = None;
    while batch.len() < inner.config.batch_fusion {
        let Ok(next) = rx.try_recv() else { break };
        inner.note_dequeued();
        if inner.killed.load(Ordering::SeqCst) {
            orphan_one(inner, next);
            break;
        }
        if inner.shutting_down.load(Ordering::Relaxed) {
            abandon_one(inner, &next.cell);
            break;
        }
        if crate::fuse::fusion_compatible(&batch[0].spec, &next.spec) {
            batch.push(next);
        } else {
            stashed = Some(next);
            break;
        }
    }
    (batch, stashed)
}

/// Execute one queued job on the calling worker thread and resolve it.
pub(crate) fn run_one(inner: &Inner, queued: Queued) {
    let Queued { cell, spec, admitted_at } = queued;
    if !cell.begin_running() {
        // A cancel won the race; it settled every counter already.
        return;
    }
    run_claimed(inner, cell, spec, admitted_at);
}

/// Execute a job whose cell has already been claimed (`begin_running`
/// succeeded) — the body of [`run_one`], also the solo fallback of the
/// batch-fusion driver.
pub(crate) fn run_claimed(inner: &Inner, cell: Arc<JobCell>, spec: JobSpec, admitted_at: Duration) {
    let queue_wait = inner.clock.now().saturating_sub(admitted_at);
    inner.queue_wait.record(queue_wait.as_nanos() as u64);
    let session = cell.session;
    let fingerprint = spec.program.fingerprint();
    let program_name = spec.program.name().to_string();
    let topology = spec.topology.clone();
    // Hot sessions pin the plans they resolve, so eviction pressure from
    // other tenants cannot flush them (see SessionSpec::pin_plans).
    let pin_plans =
        inner.sessions.lock().get(&session).map(|ctx| ctx.pins_plans()).unwrap_or(false);

    // With an observer installed, open the job's trace root and make it this
    // worker thread's span context, so everything below — including a
    // cluster plan fetch fired from inside the cache — parents into the
    // job's tree.  `trace_ctx` carries (trace id, root span id) to the
    // dispatch sites.
    let obs_job = inner.obs.as_ref().map(|hub| {
        hub.metrics().queue_wait_ns.record(queue_wait.as_nanos() as u64);
        let trace = hub.recorder().next_trace_id();
        (trace, hub.recorder().start("Service::job", trace, 0))
    });
    let trace_ctx = obs_job.map(|(trace, open)| (trace, open.span));
    let _span_ctx = trace_ctx.map(|(trace, span)| push_context(trace, span));

    // Everything fallible runs inside the unwind guard so a panicking job can
    // never strand the pending counter (which would hang every later drain).
    // The pre-warm outcome and phase timings escape through Cells so a panic
    // *after* plan resolution still meters the hit/miss it already charged to
    // the cache (and the phases that did complete).
    let prewarm_hit: std::cell::Cell<Option<bool>> = std::cell::Cell::new(None);
    let resolve_time: std::cell::Cell<Duration> = std::cell::Cell::new(Duration::ZERO);
    let execute_time: std::cell::Cell<Duration> = std::cell::Cell::new(Duration::ZERO);
    let spec_tier: std::cell::Cell<SpecializationId> =
        std::cell::Cell::new(SpecializationId::Generic);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        // Resolve the job's primary plan up front so the hit/miss is
        // attributable to *this* job; the app's own plan lookups then hit the
        // warm entry.  The primary shape is the block-(0,0) tile, which the
        // DSL tiling clips to the region, so small regions pre-warm the plan
        // that actually executes.
        let primary = Extent::new2d(spec.block.min(spec.region.nx), spec.block.min(spec.region.ny));
        let resolve_start = inner.clock.now();
        let (artifact, origin) = resolve_primary(inner, &spec, primary, pin_plans, trace_ctx);
        prewarm_hit.set(Some(origin == PlanOrigin::Hit));
        if let Some(kernel) = artifact.as_stencil() {
            spec_tier.set(kernel.specialization());
        }
        resolve_time.set(inner.clock.now().saturating_sub(resolve_start));
        let execute_start = inner.clock.now();
        let result = execute_traced(inner, &spec, &cell, &artifact, trace_ctx);
        execute_time.set(inner.clock.now().saturating_sub(execute_start));
        result
    }));
    let cache_hit = prewarm_hit.get();
    let (checksum_value, simulated_seconds, summary, error) = match outcome {
        Ok((cks, sim, summary)) => (cks, sim, summary, None),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "job panicked".to_string());
            (f64::NAN, 0.0, aohpc_runtime::RunReport::empty(topology).summary(), Some(msg))
        }
    };

    settle_finished(
        inner,
        FinishedJob {
            cell,
            fingerprint,
            program: program_name,
            cache_hit,
            checksum: checksum_value,
            simulated_seconds,
            summary,
            error,
            trace_ctx,
            obs_root: obs_job.map(|(_, open)| open),
            queue_wait,
            resolve_time: resolve_time.get(),
            execute_time: execute_time.get(),
            specialization: spec_tier.get(),
            fusion: None,
        },
    );
}

/// Everything the completion path needs to resolve one finished job — built
/// by [`run_claimed`] for solo jobs and by the batch-fusion driver once per
/// fused member.
pub(crate) struct FinishedJob {
    pub(crate) cell: Arc<JobCell>,
    pub(crate) fingerprint: aohpc_kernel::ProgramFingerprint,
    pub(crate) program: String,
    pub(crate) cache_hit: Option<bool>,
    pub(crate) checksum: f64,
    pub(crate) simulated_seconds: f64,
    pub(crate) summary: aohpc_runtime::RunSummary,
    pub(crate) error: Option<String>,
    pub(crate) trace_ctx: Option<(u64, u64)>,
    pub(crate) obs_root: Option<aohpc_obs::OpenSpan>,
    pub(crate) queue_wait: Duration,
    pub(crate) resolve_time: Duration,
    pub(crate) execute_time: Duration,
    pub(crate) specialization: SpecializationId,
    pub(crate) fusion: Option<crate::job::FusionProvenance>,
}

/// Meter the session, build the [`JobReport`] and resolve the job exactly
/// once: retained results, completion stream, status, session accounting,
/// handle, pending count and capacity wake-ups — in the order the drain
/// invariants require.
pub(crate) fn settle_finished(inner: &Inner, done: FinishedJob) {
    let FinishedJob { cell, fingerprint, program, cache_hit, checksum, .. } = &done;
    let job = cell.job;
    let session = cell.session;
    // Meter the session *without* releasing its in-flight slot yet: the
    // report must be in `results` before in_flight drops to zero, or a
    // concurrent `drain_session` could observe an idle session and miss its
    // final report.
    let tenant = {
        let mut sessions = inner.sessions.lock();
        match sessions.get_mut(&session) {
            Some(ctx) => {
                let meter = ctx.meter_mut();
                match cache_hit {
                    Some(true) => meter.plan_cache_hits += 1,
                    Some(false) => meter.plan_cache_misses += 1,
                    None => {} // panicked before/while resolving the plan
                }
                meter.cells_updated += done.summary.writes;
                meter.simulated_seconds += done.simulated_seconds;
                ctx.tenant().to_string()
            }
            None => "unknown".to_string(),
        }
    };

    let report = JobReport {
        job,
        session,
        tenant,
        program: program.clone(),
        fingerprint: *fingerprint,
        plan_cache_hit: cache_hit.unwrap_or(false),
        checksum: *checksum,
        simulated_seconds: done.simulated_seconds,
        summary: done.summary.clone(),
        error: done.error.clone(),
        trace_id: done.trace_ctx.map(|(trace, _)| trace),
        queue_wait: done.queue_wait,
        resolve_time: done.resolve_time,
        execute_time: done.execute_time,
        failover: None,
        specialization: done.specialization,
        fusion: done.fusion,
    };
    // Close the job's trace root and settle the hub's job-level metrics; the
    // per-phase spans/histograms were filed by the woven obs advice.
    if let Some(hub) = &inner.obs {
        let metrics = hub.metrics();
        if report.error.is_none() {
            metrics.jobs_completed.inc();
        } else {
            metrics.jobs_failed.inc();
        }
        metrics.worker_busy_ns.add((report.resolve_time + report.execute_time).as_nanos() as u64);
        metrics.record_kernel(
            fingerprint.as_u128() as u64,
            report.summary.writes,
            report.execute_time.as_nanos() as u64,
        );
        if let Some(open) = done.obs_root {
            hub.recorder().end_with(open, job as i64, i64::from(report.error.is_none()));
        }
    }
    if inner.config.retain_reports {
        inner.results.lock().push(report.clone());
    }
    // Resolve the stream first (clone only when a consumer actually exists —
    // the drain/handle-only common case skips it).
    if let Some(stream) = inner.consumer_stream(session) {
        stream.resolve(job, Ok(report.clone()));
    }
    cell.mark_completed();

    // Settle the session's accounting *before* resolving the handle, so a
    // caller returning from `JobHandle::wait` observes its completion in the
    // meter; the report is already in `results`, preserving the
    // `drain_session` ordering invariant above.
    if let Some(ctx) = inner.sessions.lock().get_mut(&session) {
        ctx.note_completed();
    }
    cell.slot.complete(Ok(report));

    let mut pending = inner.pending.lock().expect("pending lock");
    *pending -= 1;
    drop(pending);
    // Every completion wakes the waiters: `drain` re-checks the global count,
    // `drain_session` its session's in-flight count, parked submitters the
    // freed quota slot.
    inner.idle.notify_all();
    inner.capacity.bump();
}

/// The admission pre-warm resolve.  With an observer installed the lookup is
/// dispatched through the service's woven program, so the obs aspect wraps
/// it in a span parented into the job's tree — the body publishes the plan's
/// [`PlanOrigin`] as an attribute for the advice to file.
pub(crate) fn resolve_primary(
    inner: &Inner,
    spec: &JobSpec,
    primary: Extent,
    pin_plans: bool,
    trace_ctx: Option<(u64, u64)>,
) -> (FamilyArtifact, PlanOrigin) {
    let Some((trace, parent)) = trace_ctx else {
        return inner.cache.resolve(&spec.program, primary, spec.opt_level, pin_plans);
    };
    let attrs = [
        (attr::TRACE, trace as i64),
        (attr::PARENT, parent as i64),
        (attr::FAMILY, i64::from(spec.program.family().tag())),
    ];
    let mut resolved = None;
    let mut payload = ();
    inner.service_woven.dispatch_with(
        names::CACHE_RESOLVE,
        JoinPointKind::Call,
        &attrs,
        &mut payload,
        &mut |ctx| {
            let (artifact, origin) =
                inner.cache.resolve(&spec.program, primary, spec.opt_level, pin_plans);
            ctx.set_attr(attr::ORIGIN, origin as i64);
            resolved = Some((artifact, origin));
        },
    );
    let resolved = resolved.expect("resolve body runs exactly once");
    // A fresh insert (local compile or cluster fetch + re-lower) ran the
    // shape-specialization matcher: record its verdict through the
    // `Kernel::specialize` join point, parented into the same job tree.
    // Cache hits reuse an already-recorded verdict, so they stay silent.
    if resolved.1 != PlanOrigin::Hit {
        let specialized = resolved
            .0
            .as_stencil()
            .map(|k| k.specialization() != SpecializationId::Generic)
            .unwrap_or(false);
        let attrs = [
            (attr::TRACE, trace as i64),
            (attr::PARENT, parent as i64),
            (attr::FAMILY, i64::from(spec.program.family().tag())),
        ];
        let mut payload = ();
        inner.service_woven.dispatch_with(
            names::KERNEL_SPECIALIZE,
            JoinPointKind::Call,
            &attrs,
            &mut payload,
            &mut |ctx| ctx.set_attr(attr::OK, i64::from(specialized)),
        );
    }
    resolved
}

/// Run [`execute_spec`], wrapped in the `Service::execute_spec` join point
/// when an observer is installed.
fn execute_traced(
    inner: &Inner,
    spec: &JobSpec,
    cell: &JobCell,
    artifact: &FamilyArtifact,
    trace_ctx: Option<(u64, u64)>,
) -> (f64, f64, aohpc_runtime::RunSummary) {
    let Some((trace, parent)) = trace_ctx else {
        return execute_spec(inner, spec, cell, artifact, None);
    };
    let attrs = [
        (attr::TRACE, trace as i64),
        (attr::PARENT, parent as i64),
        (attr::FAMILY, i64::from(spec.program.family().tag())),
        (attr::JOB, cell.job as i64),
    ];
    let mut result = None;
    let mut payload = ();
    inner.service_woven.dispatch_with(
        names::SERVICE_EXECUTE,
        JoinPointKind::Execution,
        &attrs,
        &mut payload,
        &mut |_| {
            result = Some(execute_spec(inner, spec, cell, artifact, trace_ctx));
        },
    );
    result.expect("execute body runs exactly once")
}

/// The execution core: the same compile-and-run pipeline the one-shot
/// harnesses use, with the shared cache installed as the plan source and the
/// job's progress counters installed in the run config.  Dispatches on the
/// spec's [kernel family](aohpc_kernel::KernelFamilyId): stencil jobs run the
/// IR pipeline, particle and usgrid jobs run their DSL apps with the
/// cache-resolved family artifact installed as the update law.
fn execute_spec(
    inner: &Inner,
    spec: &JobSpec,
    cell: &JobCell,
    artifact: &FamilyArtifact,
    trace_ctx: Option<(u64, u64)>,
) -> (f64, f64, aohpc_runtime::RunSummary) {
    match artifact {
        FamilyArtifact::Stencil(_) => execute_stencil(inner, spec, cell, trace_ctx),
        FamilyArtifact::Particle(kernel) => {
            let law = PairForce(kernel.pair_law(spec.params[0]));
            execute_particle(inner, spec, cell, law, trace_ctx)
        }
        FamilyArtifact::UsGrid(kernel) => {
            let law = UsUpdate(kernel.update_fn(spec.params[0], spec.params[1]));
            execute_usgrid(inner, spec, cell, law, trace_ctx)
        }
    }
}

/// Weave the spec's aspects and build its run config — identical for every
/// family, so all three execution paths share one topology/progress wiring.
/// With an observer, the per-job [`ObsRunAspect`] joins the weave carrying
/// the job's trace and root-span ids (rank threads have no thread-local span
/// context); the returned [`RunFinisher`] closes the final step spans after
/// the run returns.
pub(crate) fn weave_for(
    inner: &Inner,
    spec: &JobSpec,
    cell: &JobCell,
    trace_ctx: Option<(u64, u64)>,
) -> (WovenProgram, RunConfig, Option<RunFinisher>) {
    let mut weaver = Weaver::new();
    if spec.topology.ranks() > 1 {
        weaver = weaver.with_aspect(Box::new(MpiAspect::<f64>::new()));
    }
    if spec.topology.threads_per_rank() > 1 {
        weaver = weaver.with_aspect(Box::new(OmpAspect::<f64>::new()));
    }
    let mut finisher = None;
    if let (Some(hub), Some((trace, job_span))) = (&inner.obs, trace_ctx) {
        let aspect = ObsRunAspect::new(Arc::clone(hub), trace, job_span);
        finisher = Some(aspect.finisher());
        weaver = weaver.with_aspect(Box::new(aspect));
    }
    let woven = weaver.weave();
    let config = RunConfig::serial()
        .with_topology(spec.topology.clone())
        .with_weave_mode(spec.weave_mode)
        .with_progress(cell.progress.clone());
    (woven, config, finisher)
}

fn execute_stencil(
    inner: &Inner,
    spec: &JobSpec,
    cell: &JobCell,
    trace_ctx: Option<(u64, u64)>,
) -> (f64, f64, aohpc_runtime::RunSummary) {
    let program = spec.program.as_stencil().expect("stencil artifact implies stencil program");
    let system = Arc::new(SGridSystem::with_block_size(spec.region, spec.block));
    let sink = new_stencil_field_sink();
    let dispatcher =
        HeteroDispatcher::try_new(spec.policy.clone()).expect("policy validated at submit");
    let app = IrStencilApp::new(program.clone(), spec.params.clone(), spec.steps)
        .with_opt_level(spec.opt_level)
        .with_dispatcher(dispatcher)
        .with_plan_source(inner.cache.clone())
        .with_scratch_pool(inner.scratch.clone())
        .with_field_sink(sink.clone());

    let (woven, config, finisher) = weave_for(inner, spec, cell, trace_ctx);
    let report = execute(&config, woven, system.env_factory(), app.factory());
    if let Some(finisher) = finisher {
        finisher.finish();
    }

    let cks = checksum(sink.lock().iter().map(|(_, v)| *v));
    let sim = CostModel::default().makespan_seconds(&report);
    (cks, sim, report.summary())
}

fn execute_particle(
    inner: &Inner,
    spec: &JobSpec,
    cell: &JobCell,
    law: PairForce,
    trace_ctx: Option<(u64, u64)>,
) -> (f64, f64, aohpc_runtime::RunSummary) {
    // The bucket grid re-derived from the particle count matches spec.region
    // when the spec came from JobSpec::particle; the count fallback assumes
    // the paper's half-full buckets for hand-built specs.
    let count = spec.particles.unwrap_or(spec.region.cells() * 8);
    let system = ParticleSystem::paper(ParticleSize::new(count));
    let sink = new_field_sink();
    let app = ParticleApp::new(system.clone(), spec.steps)
        .with_dt(spec.params[1])
        .with_sink(sink.clone())
        .with_pair_force(law);

    let (woven, config, finisher) = weave_for(inner, spec, cell, trace_ctx);
    let report = execute(&config, woven, Arc::new(system).env_factory(), app.factory());
    if let Some(finisher) = finisher {
        finisher.finish();
    }

    let cks = checksum(sink.lock().iter().map(|(_, v)| *v));
    let sim = CostModel::default().makespan_seconds(&report);
    (cks, sim, report.summary())
}

fn execute_usgrid(
    inner: &Inner,
    spec: &JobSpec,
    cell: &JobCell,
    law: UsUpdate,
    trace_ctx: Option<(u64, u64)>,
) -> (f64, f64, aohpc_runtime::RunSummary) {
    let system = UsGridSystem::with_block_size(spec.region, spec.block, GridLayout::CaseC);
    let sink = new_field_sink();
    let mut app =
        UsGridJacobiApp::new(system.clone(), spec.steps).with_sink(sink.clone()).with_update(law);
    app.alpha = spec.params[0];
    app.beta = spec.params[1];

    let (woven, config, finisher) = weave_for(inner, spec, cell, trace_ctx);
    let report = execute(&config, woven, Arc::new(system).env_factory(), app.factory());
    if let Some(finisher) = finisher {
        finisher.finish();
    }

    let cks = checksum(sink.lock().iter().map(|(_, v)| *v));
    let sim = CostModel::default().makespan_seconds(&report);
    (cks, sim, report.summary())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobErrorKind, JobStatus};
    use aohpc_kernel::{Processor, SchedulePolicy, StencilProgram};
    use aohpc_workloads::RegionSize;

    fn smoke_job() -> JobSpec {
        JobSpec::jacobi(Scale::Smoke)
    }

    /// Admission-only configs must not block `submit` (no worker ever frees
    /// capacity), so they pin the admission timeout to zero.
    fn admission_only() -> ServiceConfig {
        ServiceConfig::default().with_workers(0).with_admission_timeout(Duration::ZERO)
    }

    #[test]
    fn submit_drain_roundtrip_reports_every_job() {
        let service = KernelService::new(ServiceConfig::default().with_workers(2));
        let session = service.open_session(SessionSpec::tenant("acme"));
        let handles =
            service.submit_batch(session, vec![smoke_job(), smoke_job(), smoke_job()]).unwrap();
        let ids: Vec<JobId> = handles.iter().map(JobHandle::id).collect();
        assert_eq!(ids, vec![1, 2, 3]);
        let reports = service.drain();
        assert_eq!(reports.len(), 3);
        for (report, id) in reports.iter().zip(&ids) {
            assert_eq!(report.job, *id);
            assert_eq!(report.session, session);
            assert_eq!(report.tenant, "acme");
            assert_eq!(report.program, "jacobi-5pt");
            assert!(report.error.is_none());
            assert!(report.checksum.is_finite());
            assert!(report.simulated_seconds > 0.0);
            assert!(report.summary.writes > 0);
        }
        // Same program, same shape: one compile, the rest shared.
        assert_eq!(service.cache_stats().misses, 1);
        let ctx = service.session(session).unwrap();
        assert_eq!(ctx.meter().jobs_submitted, 3);
        assert_eq!(ctx.meter().jobs_completed, 3);
        assert_eq!(ctx.meter().plan_cache_misses, 1);
        assert_eq!(ctx.meter().plan_cache_hits, 2);
        assert!(ctx.meter().simulated_seconds > 0.0);
        assert_eq!(ctx.in_flight(), 0);
        // The handles resolved too — drain and handles observe the same job.
        for (handle, id) in handles.iter().zip(&ids) {
            let outcome = handle.poll().expect("resolved after drain");
            assert_eq!(outcome.unwrap().job, *id);
            assert_eq!(handle.status(), JobStatus::Completed);
        }
    }

    #[test]
    fn handle_wait_resolves_with_report_and_progress() {
        let service = KernelService::new(ServiceConfig::default().with_workers(1));
        let session = service.open_session(SessionSpec::tenant("t"));
        let handle = service.submit(session, smoke_job()).unwrap();
        assert_eq!(handle.session(), session);
        let report = handle.wait().expect("job ran");
        assert!(report.error.is_none());
        assert!(report.checksum.is_finite());
        assert!(handle.is_complete());
        // The runtime's progress plumbing saw the run: the slowest task
        // completed `summary.steps` steps, so the total is at least that.
        let progress = handle.progress();
        assert!(progress.steps >= report.summary.steps, "{progress:?} vs {report:?}");
        assert_eq!(progress.tasks_finished as usize, report.summary.tasks);
        // Cancelling a completed job is a no-op.
        assert!(!handle.cancel());
        // wait() on a resolved handle returns immediately, as does a clone.
        assert_eq!(handle.clone().wait().unwrap().job, report.job);
    }

    #[test]
    fn handle_is_a_future() {
        use std::sync::atomic::AtomicBool;
        use std::task::{Context, Poll, Wake, Waker};

        struct ThreadWaker {
            woken: AtomicBool,
            thread: std::thread::Thread,
        }
        impl Wake for ThreadWaker {
            fn wake(self: Arc<Self>) {
                self.woken.store(true, Ordering::SeqCst);
                self.thread.unpark();
            }
        }

        let service = KernelService::new(ServiceConfig::default().with_workers(1));
        let session = service.open_session(SessionSpec::tenant("t"));
        let mut handle = service.submit(session, smoke_job()).unwrap();

        // A minimal single-future block_on: poll, park until woken, repeat.
        let waker_state =
            Arc::new(ThreadWaker { woken: AtomicBool::new(false), thread: std::thread::current() });
        let waker = Waker::from(waker_state.clone());
        let mut cx = Context::from_waker(&waker);
        let outcome = loop {
            match std::future::Future::poll(std::pin::Pin::new(&mut handle), &mut cx) {
                Poll::Ready(outcome) => break outcome,
                Poll::Pending => {
                    while !waker_state.woken.swap(false, Ordering::SeqCst) {
                        std::thread::park_timeout(Duration::from_millis(50));
                    }
                }
            }
        };
        assert_eq!(outcome.unwrap().job, handle.id());
    }

    #[test]
    fn results_match_across_backends_and_sessions() {
        let service = KernelService::new(ServiceConfig::default().with_workers(3));
        let a = service.open_session(SessionSpec::tenant("a"));
        let b = service.open_session(SessionSpec::tenant("b"));
        for processor in [Processor::Scalar, Processor::Simd, Processor::Accelerator] {
            service.submit(a, smoke_job().with_policy(SchedulePolicy::Single(processor))).unwrap();
            service.submit(b, smoke_job().with_policy(SchedulePolicy::Single(processor))).unwrap();
        }
        let reports = service.drain();
        assert_eq!(reports.len(), 6);
        let first = reports[0].checksum;
        for r in &reports {
            assert_eq!(r.checksum, first, "all backends and tenants agree bit-for-bit");
        }
    }

    #[test]
    fn admission_enforces_sessions_and_backpressures_quotas() {
        // Admission-only mode (no workers): in-flight counts never drop, so
        // quota behaviour is deterministic.
        let service = KernelService::new(admission_only().with_quota(2));
        assert_eq!(service.worker_count(), 0);

        assert_eq!(service.submit(99, smoke_job()).unwrap_err(), SubmitError::UnknownSession(99),);

        let session = service.open_session(SessionSpec::tenant("t"));
        service.submit(session, smoke_job()).unwrap();
        service.submit(session, smoke_job()).unwrap();
        let err = service.try_submit(session, smoke_job()).unwrap_err();
        assert_eq!(err, SubmitError::WouldBlock { session, limit: 2 });
        assert!(err.is_backpressure(), "quota exhaustion is backpressure, not a hard rejection");
        let ctx = service.session(session).unwrap();
        assert_eq!(ctx.in_flight(), 2);
        assert_eq!(ctx.meter().jobs_throttled, 1);
        assert_eq!(ctx.meter().jobs_rejected, 0, "throttles are not fatal rejections");

        let closed = service.open_session(SessionSpec::tenant("u"));
        service.close_session(closed).unwrap();
        assert_eq!(
            service.submit(closed, smoke_job()).unwrap_err(),
            SubmitError::SessionClosed(closed)
        );
        assert!(service.close_session(404).is_none());

        // Session errors take precedence over spec errors: a caller keying
        // re-auth logic on UnknownSession/SessionClosed sees them even when
        // the spec is also malformed.
        let bad_spec = smoke_job().with_block(0);
        assert_eq!(
            service.submit(99, bad_spec.clone()).unwrap_err(),
            SubmitError::UnknownSession(99)
        );
        assert_eq!(
            service.submit(closed, bad_spec).unwrap_err(),
            SubmitError::SessionClosed(closed)
        );
        assert_eq!(
            service.session(closed).unwrap().meter().jobs_rejected,
            0,
            "closed sessions do not meter submissions they could never run"
        );
    }

    #[test]
    fn queue_bound_backpressures_globally() {
        // Queue depth 2, generous quota: the third admission hits the global
        // bound, not the per-session one.
        let service = KernelService::new(admission_only().with_quota(100).with_queue_bound(2));
        let session = service.open_session(SessionSpec::tenant("t"));
        service.submit(session, smoke_job()).unwrap();
        service.submit(session, smoke_job()).unwrap();
        let err = service.try_submit(session, smoke_job()).unwrap_err();
        assert_eq!(err, SubmitError::QueueFull { limit: 2 });
        assert!(err.is_backpressure());
        assert_eq!(service.admission_stats().queued, 2);
        assert_eq!(service.admission_stats().queue_limit, 2);
    }

    #[test]
    fn cancel_releases_the_quota_slot() {
        let service = KernelService::new(admission_only().with_quota(1));
        let session = service.open_session(SessionSpec::tenant("t"));
        let first = service.submit(session, smoke_job()).unwrap();
        assert_eq!(
            service.try_submit(session, smoke_job()).unwrap_err(),
            SubmitError::WouldBlock { session, limit: 1 },
        );
        assert!(first.cancel(), "a queued job can be cancelled");
        assert!(!first.cancel(), "cancel resolves at most once");
        assert_eq!(first.status(), JobStatus::Cancelled);
        let outcome = first.poll().expect("cancel resolves the handle");
        assert_eq!(outcome.unwrap_err().kind, JobErrorKind::Cancelled);
        // The slot freed: the next submission is admitted.
        let second = service.submit(session, smoke_job()).unwrap();
        assert_eq!(service.session(session).unwrap().in_flight(), 1);
        assert_eq!(service.session(session).unwrap().meter().jobs_cancelled, 1);
        assert_eq!(second.status(), JobStatus::Queued);
        // A cancelled job never reaches the results buffer.
        assert!(service.drain().is_empty());
    }

    #[test]
    fn completion_stream_delivers_in_submission_order() {
        let service = KernelService::new(ServiceConfig::default().with_workers(3));
        let session = service.open_session(SessionSpec::tenant("t"));
        let stream = service.completion_stream(session).unwrap();
        assert_eq!(stream.session(), session);
        assert_eq!(service.completion_stream(999).unwrap_err(), SubmitError::UnknownSession(999));

        let handles = service
            .submit_batch(session, vec![smoke_job(), smoke_job(), smoke_job(), smoke_job()])
            .unwrap();
        let mut delivered = Vec::new();
        for _ in 0..handles.len() {
            let outcome = stream.next().expect("stream owes four outcomes");
            delivered.push(outcome.expect("jobs ran").job);
        }
        let expected: Vec<JobId> = handles.iter().map(JobHandle::id).collect();
        assert_eq!(delivered, expected, "in submission order despite 3 racing workers");
        assert!(stream.next().is_none(), "nothing further owed");
        assert!(stream.try_next().is_none());
        assert_eq!(stream.pending(), 0);
    }

    #[test]
    fn completion_stream_is_an_iterator_and_covers_cancels() {
        let service = KernelService::new(admission_only().with_quota(10));
        let session = service.open_session(SessionSpec::tenant("t"));
        let stream = service.completion_stream(session).unwrap();
        let a = service.submit(session, smoke_job()).unwrap();
        let b = service.submit(session, smoke_job()).unwrap();
        // Cancel the *second* job: the stream must not deliver it before the
        // first (order is submission order, holes are filled with errors).
        assert!(b.cancel());
        assert!(stream.try_next().is_none(), "job A unresolved, B's error waits its turn");
        assert!(a.cancel());
        let outcomes: Vec<_> = stream.collect();
        assert_eq!(outcomes.len(), 2);
        assert_eq!(outcomes[0].as_ref().unwrap_err().job, a.id());
        assert_eq!(outcomes[1].as_ref().unwrap_err().job, b.id());
    }

    #[test]
    fn detached_streams_do_not_accumulate_outcomes() {
        let service = KernelService::new(ServiceConfig::default().with_workers(1));
        let session = service.open_session(SessionSpec::tenant("t"));
        // Attach, then drop the only consumer: the stream detaches and jobs
        // submitted meanwhile must not buffer anywhere.
        drop(service.completion_stream(session).unwrap());
        service.submit(session, smoke_job()).unwrap().wait().unwrap();

        // Re-attach: nothing is owed from the detached period...
        let stream = service.completion_stream(session).unwrap();
        assert_eq!(stream.pending(), 0, "detached-period jobs are not owed");
        assert!(stream.try_next().is_none());
        // ...but delivery resumes for jobs submitted from here on.
        let handle = service.submit(session, smoke_job()).unwrap();
        let outcome = stream.next().expect("owed after re-attach").expect("job ran");
        assert_eq!(outcome.job, handle.id());
        assert!(stream.next().is_none());
    }

    #[test]
    fn zero_queue_bound_is_normalized() {
        // A directly-constructed config bypasses the builder clamp; the
        // service must normalize it rather than livelock every admission.
        let config = ServiceConfig { max_queued_jobs: 0, workers: 1, ..ServiceConfig::default() };
        let service = KernelService::new(config);
        let session = service.open_session(SessionSpec::tenant("t"));
        assert_eq!(service.admission_stats().queue_limit, 1);
        service.submit(session, smoke_job()).unwrap().wait().unwrap();
    }

    #[test]
    fn invalid_jobs_are_rejected_at_admission() {
        let service = KernelService::new(ServiceConfig::default().with_workers(1));
        let session = service.open_session(SessionSpec::tenant("t"));

        let missing_params =
            JobSpec::new(StencilProgram::jacobi_5pt(), vec![0.5], RegionSize::square(16));
        let err = service.submit(session, missing_params).unwrap_err();
        assert!(matches!(err, SubmitError::InvalidJob(ref m) if m.contains("parameters")), "{err}");
        assert!(!err.is_backpressure());

        let zero_block = smoke_job().with_block(0);
        assert!(matches!(
            service.submit(session, zero_block),
            Err(SubmitError::InvalidJob(ref m)) if m.contains("block")
        ));

        let bad_policy = smoke_job().with_policy(SchedulePolicy::Weighted(vec![]));
        assert!(matches!(
            service.submit(session, bad_policy),
            Err(SubmitError::InvalidJob(ref m)) if m.contains("at least one processor")
        ));

        assert_eq!(service.session(session).unwrap().meter().jobs_rejected, 3);
        assert!(service.drain().is_empty(), "nothing malformed reached the queue");
    }

    #[test]
    fn worker_scratch_is_pooled_across_jobs() {
        // One worker runs three jobs back to back: the first creates the
        // scratch, the later two reuse it warm.
        let service = KernelService::new(ServiceConfig::default().with_workers(1));
        let session = service.open_session(SessionSpec::tenant("t"));
        for _ in 0..3 {
            service.submit(session, smoke_job()).unwrap();
        }
        let reports = service.drain();
        assert_eq!(reports.len(), 3);
        let stats = service.scratch_stats();
        assert_eq!(stats.created, 1, "one worker grows exactly one scratch: {stats:?}");
        assert_eq!(stats.reused, 2, "later jobs run on warm buffers: {stats:?}");
        assert_eq!(stats.idle, 1, "the scratch is parked between jobs: {stats:?}");
    }

    #[test]
    fn child_sessions_link_to_their_parent() {
        let service = KernelService::new(ServiceConfig::default().with_workers(1));
        let parent = service.open_session(SessionSpec::tenant("proj"));
        let child =
            service.open_child_session(parent, SessionSpec::tenant("proj/sweep-1")).unwrap();
        assert_eq!(service.session(child).unwrap().parent(), Some(parent));
        assert_eq!(service.session(parent).unwrap().parent(), None);
        assert_eq!(
            service.open_child_session(12345, SessionSpec::tenant("x")).unwrap_err(),
            SubmitError::UnknownSession(12345),
        );
        // Child accounting is separate from the parent's.
        service.submit(child, smoke_job()).unwrap();
        service.drain();
        assert_eq!(service.session(child).unwrap().meter().jobs_completed, 1);
        assert_eq!(service.session(parent).unwrap().meter().jobs_completed, 0);
    }

    #[test]
    fn parallel_topology_jobs_run_under_aspects() {
        let service = KernelService::new(ServiceConfig::default().with_workers(2));
        let session = service.open_session(SessionSpec::tenant("hybrid"));
        let serial = smoke_job();
        let hybrid = smoke_job().with_topology(Topology::hybrid(2, 2));
        service.submit(session, serial).unwrap();
        let hybrid_handle = service.submit(session, hybrid).unwrap();
        let reports = service.drain();
        assert_eq!(reports.len(), 2);
        // The fields are identical cell-for-cell; the checksum accumulates in
        // sink order (which differs across topologies), so compare with a
        // float-summation tolerance.
        let (a, b) = (reports[0].checksum, reports[1].checksum);
        assert!((a - b).abs() < 1e-9 * a.abs().max(1.0), "topology changed results: {a} vs {b}");
        assert_eq!(reports[1].summary.tasks, 4);
        assert!(reports[1].summary.pages_sent > 0, "ranks exchanged halo pages");
        // Progress saw all four tasks of the hybrid run finish.
        assert_eq!(hybrid_handle.progress().tasks_finished, 4);
    }

    #[test]
    fn drain_session_takes_only_that_sessions_reports() {
        let service = KernelService::new(ServiceConfig::default().with_workers(2));
        let a = service.open_session(SessionSpec::tenant("a"));
        let b = service.open_session(SessionSpec::tenant("b"));
        service.submit_batch(a, vec![smoke_job(), smoke_job()]).unwrap();
        service.submit(b, smoke_job()).unwrap();

        let a_reports = service.drain_session(a);
        assert_eq!(a_reports.len(), 2);
        assert!(a_reports.iter().all(|r| r.session == a && r.tenant == "a"));

        // B's results were not consumed by A's drain.
        let b_reports = service.drain_session(b);
        assert_eq!(b_reports.len(), 1);
        assert_eq!(b_reports[0].session, b);

        // Nothing left for the global drain; unknown sessions return empty.
        assert!(service.drain().is_empty());
        assert!(service.drain_session(999).is_empty());
    }

    #[test]
    fn batch_errors_carry_the_accepted_prefix() {
        // Admission-only mode keeps in-flight counts pinned, so the quota
        // trips deterministically mid-batch (the zero admission timeout
        // makes the blocking `submit` inside the batch fail fast).
        let service = KernelService::new(admission_only().with_quota(2));
        let session = service.open_session(SessionSpec::tenant("t"));
        let err = service
            .submit_batch(session, vec![smoke_job(), smoke_job(), smoke_job(), smoke_job()])
            .unwrap_err();
        assert_eq!(err.accepted, vec![1, 2], "the accepted prefix is reported");
        assert_eq!(err.index, 2, "the failing spec's position is reported");
        assert_eq!(err.error, SubmitError::WouldBlock { session, limit: 2 });
        assert!(err.to_string().contains("after accepting 2 jobs"));
        // With no workers, queued jobs can never finish — drain must not hang.
        assert!(service.drain().is_empty());
    }

    #[test]
    fn small_regions_prewarm_the_clipped_plan() {
        // Region smaller than the block: the tiling clips the single tile to
        // 4x4, and the admission pre-warm must key on that same shape — one
        // compile total, no dead 8x8 entry.
        let service = KernelService::new(ServiceConfig::default().with_workers(1));
        let session = service.open_session(SessionSpec::tenant("t"));
        let tiny =
            JobSpec::new(StencilProgram::jacobi_5pt(), vec![0.5, 0.125], RegionSize::square(4))
                .with_block(8)
                .with_steps(2);
        service.submit(session, tiny.clone()).unwrap();
        service.submit(session, tiny).unwrap();
        let reports = service.drain();
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().all(|r| r.error.is_none()));
        let stats = service.cache_stats();
        assert_eq!(stats.misses, 1, "exactly one plan compiled: {stats:?}");
        assert_eq!(stats.entries, 1, "no dead full-block entry: {stats:?}");
        assert!(!reports[0].plan_cache_hit);
        assert!(reports[1].plan_cache_hit);
    }

    #[test]
    fn shutdown_with_a_backlog_abandons_and_resolves_queued_jobs() {
        // One worker, a deep queue: shutdown must not execute the backlog
        // (each job takes ~ms; a hung Drop would blow the test timeout), and
        // every abandoned job's handle must still resolve.
        let service = KernelService::new(ServiceConfig::default().with_workers(1).with_quota(1000));
        let session = service.open_session(SessionSpec::tenant("t"));
        let handles: Vec<JobHandle> =
            (0..64).map(|_| service.submit(session, smoke_job()).unwrap()).collect();
        service.shutdown();
        let mut completed = 0;
        let mut abandoned = 0;
        for handle in &handles {
            match handle.poll().expect("every job resolves at shutdown") {
                Ok(report) => {
                    assert!(report.error.is_none());
                    completed += 1;
                }
                Err(e) => {
                    assert_eq!(e.kind, JobErrorKind::Abandoned);
                    abandoned += 1;
                }
            }
        }
        assert_eq!(completed + abandoned, 64);
        assert!(abandoned > 0, "a 64-deep backlog cannot all have run before shutdown");
    }

    #[test]
    fn zero_worker_shutdown_resolves_every_queued_handle() {
        let service = KernelService::new(admission_only().with_quota(8));
        let session = service.open_session(SessionSpec::tenant("t"));
        let handles: Vec<JobHandle> =
            (0..4).map(|_| service.submit(session, smoke_job()).unwrap()).collect();
        assert!(handles.iter().all(|h| !h.is_complete()));
        drop(service);
        for handle in &handles {
            assert_eq!(
                handle.poll().expect("resolved by Drop").unwrap_err().kind,
                JobErrorKind::Abandoned
            );
        }
    }

    #[test]
    fn report_retention_can_be_disabled() {
        let service = KernelService::new(
            ServiceConfig::default().with_workers(1).with_report_retention(false),
        );
        let session = service.open_session(SessionSpec::tenant("t"));
        let handle = service.submit(session, smoke_job()).unwrap();
        let report = handle.wait().expect("handles still resolve");
        assert!(report.error.is_none());
        assert!(service.drain().is_empty(), "nothing retained for the sync path");
        assert_eq!(service.session(session).unwrap().meter().jobs_completed, 1);
    }

    #[test]
    fn drain_on_idle_service_returns_immediately() {
        let service = KernelService::new(ServiceConfig::default().with_workers(1));
        assert!(service.drain().is_empty());
        assert!(SubmitError::InvalidJob("x".into()).to_string().contains("invalid job"));
        assert!(SubmitError::UnknownSession(1).to_string().contains("unknown"));
        assert!(SubmitError::WouldBlock { session: 1, limit: 2 }.to_string().contains("quota"));
        assert!(SubmitError::QueueFull { limit: 2 }.to_string().contains("full"));
        assert!(SubmitError::ShuttingDown.to_string().contains("shutting down"));
    }
}
