//! The kernel-execution service: admission, queue, worker pool, results.
//!
//! [`KernelService`] owns a [`PlanCache`], a session registry and a pool of
//! worker threads draining one MPMC job queue.  A submission flows:
//!
//! 1. **Admission** — the session must exist and be active, the spec must be
//!    well-formed, and the session's in-flight count must be under its quota;
//!    rejections are metered and returned as [`SubmitError`]s without ever
//!    reaching the queue.
//! 2. **Queue** — accepted jobs carry their id onto the crossbeam channel;
//!    any idle worker picks them up (work stealing, no per-worker queues).
//! 3. **Execution** — the worker resolves the job's primary plan through the
//!    shared cache (attributing the hit/miss to the job), then drives the
//!    existing `runtime::execute` + `IrStencilApp` path with the cache
//!    installed as the app's [`PlanSource`](aohpc_kernel::PlanSource).
//! 4. **Results** — a [`JobReport`] (checksum, deterministic simulated time,
//!    run digest) is recorded, session metering is updated, and
//!    [`KernelService::drain`] wakes when nothing is left in flight.

use crate::cache::{PlanCache, PlanCacheStats};
use crate::job::{JobId, JobReport, JobSpec};
use crate::session::{SessionCtx, SessionId, SessionMeter, SessionSpec};
use aohpc_aop::Weaver;
use aohpc_dsl::{DslSystem, SGridSystem};
use aohpc_env::Extent;
use aohpc_kernel::{
    new_stencil_field_sink, HeteroDispatcher, IrStencilApp, ScratchPool, ScratchPoolStats,
};
use aohpc_runtime::{execute, CostModel, MpiAspect, OmpAspect, RunConfig, Topology};
use aohpc_workloads::{checksum, Scale};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::JoinHandle;

/// Sizing of a [`KernelService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Worker threads draining the queue.  `0` is admission-only mode: jobs
    /// queue but never execute (used by tests to pin in-flight counts).
    pub workers: usize,
    /// Shards of the plan cache.
    pub cache_shards: usize,
    /// Total plan-cache capacity (entries).
    pub cache_capacity: usize,
    /// Maximum jobs one session may have in flight; further submissions are
    /// rejected with [`SubmitError::QuotaExceeded`].
    pub max_in_flight_per_session: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            cache_shards: 8,
            cache_capacity: 64,
            max_in_flight_per_session: 32,
        }
    }
}

impl ServiceConfig {
    /// Sizing for an evaluation [`Scale`].
    pub fn for_scale(scale: Scale) -> Self {
        ServiceConfig { workers: scale.service_workers(), ..Default::default() }
    }

    /// One worker per task of a [`Topology`] (the service-side analogue of
    /// "one task per core").
    pub fn for_topology(topology: &Topology) -> Self {
        ServiceConfig { workers: topology.total_tasks(), ..Default::default() }
    }

    /// Set the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Set the plan-cache geometry.
    pub fn with_cache(mut self, shards: usize, capacity: usize) -> Self {
        self.cache_shards = shards;
        self.cache_capacity = capacity;
        self
    }

    /// Set the per-session in-flight quota.
    pub fn with_quota(mut self, max_in_flight: usize) -> Self {
        self.max_in_flight_per_session = max_in_flight;
        self
    }
}

/// Why a submission was refused at admission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// No session with this id was ever opened.
    UnknownSession(SessionId),
    /// The session has been closed.
    SessionClosed(SessionId),
    /// The session is at its in-flight quota.
    QuotaExceeded {
        /// The session at quota.
        session: SessionId,
        /// The configured limit.
        limit: usize,
    },
    /// The spec itself is malformed (reason inside).
    InvalidJob(String),
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::UnknownSession(id) => write!(f, "unknown session {id}"),
            SubmitError::SessionClosed(id) => write!(f, "session {id} is closed"),
            SubmitError::QuotaExceeded { session, limit } => {
                write!(f, "session {session} is at its in-flight quota ({limit})")
            }
            SubmitError::InvalidJob(reason) => write!(f, "invalid job: {reason}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A batch submission that was cut short: the accepted prefix keeps running,
/// and this error says exactly where admission stopped and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchError {
    /// Ids of the specs accepted before the rejection (in submission order).
    pub accepted: Vec<JobId>,
    /// Index (into the submitted `Vec`) of the rejected spec.
    pub index: usize,
    /// Why that spec was rejected.
    pub error: SubmitError,
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "batch stopped at spec {} after accepting {} jobs: {}",
            self.index,
            self.accepted.len(),
            self.error
        )
    }
}

impl std::error::Error for BatchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

struct Queued {
    job: JobId,
    session: SessionId,
    spec: JobSpec,
}

struct Inner {
    config: ServiceConfig,
    cache: Arc<PlanCache>,
    /// Execution-scratch recycling across jobs: each job's tasks check their
    /// tape register files out of this pool and the task-context drop returns
    /// them, so a worker's steady-state jobs run on warm buffers.
    scratch: Arc<ScratchPool>,
    sessions: Mutex<HashMap<SessionId, SessionCtx>>,
    results: Mutex<Vec<JobReport>>,
    pending: StdMutex<u64>,
    idle: Condvar,
    next_session: AtomicU64,
    next_job: AtomicU64,
    /// Set by shutdown/Drop: workers abandon queued-but-unstarted jobs
    /// instead of executing the backlog (mpsc buffers survive sender drop, so
    /// without this flag Drop would block until every queued job ran).
    shutting_down: AtomicBool,
}

/// A multi-tenant, concurrent kernel-execution service.
///
/// See the [module docs](self) for the submission pipeline.  Dropping the
/// service (or calling [`KernelService::shutdown`]) closes the queue and
/// joins the workers; queued-but-unstarted jobs are abandoned, so call
/// [`KernelService::drain`] first if their results matter.
pub struct KernelService {
    inner: Arc<Inner>,
    queue: Option<Sender<Queued>>,
    // Kept so `submit` stays valid in admission-only mode (0 workers), where
    // no worker thread holds a receiver clone.
    _queue_rx: Receiver<Queued>,
    workers: Vec<JoinHandle<()>>,
}

impl KernelService {
    /// Start a service with the given sizing.
    pub fn new(config: ServiceConfig) -> Self {
        let cache = Arc::new(PlanCache::new(config.cache_shards, config.cache_capacity));
        // Enough idle scratches for every worker to run a hybrid-topology job
        // (a few tasks each) without dropping warm buffers on release.
        let scratch = ScratchPool::new(config.workers.max(1) * 4);
        let inner = Arc::new(Inner {
            config,
            cache,
            scratch,
            sessions: Mutex::new(HashMap::new()),
            results: Mutex::new(Vec::new()),
            pending: StdMutex::new(0),
            idle: Condvar::new(),
            next_session: AtomicU64::new(0),
            next_job: AtomicU64::new(0),
            shutting_down: AtomicBool::new(false),
        });
        let (tx, rx) = unbounded::<Queued>();
        let workers = (0..config.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("aohpc-service-{i}"))
                    .spawn(move || {
                        while let Ok(queued) = rx.recv() {
                            if inner.shutting_down.load(Ordering::Relaxed) {
                                abandon_one(&inner, queued);
                            } else {
                                run_one(&inner, queued);
                            }
                        }
                    })
                    .expect("spawn service worker")
            })
            .collect();
        KernelService { inner, queue: Some(tx), _queue_rx: rx, workers }
    }

    /// A service sized for an evaluation [`Scale`].
    pub fn for_scale(scale: Scale) -> Self {
        Self::new(ServiceConfig::for_scale(scale))
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Plan-cache counters.
    pub fn cache_stats(&self) -> PlanCacheStats {
        self.inner.cache.stats()
    }

    /// Execution-scratch pool counters (created / reused / idle).
    pub fn scratch_stats(&self) -> ScratchPoolStats {
        self.inner.scratch.stats()
    }

    /// The shared plan cache (e.g. to install into an out-of-band app).
    pub fn plan_cache(&self) -> Arc<PlanCache> {
        Arc::clone(&self.inner.cache)
    }

    /// Open a session for a tenant.
    pub fn open_session(&self, spec: SessionSpec) -> SessionId {
        self.open(spec, None)
    }

    /// Open a child session nested under `parent` (its accounting stays
    /// separate; the link records provenance).
    pub fn open_child_session(
        &self,
        parent: SessionId,
        spec: SessionSpec,
    ) -> Result<SessionId, SubmitError> {
        if !self.inner.sessions.lock().contains_key(&parent) {
            return Err(SubmitError::UnknownSession(parent));
        }
        Ok(self.open(spec, Some(parent)))
    }

    fn open(&self, spec: SessionSpec, parent: Option<SessionId>) -> SessionId {
        let id = self.inner.next_session.fetch_add(1, Ordering::Relaxed) + 1;
        self.inner.sessions.lock().insert(id, SessionCtx::create(id, spec, parent));
        id
    }

    /// Snapshot a session's context (None if never opened).
    pub fn session(&self, id: SessionId) -> Option<SessionCtx> {
        self.inner.sessions.lock().get(&id).cloned()
    }

    /// Close a session: further submissions are rejected, in-flight jobs
    /// finish normally.  Returns the final meter (None if never opened).
    pub fn close_session(&self, id: SessionId) -> Option<SessionMeter> {
        let mut sessions = self.inner.sessions.lock();
        let ctx = sessions.get_mut(&id)?;
        ctx.close();
        Some(*ctx.meter())
    }

    /// Submit one job under a session.
    ///
    /// Admission checks run in the order the module docs list them: the
    /// session must exist and be active (so callers keying re-auth logic on
    /// [`SubmitError::UnknownSession`] / [`SubmitError::SessionClosed`] see
    /// them regardless of the spec), then the spec itself, then the quota.
    pub fn submit(&self, session: SessionId, spec: JobSpec) -> Result<JobId, SubmitError> {
        {
            let mut sessions = self.inner.sessions.lock();
            let ctx = sessions.get_mut(&session).ok_or(SubmitError::UnknownSession(session))?;
            if !ctx.is_active() {
                return Err(SubmitError::SessionClosed(session));
            }
            if let Err(reason) = validate(&spec) {
                ctx.note_rejected();
                return Err(SubmitError::InvalidJob(reason));
            }
            if ctx.in_flight() >= self.inner.config.max_in_flight_per_session {
                ctx.note_rejected();
                return Err(SubmitError::QuotaExceeded {
                    session,
                    limit: self.inner.config.max_in_flight_per_session,
                });
            }
            ctx.note_submitted();
        }
        let job = self.inner.next_job.fetch_add(1, Ordering::Relaxed) + 1;
        *self.inner.pending.lock().expect("pending lock") += 1;
        self.queue
            .as_ref()
            .expect("queue open while service exists")
            .send(Queued { job, session, spec })
            .expect("workers hold the receiver while the service exists");
        Ok(job)
    }

    /// Submit a batch under one session, stopping at the first rejection.
    ///
    /// Returns the ids of the accepted jobs on success.  On a rejection the
    /// already accepted prefix keeps running (its results arrive via `drain`);
    /// the returned [`BatchError`] carries that prefix's ids and the index of
    /// the rejected spec so the caller can correlate and retry only the rest.
    pub fn submit_batch(
        &self,
        session: SessionId,
        specs: Vec<JobSpec>,
    ) -> Result<Vec<JobId>, BatchError> {
        let mut accepted = Vec::with_capacity(specs.len());
        for (index, spec) in specs.into_iter().enumerate() {
            match self.submit(session, spec) {
                Ok(id) => accepted.push(id),
                Err(error) => return Err(BatchError { accepted, index, error }),
            }
        }
        Ok(accepted)
    }

    /// Block until nothing is in flight, then take **all** accumulated
    /// reports — every session's — ordered by job id.
    ///
    /// This is the orchestrator-level collection point: it is destructive
    /// across tenants, so use it from the single caller that owns the
    /// service.  Independent tenants sharing one service should collect with
    /// [`KernelService::drain_session`] instead.
    ///
    /// In admission-only mode (0 workers) queued jobs can never complete, so
    /// `drain` does not wait for them — it returns whatever has been recorded
    /// (nothing) instead of blocking forever.
    pub fn drain(&self) -> Vec<JobReport> {
        if !self.workers.is_empty() {
            let mut pending = self.inner.pending.lock().expect("pending lock");
            while *pending > 0 {
                pending = self.inner.idle.wait(pending).expect("pending lock");
            }
        }
        let mut out = std::mem::take(&mut *self.inner.results.lock());
        out.sort_by_key(|r| r.job);
        out
    }

    /// Block until `session` has nothing in flight, then take *its* reports
    /// only (ordered by job id).  Other sessions' results stay queued for
    /// their own owners — the tenant-safe counterpart of
    /// [`KernelService::drain`].
    ///
    /// A session that was never opened (or has nothing in flight) returns
    /// whatever is already recorded for it without blocking; admission-only
    /// mode (0 workers) never blocks, as with `drain`.
    pub fn drain_session(&self, session: SessionId) -> Vec<JobReport> {
        if !self.workers.is_empty() {
            let mut pending = self.inner.pending.lock().expect("pending lock");
            loop {
                let in_flight = self
                    .inner
                    .sessions
                    .lock()
                    .get(&session)
                    .map(|ctx| ctx.in_flight())
                    .unwrap_or(0);
                if in_flight == 0 {
                    break;
                }
                pending = self.inner.idle.wait(pending).expect("pending lock");
            }
        }
        let mut results = self.inner.results.lock();
        let (mut out, rest): (Vec<_>, Vec<_>) =
            results.drain(..).partition(|r| r.session == session);
        *results = rest;
        drop(results);
        out.sort_by_key(|r| r.job);
        out
    }

    /// Close the queue and join the workers.  Implied by `Drop`; explicit
    /// form for callers that want to observe worker termination.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        // The flag makes workers discard the remaining backlog (the mpsc
        // buffer survives the sender drop); the in-flight job of each worker
        // still finishes.
        self.inner.shutting_down.store(true, Ordering::Relaxed);
        drop(self.queue.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for KernelService {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

impl fmt::Debug for KernelService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KernelService")
            .field("workers", &self.workers.len())
            .field("config", &self.inner.config)
            .field("cache", &self.inner.cache.stats())
            .finish()
    }
}

fn validate(spec: &JobSpec) -> Result<(), String> {
    if spec.params.len() < spec.program.num_params() {
        return Err(format!(
            "program {} declares {} parameters, {} given",
            spec.program.name(),
            spec.program.num_params(),
            spec.params.len()
        ));
    }
    if spec.block == 0 {
        return Err("block side length must be non-zero".to_string());
    }
    if spec.region.nx == 0 || spec.region.ny == 0 {
        return Err("region must be non-empty".to_string());
    }
    if let Err(e) = HeteroDispatcher::try_new(spec.policy.clone()) {
        return Err(format!("schedule policy: {e}"));
    }
    Ok(())
}

/// Discard a queued job during shutdown, settling the counters so a
/// concurrent `drain` cannot hang on work that will never run.
fn abandon_one(inner: &Inner, queued: Queued) {
    if let Some(ctx) = inner.sessions.lock().get_mut(&queued.session) {
        ctx.note_abandoned();
    }
    let mut pending = inner.pending.lock().expect("pending lock");
    *pending -= 1;
    drop(pending);
    inner.idle.notify_all();
}

/// Execute one queued job on the calling worker thread and record the result.
fn run_one(inner: &Inner, queued: Queued) {
    let Queued { job, session, spec } = queued;
    let fingerprint = spec.program.fingerprint();
    let program_name = spec.program.name().to_string();
    let topology = spec.topology.clone();

    // Everything fallible runs inside the unwind guard so a panicking job can
    // never strand the pending counter (which would hang every later drain).
    // The pre-warm outcome escapes through a Cell so a panic *after* plan
    // resolution still meters the hit/miss it already charged to the cache.
    let prewarm_hit: std::cell::Cell<Option<bool>> = std::cell::Cell::new(None);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        // Resolve the job's primary plan up front so the hit/miss is
        // attributable to *this* job; the app's own plan lookups then hit the
        // warm entry.  The primary shape is the block-(0,0) tile, which the
        // DSL tiling clips to the region, so small regions pre-warm the plan
        // that actually executes.
        let primary = Extent::new2d(spec.block.min(spec.region.nx), spec.block.min(spec.region.ny));
        let (_, hit) = inner.cache.get_or_compile(&spec.program, primary, spec.opt_level);
        prewarm_hit.set(Some(hit));
        execute_spec(inner, &spec)
    }));
    let cache_hit = prewarm_hit.get();
    let (checksum_value, simulated_seconds, summary, error) = match outcome {
        Ok((cks, sim, summary)) => (cks, sim, summary, None),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "job panicked".to_string());
            (f64::NAN, 0.0, aohpc_runtime::RunReport::empty(topology).summary(), Some(msg))
        }
    };

    // Meter the session *without* releasing its in-flight slot yet: the
    // report must be in `results` before in_flight drops to zero, or a
    // concurrent `drain_session` could observe an idle session and miss its
    // final report.
    let tenant = {
        let mut sessions = inner.sessions.lock();
        match sessions.get_mut(&session) {
            Some(ctx) => {
                let meter = ctx.meter_mut();
                match cache_hit {
                    Some(true) => meter.plan_cache_hits += 1,
                    Some(false) => meter.plan_cache_misses += 1,
                    None => {} // panicked before/while resolving the plan
                }
                meter.cells_updated += summary.writes;
                meter.simulated_seconds += simulated_seconds;
                ctx.tenant().to_string()
            }
            None => "unknown".to_string(),
        }
    };

    inner.results.lock().push(JobReport {
        job,
        session,
        tenant,
        program: program_name,
        fingerprint,
        plan_cache_hit: cache_hit.unwrap_or(false),
        checksum: checksum_value,
        simulated_seconds,
        summary,
        error,
    });

    // The report is visible; now settle the counters the drains wait on.
    if let Some(ctx) = inner.sessions.lock().get_mut(&session) {
        ctx.note_completed();
    }
    let mut pending = inner.pending.lock().expect("pending lock");
    *pending -= 1;
    drop(pending);
    // Every completion wakes the waiters: `drain` re-checks the global count,
    // `drain_session` its session's in-flight count.
    inner.idle.notify_all();
}

/// The execution core: the same compile-and-run pipeline the one-shot
/// harnesses use, with the shared cache installed as the plan source.
fn execute_spec(inner: &Inner, spec: &JobSpec) -> (f64, f64, aohpc_runtime::RunSummary) {
    let system = Arc::new(SGridSystem::with_block_size(spec.region, spec.block));
    let sink = new_stencil_field_sink();
    let dispatcher =
        HeteroDispatcher::try_new(spec.policy.clone()).expect("policy validated at submit");
    let app = IrStencilApp::new(spec.program.clone(), spec.params.clone(), spec.steps)
        .with_opt_level(spec.opt_level)
        .with_dispatcher(dispatcher)
        .with_plan_source(inner.cache.clone())
        .with_scratch_pool(inner.scratch.clone())
        .with_field_sink(sink.clone());

    let mut weaver = Weaver::new();
    if spec.topology.ranks() > 1 {
        weaver = weaver.with_aspect(Box::new(MpiAspect::<f64>::new()));
    }
    if spec.topology.threads_per_rank() > 1 {
        weaver = weaver.with_aspect(Box::new(OmpAspect::<f64>::new()));
    }
    let woven = weaver.weave();

    let config =
        RunConfig::serial().with_topology(spec.topology.clone()).with_weave_mode(spec.weave_mode);
    let report = execute(&config, woven, system.env_factory(), app.factory());

    let cks = checksum(sink.lock().iter().map(|(_, v)| *v));
    let sim = CostModel::default().makespan_seconds(&report);
    (cks, sim, report.summary())
}

#[cfg(test)]
mod tests {
    use super::*;
    use aohpc_kernel::{Processor, SchedulePolicy, StencilProgram};
    use aohpc_workloads::RegionSize;

    fn smoke_job() -> JobSpec {
        JobSpec::jacobi(Scale::Smoke)
    }

    #[test]
    fn submit_drain_roundtrip_reports_every_job() {
        let service = KernelService::new(ServiceConfig::default().with_workers(2));
        let session = service.open_session(SessionSpec::tenant("acme"));
        let ids =
            service.submit_batch(session, vec![smoke_job(), smoke_job(), smoke_job()]).unwrap();
        assert_eq!(ids, vec![1, 2, 3]);
        let reports = service.drain();
        assert_eq!(reports.len(), 3);
        for (report, id) in reports.iter().zip(&ids) {
            assert_eq!(report.job, *id);
            assert_eq!(report.session, session);
            assert_eq!(report.tenant, "acme");
            assert_eq!(report.program, "jacobi-5pt");
            assert!(report.error.is_none());
            assert!(report.checksum.is_finite());
            assert!(report.simulated_seconds > 0.0);
            assert!(report.summary.writes > 0);
        }
        // Same program, same shape: one compile, the rest shared.
        assert_eq!(service.cache_stats().misses, 1);
        let ctx = service.session(session).unwrap();
        assert_eq!(ctx.meter().jobs_submitted, 3);
        assert_eq!(ctx.meter().jobs_completed, 3);
        assert_eq!(ctx.meter().plan_cache_misses, 1);
        assert_eq!(ctx.meter().plan_cache_hits, 2);
        assert!(ctx.meter().simulated_seconds > 0.0);
        assert_eq!(ctx.in_flight(), 0);
    }

    #[test]
    fn results_match_across_backends_and_sessions() {
        let service = KernelService::new(ServiceConfig::default().with_workers(3));
        let a = service.open_session(SessionSpec::tenant("a"));
        let b = service.open_session(SessionSpec::tenant("b"));
        for processor in [Processor::Scalar, Processor::Simd, Processor::Accelerator] {
            service.submit(a, smoke_job().with_policy(SchedulePolicy::Single(processor))).unwrap();
            service.submit(b, smoke_job().with_policy(SchedulePolicy::Single(processor))).unwrap();
        }
        let reports = service.drain();
        assert_eq!(reports.len(), 6);
        let first = reports[0].checksum;
        for r in &reports {
            assert_eq!(r.checksum, first, "all backends and tenants agree bit-for-bit");
        }
    }

    #[test]
    fn admission_enforces_sessions_and_quotas() {
        // Admission-only mode (no workers): in-flight counts never drop, so
        // quota behaviour is deterministic.
        let service = KernelService::new(ServiceConfig::default().with_workers(0).with_quota(2));
        assert_eq!(service.worker_count(), 0);

        assert_eq!(service.submit(99, smoke_job()), Err(SubmitError::UnknownSession(99)),);

        let session = service.open_session(SessionSpec::tenant("t"));
        service.submit(session, smoke_job()).unwrap();
        service.submit(session, smoke_job()).unwrap();
        assert_eq!(
            service.submit(session, smoke_job()),
            Err(SubmitError::QuotaExceeded { session, limit: 2 }),
        );
        let ctx = service.session(session).unwrap();
        assert_eq!(ctx.in_flight(), 2);
        assert_eq!(ctx.meter().jobs_rejected, 1);

        let closed = service.open_session(SessionSpec::tenant("u"));
        service.close_session(closed).unwrap();
        assert_eq!(service.submit(closed, smoke_job()), Err(SubmitError::SessionClosed(closed)));
        assert!(service.close_session(404).is_none());

        // Session errors take precedence over spec errors: a caller keying
        // re-auth logic on UnknownSession/SessionClosed sees them even when
        // the spec is also malformed.
        let bad_spec = smoke_job().with_block(0);
        assert_eq!(service.submit(99, bad_spec.clone()), Err(SubmitError::UnknownSession(99)));
        assert_eq!(service.submit(closed, bad_spec), Err(SubmitError::SessionClosed(closed)));
        assert_eq!(
            service.session(closed).unwrap().meter().jobs_rejected,
            0,
            "closed sessions do not meter submissions they could never run"
        );
    }

    #[test]
    fn invalid_jobs_are_rejected_at_admission() {
        let service = KernelService::new(ServiceConfig::default().with_workers(1));
        let session = service.open_session(SessionSpec::tenant("t"));

        let missing_params =
            JobSpec::new(StencilProgram::jacobi_5pt(), vec![0.5], RegionSize::square(16));
        let err = service.submit(session, missing_params).unwrap_err();
        assert!(matches!(err, SubmitError::InvalidJob(ref m) if m.contains("parameters")), "{err}");

        let zero_block = smoke_job().with_block(0);
        assert!(matches!(
            service.submit(session, zero_block),
            Err(SubmitError::InvalidJob(ref m)) if m.contains("block")
        ));

        let bad_policy = smoke_job().with_policy(SchedulePolicy::Weighted(vec![]));
        assert!(matches!(
            service.submit(session, bad_policy),
            Err(SubmitError::InvalidJob(ref m)) if m.contains("at least one processor")
        ));

        assert_eq!(service.session(session).unwrap().meter().jobs_rejected, 3);
        assert!(service.drain().is_empty(), "nothing malformed reached the queue");
    }

    #[test]
    fn worker_scratch_is_pooled_across_jobs() {
        // One worker runs three jobs back to back: the first creates the
        // scratch, the later two reuse it warm.
        let service = KernelService::new(ServiceConfig::default().with_workers(1));
        let session = service.open_session(SessionSpec::tenant("t"));
        for _ in 0..3 {
            service.submit(session, smoke_job()).unwrap();
        }
        let reports = service.drain();
        assert_eq!(reports.len(), 3);
        let stats = service.scratch_stats();
        assert_eq!(stats.created, 1, "one worker grows exactly one scratch: {stats:?}");
        assert_eq!(stats.reused, 2, "later jobs run on warm buffers: {stats:?}");
        assert_eq!(stats.idle, 1, "the scratch is parked between jobs: {stats:?}");
    }

    #[test]
    fn child_sessions_link_to_their_parent() {
        let service = KernelService::new(ServiceConfig::default().with_workers(1));
        let parent = service.open_session(SessionSpec::tenant("proj"));
        let child =
            service.open_child_session(parent, SessionSpec::tenant("proj/sweep-1")).unwrap();
        assert_eq!(service.session(child).unwrap().parent(), Some(parent));
        assert_eq!(service.session(parent).unwrap().parent(), None);
        assert_eq!(
            service.open_child_session(12345, SessionSpec::tenant("x")),
            Err(SubmitError::UnknownSession(12345)),
        );
        // Child accounting is separate from the parent's.
        service.submit(child, smoke_job()).unwrap();
        service.drain();
        assert_eq!(service.session(child).unwrap().meter().jobs_completed, 1);
        assert_eq!(service.session(parent).unwrap().meter().jobs_completed, 0);
    }

    #[test]
    fn parallel_topology_jobs_run_under_aspects() {
        let service = KernelService::new(ServiceConfig::default().with_workers(2));
        let session = service.open_session(SessionSpec::tenant("hybrid"));
        let serial = smoke_job();
        let hybrid = smoke_job().with_topology(Topology::hybrid(2, 2));
        service.submit(session, serial).unwrap();
        service.submit(session, hybrid).unwrap();
        let reports = service.drain();
        assert_eq!(reports.len(), 2);
        // The fields are identical cell-for-cell; the checksum accumulates in
        // sink order (which differs across topologies), so compare with a
        // float-summation tolerance.
        let (a, b) = (reports[0].checksum, reports[1].checksum);
        assert!((a - b).abs() < 1e-9 * a.abs().max(1.0), "topology changed results: {a} vs {b}");
        assert_eq!(reports[1].summary.tasks, 4);
        assert!(reports[1].summary.pages_sent > 0, "ranks exchanged halo pages");
    }

    #[test]
    fn drain_session_takes_only_that_sessions_reports() {
        let service = KernelService::new(ServiceConfig::default().with_workers(2));
        let a = service.open_session(SessionSpec::tenant("a"));
        let b = service.open_session(SessionSpec::tenant("b"));
        service.submit_batch(a, vec![smoke_job(), smoke_job()]).unwrap();
        service.submit(b, smoke_job()).unwrap();

        let a_reports = service.drain_session(a);
        assert_eq!(a_reports.len(), 2);
        assert!(a_reports.iter().all(|r| r.session == a && r.tenant == "a"));

        // B's results were not consumed by A's drain.
        let b_reports = service.drain_session(b);
        assert_eq!(b_reports.len(), 1);
        assert_eq!(b_reports[0].session, b);

        // Nothing left for the global drain; unknown sessions return empty.
        assert!(service.drain().is_empty());
        assert!(service.drain_session(999).is_empty());
    }

    #[test]
    fn batch_errors_carry_the_accepted_prefix() {
        // Admission-only mode keeps in-flight counts pinned, so the quota
        // trips deterministically mid-batch.
        let service = KernelService::new(ServiceConfig::default().with_workers(0).with_quota(2));
        let session = service.open_session(SessionSpec::tenant("t"));
        let err = service
            .submit_batch(session, vec![smoke_job(), smoke_job(), smoke_job(), smoke_job()])
            .unwrap_err();
        assert_eq!(err.accepted, vec![1, 2], "the accepted prefix is reported");
        assert_eq!(err.index, 2, "the failing spec's position is reported");
        assert_eq!(err.error, SubmitError::QuotaExceeded { session, limit: 2 });
        assert!(err.to_string().contains("after accepting 2 jobs"));
        // With no workers, queued jobs can never finish — drain must not hang.
        assert!(service.drain().is_empty());
    }

    #[test]
    fn small_regions_prewarm_the_clipped_plan() {
        // Region smaller than the block: the tiling clips the single tile to
        // 4x4, and the admission pre-warm must key on that same shape — one
        // compile total, no dead 8x8 entry.
        let service = KernelService::new(ServiceConfig::default().with_workers(1));
        let session = service.open_session(SessionSpec::tenant("t"));
        let tiny =
            JobSpec::new(StencilProgram::jacobi_5pt(), vec![0.5, 0.125], RegionSize::square(4))
                .with_block(8)
                .with_steps(2);
        service.submit(session, tiny.clone()).unwrap();
        service.submit(session, tiny).unwrap();
        let reports = service.drain();
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().all(|r| r.error.is_none()));
        let stats = service.cache_stats();
        assert_eq!(stats.misses, 1, "exactly one plan compiled: {stats:?}");
        assert_eq!(stats.entries, 1, "no dead full-block entry: {stats:?}");
        assert!(!reports[0].plan_cache_hit);
        assert!(reports[1].plan_cache_hit);
    }

    #[test]
    fn shutdown_with_a_backlog_abandons_queued_jobs() {
        // One worker, a deep queue: shutdown must not execute the backlog
        // (each job takes ~ms; a hung Drop would blow the test timeout), and
        // the worker's in-flight job still settles its counters.
        let service = KernelService::new(ServiceConfig::default().with_workers(1).with_quota(1000));
        let session = service.open_session(SessionSpec::tenant("t"));
        for _ in 0..64 {
            service.submit(session, smoke_job()).unwrap();
        }
        service.shutdown();
    }

    #[test]
    fn drain_on_idle_service_returns_immediately() {
        let service = KernelService::new(ServiceConfig::default().with_workers(1));
        assert!(service.drain().is_empty());
        let errors = SubmitError::InvalidJob("x".into());
        assert!(errors.to_string().contains("invalid job"));
        assert!(SubmitError::UnknownSession(1).to_string().contains("unknown"));
        assert!(SubmitError::QuotaExceeded { session: 1, limit: 2 }.to_string().contains("quota"));
    }
}
