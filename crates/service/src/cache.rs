//! The sharded compiled-plan cache, with pluggable eviction and a chained
//! resolution path.
//!
//! The paper's future-work "cache of data access resolution" is reified
//! per-process by [`CompiledKernel::compile`]; this module makes it a shared,
//! concurrent, *cluster-aware* resource: plans are keyed by the structural
//! program fingerprint plus block shape and optimization level, so concurrent
//! tenants submitting the same mathematics share one `Arc<CompiledKernel>`
//! instead of each paying the compile — and a mesh of service nodes shares
//! them across ranks instead of each node paying it once.
//!
//! Design points:
//!
//! * **Sharding.**  Keys hash onto `N` independent `Mutex<HashMap>` shards,
//!   so unrelated programs never contend on one lock.
//! * **Single-flight resolution.**  A miss registers an in-flight *flight*
//!   for its key; concurrent requests for the same key wait on the flight
//!   instead of compiling again, so each distinct plan is resolved exactly
//!   once per node.  The leader resolves **outside** every lock — a shard is
//!   never blocked behind a compilation, and (crucially for the cluster) a
//!   node waiting on a remote fetch holds no lock a peer-serving thread
//!   could need, which is what keeps the cross-node request/serve cycle
//!   deadlock-free.
//! * **Chained sources.**  A miss resolves through up to three stages:
//!   local shard → cluster fetch (an installed [`PlanFetcher`], e.g. the
//!   cluster fabric asking the key's owner rank) → local compile.  Stats
//!   split misses into [`PlanCacheStats::compiles`] and
//!   [`PlanCacheStats::fetches`], so "each fingerprint is compiled exactly
//!   once per cluster" is directly assertable from aggregated stats.
//! * **Pluggable eviction.**  Each shard holds at most
//!   `ceil(capacity / shards)` entries; inserting past that asks the
//!   configured [`EvictionPolicy`] for a victim.  [`LruPolicy`] (default)
//!   preserves the original behaviour; [`CostAwarePolicy`] weighs entries by
//!   recompile cost (block cells × live offsets) so a burst of cheap plans
//!   cannot flush an expensive one.  Entries can be **pinned** (hot tenants):
//!   policies spare pinned entries while any unpinned candidate exists.
//!   Recency is a global atomic tick, not a clock, so behaviour is
//!   deterministic under test.
//! * **Tape included.**  A [`CompiledKernel`] carries its register-allocated
//!   execution tape (lowered once, inside `compile`), so a warm hit hands the
//!   tenant a ready-to-run tape — no per-job lowering, no per-job register
//!   allocation.

use aohpc_env::Extent;
use aohpc_kernel::{
    CompiledKernel, FamilyArtifact, FamilyProgram, KernelFamilyId, OptLevel, PlanSource,
    PortableKernel, ProgramFingerprint, StencilProgram,
};
use parking_lot::Mutex;
use serde::Serialize;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};

/// Cache key: what makes two compilations interchangeable.
///
/// The family tag makes cross-family collisions structurally impossible: even
/// if two programs of different families produced the same fingerprint (the
/// fingerprints are already domain-separated per family), their keys differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Which kernel family the plan belongs to.
    pub family: KernelFamilyId,
    /// Structural fingerprint of the program (name-independent,
    /// domain-separated per family).
    pub fingerprint: ProgramFingerprint,
    /// Block width the plan was compiled for.
    pub nx: usize,
    /// Block height the plan was compiled for.
    pub ny: usize,
    /// Optimization level the DAG was lowered at.
    pub level: OptLevel,
}

impl PlanKey {
    /// The key `(program, extent, level)` resolves under.
    pub fn of(program: &FamilyProgram, extent: Extent, level: OptLevel) -> Self {
        PlanKey {
            family: program.family(),
            fingerprint: program.fingerprint(),
            nx: extent.nx,
            ny: extent.ny,
            level,
        }
    }
}

/// How a lookup obtained its plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum PlanOrigin {
    /// Served from a resident entry (or by waiting on a concurrent flight).
    Hit,
    /// Compiled locally on this node.
    Compiled,
    /// Fetched from the cluster through the installed [`PlanFetcher`] and
    /// re-lowered locally.
    Fetched,
}

/// Per-family slice of the hit/miss ledger (indexed by
/// [`KernelFamilyId::tag`] in [`PlanCacheStats::family`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct FamilyLaneStats {
    /// Lookups of this family served from a resident entry or a shared
    /// flight.
    pub hits: u64,
    /// Lookups of this family that went past the local shards.
    pub misses: u64,
}

impl std::ops::Add for FamilyLaneStats {
    type Output = FamilyLaneStats;

    fn add(self, rhs: FamilyLaneStats) -> FamilyLaneStats {
        FamilyLaneStats { hits: self.hits + rhs.hits, misses: self.misses + rhs.misses }
    }
}

/// Counters of one cache (point-in-time snapshot).
///
/// Invariants: `misses == compiles + fetches` — every miss is resolved by
/// exactly one of the two non-cache sources (collision fall-throughs count a
/// miss *and* a compile, keeping the identity) — and the global `hits` /
/// `misses` each equal the sum of their per-family lanes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct PlanCacheStats {
    /// Lookups that found a live entry (or joined an in-progress flight for
    /// the same plan).
    pub hits: u64,
    /// Lookups that had to go past the local shards.
    pub misses: u64,
    /// Misses resolved by a local [`CompiledKernel::compile`] — the number
    /// summed across a cluster to assert compile-once-per-cluster.
    pub compiles: u64,
    /// Misses resolved by fetching the plan from a peer node.
    pub fetches: u64,
    /// Entries displaced by the capacity bound.
    pub evictions: u64,
    /// Lookups whose fingerprint matched a resident entry for a *different*
    /// program (hash collision); served by an uncached compile.
    pub collisions: u64,
    /// Misses whose cluster fetch was attempted and **failed** (owner dead,
    /// timeout, retry budget spent) before falling back to a local compile.
    /// A subset of `compiles` — the degraded path is visible, not silent.
    pub degraded_resolves: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Resident entries currently pinned.
    pub pinned_entries: usize,
    /// Hit/miss attribution per kernel family, indexed by
    /// [`KernelFamilyId::tag`] (use [`PlanCacheStats::for_family`]).
    pub family: [FamilyLaneStats; 3],
}

impl PlanCacheStats {
    /// The hit/miss lane of one kernel family.
    pub fn for_family(&self, family: KernelFamilyId) -> FamilyLaneStats {
        self.family[family.tag() as usize]
    }
}

/// Element-wise sum — the aggregation the cluster layer folds per-node
/// snapshots with.
impl std::ops::Add for PlanCacheStats {
    type Output = PlanCacheStats;

    fn add(self, rhs: PlanCacheStats) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits + rhs.hits,
            misses: self.misses + rhs.misses,
            compiles: self.compiles + rhs.compiles,
            fetches: self.fetches + rhs.fetches,
            evictions: self.evictions + rhs.evictions,
            collisions: self.collisions + rhs.collisions,
            degraded_resolves: self.degraded_resolves + rhs.degraded_resolves,
            entries: self.entries + rhs.entries,
            pinned_entries: self.pinned_entries + rhs.pinned_entries,
            family: [
                self.family[0] + rhs.family[0],
                self.family[1] + rhs.family[1],
                self.family[2] + rhs.family[2],
            ],
        }
    }
}

/// Per-entry accounting the eviction policy decides on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct EntryMeta {
    /// Global recency tick of the last lookup that touched the entry.
    pub last_used: u64,
    /// Number of lookups served by the entry.
    pub uses: u64,
    /// Recompile cost estimate: block cells × live (post-optimization)
    /// stencil offsets — proportional to the plan/tape lowering work a
    /// re-miss would pay.
    pub cost: u64,
    /// Whether the entry is pinned (hot tenant); policies spare pinned
    /// entries while any unpinned candidate exists.
    pub pinned: bool,
}

/// Strategy choosing which resident plan a full shard sacrifices.
///
/// Implementations pick among `(key, meta)` candidates; returning `None`
/// (e.g. every candidate is pinned) makes the cache fall back to global LRU
/// over *all* candidates — capacity stays bounded, pinning is advisory under
/// pressure, never a way to wedge a shard.
pub trait EvictionPolicy: Send + Sync + fmt::Debug {
    /// The policy's display name (shows up in `Debug` output and benches).
    fn name(&self) -> &'static str;

    /// Choose the victim among a full shard's entries.
    fn victim(&self, candidates: &mut dyn Iterator<Item = (PlanKey, EntryMeta)>)
        -> Option<PlanKey>;
}

/// Evict the least-recently-used unpinned entry (the default policy, and the
/// pre-policy behaviour of the cache).
#[derive(Debug, Clone, Copy, Default)]
pub struct LruPolicy;

impl EvictionPolicy for LruPolicy {
    fn name(&self) -> &'static str {
        "lru"
    }

    fn victim(
        &self,
        candidates: &mut dyn Iterator<Item = (PlanKey, EntryMeta)>,
    ) -> Option<PlanKey> {
        candidates.filter(|(_, m)| !m.pinned).min_by_key(|(_, m)| m.last_used).map(|(k, _)| k)
    }
}

/// Evict the *cheapest-to-recompile* unpinned entry, breaking ties by
/// recency.
///
/// Rationale: an eviction's true price is the recompile a future miss pays,
/// which for this pipeline is proportional to block cells × live offsets
/// (plan resolution and tape lowering both walk that product).  Under a
/// burst of small cheap plans, plain LRU happily flushes a large expensive
/// plan that is merely *slightly* stale; this policy keeps it and drops a
/// cheap entry instead (the retention the cache tests assert).
#[derive(Debug, Clone, Copy, Default)]
pub struct CostAwarePolicy;

impl EvictionPolicy for CostAwarePolicy {
    fn name(&self) -> &'static str {
        "cost-aware"
    }

    fn victim(
        &self,
        candidates: &mut dyn Iterator<Item = (PlanKey, EntryMeta)>,
    ) -> Option<PlanKey> {
        candidates
            .filter(|(_, m)| !m.pinned)
            .min_by_key(|(_, m)| (m.cost, m.last_used))
            .map(|(k, _)| k)
    }
}

/// What a [`PlanFetcher`] consultation produced — the distinction the
/// degraded-path ledger needs: a fetcher that *declines* (this node owns the
/// key, or no cluster is attached) makes the local compile the intended
/// resolution, while a fetcher that *fails* (owner dead, retries exhausted,
/// fabric wedged) makes the same compile a degraded fallback worth metering.
#[derive(Debug)]
pub enum FetchOutcome {
    /// The fetcher has nothing to do for this key (e.g. the local rank is
    /// the owner): compile locally, not a degradation.
    Declined,
    /// The owner served the portable plan.
    Fetched(PortableKernel),
    /// The fetch was attempted and did not succeed (timeout, dead owner,
    /// retry budget spent): the cache compiles locally and meters
    /// [`PlanCacheStats::degraded_resolves`].
    Failed,
}

/// A remote source of compiled plans, consulted between the local shards and
/// a local compile (the "cluster fetch" stage of the resolution chain).
///
/// Implementations must not assume any cache lock is held (none is), and may
/// block — e.g. on a control-plane round trip to the key's owner rank.
pub trait PlanFetcher: Send + Sync {
    /// Fetch the portable form of the plan for `key`.  `program` is the
    /// requesting program (any family) — wire protocols ship it so the owner
    /// can compile a plan it never saw.  See [`FetchOutcome`] for how the
    /// three results steer the cache's ledger.
    fn fetch(&self, key: &PlanKey, program: &FamilyProgram) -> FetchOutcome;
}

struct Entry {
    /// The program the artifact was compiled from, kept to verify hits:
    /// FNV-1a fingerprints are not collision-resistant, and in a multi-tenant
    /// cache a false hit would silently serve another tenant's kernel.
    program: FamilyProgram,
    artifact: FamilyArtifact,
    meta: EntryMeta,
}

#[derive(Default)]
struct Shard {
    entries: HashMap<PlanKey, Entry>,
}

/// What one shard probe found.
enum Resident {
    /// A structurally verified entry (recency/pin updated, hit metered).
    Hit(FamilyArtifact),
    /// A fingerprint collision: the slot is taken by a different program.
    Collision,
}

/// One in-progress resolution: the leader fills `done`, waiters block on the
/// condvar.  The stored program lets waiters verify structure (a colliding
/// program joining the flight must not accept the leader's kernel).  A
/// flight can also **abort** (its leader panicked mid-resolution): waiters
/// observe `None` and retry the whole resolution rather than hanging on a
/// result that will never come.
/// A settled flight's payload: the leader's program + artifact, or `None` if
/// the leader failed before resolving.
type FlightResult = Option<(FamilyProgram, FamilyArtifact)>;

struct Flight {
    /// `None` = in progress; `Some(None)` = aborted; `Some(Some(..))` = done.
    done: StdMutex<Option<FlightResult>>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Arc<Self> {
        Arc::new(Flight { done: StdMutex::new(None), cv: Condvar::new() })
    }

    fn complete(&self, program: FamilyProgram, artifact: FamilyArtifact) {
        let mut done = self.done.lock().unwrap_or_else(|p| p.into_inner());
        if done.is_none() {
            *done = Some(Some((program, artifact)));
        }
        drop(done);
        self.cv.notify_all();
    }

    /// Mark the flight failed if it has not completed (idempotent).
    fn abort(&self) {
        let mut done = self.done.lock().unwrap_or_else(|p| p.into_inner());
        if done.is_none() {
            *done = Some(None);
        }
        drop(done);
        self.cv.notify_all();
    }

    /// Block until the flight settles; `None` means the leader failed and
    /// the caller must retry resolution itself.
    fn wait(&self) -> Option<(FamilyProgram, FamilyArtifact)> {
        let mut done = self.done.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(settled) = done.as_ref() {
                return settled
                    .as_ref()
                    .map(|(program, artifact)| (program.clone(), artifact.clone()));
            }
            done = self.cv.wait(done).unwrap_or_else(|p| p.into_inner());
        }
    }
}

/// Unconditional cleanup for a flight's leader: however the leader exits —
/// return, or an unwinding panic inside the fetcher or the compiler — the
/// flight settles (abort is a no-op after `complete`) and leaves the map, so
/// no waiter can block forever on an orphaned flight and no later leader's
/// flight can be removed by mistake (`ptr_eq`-guarded).
struct FlightGuard<'a> {
    cache: &'a PlanCache,
    key: PlanKey,
    flight: Arc<Flight>,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        self.flight.abort();
        let mut flights = self.cache.flights.lock();
        if let Some(current) = flights.get(&self.key) {
            if Arc::ptr_eq(current, &self.flight) {
                flights.remove(&self.key);
            }
        }
    }
}

/// A sharded, policy-bounded, cluster-chainable cache of compiled kernels.
pub struct PlanCache {
    shards: Vec<Mutex<Shard>>,
    shard_capacity: usize,
    policy: Arc<dyn EvictionPolicy>,
    fetcher: Option<Arc<dyn PlanFetcher>>,
    flights: Mutex<HashMap<PlanKey, Arc<Flight>>>,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    compiles: AtomicU64,
    fetches: AtomicU64,
    evictions: AtomicU64,
    collisions: AtomicU64,
    degraded_resolves: AtomicU64,
    /// Per-family hit/miss attribution, indexed by [`KernelFamilyId::tag`].
    family_hits: [AtomicU64; 3],
    family_misses: [AtomicU64; 3],
}

impl PlanCache {
    /// A cache of `shards` independent shards holding at most `capacity`
    /// plans in total (rounded up to a whole number per shard), evicting LRU.
    pub fn new(shards: usize, capacity: usize) -> Self {
        Self::with_policy(shards, capacity, Arc::new(LruPolicy))
    }

    /// [`PlanCache::new`] with an explicit eviction policy.
    pub fn with_policy(shards: usize, capacity: usize, policy: Arc<dyn EvictionPolicy>) -> Self {
        assert!(shards > 0, "the cache needs at least one shard");
        assert!(capacity >= shards, "capacity must allow one entry per shard");
        PlanCache {
            shard_capacity: capacity.div_ceil(shards),
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            policy,
            fetcher: None,
            flights: Mutex::new(HashMap::new()),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            compiles: AtomicU64::new(0),
            fetches: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            collisions: AtomicU64::new(0),
            degraded_resolves: AtomicU64::new(0),
            family_hits: Default::default(),
            family_misses: Default::default(),
        }
    }

    /// Install the cluster-fetch stage of the resolution chain (builder
    /// style, before the cache is shared).
    pub fn with_fetcher(mut self, fetcher: Arc<dyn PlanFetcher>) -> Self {
        self.fetcher = Some(fetcher);
        self
    }

    /// The active eviction policy.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    fn shard_for(&self, key: &PlanKey) -> &Mutex<Shard> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % self.shards.len()]
    }

    /// Meter a hit: the global counter plus the key's family lane.
    fn meter_hit(&self, key: &PlanKey) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        self.family_hits[key.family.tag() as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Meter a miss: the global counter plus the key's family lane.
    fn meter_miss(&self, key: &PlanKey) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.family_misses[key.family.tag() as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Resolve the plan for a **stencil** `(program, extent, level)`,
    /// compiling on a miss.
    ///
    /// Returns the shared kernel and whether the lookup was a hit — the
    /// stencil compatibility wrapper over the family-generic
    /// [`PlanCache::resolve`].
    pub fn get_or_compile(
        &self,
        program: &StencilProgram,
        extent: Extent,
        level: OptLevel,
    ) -> (Arc<CompiledKernel>, bool) {
        let (artifact, origin) =
            self.resolve(&FamilyProgram::from(program.clone()), extent, level, false);
        (artifact.expect_stencil(), origin == PlanOrigin::Hit)
    }

    /// Resolve the plan for `(program, extent, level)` — any kernel family —
    /// through the full chain: local shard → in-progress flight → cluster
    /// fetch → compile.  `pin` marks the entry pinned (set by hot-tenant
    /// sessions); pins stick until [`PlanCache::unpin`] or
    /// eviction-under-total-pin-pressure.
    pub fn resolve(
        &self,
        program: &FamilyProgram,
        extent: Extent,
        level: OptLevel,
        pin: bool,
    ) -> (FamilyArtifact, PlanOrigin) {
        let key = PlanKey::of(program, extent, level);
        // The loop restarts resolution when a joined flight aborts (its
        // leader panicked): the failed leader's guard removed the flight, so
        // a retry either hits the shard, joins a healthier flight, or leads.
        loop {
            let now = self.tick.fetch_add(1, Ordering::Relaxed) + 1;

            // Stage 1: the local shard.
            match self.probe_resident(&key, program, now, pin) {
                Some(Resident::Hit(artifact)) => return (artifact, PlanOrigin::Hit),
                Some(Resident::Collision) => {
                    return (
                        self.collision_compile(&key, program, extent, level),
                        PlanOrigin::Compiled,
                    )
                }
                None => {}
            }

            // Stage 2: join an in-progress flight for the same key, or lead
            // one.
            let flight = {
                let mut flights = self.flights.lock();
                match flights.get(&key) {
                    Some(flight) => {
                        let flight = Arc::clone(flight);
                        drop(flights);
                        match flight.wait() {
                            Some((leader_program, artifact)) => {
                                if leader_program.same_structure(program) {
                                    // Metered like a shard hit: the plan was
                                    // resolved once and this lookup shared it.
                                    self.meter_hit(&key);
                                    self.touch(&key, now, pin);
                                    return (artifact, PlanOrigin::Hit);
                                }
                                return (
                                    self.collision_compile(&key, program, extent, level),
                                    PlanOrigin::Compiled,
                                );
                            }
                            // The leader failed without resolving: retry.
                            None => continue,
                        }
                    }
                    None => {
                        let flight = Flight::new();
                        flights.insert(key, Arc::clone(&flight));
                        flight
                    }
                }
            };
            return self.lead_flight(flight, key, program, extent, level, now, pin);
        }
    }

    /// The flight leader's path: re-check the shard, then resolve through
    /// fetcher/compile with no locks held, publish and settle the flight.
    #[allow(clippy::too_many_arguments)]
    fn lead_flight(
        &self,
        flight: Arc<Flight>,
        key: PlanKey,
        program: &FamilyProgram,
        extent: Extent,
        level: OptLevel,
        now: u64,
        pin: bool,
    ) -> (FamilyArtifact, PlanOrigin) {
        // However this leader exits — including a panic inside the fetcher
        // or the compiler — the guard settles the flight and removes it, so
        // waiters retry instead of hanging and the key never wedges.
        let _guard = FlightGuard { cache: self, key, flight: Arc::clone(&flight) };

        // Re-check the shard: between this lookup's shard miss and its
        // flight registration, a previous leader may have published its
        // entry and retired its flight.  Without this check that window
        // would compile the same key twice.
        match self.probe_resident(&key, program, now, pin) {
            Some(Resident::Hit(artifact)) => {
                // Wake any joiners (they verify structure themselves); the
                // probe already verified the resident entry is structurally
                // identical to `program`, so complete with it directly.
                // The guard retires the flight.
                flight.complete(program.clone(), artifact.clone());
                return (artifact, PlanOrigin::Hit);
            }
            Some(Resident::Collision) => {
                // The resident entry collides with *this* program, but it is
                // exactly what same-key joiners asked the flight for.
                if let Some(entry) = self.shard_for(&key).lock().entries.get(&key) {
                    flight.complete(entry.program.clone(), entry.artifact.clone());
                }
                return (
                    self.collision_compile(&key, program, extent, level),
                    PlanOrigin::Compiled,
                );
            }
            None => {}
        }

        // Resolve with NO locks held: a cluster fetch may block on a peer
        // whose own threads are resolving against this cache.  Counters move
        // only once the resolution succeeded, so `misses == compiles +
        // fetches` holds even across leader panics.
        let mut resolved: Option<(FamilyProgram, FamilyArtifact, PlanOrigin)> = None;
        let mut fetch_failed = false;
        if let Some(fetcher) = &self.fetcher {
            match fetcher.fetch(&key, program) {
                FetchOutcome::Fetched(portable) => {
                    // Trust nothing off the wire: the portable form must be
                    // the plan this lookup wants (same structure, same
                    // shape/level), or the fetch is discarded and the chain
                    // falls through to a local compile — a degraded resolve,
                    // since the cluster path was attempted and produced
                    // nothing usable.
                    if portable.fingerprint() == key.fingerprint
                        && portable.program().same_structure(program)
                        && portable.extent() == extent
                        && portable.level() == level
                    {
                        let (remote_program, artifact) = portable.hydrate();
                        self.meter_miss(&key);
                        self.fetches.fetch_add(1, Ordering::Relaxed);
                        resolved = Some((remote_program, artifact, PlanOrigin::Fetched));
                    } else {
                        fetch_failed = true;
                    }
                }
                FetchOutcome::Failed => fetch_failed = true,
                FetchOutcome::Declined => {}
            }
        }
        let (entry_program, artifact, origin) = resolved.unwrap_or_else(|| {
            let artifact = program.compile(extent, level);
            self.meter_miss(&key);
            self.compiles.fetch_add(1, Ordering::Relaxed);
            if fetch_failed {
                self.degraded_resolves.fetch_add(1, Ordering::Relaxed);
            }
            (program.clone(), artifact, PlanOrigin::Compiled)
        });

        // Publish: insert into the shard (evicting by policy), then complete
        // the flight.  Insert-before-complete means no lookup can miss both.
        let cost = artifact.cost();
        {
            let mut shard = self.shard_for(&key).lock();
            if shard.entries.len() >= self.shard_capacity && !shard.entries.contains_key(&key) {
                let victim = {
                    let mut candidates = shard.entries.iter().map(|(k, e)| (*k, e.meta));
                    self.policy.victim(&mut candidates).or_else(|| {
                        // Everything pinned (or the policy abstained): fall
                        // back to global LRU so capacity stays bounded.
                        shard.entries.iter().min_by_key(|(_, e)| e.meta.last_used).map(|(k, _)| *k)
                    })
                };
                if let Some(victim) = victim {
                    shard.entries.remove(&victim);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
            shard.entries.insert(
                key,
                Entry {
                    program: entry_program.clone(),
                    artifact: artifact.clone(),
                    meta: EntryMeta { last_used: now, uses: 1, cost, pinned: pin },
                },
            );
        }
        flight.complete(entry_program, artifact.clone());
        (artifact, origin)
    }

    /// One shard probe: a verified hit (meta touched), a fingerprint
    /// collision, or nothing resident.
    fn probe_resident(
        &self,
        key: &PlanKey,
        program: &FamilyProgram,
        now: u64,
        pin: bool,
    ) -> Option<Resident> {
        let mut shard = self.shard_for(key).lock();
        let entry = shard.entries.get_mut(key)?;
        // Verify the hit: the fingerprint is a hash, and serving a colliding
        // tenant another program's kernel would be a silent wrong answer.  A
        // collision falls through to an uncached compile (the resident entry
        // keeps its slot).
        if entry.program.same_structure(program) {
            entry.meta.last_used = now;
            entry.meta.uses += 1;
            entry.meta.pinned |= pin;
            self.meter_hit(key);
            Some(Resident::Hit(entry.artifact.clone()))
        } else {
            Some(Resident::Collision)
        }
    }

    /// A fingerprint collision: compile privately, never caching (the
    /// resident entry keeps its slot, the colliding tenant still gets a
    /// correct kernel).
    fn collision_compile(
        &self,
        key: &PlanKey,
        program: &FamilyProgram,
        extent: Extent,
        level: OptLevel,
    ) -> FamilyArtifact {
        self.collisions.fetch_add(1, Ordering::Relaxed);
        self.meter_miss(key);
        self.compiles.fetch_add(1, Ordering::Relaxed);
        program.compile(extent, level)
    }

    /// Refresh recency (and optionally pin) after a flight-shared resolve.
    fn touch(&self, key: &PlanKey, now: u64, pin: bool) {
        let mut shard = self.shard_for(key).lock();
        if let Some(entry) = shard.entries.get_mut(key) {
            entry.meta.last_used = entry.meta.last_used.max(now);
            entry.meta.uses += 1;
            entry.meta.pinned |= pin;
        }
    }

    /// Pin a resident entry (returns `false` if the key is not resident).
    /// Pinned entries are spared by eviction while any unpinned candidate
    /// exists.
    pub fn pin(&self, key: &PlanKey) -> bool {
        let mut shard = self.shard_for(key).lock();
        match shard.entries.get_mut(key) {
            Some(entry) => {
                entry.meta.pinned = true;
                true
            }
            None => false,
        }
    }

    /// Clear a resident entry's pin (returns `false` if not resident).
    pub fn unpin(&self, key: &PlanKey) -> bool {
        let mut shard = self.shard_for(key).lock();
        match shard.entries.get_mut(key) {
            Some(entry) => {
                entry.meta.pinned = false;
                true
            }
            None => false,
        }
    }

    /// A resident entry's accounting snapshot (None if not resident).
    pub fn entry_meta(&self, key: &PlanKey) -> Option<EntryMeta> {
        self.shard_for(key).lock().entries.get(key).map(|e| e.meta)
    }

    /// Whether a key is currently resident (does not touch recency).
    pub fn contains(&self, key: &PlanKey) -> bool {
        self.shard_for(key).lock().entries.contains_key(key)
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().entries.len()).sum()
    }

    /// Drop every resident entry, returning how many were discarded.
    ///
    /// Models a process restart (the rejoin path): a revived rank comes back
    /// with a cold cache and re-warms through the fetch/compile chain.
    /// Discarded entries are metered as evictions so the ledger still
    /// explains every departure.  In-flight resolutions are untouched — a
    /// flight's leader re-inserts on completion, which is exactly the
    /// post-restart warm path.
    pub fn invalidate_all(&self) -> usize {
        let mut dropped = 0;
        for shard in &self.shards {
            let mut shard = shard.lock();
            dropped += shard.entries.len();
            shard.entries.clear();
        }
        self.evictions.fetch_add(dropped as u64, Ordering::Relaxed);
        dropped
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PlanCacheStats {
        let (entries, pinned_entries) = self.shards.iter().fold((0, 0), |(e, p), s| {
            let shard = s.lock();
            (
                e + shard.entries.len(),
                p + shard.entries.values().filter(|entry| entry.meta.pinned).count(),
            )
        });
        let lane = |i: usize| FamilyLaneStats {
            hits: self.family_hits[i].load(Ordering::Relaxed),
            misses: self.family_misses[i].load(Ordering::Relaxed),
        };
        let stats = PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            compiles: self.compiles.load(Ordering::Relaxed),
            fetches: self.fetches.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            collisions: self.collisions.load(Ordering::Relaxed),
            degraded_resolves: self.degraded_resolves.load(Ordering::Relaxed),
            entries,
            pinned_entries,
            family: [lane(0), lane(1), lane(2)],
        };
        // Ledger invariant: every miss is resolved by exactly one compile or
        // fetch.  Each resolution meters its miss *before* its compile/fetch
        // counter, so an in-flight resolution can only leave `misses` ahead —
        // never behind.  Exact equality (`misses == compiles + fetches`)
        // holds at quiescence and is cross-checked there by
        // `aohpc_obs::ObsSnapshot::validate`.
        debug_assert!(
            stats.misses >= stats.compiles + stats.fetches,
            "plan-cache ledger broken: misses {} < compiles {} + fetches {}",
            stats.misses,
            stats.compiles,
            stats.fetches
        );
        stats
    }
}

impl PlanSource for PlanCache {
    fn plan_for(
        &self,
        program: &StencilProgram,
        extent: Extent,
        level: OptLevel,
    ) -> Arc<CompiledKernel> {
        self.get_or_compile(program, extent, level).0
    }

    /// Every family resolves through the cache — not just stencils — so the
    /// apps of all three DSLs share the compile-once/fetch-everywhere path.
    fn family_plan_for(
        &self,
        program: &FamilyProgram,
        extent: Extent,
        level: OptLevel,
    ) -> FamilyArtifact {
        self.resolve(program, extent, level, false).0
    }
}

impl fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PlanCache")
            .field("shards", &self.shards.len())
            .field("shard_capacity", &self.shard_capacity)
            .field("policy", &self.policy.name())
            .field("chained", &self.fetcher.is_some())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aohpc_kernel::{load, param, ParticleProgram, StencilProgram, UsGridProgram};
    use std::sync::atomic::AtomicUsize;
    use std::thread;

    fn program(name: &str, dx: i64) -> StencilProgram {
        StencilProgram::new(name, load(0, 0) + load(dx, 0) * param(0), 1).unwrap()
    }

    /// Wrap a stencil program for the family-generic resolve surface.
    fn fam(p: &StencilProgram) -> FamilyProgram {
        FamilyProgram::from(p.clone())
    }

    /// A program whose plan cost scales with its live offset count.
    fn wide_program(name: &str, width: i64) -> StencilProgram {
        let mut expr = load(0, 0);
        for dx in 1..=width {
            expr = expr + load(dx, 0);
        }
        StencilProgram::new(name, expr, 0).unwrap()
    }

    #[test]
    fn hit_after_miss_shares_the_same_kernel() {
        let cache = PlanCache::new(4, 16);
        let p = program("p", 1);
        let (a, hit_a) = cache.get_or_compile(&p, Extent::new2d(8, 8), OptLevel::Full);
        let (b, hit_b) = cache.get_or_compile(&p, Extent::new2d(8, 8), OptLevel::Full);
        assert!(!hit_a);
        assert!(hit_b);
        assert!(Arc::ptr_eq(&a, &b), "hits return the same compiled kernel");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!((stats.compiles, stats.fetches), (1, 0), "the miss was a local compile");
    }

    #[test]
    fn key_is_fingerprint_extent_and_level() {
        let cache = PlanCache::new(2, 16);
        let p = program("named-one-way", 1);
        let renamed = program("named-another-way", 1);
        cache.get_or_compile(&p, Extent::new2d(8, 8), OptLevel::Full);
        // Same structure under a different name: a hit (the anti-collision
        // verification compares structure, not the name label).
        let (_, hit) = cache.get_or_compile(&renamed, Extent::new2d(8, 8), OptLevel::Full);
        assert!(hit, "the cache keys on structure, not the name label");
        assert_eq!(cache.stats().collisions, 0);
        // Different shape or level: misses.
        let (_, hit) = cache.get_or_compile(&p, Extent::new2d(8, 4), OptLevel::Full);
        assert!(!hit);
        let (_, hit) = cache.get_or_compile(&p, Extent::new2d(8, 8), OptLevel::None);
        assert!(!hit);
        // Different structure: a miss.
        let (_, hit) = cache.get_or_compile(&program("p", 2), Extent::new2d(8, 8), OptLevel::Full);
        assert!(!hit);
        assert_eq!(cache.stats().misses, 4);
    }

    #[test]
    fn lru_eviction_bounds_each_shard() {
        // One shard, two slots: inserting a third evicts the least recently
        // used.
        let cache = PlanCache::new(1, 2);
        assert_eq!(cache.policy_name(), "lru");
        let (p1, p2, p3) = (program("p1", 1), program("p2", 2), program("p3", 3));
        let ext = Extent::new2d(8, 8);
        cache.get_or_compile(&p1, ext, OptLevel::Full);
        cache.get_or_compile(&p2, ext, OptLevel::Full);
        // Touch p1 so p2 becomes the LRU victim.
        let (_, hit) = cache.get_or_compile(&p1, ext, OptLevel::Full);
        assert!(hit);
        cache.get_or_compile(&p3, ext, OptLevel::Full);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        let key = |p: &StencilProgram| PlanKey::of(&fam(p), ext, OptLevel::Full);
        assert!(cache.contains(&key(&p1)), "recently used survives");
        assert!(!cache.contains(&key(&p2)), "LRU entry evicted");
        assert!(cache.contains(&key(&p3)));
        // The evicted plan recompiles on next use.
        let (_, hit) = cache.get_or_compile(&p2, ext, OptLevel::Full);
        assert!(!hit);
    }

    #[test]
    fn cost_aware_policy_retains_expensive_plans() {
        // One shard, two slots, cost-aware eviction.  The expensive wide
        // plan is the LRU entry when the third plan arrives — plain LRU
        // would flush it (asserted below); cost-aware drops the cheap
        // fresher entry instead.
        let ext = Extent::new2d(16, 16);
        let expensive = wide_program("expensive", 6); // 7 live offsets
        let cheap1 = program("cheap1", 1); // 2 live offsets
        let cheap2 = program("cheap2", 2);
        let key = |p: &StencilProgram| PlanKey::of(&fam(p), ext, OptLevel::Full);

        let cost_aware = PlanCache::with_policy(1, 2, Arc::new(CostAwarePolicy));
        assert_eq!(cost_aware.policy_name(), "cost-aware");
        cost_aware.get_or_compile(&expensive, ext, OptLevel::Full);
        cost_aware.get_or_compile(&cheap1, ext, OptLevel::Full);
        let meta_exp = cost_aware.entry_meta(&key(&expensive)).unwrap();
        let meta_cheap = cost_aware.entry_meta(&key(&cheap1)).unwrap();
        assert!(meta_exp.cost > meta_cheap.cost, "{meta_exp:?} vs {meta_cheap:?}");
        assert!(meta_exp.last_used < meta_cheap.last_used, "expensive is the LRU entry");
        cost_aware.get_or_compile(&cheap2, ext, OptLevel::Full);
        assert!(cost_aware.contains(&key(&expensive)), "expensive plan retained");
        assert!(!cost_aware.contains(&key(&cheap1)), "cheap plan sacrificed");

        // Control: under the same sequence, LRU evicts the expensive plan.
        let lru = PlanCache::new(1, 2);
        lru.get_or_compile(&expensive, ext, OptLevel::Full);
        lru.get_or_compile(&cheap1, ext, OptLevel::Full);
        lru.get_or_compile(&cheap2, ext, OptLevel::Full);
        assert!(!lru.contains(&key(&expensive)), "LRU would have dropped it");
    }

    #[test]
    fn pinned_entries_survive_eviction_pressure() {
        let ext = Extent::new2d(8, 8);
        let cache = PlanCache::new(1, 2);
        let (hot, cold, newcomer) = (program("hot", 1), program("cold", 2), program("p", 3));
        let key = |p: &StencilProgram| PlanKey::of(&fam(p), ext, OptLevel::Full);

        // Resolve-with-pin (the hot-session path) pins the entry.
        cache.resolve(&fam(&hot), ext, OptLevel::Full, true);
        cache.get_or_compile(&cold, ext, OptLevel::Full);
        // `hot` is the LRU entry, but it is pinned: `cold` goes instead.
        cache.get_or_compile(&newcomer, ext, OptLevel::Full);
        assert!(cache.contains(&key(&hot)), "pinned survives despite being LRU");
        assert!(!cache.contains(&key(&cold)));
        assert_eq!(cache.stats().pinned_entries, 1);

        // Unpin: the entry competes normally again.
        assert!(cache.unpin(&key(&hot)));
        cache.get_or_compile(&program("q", 4), ext, OptLevel::Full);
        assert!(!cache.contains(&key(&hot)), "unpinned LRU entry evicts normally");

        // Pin APIs on absent keys are no-ops.
        assert!(!cache.pin(&key(&cold)));
        assert!(!cache.unpin(&key(&cold)));
        // Explicit pin of a resident entry works too.
        assert!(cache.pin(&key(&newcomer)));
        assert!(cache.entry_meta(&key(&newcomer)).unwrap().pinned);
    }

    #[test]
    fn all_pinned_shard_still_bounds_capacity() {
        let ext = Extent::new2d(8, 8);
        let cache = PlanCache::new(1, 2);
        cache.resolve(&fam(&program("a", 1)), ext, OptLevel::Full, true);
        cache.resolve(&fam(&program("b", 2)), ext, OptLevel::Full, true);
        // Both residents pinned: the policy abstains, the LRU fallback still
        // evicts so the shard cannot grow without bound.
        cache.resolve(&fam(&program("c", 3)), ext, OptLevel::Full, true);
        assert_eq!(cache.len(), 2, "capacity bound holds under total pin pressure");
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn concurrent_same_key_compiles_exactly_once() {
        let cache = Arc::new(PlanCache::new(8, 64));
        let p = StencilProgram::jacobi_5pt();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            let p = p.clone();
            handles.push(thread::spawn(move || {
                cache.get_or_compile(&p, Extent::new2d(16, 16), OptLevel::Full).0
            }));
        }
        let kernels: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for k in &kernels[1..] {
            assert!(Arc::ptr_eq(&kernels[0], k));
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "single-flight: one compilation total");
        assert_eq!(stats.compiles, 1);
        assert_eq!(stats.hits, 7);
    }

    #[test]
    fn warm_hits_share_the_lowered_tape() {
        // The tape is lowered inside CompiledKernel::compile, so a hit (the
        // same Arc) necessarily skips lowering: one miss, one tape, shared.
        let cache = PlanCache::new(2, 8);
        let p = StencilProgram::jacobi_5pt();
        let (cold, hit_cold) = cache.get_or_compile(&p, Extent::new2d(8, 8), OptLevel::Full);
        let (warm, hit_warm) = cache.get_or_compile(&p, Extent::new2d(8, 8), OptLevel::Full);
        assert!(!hit_cold);
        assert!(hit_warm);
        assert!(Arc::ptr_eq(&cold, &warm));
        assert!(std::ptr::eq(cold.tape(), warm.tape()), "one lowering, shared tape");
        assert!(warm.tape().stats().registers > 0);
    }

    #[test]
    fn plan_source_trait_resolves_through_the_cache() {
        let cache = PlanCache::new(2, 8);
        let p = StencilProgram::jacobi_5pt();
        let a = cache.plan_for(&p, Extent::new2d(8, 8), OptLevel::Full);
        let b = cache.plan_for(&p, Extent::new2d(8, 8), OptLevel::Full);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().hits, 1);
        assert!(!cache.is_empty());
        assert_eq!(cache.shard_count(), 2);
    }

    /// A scripted fetcher: serves the compiled portable form (DAG attached,
    /// like a real cluster reply) for every key it can, recording how often
    /// it was consulted.
    #[derive(Debug)]
    struct ScriptedFetcher {
        calls: AtomicUsize,
        serve: bool,
    }

    impl PlanFetcher for ScriptedFetcher {
        fn fetch(&self, key: &PlanKey, program: &FamilyProgram) -> FetchOutcome {
            self.calls.fetch_add(1, Ordering::SeqCst);
            if !self.serve {
                return FetchOutcome::Declined;
            }
            let extent = Extent::new2d(key.nx, key.ny);
            let artifact = program.compile(extent, key.level);
            FetchOutcome::Fetched(PortableKernel::from_compiled(program, &artifact, key.level))
        }
    }

    #[test]
    fn chained_resolution_prefers_the_fetcher_over_compiling() {
        let fetcher = Arc::new(ScriptedFetcher { calls: AtomicUsize::new(0), serve: true });
        let cache = PlanCache::new(2, 8).with_fetcher(Arc::clone(&fetcher) as Arc<dyn PlanFetcher>);
        let p = StencilProgram::jacobi_5pt();
        let (artifact, origin) =
            cache.resolve(&fam(&p), Extent::new2d(8, 8), OptLevel::Full, false);
        assert_eq!(origin, PlanOrigin::Fetched);
        assert_eq!(artifact.extent(), Extent::new2d(8, 8));
        assert_eq!(fetcher.calls.load(Ordering::SeqCst), 1);

        // The fetched plan is resident: the next lookup never re-fetches.
        let (_, origin) = cache.resolve(&fam(&p), Extent::new2d(8, 8), OptLevel::Full, false);
        assert_eq!(origin, PlanOrigin::Hit);
        assert_eq!(fetcher.calls.load(Ordering::SeqCst), 1, "hits skip the chain");

        let stats = cache.stats();
        assert_eq!((stats.misses, stats.fetches, stats.compiles), (1, 1, 0));
        assert_eq!(stats.hits, 1);

        // The fetched plan matches a local compilation bit-for-bit — DAG
        // included (the sender's optimization travelled; it did not re-run).
        let local = CompiledKernel::compile(&p, Extent::new2d(8, 8), OptLevel::Full);
        let kernel = artifact.expect_stencil();
        assert_eq!(kernel.tape(), local.tape());
        assert_eq!(kernel.dag(), local.dag());
    }

    /// A fetcher that panics on its first call (the leader's resolution
    /// dies) and declines afterwards.
    #[derive(Debug)]
    struct PanicOnceFetcher {
        panicked: std::sync::atomic::AtomicBool,
    }

    impl PlanFetcher for PanicOnceFetcher {
        fn fetch(&self, _key: &PlanKey, _program: &FamilyProgram) -> FetchOutcome {
            if !self.panicked.swap(true, Ordering::SeqCst) {
                panic!("fetcher exploded mid-flight");
            }
            FetchOutcome::Declined
        }
    }

    #[test]
    fn leader_panic_does_not_wedge_the_key() {
        let cache = PlanCache::new(2, 8)
            .with_fetcher(Arc::new(PanicOnceFetcher { panicked: Default::default() }));
        let p = StencilProgram::jacobi_5pt();
        let ext = Extent::new2d(8, 8);

        // The first resolve leads a flight whose resolution panics; the
        // flight guard must settle and retire the flight on the way out.
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.resolve(&fam(&p), ext, OptLevel::Full, false)
        }));
        assert!(unwound.is_err(), "the panic propagates to the caller");

        // The key is not wedged: the next resolve leads a fresh flight and
        // compiles normally (the fetcher now declines).
        let (_, origin) = cache.resolve(&fam(&p), ext, OptLevel::Full, false);
        assert_eq!(origin, PlanOrigin::Compiled);
        let (_, origin) = cache.resolve(&fam(&p), ext, OptLevel::Full, false);
        assert_eq!(origin, PlanOrigin::Hit);

        // The panicked attempt moved no counters: the ledger still ties.
        let stats = cache.stats();
        assert_eq!(stats.misses, stats.compiles + stats.fetches, "{stats:?}");
        assert_eq!((stats.misses, stats.hits), (1, 1));
    }

    #[test]
    fn declining_fetcher_falls_back_to_local_compile() {
        let fetcher = Arc::new(ScriptedFetcher { calls: AtomicUsize::new(0), serve: false });
        let cache = PlanCache::new(2, 8).with_fetcher(Arc::clone(&fetcher) as Arc<dyn PlanFetcher>);
        let p = StencilProgram::jacobi_5pt();
        let (_, origin) = cache.resolve(&fam(&p), Extent::new2d(8, 8), OptLevel::Full, false);
        assert_eq!(origin, PlanOrigin::Compiled);
        assert_eq!(fetcher.calls.load(Ordering::SeqCst), 1, "the chain consulted the fetcher");
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.fetches, stats.compiles), (1, 0, 1));
    }

    /// A fetcher returning the wrong plan (different block shape): the cache
    /// must reject it and compile locally rather than serve a mis-shaped
    /// kernel.
    #[derive(Debug)]
    struct WrongShapeFetcher;

    impl PlanFetcher for WrongShapeFetcher {
        fn fetch(&self, _key: &PlanKey, program: &FamilyProgram) -> FetchOutcome {
            FetchOutcome::Fetched(PortableKernel::pack(
                program,
                Extent::new2d(2, 2),
                OptLevel::Full,
            ))
        }
    }

    #[test]
    fn mismatched_fetch_results_are_discarded() {
        let cache = PlanCache::new(2, 8).with_fetcher(Arc::new(WrongShapeFetcher));
        let p = StencilProgram::jacobi_5pt();
        let (artifact, origin) =
            cache.resolve(&fam(&p), Extent::new2d(8, 8), OptLevel::Full, false);
        assert_eq!(origin, PlanOrigin::Compiled, "bad fetch falls through to compile");
        assert_eq!(artifact.extent(), Extent::new2d(8, 8), "the local compile is correctly shaped");
        assert_eq!(cache.stats().fetches, 0);
        assert_eq!(cache.stats().compiles, 1);
        assert_eq!(cache.stats().degraded_resolves, 1, "a discarded fetch is a degraded resolve");
    }

    /// A fetcher whose fetch attempt fails outright (dead owner, timeout):
    /// the compile fallback is metered as degraded, unlike a decline.
    #[derive(Debug)]
    struct FailingFetcher;

    impl PlanFetcher for FailingFetcher {
        fn fetch(&self, _key: &PlanKey, _program: &FamilyProgram) -> FetchOutcome {
            FetchOutcome::Failed
        }
    }

    #[test]
    fn failed_fetch_meters_a_degraded_resolve_but_a_decline_does_not() {
        let failing = PlanCache::new(2, 8).with_fetcher(Arc::new(FailingFetcher));
        let p = StencilProgram::jacobi_5pt();
        let (_, origin) = failing.resolve(&fam(&p), Extent::new2d(8, 8), OptLevel::Full, false);
        assert_eq!(origin, PlanOrigin::Compiled);
        let stats = failing.stats();
        assert_eq!((stats.compiles, stats.degraded_resolves), (1, 1));

        let declining = PlanCache::new(2, 8)
            .with_fetcher(Arc::new(ScriptedFetcher { calls: AtomicUsize::new(0), serve: false }));
        declining.resolve(&fam(&p), Extent::new2d(8, 8), OptLevel::Full, false);
        let stats = declining.stats();
        assert_eq!((stats.compiles, stats.degraded_resolves), (1, 0), "declines are not degraded");
    }

    #[test]
    fn families_share_one_cache_without_colliding() {
        let cache = PlanCache::new(4, 16);
        let ext = Extent::new2d(8, 8);
        let stencil = FamilyProgram::from(StencilProgram::jacobi_5pt());
        let particle = FamilyProgram::from(ParticleProgram::pair_sweep());
        let usgrid = FamilyProgram::from(UsGridProgram::jacobi4());

        // Keys never collide across families, even at identical shapes.
        let keys = [
            PlanKey::of(&stencil, ext, OptLevel::Full),
            PlanKey::of(&particle, ext, OptLevel::Full),
            PlanKey::of(&usgrid, ext, OptLevel::Full),
        ];
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a.family, b.family);
                assert_ne!(a.fingerprint, b.fingerprint, "fingerprints are domain-separated");
            }
        }

        // Three distinct plans resolve into three entries; reuse hits.
        for p in [&stencil, &particle, &usgrid] {
            let (_, origin) = cache.resolve(p, ext, OptLevel::Full, false);
            assert_eq!(origin, PlanOrigin::Compiled);
            let (artifact, origin) = cache.resolve(p, ext, OptLevel::Full, false);
            assert_eq!(origin, PlanOrigin::Hit);
            assert_eq!(artifact.family(), p.family(), "the artifact is the program's own family");
        }
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.hits, stats.entries), (3, 3, 3));
        assert_eq!(stats.collisions, 0);

        // Attribution: one miss + one hit per family lane, and the lanes sum
        // to the global counters.
        for family in KernelFamilyId::all() {
            assert_eq!(stats.for_family(family), FamilyLaneStats { hits: 1, misses: 1 });
        }
        assert_eq!(stats.family.iter().map(|l| l.hits).sum::<u64>(), stats.hits);
        assert_eq!(stats.family.iter().map(|l| l.misses).sum::<u64>(), stats.misses);
    }

    #[test]
    fn family_artifacts_survive_a_fetch_roundtrip() {
        // The chained fetcher serves particle and usgrid plans through the
        // same portable wire form the cluster uses.
        let fetcher = Arc::new(ScriptedFetcher { calls: AtomicUsize::new(0), serve: true });
        let cache = PlanCache::new(2, 8).with_fetcher(Arc::clone(&fetcher) as Arc<dyn PlanFetcher>);
        let ext = Extent::new2d(8, 8);
        for program in [
            FamilyProgram::from(ParticleProgram::pair_sweep()),
            FamilyProgram::from(UsGridProgram::jacobi4()),
        ] {
            let (artifact, origin) = cache.resolve(&program, ext, OptLevel::Full, false);
            assert_eq!(origin, PlanOrigin::Fetched);
            assert_eq!(artifact.family(), program.family());
            let local = program.compile(ext, OptLevel::Full);
            match (&artifact, &local) {
                (FamilyArtifact::Particle(a), FamilyArtifact::Particle(b)) => {
                    assert_eq!(a.as_ref(), b.as_ref())
                }
                (FamilyArtifact::UsGrid(a), FamilyArtifact::UsGrid(b)) => {
                    assert_eq!(a.as_ref(), b.as_ref())
                }
                other => panic!("unexpected artifact pairing: {other:?}"),
            }
        }
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.fetches, stats.compiles), (2, 2, 0));
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        PlanCache::new(0, 8);
    }
}
