//! The sharded compiled-plan cache.
//!
//! The paper's future-work "cache of data access resolution" is reified
//! per-process by [`CompiledKernel::compile`]; this module makes it a shared,
//! concurrent resource: plans are keyed by the *structural* program
//! fingerprint plus block shape and optimization level, so concurrent tenants
//! submitting the same mathematics share one `Arc<CompiledKernel>` instead of
//! each paying the compile.
//!
//! Design points:
//!
//! * **Sharding.**  Keys hash onto `N` independent `Mutex<HashMap>` shards,
//!   so unrelated programs never contend on one lock.
//! * **Single-flight compilation.**  A miss compiles *while holding the shard
//!   lock*: concurrent requests for the same key serialize behind the first
//!   one and then hit, so each distinct plan is compiled exactly once (the
//!   invariant the multi-tenant integration test asserts).  Other shards stay
//!   available throughout.
//! * **Bounded LRU.**  Each shard holds at most `ceil(capacity / shards)`
//!   entries; inserting past that evicts the least-recently-used entry of the
//!   shard.  Recency is a global atomic tick, not a clock, so behaviour is
//!   deterministic under test.
//! * **Tape included.**  A [`CompiledKernel`] carries its register-allocated
//!   execution tape (lowered once, inside `compile`), so a warm hit hands the
//!   tenant a ready-to-run tape — no per-job lowering, no per-job register
//!   allocation.

use aohpc_env::Extent;
use aohpc_kernel::{CompiledKernel, OptLevel, PlanSource, ProgramFingerprint, StencilProgram};
use parking_lot::Mutex;
use serde::Serialize;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cache key: what makes two compilations interchangeable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Structural fingerprint of the program (name-independent).
    pub fingerprint: ProgramFingerprint,
    /// Block width the plan was compiled for.
    pub nx: usize,
    /// Block height the plan was compiled for.
    pub ny: usize,
    /// Optimization level the DAG was lowered at.
    pub level: OptLevel,
}

/// Counters of one cache (point-in-time snapshot).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct PlanCacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Entries displaced by the capacity bound.
    pub evictions: u64,
    /// Lookups whose fingerprint matched a resident entry for a *different*
    /// program (hash collision); served by an uncached compile.
    pub collisions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

struct Entry {
    /// The program the kernel was compiled from, kept to verify hits:
    /// FNV-1a fingerprints are not collision-resistant, and in a multi-tenant
    /// cache a false hit would silently serve another tenant's kernel.
    program: StencilProgram,
    kernel: Arc<CompiledKernel>,
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    entries: HashMap<PlanKey, Entry>,
}

/// A sharded, LRU-bounded cache of compiled kernels.
pub struct PlanCache {
    shards: Vec<Mutex<Shard>>,
    shard_capacity: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    collisions: AtomicU64,
}

impl PlanCache {
    /// A cache of `shards` independent shards holding at most `capacity`
    /// plans in total (rounded up to a whole number per shard).
    pub fn new(shards: usize, capacity: usize) -> Self {
        assert!(shards > 0, "the cache needs at least one shard");
        assert!(capacity >= shards, "capacity must allow one entry per shard");
        PlanCache {
            shard_capacity: capacity.div_ceil(shards),
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            collisions: AtomicU64::new(0),
        }
    }

    fn shard_for(&self, key: &PlanKey) -> &Mutex<Shard> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % self.shards.len()]
    }

    /// Resolve the plan for `(program, extent, level)`, compiling on a miss.
    ///
    /// Returns the shared kernel and whether the lookup was a hit.
    pub fn get_or_compile(
        &self,
        program: &StencilProgram,
        extent: Extent,
        level: OptLevel,
    ) -> (Arc<CompiledKernel>, bool) {
        let key =
            PlanKey { fingerprint: program.fingerprint(), nx: extent.nx, ny: extent.ny, level };
        let now = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let mut shard = self.shard_for(&key).lock();
        if let Some(entry) = shard.entries.get_mut(&key) {
            // Verify the hit: the fingerprint is a hash, and serving a
            // colliding tenant another program's kernel would be a silent
            // wrong answer.  A collision falls through to an uncached
            // compile (the resident entry keeps its slot).
            if entry.program.same_structure(program) {
                entry.last_used = now;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return (Arc::clone(&entry.kernel), true);
            }
            self.collisions.fetch_add(1, Ordering::Relaxed);
            self.misses.fetch_add(1, Ordering::Relaxed);
            return (Arc::new(CompiledKernel::compile(program, extent, level)), false);
        }
        // Single-flight: compile under the shard lock (see module docs).
        self.misses.fetch_add(1, Ordering::Relaxed);
        let kernel = Arc::new(CompiledKernel::compile(program, extent, level));
        if shard.entries.len() >= self.shard_capacity {
            if let Some(victim) =
                shard.entries.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| *k)
            {
                shard.entries.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.entries.insert(
            key,
            Entry { program: program.clone(), kernel: Arc::clone(&kernel), last_used: now },
        );
        (kernel, false)
    }

    /// Whether a key is currently resident (does not touch recency).
    pub fn contains(&self, key: &PlanKey) -> bool {
        self.shard_for(key).lock().entries.contains_key(key)
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().entries.len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            collisions: self.collisions.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }
}

impl PlanSource for PlanCache {
    fn plan_for(
        &self,
        program: &StencilProgram,
        extent: Extent,
        level: OptLevel,
    ) -> Arc<CompiledKernel> {
        self.get_or_compile(program, extent, level).0
    }
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("shards", &self.shards.len())
            .field("shard_capacity", &self.shard_capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aohpc_kernel::{load, param, StencilProgram};
    use std::thread;

    fn program(name: &str, dx: i64) -> StencilProgram {
        StencilProgram::new(name, load(0, 0) + load(dx, 0) * param(0), 1).unwrap()
    }

    #[test]
    fn hit_after_miss_shares_the_same_kernel() {
        let cache = PlanCache::new(4, 16);
        let p = program("p", 1);
        let (a, hit_a) = cache.get_or_compile(&p, Extent::new2d(8, 8), OptLevel::Full);
        let (b, hit_b) = cache.get_or_compile(&p, Extent::new2d(8, 8), OptLevel::Full);
        assert!(!hit_a);
        assert!(hit_b);
        assert!(Arc::ptr_eq(&a, &b), "hits return the same compiled kernel");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn key_is_fingerprint_extent_and_level() {
        let cache = PlanCache::new(2, 16);
        let p = program("named-one-way", 1);
        let renamed = program("named-another-way", 1);
        cache.get_or_compile(&p, Extent::new2d(8, 8), OptLevel::Full);
        // Same structure under a different name: a hit (the anti-collision
        // verification compares structure, not the name label).
        let (_, hit) = cache.get_or_compile(&renamed, Extent::new2d(8, 8), OptLevel::Full);
        assert!(hit, "the cache keys on structure, not the name label");
        assert_eq!(cache.stats().collisions, 0);
        // Different shape or level: misses.
        let (_, hit) = cache.get_or_compile(&p, Extent::new2d(8, 4), OptLevel::Full);
        assert!(!hit);
        let (_, hit) = cache.get_or_compile(&p, Extent::new2d(8, 8), OptLevel::None);
        assert!(!hit);
        // Different structure: a miss.
        let (_, hit) = cache.get_or_compile(&program("p", 2), Extent::new2d(8, 8), OptLevel::Full);
        assert!(!hit);
        assert_eq!(cache.stats().misses, 4);
    }

    #[test]
    fn lru_eviction_bounds_each_shard() {
        // One shard, two slots: inserting a third evicts the least recently
        // used.
        let cache = PlanCache::new(1, 2);
        let (p1, p2, p3) = (program("p1", 1), program("p2", 2), program("p3", 3));
        let ext = Extent::new2d(8, 8);
        cache.get_or_compile(&p1, ext, OptLevel::Full);
        cache.get_or_compile(&p2, ext, OptLevel::Full);
        // Touch p1 so p2 becomes the LRU victim.
        let (_, hit) = cache.get_or_compile(&p1, ext, OptLevel::Full);
        assert!(hit);
        cache.get_or_compile(&p3, ext, OptLevel::Full);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        let key = |p: &StencilProgram| PlanKey {
            fingerprint: p.fingerprint(),
            nx: 8,
            ny: 8,
            level: OptLevel::Full,
        };
        assert!(cache.contains(&key(&p1)), "recently used survives");
        assert!(!cache.contains(&key(&p2)), "LRU entry evicted");
        assert!(cache.contains(&key(&p3)));
        // The evicted plan recompiles on next use.
        let (_, hit) = cache.get_or_compile(&p2, ext, OptLevel::Full);
        assert!(!hit);
    }

    #[test]
    fn concurrent_same_key_compiles_exactly_once() {
        let cache = Arc::new(PlanCache::new(8, 64));
        let p = StencilProgram::jacobi_5pt();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            let p = p.clone();
            handles.push(thread::spawn(move || {
                cache.get_or_compile(&p, Extent::new2d(16, 16), OptLevel::Full).0
            }));
        }
        let kernels: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for k in &kernels[1..] {
            assert!(Arc::ptr_eq(&kernels[0], k));
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "single-flight: one compilation total");
        assert_eq!(stats.hits, 7);
    }

    #[test]
    fn warm_hits_share_the_lowered_tape() {
        // The tape is lowered inside CompiledKernel::compile, so a hit (the
        // same Arc) necessarily skips lowering: one miss, one tape, shared.
        let cache = PlanCache::new(2, 8);
        let p = StencilProgram::jacobi_5pt();
        let (cold, hit_cold) = cache.get_or_compile(&p, Extent::new2d(8, 8), OptLevel::Full);
        let (warm, hit_warm) = cache.get_or_compile(&p, Extent::new2d(8, 8), OptLevel::Full);
        assert!(!hit_cold);
        assert!(hit_warm);
        assert!(Arc::ptr_eq(&cold, &warm));
        assert!(std::ptr::eq(cold.tape(), warm.tape()), "one lowering, shared tape");
        assert!(warm.tape().stats().registers > 0);
    }

    #[test]
    fn plan_source_trait_resolves_through_the_cache() {
        let cache = PlanCache::new(2, 8);
        let p = StencilProgram::jacobi_5pt();
        let a = cache.plan_for(&p, Extent::new2d(8, 8), OptLevel::Full);
        let b = cache.plan_for(&p, Extent::new2d(8, 8), OptLevel::Full);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().hits, 1);
        assert!(!cache.is_empty());
        assert_eq!(cache.shard_count(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        PlanCache::new(0, 8);
    }
}
