//! # aohpc-service — multi-tenant kernel execution as a persistent service
//!
//! The paper's platform weaves a DSL program once and runs it as a one-shot
//! batch job.  This crate is the layer the roadmap's production goal needs on
//! top of that pipeline: a **persistent service** that many tenants submit
//! kernel jobs to concurrently, built from four pieces:
//!
//! * [`SessionCtx`] / [`SessionSpec`] — per-tenant execution contexts every
//!   submission flows through: environment and metadata key-value stores,
//!   accumulated metering, and parent/child nesting for scoped sub-sessions.
//! * [`PlanCache`] — a sharded, policy-bounded cache of compiled execution
//!   plans for **every kernel family** ([`KernelFamilyId`]: stencil,
//!   particle, usgrid), keyed by the structural [`ProgramFingerprint`] plus
//!   family tag, block shape and optimization level.  Concurrent tenants
//!   submitting the same mathematics share one compiled
//!   [`aohpc_kernel::FamilyArtifact`]; resolution is single-flight per key
//!   and chains local shard → cluster fetch ([`PlanFetcher`]) → compile.
//!   Eviction is pluggable ([`EvictionPolicy`]: [`LruPolicy`] default,
//!   [`CostAwarePolicy`], entry pinning for hot sessions), and
//!   [`PlanCacheStats::for_family`] breaks hits/misses down per family.
//! * [`JobSpec`] / [`JobReport`] — the submission unit (a [`FamilyProgram`]
//!   of any family, region, blocking, steps, schedule policy, topology,
//!   weave mode) and its result (field checksum, deterministic simulated
//!   time, run digest).  Malformed specs are rejected at admission with a
//!   typed [`JobSpecError`].  Stock constructors cover all three families:
//!   [`JobSpec::jacobi`] / [`JobSpec::smooth`] (stencil),
//!   [`JobSpec::particle`], [`JobSpec::usgrid`].
//! * [`KernelService`] — the front door: `open_session` → `submit` /
//!   `try_submit` / `submit_timeout` / `submit_batch`, with per-session
//!   admission quotas applied as **backpressure** and a bounded
//!   crossbeam-channel worker pool executing jobs through the existing
//!   `runtime::execute` + `IrStencilApp` path.
//! * [`JobHandle`] / [`CompletionStream`] — the asynchronous result surface:
//!   every accepted job resolves its handle exactly once (report or
//!   [`JobError`]), and a session's stream delivers outcomes in submission
//!   order.  The synchronous [`KernelService::drain`] /
//!   [`KernelService::drain_session`] remain as thin wrappers over the same
//!   completion plumbing.
//! * [`ClusterService`] — N service nodes over a simulated
//!   `Communicator::mesh`, with tenant-affine session routing and
//!   control-plane plan sharing: each distinct plan is compiled exactly
//!   once per **cluster** (on its fingerprint-owner rank) and shipped as a
//!   fingerprint-stamped [`aohpc_kernel::PortableKernel`] everywhere else.
//!   See the [cluster module docs](cluster) for the protocol.
//!
//! ```
//! use aohpc_service::{JobSpec, KernelService, ServiceConfig, SessionSpec};
//! use aohpc_workloads::Scale;
//!
//! let service = KernelService::new(ServiceConfig::default().with_workers(2));
//! let session = service.open_session(SessionSpec::tenant("demo"));
//! // The async front door: submission returns a handle per job...
//! let handles = service
//!     .submit_batch(session, vec![JobSpec::jacobi(Scale::Smoke); 4])
//!     .unwrap();
//! // ...each resolving exactly once with the job's outcome.
//! for handle in &handles {
//!     let report = handle.wait().expect("job executed");
//!     assert!(report.error.is_none());
//! }
//! // Four submissions of the same program: one compile; every other lookup
//! // (admission pre-warm + per-task plan resolution) hits.
//! assert_eq!(service.cache_stats().misses, 1);
//! assert!(service.cache_stats().hits >= 3);
//! ```
//!
//! # Migrating from `drain` to `JobHandle::wait`
//!
//! `drain()` still works unchanged — it waits for quiescence and returns
//! every retained report.  New code should prefer the per-job surface:
//!
//! | blocking pattern                        | async replacement                         |
//! |-----------------------------------------|-------------------------------------------|
//! | `submit(...)?; ...; drain()`            | `let h = submit(...)?; h.wait()`          |
//! | `drain_session(s)`                      | `completion_stream(s)` + `next()`         |
//! | quota hit ⇒ `Err(QuotaExceeded)`        | `try_submit` ⇒ `Err(WouldBlock)` (retry), |
//! |                                         | or `submit_timeout` (bounded wait)        |
//!
//! Handle/stream-only deployments should disable
//! [`ServiceConfig::retain_reports`] so the undrained report buffer cannot
//! grow without bound.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod cluster;
pub mod fault;
mod fuse;
pub mod job;
pub mod membership;
pub mod service;
pub mod session;

pub use cache::{
    CostAwarePolicy, EntryMeta, EvictionPolicy, FamilyLaneStats, FetchOutcome, LruPolicy,
    PlanCache, PlanCacheStats, PlanFetcher, PlanKey, PlanOrigin,
};
pub use cluster::{
    plan_owner_among, ClusterCacheStats, ClusterCommStats, ClusterService, ClusterSessionId,
};
pub use fault::{FaultAction, FaultPlan, FaultState, Interception};
pub use job::{
    FailoverProvenance, FusionProvenance, JobError, JobErrorKind, JobHandle, JobId, JobOutcome,
    JobReport, JobSpec, JobSpecError, JobStatus,
};
pub use membership::{
    rendezvous_owner, ClusterTuning, Membership, MembershipStats, NodeState, Transition,
};
pub use service::{AdmissionStats, BatchError, KernelService, ServiceConfig, SubmitError};
pub use session::{CompletionStream, SessionCtx, SessionId, SessionMeter, SessionSpec};

// Re-exported so service callers can name the program/fingerprint types
// without depending on `aohpc-kernel` directly — and the runtime's progress
// type, which `JobHandle::progress` returns.
pub use aohpc_kernel::{
    FamilyProgram, KernelFamilyId, ParticleProgram, ProgramFingerprint, SpecializationId,
    StencilProgram, UsGridProgram,
};
pub use aohpc_runtime::Progress;

// The observability surface: install a hub with
// [`KernelService::with_observer`] / [`ClusterService::with_observer`], then
// export its flight-recorder spans (`chrome_trace_json` opens directly in
// `chrome://tracing` / Perfetto) or cross-check its counters with
// [`ObsSnapshot::validate`].
pub use aohpc_obs::{chrome_trace_json, json_lines, ObsHub, ObsSnapshot};
