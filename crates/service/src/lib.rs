//! # aohpc-service — multi-tenant kernel execution as a persistent service
//!
//! The paper's platform weaves a DSL program once and runs it as a one-shot
//! batch job.  This crate is the layer the roadmap's production goal needs on
//! top of that pipeline: a **persistent service** that many tenants submit
//! kernel jobs to concurrently, built from four pieces:
//!
//! * [`SessionCtx`] / [`SessionSpec`] — per-tenant execution contexts every
//!   submission flows through: environment and metadata key-value stores,
//!   accumulated metering, and parent/child nesting for scoped sub-sessions.
//! * [`PlanCache`] — a sharded, LRU-bounded cache of compiled execution
//!   plans, keyed by the structural [`ProgramFingerprint`] plus block shape
//!   and optimization level.  Concurrent tenants submitting the same
//!   mathematics share one `Arc<CompiledKernel>`; compilation is
//!   single-flight per key.
//! * [`JobSpec`] / [`JobReport`] — the submission unit (program, region,
//!   blocking, steps, schedule policy, topology, weave mode) and its result
//!   (field checksum, deterministic simulated time, run digest).
//! * [`KernelService`] — the front door: `open_session` → `submit` /
//!   `submit_batch` → `drain`, with per-session admission quotas and a
//!   crossbeam-channel worker pool executing jobs through the existing
//!   `runtime::execute` + `IrStencilApp` path.
//!
//! ```
//! use aohpc_service::{JobSpec, KernelService, ServiceConfig, SessionSpec};
//! use aohpc_workloads::Scale;
//!
//! let service = KernelService::new(ServiceConfig::default().with_workers(2));
//! let session = service.open_session(SessionSpec::tenant("demo"));
//! service.submit_batch(session, vec![JobSpec::jacobi(Scale::Smoke); 4]).unwrap();
//! let reports = service.drain();
//! assert_eq!(reports.len(), 4);
//! // Four submissions of the same program: one compile; every other lookup
//! // (admission pre-warm + per-task plan resolution) hits.
//! assert_eq!(service.cache_stats().misses, 1);
//! assert!(service.cache_stats().hits >= 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod job;
pub mod service;
pub mod session;

pub use cache::{PlanCache, PlanCacheStats, PlanKey};
pub use job::{JobId, JobReport, JobSpec};
pub use service::{BatchError, KernelService, ServiceConfig, SubmitError};
pub use session::{SessionCtx, SessionId, SessionMeter, SessionSpec};

// Re-exported so service callers can name the fingerprint type without
// depending on `aohpc-kernel` directly.
pub use aohpc_kernel::ProgramFingerprint;
