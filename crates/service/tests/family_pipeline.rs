//! Family-generic pipeline integration tests: particle and usgrid jobs are
//! first-class service workloads.  Each family flows through the same
//! fingerprint → plan cache → (portable wire form) → execution pipeline the
//! stencil path uses, results stay bit-identical to the direct seed path,
//! and the cluster compiles each distinct fingerprint exactly once no
//! matter how the families are mixed (proptested).

use aohpc_aop::Weaver;
use aohpc_dsl::{
    new_field_sink, DslSystem, ParticleApp, ParticleSystem, UsGridJacobiApp, UsGridSystem,
};
use aohpc_kernel::{
    FamilyProgram, KernelFamilyId, OptLevel, ParticleProgram, StencilProgram, UsGridProgram,
};
use aohpc_runtime::execute;
use aohpc_service::{
    ClusterService, JobSpec, KernelService, PlanCache, PlanKey, ServiceConfig, SessionSpec,
};
use aohpc_workloads::{checksum, GridLayout, ParticleSize, Scale};
use proptest::collection;
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;

fn config() -> ServiceConfig {
    ServiceConfig::default().with_workers(2)
}

/// The direct seed path for a particle spec: the DSL app with its built-in
/// inline pair force, no service, no cache, no hook.
fn direct_particle_checksum(spec: &JobSpec) -> f64 {
    let count = spec.particles.expect("stock particle specs carry their count");
    let system = ParticleSystem::paper(ParticleSize::new(count));
    let sink = new_field_sink();
    let app = ParticleApp::new(system.clone(), spec.steps)
        .with_dt(spec.params[1])
        .with_sink(sink.clone());
    let run = aohpc_runtime::RunConfig::serial()
        .with_topology(spec.topology.clone())
        .with_weave_mode(spec.weave_mode);
    execute(&run, Weaver::new().weave(), Arc::new(system).env_factory(), app.factory());
    let cks = checksum(sink.lock().iter().map(|(_, v)| *v));
    cks
}

/// The direct seed path for a usgrid spec: the DSL app with its built-in
/// inline `alpha·me + beta·Σ` law.
fn direct_usgrid_checksum(spec: &JobSpec) -> f64 {
    let system = UsGridSystem::with_block_size(spec.region, spec.block, GridLayout::CaseC);
    let sink = new_field_sink();
    let mut app = UsGridJacobiApp::new(system.clone(), spec.steps).with_sink(sink.clone());
    app.alpha = spec.params[0];
    app.beta = spec.params[1];
    let run = aohpc_runtime::RunConfig::serial()
        .with_topology(spec.topology.clone())
        .with_weave_mode(spec.weave_mode);
    execute(&run, Weaver::new().weave(), Arc::new(system).env_factory(), app.factory());
    let cks = checksum(sink.lock().iter().map(|(_, v)| *v));
    cks
}

fn service_checksum(spec: JobSpec) -> (f64, aohpc_service::PlanCacheStats) {
    let service = KernelService::new(ServiceConfig::default().with_workers(1));
    let session = service.open_session(SessionSpec::tenant("family"));
    let report = service.submit(session, spec).unwrap().wait().unwrap();
    assert!(report.error.is_none(), "{:?}", report.error);
    (report.checksum, service.cache_stats())
}

#[test]
fn particle_jobs_run_end_to_end_and_match_the_direct_seed_path() {
    let spec = JobSpec::particle(Scale::Smoke);
    let (cks, stats) = service_checksum(spec.clone());
    assert!(cks.is_finite());
    assert_eq!(
        cks.to_bits(),
        direct_particle_checksum(&spec).to_bits(),
        "cache-resolved pair law diverged from the DSL's inline force"
    );
    // The job resolved (and compiled) its plan through the shared cache,
    // metered on the particle lane.
    let lane = stats.for_family(KernelFamilyId::Particle);
    assert_eq!((lane.misses, stats.compiles), (1, 1), "{stats:?}");
    assert_eq!(stats.for_family(KernelFamilyId::Stencil).misses, 0);
}

#[test]
fn usgrid_jobs_run_end_to_end_and_match_the_direct_seed_path() {
    let spec = JobSpec::usgrid(Scale::Smoke);
    let (cks, stats) = service_checksum(spec.clone());
    assert!(cks.is_finite());
    assert_eq!(
        cks.to_bits(),
        direct_usgrid_checksum(&spec).to_bits(),
        "cache-resolved update law diverged from the DSL's inline law"
    );
    let lane = stats.for_family(KernelFamilyId::UsGrid);
    assert_eq!((lane.misses, stats.compiles), (1, 1), "{stats:?}");
}

/// A mixed-family batch through ONE service: every family executes, the
/// cache holds one plan per family, and the per-family lanes attribute
/// exactly their own jobs.
#[test]
fn one_service_hosts_all_three_families() {
    let service = KernelService::new(config());
    let session = service.open_session(SessionSpec::tenant("mixed"));
    let jobs = vec![
        JobSpec::jacobi(Scale::Smoke),
        JobSpec::particle(Scale::Smoke),
        JobSpec::usgrid(Scale::Smoke),
        JobSpec::particle(Scale::Smoke),
        JobSpec::usgrid(Scale::Smoke),
    ];
    service.submit_batch(session, jobs).unwrap();
    let reports = service.drain();
    assert_eq!(reports.len(), 5);
    assert!(reports.iter().all(|r| r.error.is_none() && r.checksum.is_finite()));
    let names: HashSet<&str> = reports.iter().map(|r| r.program.as_str()).collect();
    assert_eq!(names, HashSet::from(["jacobi-5pt", "particle-pair-sweep", "usgrid-jacobi4"]));

    let stats = service.cache_stats();
    let particle = stats.for_family(KernelFamilyId::Particle);
    let usgrid = stats.for_family(KernelFamilyId::UsGrid);
    assert_eq!(particle.misses, 1, "{stats:?}");
    assert_eq!(usgrid.misses, 1, "{stats:?}");
    // The second particle/usgrid submission hit its family's warm plan.
    assert!(particle.hits >= 1 && usgrid.hits >= 1, "{stats:?}");
}

/// Particle and usgrid jobs flow through the cluster's plan-sharing fabric:
/// the owner compiles, everyone else hydrates the portable wire form, and
/// results stay bit-identical to a single node.
#[test]
fn particle_and_usgrid_plans_ship_across_the_cluster() {
    const NODES: usize = 3;
    let cluster = ClusterService::new(NODES, config());
    let jobs = [JobSpec::particle(Scale::Smoke), JobSpec::usgrid(Scale::Smoke)];
    for node in 0..NODES {
        let id = cluster.open_session_on(node, SessionSpec::tenant(format!("t{node}")));
        for job in &jobs {
            cluster.submit(id, job.clone()).unwrap();
        }
    }
    let reports = cluster.drain();
    assert_eq!(reports.len(), NODES * jobs.len());
    assert!(reports.iter().all(|r| r.error.is_none()));

    let stats = cluster.cache_stats();
    assert_eq!(stats.total.compiles as usize, jobs.len(), "one compile per family: {stats:?}");
    assert_eq!(stats.total.fetches as usize, jobs.len() * (NODES - 1), "{stats:?}");
    assert_eq!(stats.total.misses, stats.total.compiles + stats.total.fetches);

    for job in jobs {
        let reference = match job.program.family() {
            KernelFamilyId::Particle => direct_particle_checksum(&job),
            KernelFamilyId::UsGrid => direct_usgrid_checksum(&job),
            KernelFamilyId::Stencil => unreachable!(),
        };
        let fp = job.program.fingerprint();
        for report in reports.iter().filter(|r| r.fingerprint == fp) {
            assert_eq!(
                report.checksum.to_bits(),
                reference.to_bits(),
                "hydrated {:?} plan diverged from the seed path",
                job.program.family()
            );
        }
    }
    cluster.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Fingerprints are domain-separated by family: programs from different
    /// families can never collide on a `PlanKey`, whatever the shape.
    #[test]
    fn plan_keys_never_collide_across_families(
        nx in 1usize..64,
        ny in 1usize..64,
        full in any::<bool>(),
    ) {
        let level = if full { OptLevel::Full } else { OptLevel::None };
        let ext = aohpc_env::Extent::new2d(nx, ny);
        let programs = [
            FamilyProgram::from(StencilProgram::jacobi_5pt()),
            FamilyProgram::from(ParticleProgram::pair_sweep()),
            FamilyProgram::from(UsGridProgram::jacobi4()),
        ];
        let keys: Vec<PlanKey> = programs.iter().map(|p| PlanKey::of(p, ext, level)).collect();
        for i in 0..keys.len() {
            for j in (i + 1)..keys.len() {
                prop_assert_ne!(&keys[i], &keys[j]);
                prop_assert_ne!(keys[i].fingerprint, keys[j].fingerprint);
            }
        }
    }

    /// Per-family hit/miss attribution: resolving each family's program
    /// `n` times charges exactly (1 miss, n-1 hits) to that family's lane
    /// and nothing to the others — families share the cache without
    /// cross-talk.
    #[test]
    fn family_lanes_meter_exactly_their_own_traffic(
        n_stencil in 0usize..5,
        n_particle in 0usize..5,
        n_usgrid in 0usize..5,
    ) {
        let cache = PlanCache::new(4, 64);
        let ext = aohpc_env::Extent::new2d(8, 8);
        let traffic = [
            (FamilyProgram::from(StencilProgram::jacobi_5pt()), n_stencil),
            (FamilyProgram::from(ParticleProgram::pair_sweep()), n_particle),
            (FamilyProgram::from(UsGridProgram::jacobi4()), n_usgrid),
        ];
        for (program, n) in &traffic {
            for _ in 0..*n {
                let (artifact, _) = cache.resolve(program, ext, OptLevel::Full, false);
                prop_assert_eq!(artifact.family(), program.family());
            }
        }
        let stats = cache.stats();
        for (program, n) in &traffic {
            let lane = stats.for_family(program.family());
            let expect = if *n == 0 { (0, 0) } else { (*n as u64 - 1, 1) };
            prop_assert_eq!((lane.hits, lane.misses), expect, "{:?}", stats);
        }
        prop_assert_eq!(
            stats.compiles as usize,
            traffic.iter().filter(|(_, n)| *n > 0).count()
        );
    }

    /// The acceptance property: over a random mixed-family workload on a
    /// random cluster size, cluster-wide compiles == distinct fingerprints
    /// submitted — compile-once-per-cluster holds for every family.
    #[test]
    fn mixed_family_cluster_compiles_equal_distinct_fingerprints(
        submissions in collection::vec((0usize..3, 0usize..3), 1..8),
        nodes in 2usize..4,
    ) {
        let palette = [
            JobSpec::jacobi(Scale::Smoke).with_steps(1),
            JobSpec::particle(Scale::Smoke).with_steps(1),
            JobSpec::usgrid(Scale::Smoke)
                .with_block(8)
                .with_steps(1),
        ];
        let cluster = ClusterService::new(nodes, config());
        let sessions: Vec<_> = (0..nodes)
            .map(|n| cluster.open_session_on(n, SessionSpec::tenant(format!("t{n}"))))
            .collect();
        let mut distinct = HashSet::new();
        for (node, which) in &submissions {
            let spec = palette[*which].clone();
            distinct.insert(spec.program.fingerprint());
            cluster.submit(sessions[node % nodes], spec).unwrap();
        }
        let reports = cluster.drain();
        prop_assert_eq!(reports.len(), submissions.len());
        prop_assert!(reports.iter().all(|r| r.error.is_none()));
        let stats = cluster.cache_stats();
        prop_assert_eq!(stats.total.compiles as usize, distinct.len(), "{:?}", stats);
        prop_assert_eq!(stats.total.misses, stats.total.compiles + stats.total.fetches);
        cluster.shutdown();
    }
}
