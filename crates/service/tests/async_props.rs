//! Property test over random submit/cancel/drain interleavings of the async
//! front door.
//!
//! Invariants asserted for every interleaving:
//!
//! 1. **Exactly-once resolution** — every accepted job's handle resolves
//!    with a report or an error: by a worker, by `cancel`, or (at the
//!    latest) by shutdown, and repeated polls observe the same outcome.
//! 2. **Cancel consistency** — `cancel() == true` iff the handle resolves
//!    `Err(Cancelled)`; a losing cancel means the job ran and reported.
//! 3. **Stream order** — the session's `CompletionStream` delivers outcomes
//!    in submission order (ascending job ids), covering cancelled and
//!    abandoned jobs, and ends exactly when everything submitted since
//!    attach has been delivered.
//! 4. **No leaked slots** — after quiescing, nothing is in flight or
//!    queued, and the per-session meters tie out:
//!    `submitted == completed + cancelled (+ abandoned at shutdown)`.

use aohpc_kernel::StencilProgram;
use aohpc_service::{
    JobErrorKind, JobHandle, JobSpec, KernelService, ServiceConfig, SessionSpec, SubmitError,
};
use aohpc_testalloc::sync::spin_until;
use aohpc_workloads::RegionSize;
use proptest::collection;
use proptest::prelude::*;
use std::collections::HashSet;
use std::time::Duration;

/// A small job (one 8x8 block, one step) so 256 interleavings stay fast.
fn tiny_job() -> JobSpec {
    JobSpec::new(StencilProgram::jacobi_5pt(), vec![0.5, 0.125], RegionSize::square(8))
        .with_block(8)
        .with_steps(1)
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Op {
    /// `try_submit` under session A (the streamed session).
    SubmitA,
    /// `try_submit` under session B.
    SubmitB,
    /// Cancel the (i mod len)-th handle issued so far.
    Cancel(usize),
    /// Consume whatever the stream has ready.
    PollStream,
    /// Synchronously drain session B (the legacy path, mid-interleaving).
    DrainB,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::SubmitA),
        Just(Op::SubmitA), // weight submissions so interleavings have work
        Just(Op::SubmitB),
        (0usize..16).prop_map(Op::Cancel),
        Just(Op::PollStream),
        Just(Op::DrainB),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn async_interleavings_resolve_every_job_exactly_once(
        ops in collection::vec(op_strategy(), 1..14),
        workers in 0usize..3,
    ) {
        let service = KernelService::new(
            ServiceConfig::default()
                .with_workers(workers)
                .with_quota(4)
                .with_admission_timeout(Duration::ZERO),
        );
        let session_a = service.open_session(SessionSpec::tenant("a"));
        let session_b = service.open_session(SessionSpec::tenant("b"));
        let stream = service.completion_stream(session_a).unwrap();

        let mut handles: Vec<JobHandle> = Vec::new();
        let mut cancel_won: HashSet<u64> = HashSet::new();
        let mut streamed: Vec<_> = Vec::new();
        for op in &ops {
            match op {
                Op::SubmitA | Op::SubmitB => {
                    let session = if *op == Op::SubmitA { session_a } else { session_b };
                    match service.try_submit(session, tiny_job()) {
                        Ok(handle) => handles.push(handle),
                        // Admission-only interleavings fill the quota; that
                        // is backpressure, not an accepted job.
                        Err(e) => prop_assert!(e.is_backpressure(), "unexpected error: {e}"),
                    }
                }
                Op::Cancel(i) => {
                    if !handles.is_empty() {
                        let handle = &handles[i % handles.len()];
                        if handle.cancel() {
                            prop_assert!(
                                cancel_won.insert(handle.id()),
                                "cancel() returned true twice for job {}",
                                handle.id()
                            );
                        }
                    }
                }
                Op::PollStream => {
                    while let Some(outcome) = stream.try_next() {
                        streamed.push(outcome);
                    }
                }
                Op::DrainB => {
                    for report in service.drain_session(session_b) {
                        prop_assert_eq!(report.session, session_b);
                    }
                }
            }
        }

        // Quiesce the worker pool (a no-op wait in admission-only mode).
        service.drain();

        if workers > 0 {
            // Every accepted job has resolved; outcomes agree with the
            // cancel bookkeeping, and re-polling is stable.
            for handle in &handles {
                let outcome = handle.poll();
                prop_assert!(outcome.is_some(), "job {} unresolved after drain", handle.id());
                match outcome.clone().unwrap() {
                    Ok(report) => {
                        prop_assert_eq!(report.job, handle.id());
                        prop_assert!(
                            !cancel_won.contains(&handle.id()),
                            "job {} reported but its cancel had won",
                            handle.id()
                        );
                    }
                    Err(error) => {
                        prop_assert_eq!(error.kind, JobErrorKind::Cancelled);
                        prop_assert!(cancel_won.contains(&error.job));
                    }
                }
                let again = handle.poll().unwrap();
                prop_assert_eq!(
                    outcome.unwrap().is_ok(), again.is_ok(),
                    "outcome changed between polls"
                );
            }

            // No leaked worker or quota slots.
            prop_assert_eq!(service.session(session_a).unwrap().in_flight(), 0);
            prop_assert_eq!(service.session(session_b).unwrap().in_flight(), 0);
            // Cancelled jobs leave a tombstone message in the channel until a
            // worker dequeues it; the workers drain those promptly but
            // asynchronously, so this is an eventually-zero observation.
            spin_until("tombstones dequeued", || service.admission_stats().queued == 0);
            for session in [session_a, session_b] {
                let meter = *service.session(session).unwrap().meter();
                prop_assert_eq!(
                    meter.jobs_submitted,
                    meter.jobs_completed + meter.jobs_cancelled,
                    "session {} meters do not tie out: {:?}", session, meter
                );
            }
            // Capacity fully restored: a fresh submission is admitted.
            let probe = service.try_submit(session_a, tiny_job());
            prop_assert!(probe.is_ok(), "freed capacity rejected a submit: {:?}", probe.err());
            let probe = probe.unwrap();
            probe.wait().unwrap();
            handles.push(probe); // the stream owes (and delivers) it too
        }

        // Shutdown resolves everything still queued (admission-only mode
        // leaves all uncancelled jobs queued).
        drop(service);
        let mut abandoned = 0u64;
        for handle in &handles {
            let outcome = handle.poll();
            prop_assert!(outcome.is_some(), "job {} unresolved after shutdown", handle.id());
            if let Err(error) = outcome.unwrap() {
                match error.kind {
                    JobErrorKind::Cancelled => {
                        prop_assert!(cancel_won.contains(&error.job));
                    }
                    JobErrorKind::Abandoned => {
                        prop_assert!(workers == 0 || !cancel_won.contains(&error.job));
                        abandoned += 1;
                    }
                }
            }
        }
        prop_assert!(
            workers > 0 || abandoned as usize ==
                handles.iter().filter(|h| h.session() == session_a || h.session() == session_b)
                    .count() - cancel_won.len(),
            "admission-only: every uncancelled job resolves Abandoned"
        );

        // The stream delivered session A's outcomes in submission order —
        // cancelled/abandoned holes included — and owes nothing more.
        while let Some(outcome) = stream.try_next() {
            streamed.push(outcome);
        }
        let delivered: Vec<u64> = streamed
            .iter()
            .map(|o| o.as_ref().map(|r| r.job).unwrap_or_else(|e| e.job))
            .collect();
        let mut sorted = delivered.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(
            &delivered, &sorted,
            "stream delivery is not in submission order (or duplicated)"
        );
        let expected: Vec<u64> = handles
            .iter()
            .filter(|h| h.session() == session_a)
            .map(JobHandle::id)
            .collect();
        prop_assert_eq!(delivered, expected, "stream must deliver exactly session A's jobs");
        prop_assert_eq!(stream.pending(), 0);
        prop_assert!(stream.try_next().is_none());
    }

    /// `try_submit` at quota always reports retryable backpressure and the
    /// error names the configured limit.
    #[test]
    fn try_submit_backpressure_is_always_retryable(
        quota in 1usize..4,
        extra in 1usize..4,
    ) {
        let service = KernelService::new(
            ServiceConfig::default().with_workers(0).with_quota(quota)
                .with_admission_timeout(Duration::ZERO),
        );
        let session = service.open_session(SessionSpec::tenant("t"));
        for _ in 0..quota {
            prop_assert!(service.try_submit(session, tiny_job()).is_ok());
        }
        for _ in 0..extra {
            let err = service.try_submit(session, tiny_job()).unwrap_err();
            prop_assert_eq!(err.clone(), SubmitError::WouldBlock { session, limit: quota });
            prop_assert!(err.is_backpressure());
        }
        let meter = *service.session(session).unwrap().meter();
        prop_assert_eq!(meter.jobs_throttled, extra as u64);
        prop_assert_eq!(meter.jobs_submitted, quota as u64);
    }
}
