//! Property test over random submit interleavings on an N-node cluster.
//!
//! For every generated interleaving — which node, which program, in which
//! order — two invariants must hold after the cluster quiesces:
//!
//! 1. **Compile-once-per-cluster** — the aggregated cache stats show
//!    exactly one local compilation per *distinct* plan key submitted
//!    anywhere in the cluster (every other node's miss resolved by a
//!    cluster fetch), and `misses == compiles + fetches` ties the ledger.
//! 2. **Bit identity** — every job's checksum equals, bit for bit, the
//!    checksum a plain single-node `KernelService` computes for the same
//!    spec: plan sharing (serialize → ship → re-lower) never perturbs
//!    results.

use aohpc_kernel::{load, param, StencilProgram};
use aohpc_service::{ClusterService, JobSpec, KernelService, ServiceConfig, SessionSpec};
use aohpc_workloads::RegionSize;
use proptest::collection;
use proptest::prelude::*;
use std::collections::HashSet;

/// The program palette: three structurally distinct kernels, all blocked
/// 8x8 over a 16x16 region (block-divisible, so each program resolves
/// exactly one plan key: fingerprints differ, shapes agree).
fn programs() -> [JobSpec; 3] {
    let anisotropic = StencilProgram::new(
        "anisotropic",
        param(0) * load(0, 0) + param(1) * (load(1, 0) + load(-1, 0)) - load(0, 1) * 0.25,
        2,
    )
    .unwrap();
    let base = |p: StencilProgram| {
        JobSpec::new(p, vec![0.5, 0.125], RegionSize::square(16)).with_block(8).with_steps(1)
    };
    [base(StencilProgram::jacobi_5pt()), base(StencilProgram::smooth_9pt()), base(anisotropic)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_interleavings_compile_once_and_match_single_node(
        submissions in collection::vec((0usize..4, 0usize..3), 1..16),
        nodes in 2usize..5,
    ) {
        let palette = programs();

        // Reference checksums from a single node, one program each.
        let reference: Vec<u64> = {
            let single = KernelService::new(ServiceConfig::default().with_workers(1));
            let session = single.open_session(SessionSpec::tenant("ref"));
            palette
                .iter()
                .map(|spec| {
                    let report =
                        single.submit(session, spec.clone()).unwrap().wait().unwrap();
                    prop_assert_eq!(&report.error, &None);
                    Ok(report.checksum.to_bits())
                })
                .collect::<Result<_, TestCaseError>>()?
        };

        let cluster = ClusterService::new(nodes, ServiceConfig::default().with_workers(2));
        let sessions: Vec<_> = (0..nodes)
            .map(|n| cluster.open_session_on(n, SessionSpec::tenant(format!("t{n}"))))
            .collect();

        let mut distinct: HashSet<u128> = HashSet::new();
        for &(node, program) in &submissions {
            let node = node % nodes;
            let spec = palette[program].clone();
            distinct.insert(spec.program.fingerprint().as_u128());
            cluster.submit(sessions[node], spec).unwrap();
        }
        let reports = cluster.drain();
        prop_assert_eq!(reports.len(), submissions.len());

        // Bit identity per job (match reports to programs by fingerprint —
        // job ids are node-local and may repeat across nodes).
        for report in &reports {
            prop_assert_eq!(&report.error, &None, "job failed: {:?}", report);
            let program = palette
                .iter()
                .position(|p| p.program.fingerprint() == report.fingerprint)
                .expect("report fingerprint maps to a submitted program");
            prop_assert_eq!(
                report.checksum.to_bits(),
                reference[program],
                "cluster result diverged from single-node for program {}",
                program
            );
        }

        // Compile-once-per-cluster, read off the aggregated stats.
        let stats = cluster.cache_stats();
        prop_assert_eq!(
            stats.total.compiles as usize,
            distinct.len(),
            "cluster-wide compiles != distinct fingerprints: {:?}",
            stats
        );
        prop_assert_eq!(stats.total.misses, stats.total.compiles + stats.total.fetches);
        prop_assert_eq!(stats.total.collisions, 0);
        // No node compiled a plan it could have fetched: per-key there is
        // exactly one compiling node, so per-node compiles sum to the
        // distinct count with every addend counting distinct keys at most
        // once (already implied by the total, asserted per-node for the
        // error message's sake).
        for (rank, s) in stats.per_node.iter().enumerate() {
            prop_assert!(
                s.compiles as usize <= distinct.len(),
                "node {} compiled more than the distinct plan count: {:?}",
                rank,
                s
            );
        }
        cluster.shutdown();
    }
}
