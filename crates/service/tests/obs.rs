//! Observability integration tests: deterministic traces under the fake
//! clock, cross-validated snapshots at quiescence, and cross-node trace
//! linkage over the cluster fabric.
//!
//! The determinism property is the observability analogue of the harness's
//! "no timing guesses" rule: with a [`FakeClock`] driving both the service
//! and the hub, the *entire* flight recording — span ids, parent edges,
//! names, attributes, timestamps — is a pure function of the submitted
//! workload.

use aohpc_obs::SpanRecord;
use aohpc_service::{ClusterService, JobSpec, KernelService, ObsHub, ServiceConfig, SessionSpec};
use aohpc_testalloc::sync::FakeClock;
use aohpc_workloads::Scale;
use proptest::prelude::*;

/// The four distinct programs the workload generator can draw from.
fn job(kind: usize) -> JobSpec {
    match kind % 4 {
        0 => JobSpec::jacobi(Scale::Smoke),
        1 => JobSpec::smooth(Scale::Smoke),
        2 => JobSpec::particle(Scale::Smoke),
        _ => JobSpec::usgrid(Scale::Smoke),
    }
}

/// Everything observable about a span except the recorder's thread index
/// (worker threads are interchangeable; one worker makes the rest of the
/// record deterministic).
type NormalizedSpan = (u64, u64, u64, &'static str, u64, u64, i64, i64);

fn normalize(spans: &[SpanRecord]) -> Vec<NormalizedSpan> {
    let mut out: Vec<_> = spans
        .iter()
        .map(|s| (s.trace, s.span, s.parent, s.name, s.start_ns, s.end_ns, s.a, s.b))
        .collect();
    out.sort_unstable();
    out
}

/// Run `kinds` through a fresh single-worker service on a fresh fake-clocked
/// hub and return the normalized flight recording.
fn record_run(kinds: &[usize]) -> Vec<NormalizedSpan> {
    let clock = FakeClock::new();
    let hub = ObsHub::with_clock(clock.clone());
    let service = KernelService::with_observer_and_clock(
        ServiceConfig::default().with_workers(1),
        std::sync::Arc::clone(&hub),
        clock,
    );
    let session = service.open_session(SessionSpec::tenant("det"));
    for &kind in kinds {
        // Blocking submit + per-job wait keeps the queue depth at most one,
        // so the single worker consumes jobs in submission order.
        service.submit(session, job(kind)).expect("admitted").wait().expect("executed");
    }
    let _ = service.drain();
    let spans = hub.recorder().spans();
    service.shutdown();
    normalize(&spans)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Same workload, two fresh service+hub pairs on fake clocks: the two
    /// flight recordings are identical record-for-record — span ids, parent
    /// edges, attributes, and (never-advanced) timestamps all included.
    #[test]
    fn traces_are_deterministic_under_fake_clock(kinds in proptest::collection::vec(0usize..4, 1..5)) {
        let first = record_run(&kinds);
        let second = record_run(&kinds);
        prop_assert!(!first.is_empty(), "an observed run records spans");
        prop_assert_eq!(first, second);
    }
}

/// After a drained run the snapshot's cross-counter invariants all hold:
/// cache ledger (`misses == compiles + fetches`), lane sums, queue-wait
/// count vs job count, and the histogram's internal ordering.
#[test]
fn snapshot_validates_clean_at_quiescence() {
    let hub = ObsHub::new();
    let service = KernelService::with_observer(
        ServiceConfig::default().with_workers(2),
        std::sync::Arc::clone(&hub),
    );
    let session = service.open_session(SessionSpec::tenant("snap"));
    let mut handles = Vec::new();
    for round in 0..3 {
        for kind in 0..4 {
            handles.push(service.submit(session, job(kind + round)).expect("admitted"));
        }
    }
    let reports = service.drain();
    assert_eq!(reports.len(), 12);

    // Every report carries its trace id and phase breakdown.
    for report in &reports {
        assert!(report.error.is_none(), "job failed: {:?}", report.error);
        assert!(report.trace_id.is_some(), "observed jobs are traced");
        assert!(report.execute_time > std::time::Duration::ZERO, "execute phase was timed");
    }
    let traces: std::collections::HashSet<_> =
        reports.iter().map(|r| r.trace_id.unwrap()).collect();
    assert_eq!(traces.len(), reports.len(), "each job gets a distinct trace id");

    // Queue-wait percentiles surface through the plain admission stats too.
    let admission = service.admission_stats();
    assert!(admission.queue_wait_p99_ns >= admission.queue_wait_p50_ns);

    let snapshot = service.obs_snapshot().expect("observer installed");
    let violations = snapshot.validate();
    assert!(violations.is_empty(), "snapshot inconsistent: {violations:?}");
    assert_eq!(snapshot.jobs.completed, 12);
    assert_eq!(snapshot.jobs.failed, 0);
    service.shutdown();
}

/// A two-node cluster with one shared hub: the non-owner node's plan fetch
/// shows up as a `Cluster::plan_req` span *inside the requesting job's
/// trace*, the owner's serve side as a `Cluster::plan_rep` root span, and
/// the cluster-wide snapshot cross-validates clean.
#[test]
fn cluster_fetch_spans_link_into_the_job_trace() {
    use aohpc_aop::names;

    let hub = ObsHub::new();
    let cluster = ClusterService::with_observer(
        2,
        ServiceConfig::default().with_workers(1),
        std::sync::Arc::clone(&hub),
    );
    // The same program on both nodes: one compiles, the other fetches.
    for node in 0..2 {
        let session = cluster.open_session_on(node, SessionSpec::tenant(format!("n{node}")));
        cluster.submit(session, job(0)).expect("admitted");
    }
    let reports = cluster.drain();
    assert_eq!(reports.len(), 2);
    let traces: Vec<u64> = reports.iter().map(|r| r.trace_id.expect("traced")).collect();

    let spans = hub.recorder().spans();
    let req = spans
        .iter()
        .find(|s| s.name == names::CLUSTER_PLAN_REQ)
        .expect("the non-owner node fetched over the fabric");
    assert!(
        traces.contains(&req.trace),
        "plan request runs inside one of the jobs' traces (trace {})",
        req.trace
    );
    assert_ne!(req.parent, 0, "the fetch is parented into the job's span tree");
    assert!(req.a >= 1, "fetch succeeded (OK attribute)");
    let rep = spans
        .iter()
        .find(|s| s.name == names::CLUSTER_PLAN_REP)
        .expect("the owner served the plan");
    assert_eq!(rep.trace, 0, "serve side runs on a fabric thread: a trace root");

    let snapshot = cluster.obs_snapshot().expect("observer installed");
    let violations = snapshot.validate();
    assert!(violations.is_empty(), "cluster snapshot inconsistent: {violations:?}");
    let comm = snapshot.comm.expect("fabric attached");
    assert_eq!(comm.control_sent, comm.control_received);
    assert_eq!(snapshot.cache.as_ref().unwrap().fetches, 1);
    cluster.shutdown();
}
