//! Cluster plan-sharing integration tests: compile-once-per-cluster, bit
//! identity with single-node execution, session affinity, fabric metering
//! and deterministic (fake-clock) backpressure on cluster nodes.

use aohpc_service::{
    ClusterService, CostAwarePolicy, JobSpec, KernelService, ServiceConfig, SessionSpec,
};
use aohpc_testalloc::sync::FakeClock;
use aohpc_workloads::Scale;
use std::sync::Arc;
use std::time::Duration;

fn config() -> ServiceConfig {
    ServiceConfig::default().with_workers(2)
}

fn smoke_job() -> JobSpec {
    JobSpec::jacobi(Scale::Smoke)
}

/// The reference: what a single node computes for `spec` (serial topology,
/// so checksums are bit-stable).
fn single_node_checksum(spec: JobSpec) -> f64 {
    let service = KernelService::new(ServiceConfig::default().with_workers(1));
    let session = service.open_session(SessionSpec::tenant("reference"));
    let report = service.submit(session, spec).unwrap().wait().unwrap();
    assert!(report.error.is_none());
    report.checksum
}

#[test]
fn each_distinct_plan_compiles_once_cluster_wide() {
    const NODES: usize = 4;
    let cluster = ClusterService::new(NODES, config());
    assert_eq!(cluster.node_count(), NODES);

    // Every node receives the same program: without plan sharing this is
    // NODES compilations, with it exactly one (on the key's owner).
    let sessions: Vec<_> = (0..NODES)
        .map(|n| cluster.open_session_on(n, SessionSpec::tenant(format!("tenant-{n}"))))
        .collect();
    for id in &sessions {
        cluster.submit(*id, smoke_job()).unwrap();
        cluster.submit(*id, smoke_job()).unwrap();
    }
    let reports = cluster.drain();
    assert_eq!(reports.len(), 2 * NODES);
    assert!(reports.iter().all(|r| r.error.is_none()));

    let stats = cluster.cache_stats();
    assert_eq!(stats.total.compiles, 1, "one distinct plan, one compile cluster-wide: {stats:?}");
    // Every non-owner node resolved its first miss by fetching.
    assert_eq!(stats.total.fetches as usize, NODES - 1, "{stats:?}");
    assert_eq!(stats.total.misses, stats.total.compiles + stats.total.fetches);
    // Exactly one node (the owner) compiled; per-node compiles are 0/1.
    assert_eq!(stats.per_node.iter().filter(|s| s.compiles == 1).count(), 1);
    assert!(stats.per_node.iter().all(|s| s.compiles <= 1));
    // The plan is now resident on every node.
    assert_eq!(stats.total.entries, NODES);

    // All results agree bit-for-bit with a single-node run.
    let reference = single_node_checksum(smoke_job());
    for report in &reports {
        assert_eq!(
            report.checksum.to_bits(),
            reference.to_bits(),
            "cluster node diverged from single-node execution"
        );
    }

    // The fabric carried the protocol: one request + one reply per fetch,
    // and the quiesced mesh balances its ledgers.
    let comm = cluster.comm_stats();
    assert_eq!(comm.total.control_sent as usize, 2 * (NODES - 1), "{:?}", comm.total);
    assert_eq!(comm.total.control_sent, comm.total.control_received);
    assert_eq!(comm.total.bytes_sent, comm.total.bytes_received);
    assert!(comm.total.bytes_sent > 0, "plans travelled as bytes");
    cluster.shutdown();
}

#[test]
fn distinct_programs_each_compile_once() {
    const NODES: usize = 3;
    let cluster = ClusterService::new(NODES, config());
    let jobs = [smoke_job(), JobSpec::smooth(Scale::Smoke)];
    for node in 0..NODES {
        let id = cluster.open_session_on(node, SessionSpec::tenant(format!("t{node}")));
        for job in &jobs {
            cluster.submit(id, job.clone()).unwrap();
        }
    }
    let reports = cluster.drain();
    assert_eq!(reports.len(), NODES * jobs.len());
    assert!(reports.iter().all(|r| r.error.is_none()));
    let stats = cluster.cache_stats();
    assert_eq!(stats.total.compiles as usize, jobs.len(), "{stats:?}");
    assert_eq!(stats.total.fetches as usize, jobs.len() * (NODES - 1), "{stats:?}");
    for job in jobs {
        let reference = single_node_checksum(job.clone());
        let fp = job.program.fingerprint();
        for report in reports.iter().filter(|r| r.fingerprint == fp) {
            assert_eq!(report.checksum.to_bits(), reference.to_bits());
        }
    }
}

#[test]
fn sessions_are_affine_to_their_tenants_home_node() {
    let cluster = ClusterService::new(3, config());
    let a1 = cluster.open_session(SessionSpec::tenant("acme"));
    let a2 = cluster.open_session(SessionSpec::tenant("acme"));
    assert_eq!(a1.node, a2.node, "a tenant's sessions share one node");
    assert_eq!(a1.node, cluster.home_node("acme"));
    assert_ne!(a1.session, a2.session, "distinct sessions nonetheless");
    assert_eq!(format!("{a1}"), format!("node{}/session{}", a1.node, a1.session));

    // Jobs run on the session's node: its meter moves, other nodes' don't.
    cluster.submit(a1, smoke_job()).unwrap().wait().unwrap();
    let ctx = cluster.session(a1).expect("session resolves through the cluster");
    assert_eq!(ctx.meter().jobs_completed, 1);
    for node in 0..cluster.node_count() {
        let expected = if node == a1.node { 1 } else { 0 };
        assert_eq!(cluster.node(node).drain().len(), expected, "node {node}");
    }

    // Streams and close/drain route through the same node.
    let stream = cluster.completion_stream(a2).unwrap();
    cluster.submit(a2, smoke_job()).unwrap();
    assert!(stream.next().expect("stream delivers").is_ok());
    assert_eq!(cluster.drain_session(a2).len(), 1, "retained report drains via the cluster");
    assert!(cluster.close_session(a2).is_some());
    assert!(cluster.session(a2).map(|c| !c.is_active()).unwrap_or(false));
}

#[test]
fn cluster_runs_under_cost_aware_policy_and_pinned_sessions() {
    let cluster =
        ClusterService::with_policy(2, config().with_cache(2, 8), Arc::new(CostAwarePolicy));
    let hot = cluster.open_session_on(0, SessionSpec::tenant("hot").pin_plans());
    cluster.submit(hot, smoke_job()).unwrap().wait().unwrap();
    let stats = cluster.cache_stats();
    assert_eq!(stats.total.compiles + stats.total.fetches, 1);
    assert_eq!(stats.per_node[0].pinned_entries, 1, "hot session pinned its plan: {stats:?}");
    cluster.shutdown();
}

#[test]
fn single_node_cluster_degenerates_to_local_compilation() {
    let cluster = ClusterService::new(1, config());
    let id = cluster.open_session(SessionSpec::tenant("solo"));
    cluster.submit(id, smoke_job()).unwrap().wait().unwrap();
    let stats = cluster.cache_stats();
    assert_eq!((stats.total.compiles, stats.total.fetches), (1, 0));
    let comm = cluster.comm_stats();
    assert_eq!(comm.total.control_sent, 0, "no peers, no protocol traffic");
}

#[test]
fn shutdown_drains_all_nodes_first() {
    // Queue a backlog on every node, then shut down: clean shutdown drains
    // to quiescence, so every handle resolves with a report (not Abandoned).
    let cluster = ClusterService::new(2, config().with_workers(1));
    let mut handles = Vec::new();
    for node in 0..2 {
        let id = cluster.open_session_on(node, SessionSpec::tenant(format!("t{node}")));
        for _ in 0..4 {
            handles.push(cluster.submit(id, smoke_job()).unwrap());
        }
    }
    cluster.shutdown();
    for handle in handles {
        let report = handle.poll().expect("resolved by shutdown").expect("drained, not abandoned");
        assert!(report.error.is_none());
    }
}

#[test]
fn fake_clock_cluster_backpressure_is_deterministic() {
    // Admission-only nodes (0 workers) on one shared FakeClock: quota
    // backpressure and deadline expiry on a cluster node are driven purely
    // by test time — no sleeps, no timing guesses (the cluster analogue of
    // the single-node deterministic harness).
    use aohpc_testalloc::sync::spin_until;

    let clock = FakeClock::new();
    let cluster = ClusterService::with_fake_clock(
        2,
        ServiceConfig::default()
            .with_workers(0)
            .with_quota(1)
            .with_admission_timeout(Duration::ZERO),
        Arc::clone(&clock),
    );
    let id = cluster.open_session_on(1, SessionSpec::tenant("t"));
    cluster.submit(id, smoke_job()).unwrap();
    let err = cluster.try_submit(id, smoke_job()).unwrap_err();
    assert!(err.is_backpressure(), "quota full is backpressure, not fatal: {err}");

    // A submitter parked on the node's quota wakes only when the shared
    // clock passes its deadline.
    let node = cluster.node(id.node);
    std::thread::scope(|scope| {
        let submitter =
            scope.spawn(|| node.submit_timeout(id.session, smoke_job(), Duration::from_secs(10)));
        spin_until("submitter parked on the cluster node", || node.admission_stats().waiting == 1);
        clock.advance(Duration::from_secs(9));
        assert_eq!(node.admission_stats().waiting, 1, "9s < 10s: still parked");
        clock.advance(Duration::from_secs(2));
        let err = submitter.join().unwrap().unwrap_err();
        assert!(err.is_backpressure(), "deadline expiry reports the quota: {err}");
    });
    // The untouched node never saw any of this.
    assert_eq!(cluster.node(0).admission_stats().waiting, 0);
}
