//! Partition-recovery drills: cut the fabric, heal it, and rejoin the mesh.
//!
//! Every test stands up a [`ClusterService`] on a shared [`FakeClock`] with a
//! scripted [`FaultPlan`] of kills, restarts and *directional* link cuts, so
//! the whole episode — detection, incarnation arbitration, anti-entropy
//! re-sync — is fully test-controlled.  The invariants:
//!
//! 1. **Zero lost jobs, bit-identical answers** — random interleavings of
//!    kill / restart / cut / heal over a mixed-family workload (stencil,
//!    particle, usgrid) resolve every handle with the checksum a plain
//!    single-node service computes, and after the mesh heals a batch of
//!    fresh plans compiles exactly once per distinct fingerprint.
//! 2. **Incarnation arbitration converges asymmetric views** — a one-way
//!    cut pins "A sees B dead, B sees A alive"; B refutes the overheard
//!    suspicion exactly once, and after the heal both views settle on B's
//!    refuted incarnation with no ownership flap.
//! 3. **Incarnations fence both wire directions** — a `PLAN_REQ` stamped
//!    with a pre-restart incarnation is dropped unserved by the restarted
//!    owner, and a `PLAN_REP` sent by a pre-restart incarnation is dropped
//!    by the requester even though the sender is Alive again.  An
//!    old-incarnation heartbeat can never resurrect a dead entry.
//! 4. **A restarted rank re-earns its place** — fresh incarnation adopted
//!    by every view, rendezvous ownership restored, cold cache re-warmed
//!    through the ordinary plan-fetch path.

use aohpc_kernel::{load, param, StencilProgram};
use aohpc_obs::ObsHub;
use aohpc_service::cluster::{plan_owner_among, TAG_PLAN_REP, TAG_PLAN_REQ};
use aohpc_service::{
    ClusterService, ClusterTuning, FaultPlan, JobSpec, KernelService, Membership, NodeState,
    ServiceConfig, SessionSpec,
};
use aohpc_testalloc::sync::FakeClock;
use aohpc_workloads::{RegionSize, Scale};
use proptest::collection;
use proptest::prelude::*;
use std::time::Duration;

fn config() -> ServiceConfig {
    ServiceConfig::default().with_workers(1)
}

/// Advance detector time one notch and give fabric threads a real-time
/// beat to process what the advance released.
fn step(clock: &FakeClock, ms: u64) {
    clock.advance(Duration::from_millis(ms));
    std::thread::sleep(Duration::from_millis(1));
}

/// A mixed-family palette: two structurally distinct stencils plus the
/// stock particle and unstructured-grid smoke jobs, so partition recovery
/// is exercised across every kernel family the service hosts.
fn mixed_palette() -> [JobSpec; 4] {
    let base = |p: StencilProgram| {
        JobSpec::new(p, vec![0.5, 0.125], RegionSize::square(32)).with_block(8).with_steps(128)
    };
    [
        base(StencilProgram::jacobi_5pt()),
        base(StencilProgram::smooth_9pt()),
        JobSpec::particle(Scale::Smoke),
        JobSpec::usgrid(Scale::Smoke),
    ]
}

/// Two cheap post-heal programs, structurally distinct from each other and
/// from everything in the palette (fingerprints are structural, so the
/// *expressions* differ, not just the names).
fn post_heal_specs() -> [JobSpec; 2] {
    let a = StencilProgram::new(
        "post-heal-a",
        param(0) * load(0, 0) + 0.0625 * (load(1, 0) + load(0, 1)),
        1,
    )
    .unwrap();
    let b = StencilProgram::new(
        "post-heal-b",
        param(0) * load(0, 0) - 0.03125 * (load(-1, 0) + load(0, -1)),
        1,
    )
    .unwrap();
    let spec = |p| JobSpec::new(p, vec![0.5], RegionSize::square(16)).with_block(8).with_steps(1);
    [spec(a), spec(b)]
}

/// Scan a small deterministic family of specs for one whose rendezvous
/// placement satisfies `pred` — the seam the drills use to aim a fault at
/// "the owner of this plan" without probabilistic test topologies.
fn find_spec(mut pred: impl FnMut(&JobSpec) -> bool) -> JobSpec {
    for region in [48usize, 64, 96, 120] {
        for block in [4usize, 6, 8, 12, 16, 24, 32] {
            if region % block != 0 {
                continue;
            }
            for program in [StencilProgram::jacobi_5pt(), StencilProgram::smooth_9pt()] {
                let spec = JobSpec::new(program, vec![0.5, 0.125], RegionSize::square(region))
                    .with_block(block)
                    .with_steps(1);
                if pred(&spec) {
                    return spec;
                }
            }
        }
    }
    panic!("no candidate spec matched the ownership predicate");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole property: under a random schedule of kills (each with a
    /// later restart), directional link cuts (each later healed) and a
    /// random mixed-family submit interleaving, every job resolves with a
    /// checksum bit-identical to the single-node reference, the resolve
    /// ledger stays balanced, every view re-converges to all-Alive with
    /// agreed incarnations, and a post-heal batch of fresh plans compiles
    /// exactly once per distinct fingerprint cluster-wide.
    #[test]
    fn partition_schedules_lose_no_jobs_and_change_no_answers(
        kills in collection::vec((0usize..3, 30u64..80), 0..3),
        cuts in collection::vec((0usize..3, 0usize..3, 20u64..100), 0..5),
        submissions in collection::vec((0usize..3, 0usize..4), 4..10),
    ) {
        let palette = mixed_palette();

        // Reference checksums from a plain single node.
        let reference: Vec<u64> = {
            let single = KernelService::new(config());
            let session = single.open_session(SessionSpec::tenant("ref"));
            let mut sums = Vec::new();
            for spec in &palette {
                let report = single.submit(session, spec.clone()).unwrap().wait().unwrap();
                prop_assert_eq!(&report.error, &None);
                sums.push(report.checksum.to_bits());
            }
            sums
        };

        // Dedupe kill ranks (first scheduled time wins) and keep a survivor;
        // every killed rank restarts after its dead verdict can have landed
        // (dead_after = 150 ms under fast tuning).
        let mut killed: Vec<(usize, u64)> = Vec::new();
        for &(rank, at_ms) in &kills {
            if !killed.iter().any(|&(r, _)| r == rank) {
                killed.push((rank, at_ms));
            }
        }
        killed.truncate(2);
        let killed_ranks: Vec<usize> = killed.iter().map(|&(r, _)| r).collect();

        let clock = FakeClock::new();
        let mut tuning = ClusterTuning::fast();
        tuning.fetch_timeout = Duration::from_millis(100);
        tuning.fetch_retries = 2;
        let mut plan = FaultPlan::new();
        for (i, &(rank, at_ms)) in killed.iter().enumerate() {
            plan = plan
                .kill_at(rank, Duration::from_millis(at_ms))
                .restart_at(rank, Duration::from_millis(at_ms + 200 + 40 * i as u64));
        }
        // Each cut heals within dead_after, so a lone cut suspects but does
        // not bury; overlapping cuts of one link may still push a rank past
        // the deadline — the probe → pull → refute rejoin path covers it.
        for &(from, to, at_ms) in &cuts {
            if from != to {
                plan = plan
                    .partition_at(from, to, Duration::from_millis(at_ms))
                    .heal_at(from, to, Duration::from_millis(at_ms + 80));
            }
        }
        let cluster =
            ClusterService::with_fault_plan(3, config(), clock.clone(), tuning, plan);
        let sessions: Vec<_> = (0..3)
            .map(|n| cluster.open_session_on(n, SessionSpec::tenant(format!("t{n}"))))
            .collect();

        // Submit everything before any fault fires, then run the schedule.
        let mut handles = Vec::new();
        for &(node, program) in &submissions {
            let handle = cluster.submit(sessions[node], palette[program].clone()).unwrap();
            handles.push((handle, program));
        }
        for _ in 0..80 {
            step(&clock, 10);
        }

        // Zero lost jobs, bit-identical answers (a cut-induced false death
        // may legitimately fail a job over, so provenance is not pinned to
        // the scripted kill set here).
        for (handle, program) in &handles {
            let outcome = handle.wait_timeout(Duration::from_secs(60));
            prop_assert!(outcome.is_some(), "a job's handle never resolved");
            let report = match outcome.unwrap() {
                Ok(report) => report,
                Err(err) => return Err(TestCaseError::fail(format!(
                    "job lost under schedule kills={killed_ranks:?} cuts={cuts:?}: {err:?}"
                ))),
            };
            prop_assert_eq!(&report.error, &None);
            prop_assert_eq!(
                report.checksum.to_bits(),
                reference[*program],
                "partition recovery changed the answer for program {}",
                program
            );
        }

        // The resolve ledger stays balanced under partitions: every miss
        // ended in exactly one of {successful fetch, compile}.
        let stats = cluster.cache_stats();
        prop_assert_eq!(stats.total.misses, stats.total.compiles + stats.total.fetches);

        // Anti-entropy re-converges every view: all-Alive everywhere, and
        // every observer agrees on every rank's incarnation.
        let mut converged = false;
        for _ in 0..400 {
            step(&clock, 10);
            let agreed = (0..3).all(|s| {
                let inc = cluster.incarnation(s, s);
                (0..3).all(|o| {
                    cluster.node_state(o, s) == NodeState::Alive
                        && cluster.incarnation(o, s) == inc
                })
            });
            if agreed {
                converged = true;
                break;
            }
        }
        prop_assert!(converged, "views never re-converged after heals and restarts");
        for &r in &killed_ranks {
            prop_assert!(
                cluster.incarnation(r, r) >= 1,
                "a restarted rank must carry a fresh incarnation"
            );
        }

        // Post-heal, new work compiles exactly once per distinct
        // fingerprint cluster-wide — the compile-once contract survives the
        // whole episode.
        let before = cluster.cache_stats().total.compiles;
        let fresh = post_heal_specs();
        let posts: Vec<_> = (0..3)
            .map(|n| cluster.open_session_on(n, SessionSpec::tenant(format!("post{n}"))))
            .collect();
        for spec in &fresh {
            for &post in &posts {
                let report = cluster
                    .submit(post, spec.clone())
                    .unwrap()
                    .wait_timeout(Duration::from_secs(60))
                    .expect("post-heal job resolved")
                    .expect("post-heal job succeeded");
                prop_assert_eq!(&report.error, &None);
            }
        }
        prop_assert_eq!(
            cluster.cache_stats().total.compiles,
            before + fresh.len() as u64,
            "post-heal compiles must equal the number of distinct fresh fingerprints"
        );
        cluster.shutdown();
    }
}

/// The asymmetric-partition drill: cutting only the 1→0 direction makes
/// rank 0 walk rank 1 through Suspect into Dead while rank 1 — which still
/// hears rank 0, including the suspicion broadcast — refutes exactly once
/// and keeps believing rank 0 Alive.  After the heal, incarnation order
/// converges both views onto the refuted incarnation, with no further
/// refutations, suspicions or ownership movement.
#[test]
fn asymmetric_partition_converges_views_with_exactly_one_refutation() {
    let clock = FakeClock::new();
    let hub = ObsHub::with_clock(clock.clone());
    let plan = FaultPlan::new().partition_at(1, 0, Duration::from_millis(20)).heal_at(
        1,
        0,
        Duration::from_millis(205),
    );
    let cluster = ClusterService::with_fault_plan_observed(
        2,
        config(),
        clock.clone(),
        ClusterTuning::fast(),
        plan,
        hub.clone(),
    );

    // Drive to the pinned asymmetric window (the heal fires at 205 ms,
    // after this loop): 0-sees-1-dead while 1-sees-0-alive.
    let mut pinned = false;
    for _ in 0..40 {
        step(&clock, 5);
        if cluster.node_state(0, 1) == NodeState::Dead
            && cluster.node_state(1, 0) == NodeState::Alive
        {
            pinned = true;
        }
    }
    assert!(
        pinned,
        "the asymmetric window never pinned: 0 sees 1 as {:?}, 1 sees 0 as {:?}",
        cluster.node_state(0, 1),
        cluster.node_state(1, 0)
    );

    // Heal.  Rank 1's next heartbeat carries its refuted (strictly higher)
    // incarnation, which revives it in rank 0's view outright.
    let mut converged = false;
    for _ in 0..100 {
        step(&clock, 5);
        if cluster.node_state(0, 1) == NodeState::Alive
            && cluster.node_state(1, 0) == NodeState::Alive
            && cluster.incarnation(0, 1) == cluster.incarnation(1, 1)
        {
            converged = true;
            break;
        }
    }
    let a = cluster.membership_stats(0);
    let b = cluster.membership_stats(1);
    assert!(converged, "views never converged after the heal: a={a:?} b={b:?}");
    assert_eq!(b.refutations, 1, "rank 1 must refute its suspicion exactly once: {b:?}");
    assert_eq!(a.rejoins, 1, "rank 0 must adopt the refuted incarnation exactly once: {a:?}");
    assert_eq!(a.deaths, 1, "{a:?}");
    assert_eq!(b.suspicions, 0, "rank 1 never lost rank 0's heartbeats: {b:?}");
    assert!(cluster.incarnation(0, 1) >= 1, "the refutation bumped rank 1's incarnation");

    // No flap after convergence: more detector time moves nothing — no new
    // suspicions, deaths, rejoins or refutations on either side, and the
    // full two-rank view (hence every rendezvous ownership decision) holds.
    for _ in 0..30 {
        step(&clock, 5);
    }
    let a2 = cluster.membership_stats(0);
    let b2 = cluster.membership_stats(1);
    assert_eq!(
        (a2.suspicions, a2.deaths, a2.rejoins, a2.refutations),
        (a.suspicions, a.deaths, a.rejoins, a.refutations),
        "rank 0 flapped: {a2:?}"
    );
    assert_eq!(
        (b2.suspicions, b2.deaths, b2.rejoins, b2.refutations),
        (b.suspicions, b.deaths, b.rejoins, b.refutations),
        "rank 1 flapped: {b2:?}"
    );
    assert_eq!(cluster.node_state(0, 1), NodeState::Alive);
    assert_eq!(cluster.node_state(1, 0), NodeState::Alive);

    // The episode is observable: one cut + one heal at the partition join
    // point, and the refutation landed at the rejoin join point.
    assert_eq!(hub.metrics().partitions.get(), 2);
    assert!(hub.metrics().rejoins.get() >= 1);
    let spans = hub.recorder().spans();
    assert!(spans.iter().any(|s| s.name == aohpc_aop::names::CLUSTER_PARTITION));
    assert!(spans.iter().any(|s| s.name == aohpc_aop::names::CLUSTER_REJOIN));
    cluster.shutdown();
}

/// Request-side incarnation fencing: a `PLAN_REQ` delayed across its
/// owner's kill + restart arrives stamped with the pre-restart incarnation
/// and is dropped *unserved* (metered as `stale_requests_dropped`) — the
/// restarted owner honours no obligation of its previous life.
#[test]
fn stale_plan_req_to_a_restarted_rank_is_dropped() {
    // A spec whose plan is owned by rank 1 under the full three-rank view,
    // so node 0's first fetch goes to rank 1.
    let spec = find_spec(|s| plan_owner_among(s, &[0, 1, 2]) == 1);

    let clock = FakeClock::new();
    let mut tuning = ClusterTuning::fast();
    tuning.fetch_timeout = Duration::from_millis(30);
    tuning.fetch_retries = 1;
    // Rank 0's request is held at rank 1 until detector time 300 ms — past
    // rank 1's scripted death (30 ms) *and* restart (250 ms).
    let plan = FaultPlan::new()
        .delay_frames(Some(0), Some(1), Some(TAG_PLAN_REQ), Duration::from_millis(300))
        .kill_at(1, Duration::from_millis(30))
        .restart_at(1, Duration::from_millis(250));
    let cluster = ClusterService::with_fault_plan(3, config(), clock.clone(), tuning, plan);

    // The job completes in real time without rank 1's help: the fetch
    // times out, suspects the owner, and re-homes.
    let session = cluster.open_session_on(0, SessionSpec::tenant("t0"));
    let report = cluster
        .submit(session, spec)
        .unwrap()
        .wait_timeout(Duration::from_secs(30))
        .expect("job resolved despite the held request")
        .expect("job succeeded");
    assert_eq!(report.error, None);

    // Run the schedule: rank 1 dies, restarts under a fresh incarnation,
    // and at 300 ms the held request flushes into its fabric.
    let mut dropped = false;
    for _ in 0..100 {
        step(&clock, 10);
        if cluster.membership_stats(1).stale_requests_dropped >= 1 {
            dropped = true;
            break;
        }
    }
    let stats = cluster.membership_stats(1);
    assert!(dropped, "the pre-restart PLAN_REQ was never dropped as stale: {stats:?}");
    assert!(
        cluster.incarnation(1, 1) >= 1,
        "the restart must have bumped rank 1's own incarnation"
    );
    cluster.shutdown();
}

/// Reply-side incarnation fencing, sharpened: a `PLAN_REP` served by the
/// *pre-restart* incarnation is dropped by the requester even though its
/// sender is Alive again by then — the fence is the incarnation, not a
/// standing death verdict.
#[test]
fn stale_plan_rep_from_a_previous_incarnation_is_dropped_while_the_sender_lives() {
    let spec = find_spec(|s| plan_owner_among(s, &[0, 1, 2]) == 1);

    let clock = FakeClock::new();
    let mut tuning = ClusterTuning::fast();
    tuning.fetch_timeout = Duration::from_millis(30);
    tuning.fetch_retries = 1;
    // Rank 1 serves the request immediately, but the reply is held at rank
    // 0 until detector time 400 ms — by which point rank 1 has died (60
    // ms), restarted (250 ms) and rejoined under a fresh incarnation.
    let plan = FaultPlan::new()
        .delay_frames(Some(1), Some(0), Some(TAG_PLAN_REP), Duration::from_millis(400))
        .kill_at(1, Duration::from_millis(60))
        .restart_at(1, Duration::from_millis(250));
    let cluster = ClusterService::with_fault_plan(3, config(), clock.clone(), tuning, plan);

    let session = cluster.open_session_on(0, SessionSpec::tenant("t0"));
    let report = cluster
        .submit(session, spec)
        .unwrap()
        .wait_timeout(Duration::from_secs(30))
        .expect("job resolved despite the held reply")
        .expect("job succeeded");
    assert_eq!(report.error, None);

    let mut dropped = false;
    for _ in 0..100 {
        step(&clock, 10);
        if cluster.membership_stats(0).stale_replies_dropped >= 1 {
            dropped = true;
            break;
        }
    }
    let stats = cluster.membership_stats(0);
    assert!(dropped, "the pre-restart PLAN_REP was never dropped as stale: {stats:?}");
    assert_eq!(
        cluster.node_state(0, 1),
        NodeState::Alive,
        "the drop must be incarnation-fenced, not death-fenced: {stats:?}"
    );
    assert!(cluster.incarnation(0, 1) >= 1);
    cluster.shutdown();
}

/// Death is terminal *per incarnation*: neither a heartbeat nor gossip at
/// the dead incarnation revives the entry — only a strictly higher
/// incarnation (a restart or refutation) does, and that is metered as a
/// rejoin.
#[test]
fn old_incarnation_heartbeat_cannot_resurrect_a_dead_entry() {
    let view = Membership::new(0, 2, ClusterTuning::fast(), Duration::ZERO);
    view.declare_dead(1);
    assert_eq!(view.state_of(1), NodeState::Dead);

    // The dead incarnation's own heartbeats are void...
    assert!(view.observe_alive(1, 0, Duration::from_millis(5)).is_none());
    assert_eq!(view.state_of(1), NodeState::Dead);
    // ...and so is second-hand gossip at the dead incarnation.
    assert!(view.adopt(1, NodeState::Alive, 0, Duration::from_millis(5)).is_none());
    assert_eq!(view.state_of(1), NodeState::Dead);
    assert_eq!(view.stats().rejoins, 0);

    // A strictly higher incarnation wins outright.
    let t = view.observe_alive(1, 1, Duration::from_millis(6)).expect("revival transition");
    assert_eq!(t.to, NodeState::Alive);
    assert_eq!(t.incarnation, 1);
    assert_eq!(view.state_of(1), NodeState::Alive);
    assert_eq!(view.stats().rejoins, 1);
}

/// The acceptance drill: a killed plan owner restarts, re-announces over
/// the liveness plane under a fresh incarnation adopted by every view,
/// re-earns its rendezvous ownership (a fresh plan it owns compiles on it,
/// exactly once cluster-wide), and re-warms its cold-reset cache through
/// the ordinary plan-fetch path.
#[test]
fn killed_rank_rejoins_with_fresh_incarnation_and_reowns_its_plans() {
    let spec_owned_1 = find_spec(|s| plan_owner_among(s, &[0, 1, 2]) == 1);
    let spec_owned_0 = find_spec(|s| plan_owner_among(s, &[0, 1, 2]) == 0);
    // A second rank-1-owned plan under its own cache key: the key is
    // (fingerprint, block extent, level), so a different program *or* a
    // different block suffices.
    let fresh_owned_1 = find_spec(|s| {
        plan_owner_among(s, &[0, 1, 2]) == 1
            && (s.program.name() != spec_owned_1.program.name() || s.block != spec_owned_1.block)
    });

    let clock = FakeClock::new();
    let hub = ObsHub::with_clock(clock.clone());
    let mut tuning = ClusterTuning::fast();
    tuning.fetch_timeout = Duration::from_millis(100);
    tuning.fetch_retries = 2;
    let plan = FaultPlan::new()
        .kill_at(1, Duration::from_millis(30))
        .restart_at(1, Duration::from_millis(250));
    let cluster = ClusterService::with_fault_plan_observed(
        3,
        config(),
        clock.clone(),
        tuning,
        plan,
        hub.clone(),
    );
    let sessions: Vec<_> =
        (0..3).map(|n| cluster.open_session_on(n, SessionSpec::tenant(format!("t{n}")))).collect();

    // Warm phase (detector time never advances, so no fault fires): each
    // plan compiles once on its owner and every other node fetches it.
    for spec in [&spec_owned_1, &spec_owned_0] {
        for &session in &sessions {
            let report = cluster
                .submit(session, spec.clone())
                .unwrap()
                .wait_timeout(Duration::from_secs(60))
                .expect("warm job resolved")
                .expect("warm job succeeded");
            assert_eq!(report.error, None);
        }
    }
    let warm = cluster.cache_stats();
    assert_eq!(warm.total.compiles, 2);
    assert_eq!(warm.total.fetches, 4);
    assert_eq!(warm.per_node[1].compiles, 1, "rank 1 owns and compiled its plan");

    // Kill fires at 30 ms; the survivors walk rank 1 into Dead at its
    // original incarnation.
    let mut dead = false;
    for _ in 0..30 {
        step(&clock, 10);
        if cluster.node_state(0, 1) == NodeState::Dead {
            dead = true;
            break;
        }
    }
    assert!(dead, "rank 1 was never declared dead: {:?}", cluster.membership_stats(0));
    assert_eq!(cluster.incarnation(0, 1), 0, "death condemns the original incarnation");

    // The restart fires at 250 ms: rank 1 revives with a cold cache, bumps
    // its incarnation, and its next heartbeats win the arbitration in every
    // peer view.
    let mut rejoined = false;
    for _ in 0..100 {
        step(&clock, 10);
        let inc = cluster.incarnation(1, 1);
        let agreed = (0..3).all(|o| {
            cluster.node_state(o, 1) == NodeState::Alive && cluster.incarnation(o, 1) == inc
        });
        if agreed && inc >= 1 && cluster.cache_stats().per_node[1].entries == 0 {
            rejoined = true;
            break;
        }
    }
    assert!(
        rejoined,
        "rank 1 never rejoined under a fresh incarnation: {:?} / {:?}",
        cluster.membership_stats(0),
        cluster.cache_stats().per_node[1]
    );
    assert!(cluster.membership_stats(0).rejoins >= 1);
    let rejoined_stats = cluster.cache_stats();
    assert!(
        rejoined_stats.per_node[1].evictions >= 2,
        "the restart must cold-reset rank 1's cache: {:?}",
        rejoined_stats.per_node[1]
    );

    // Re-earned ownership: a fresh rank-1-owned plan compiles exactly once
    // cluster-wide — on rank 1.
    let posts: Vec<_> = (0..3)
        .map(|n| cluster.open_session_on(n, SessionSpec::tenant(format!("post{n}"))))
        .collect();
    for &post in &posts {
        let report = cluster
            .submit(post, fresh_owned_1.clone())
            .unwrap()
            .wait_timeout(Duration::from_secs(60))
            .expect("post-rejoin job resolved")
            .expect("post-rejoin job succeeded");
        assert_eq!(report.error, None);
    }
    let after = cluster.cache_stats();
    assert_eq!(
        after.total.compiles,
        rejoined_stats.total.compiles + 1,
        "a fresh plan compiles exactly once cluster-wide after the rejoin"
    );
    assert_eq!(
        after.per_node[1].compiles,
        rejoined_stats.per_node[1].compiles + 1,
        "the rejoined rank compiled it: rendezvous ownership was re-earned"
    );

    // Cold-cache warm-up: a plan rank 1 does *not* own is re-fetched from
    // its owner, not recompiled.
    let report = cluster
        .submit(posts[1], spec_owned_0)
        .unwrap()
        .wait_timeout(Duration::from_secs(60))
        .expect("re-warm job resolved")
        .expect("re-warm job succeeded");
    assert_eq!(report.error, None);
    let warmed = cluster.cache_stats();
    assert_eq!(warmed.total.compiles, after.total.compiles, "re-warming must not recompile");
    assert_eq!(
        warmed.per_node[1].fetches,
        after.per_node[1].fetches + 1,
        "the rejoined rank warms its cold cache through the plan-fetch path"
    );

    // The rejoin landed at the observability join point.
    assert!(hub.metrics().rejoins.get() >= 1);
    assert!(hub.recorder().spans().iter().any(|s| s.name == aohpc_aop::names::CLUSTER_REJOIN));
    cluster.shutdown();
}
