//! Deterministic backpressure and timeout tests: no `thread::sleep`, no
//! timing guesses.  Deadlines run on the harness's
//! [`FakeClock`](aohpc_testalloc::sync::FakeClock) (they pass only when the
//! test advances it), thread orderings are pinned with
//! [`StepLine`](aohpc_testalloc::sync::StepLine), and parked-submitter
//! observation uses [`spin_until`](aohpc_testalloc::sync::spin_until) on the
//! service's admission counters.
//!
//! Run single-threaded in CI (`cargo test -p aohpc-service --
//! --test-threads=1`) so the interleavings under test are the only
//! concurrency in the process.

use aohpc_service::{JobSpec, KernelService, ServiceConfig, SessionSpec, SubmitError};
use aohpc_testalloc::sync::{spin_until, FakeClock, StepLine};
use aohpc_workloads::Scale;
use std::time::Duration;

fn job() -> JobSpec {
    JobSpec::jacobi(Scale::Smoke)
}

/// Admission-only service (0 workers — in-flight counts never drop on their
/// own) with a quota of one, on a fake clock.
fn clocked_service() -> (KernelService, std::sync::Arc<FakeClock>) {
    let clock = FakeClock::new();
    let config = ServiceConfig::default()
        .with_workers(0)
        .with_quota(1)
        .with_admission_timeout(Duration::ZERO);
    let service = KernelService::with_fake_clock(config, clock.clone());
    (service, clock)
}

/// A `submit_timeout` deadline passes when — and only when — the fake clock
/// is advanced past it.  No real time is slept anywhere.
#[test]
fn submit_timeout_expires_on_the_fake_clock() {
    let (service, clock) = clocked_service();
    let session = service.open_session(SessionSpec::tenant("t"));
    let first = service.try_submit(session, job()).unwrap();

    std::thread::scope(|scope| {
        let submitter =
            scope.spawn(|| service.submit_timeout(session, job(), Duration::from_secs(10)));

        // The submitter registers as waiting only after it computed its
        // deadline and found the quota full, so advancing now cannot shift
        // the deadline under it.
        spin_until("submitter parked on backpressure", || service.admission_stats().waiting == 1);
        assert!(!first.is_complete(), "nothing resolved the blocking job");

        // Not enough: the deadline (10s) has not passed at 9s.
        clock.advance(Duration::from_secs(9));
        assert_eq!(service.admission_stats().waiting, 1, "9s < 10s: still parked");

        // Past the deadline: the submitter wakes and reports backpressure.
        clock.advance(Duration::from_secs(2));
        let err = submitter.join().unwrap().unwrap_err();
        assert_eq!(err, SubmitError::WouldBlock { session, limit: 1 });
    });

    assert_eq!(service.admission_stats().waiting, 0, "no leaked waiter registration");
    let meter = *service.session(session).unwrap().meter();
    assert_eq!(meter.jobs_throttled, 1, "the expired wait was metered as throttled");
    assert_eq!(meter.jobs_submitted, 1, "only the first job was admitted");
}

/// A parked `submit_timeout` is admitted the moment capacity frees — here by
/// cancelling the job that holds the only quota slot.
#[test]
fn submit_timeout_admits_once_capacity_frees() {
    let (service, _clock) = clocked_service();
    let session = service.open_session(SessionSpec::tenant("t"));
    let line = StepLine::new();
    let blocker = service.try_submit(session, job()).unwrap();

    std::thread::scope(|scope| {
        let submitter = scope.spawn(|| {
            line.reach("submitter-entering");
            // An hour of fake time: this must resolve by capacity, never by
            // deadline (the clock is not advanced in this test).
            service.submit_timeout(session, job(), Duration::from_secs(3600))
        });

        // Freeing capacity after this point is race-free by construction:
        // if the cancel lands before the submitter's first admission check,
        // it admits immediately; if after, the capacity bump wakes it.
        line.wait_for("submitter-entering");
        assert!(blocker.cancel(), "the queued blocker is cancellable");

        let handle = submitter.join().unwrap().expect("admitted after the cancel freed the slot");
        assert_eq!(handle.session(), session);
    });

    let ctx = service.session(session).unwrap();
    assert_eq!(ctx.in_flight(), 1, "exactly the second job holds the slot");
    assert_eq!(ctx.meter().jobs_cancelled, 1);
    assert_eq!(ctx.meter().jobs_throttled, 0, "an admitted wait is not a throttle");
}

/// Closing a session wakes its parked submitters with the fatal error
/// instead of letting them wait out their deadline.
#[test]
fn close_session_wakes_parked_submitters() {
    let (service, _clock) = clocked_service();
    let session = service.open_session(SessionSpec::tenant("t"));
    let _blocker = service.try_submit(session, job()).unwrap();

    std::thread::scope(|scope| {
        let submitter =
            scope.spawn(|| service.submit_timeout(session, job(), Duration::from_secs(3600)));
        spin_until("submitter parked on backpressure", || service.admission_stats().waiting == 1);
        service.close_session(session).unwrap();
        let err = submitter.join().unwrap().unwrap_err();
        assert_eq!(err, SubmitError::SessionClosed(session));
    });
}

/// The global queue bound backpressures the same way, and a worker dequeue
/// is what frees it: with real workers the parked submitter is admitted as
/// the backlog drains — no test sleeps, the workers' own progress is the
/// signal.
#[test]
fn queue_bound_admits_as_workers_drain() {
    let config = ServiceConfig::default()
        .with_workers(1)
        .with_quota(100)
        .with_queue_bound(2)
        .with_admission_timeout(Duration::from_secs(30));
    let service = KernelService::new(config);
    let session = service.open_session(SessionSpec::tenant("t"));

    // Saturate: with one worker executing, up to two more jobs can sit in
    // the queue.  Keep submitting through the blocking path; every
    // submission must eventually be admitted (workers keep freeing slots),
    // and none may error.
    let handles: Vec<_> = (0..8).map(|_| service.submit(session, job()).unwrap()).collect();
    let reports = service.drain();
    assert_eq!(reports.len(), 8);
    assert!(reports.iter().all(|r| r.error.is_none()));
    for handle in &handles {
        assert!(handle.poll().unwrap().is_ok());
    }
    assert_eq!(service.admission_stats().queued, 0);
}

/// One freed quota slot admits exactly one of two parked submitters; the
/// other stays parked until its (fake) deadline expires.  Exercises the
/// re-check loop: a woken waiter that loses the race must go back to
/// waiting, not error or double-admit.
#[test]
fn one_freed_slot_admits_exactly_one_of_two_waiters() {
    let (service, clock) = clocked_service();
    let session = service.open_session(SessionSpec::tenant("t"));
    let blocker = service.try_submit(session, job()).unwrap();

    std::thread::scope(|scope| {
        let a = scope.spawn(|| service.submit_timeout(session, job(), Duration::from_secs(10)));
        let b = scope.spawn(|| service.submit_timeout(session, job(), Duration::from_secs(10)));
        spin_until("both submitters parked", || service.admission_stats().waiting == 2);

        assert!(blocker.cancel());
        // Exactly one wins the freed slot; the loser re-parks.
        spin_until("one submitter admitted", || service.admission_stats().waiting == 1);
        assert_eq!(service.session(session).unwrap().in_flight(), 1);

        clock.advance(Duration::from_secs(11));
        let outcomes = [a.join().unwrap(), b.join().unwrap()];
        let admitted = outcomes.iter().filter(|r| r.is_ok()).count();
        assert_eq!(admitted, 1, "exactly one waiter took the slot: {outcomes:?}");
        let err = outcomes.iter().find_map(|r| r.as_ref().err()).unwrap();
        assert_eq!(*err, SubmitError::WouldBlock { session, limit: 1 });
    });

    let meter = *service.session(session).unwrap().meter();
    assert_eq!(meter.jobs_submitted, 2, "blocker + the admitted waiter");
    assert_eq!(meter.jobs_throttled, 1, "the loser was metered once, at its deadline");
    assert_eq!(service.admission_stats().waiting, 0);
}
