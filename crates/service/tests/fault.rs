//! Fault-tolerance drills: kill a node, keep the answer.
//!
//! Every test stands up a [`ClusterService`] on a shared [`FakeClock`] with a
//! scripted [`FaultPlan`], so failure detection is fully test-controlled:
//! kills, fabric wedges and frame perturbations fire exactly when the test
//! advances the clock past their scheduled times.  The invariants:
//!
//! 1. **Zero lost jobs** — every accepted submission resolves its
//!    [`JobHandle`] exactly once, kill schedule or not: executed in place,
//!    replayed on a survivor (with [`FailoverProvenance`]), and only with no
//!    survivor left abandoned with a typed error.
//! 2. **Bit identity** — a replayed job's checksum equals, bit for bit, the
//!    checksum a plain single-node `KernelService` computes for the same
//!    spec.  Failover never changes an answer.
//! 3. **Liveness hygiene** — a wedged fabric is *suspected*, not buried: it
//!    re-earns Alive after its cooldown, and the detector records zero
//!    deaths.  A `PLAN_REP` straggling in from a rank already declared dead
//!    is dropped by its stale incarnation, never fulfils a live request.
//! 4. **Degrade loudly** — a fetcher that spends its whole retry budget
//!    compiles locally and meters the event (`degraded_resolves`), instead
//!    of silently wedging or silently succeeding.

use aohpc_kernel::{load, param, StencilProgram};
use aohpc_service::cluster::{plan_owner_among, TAG_PLAN_REP};
use aohpc_service::{
    ClusterService, ClusterTuning, FaultPlan, JobSpec, KernelService, NodeState, ServiceConfig,
    SessionSpec,
};
use aohpc_testalloc::sync::FakeClock;
use aohpc_workloads::RegionSize;
use proptest::collection;
use proptest::prelude::*;
use std::time::Duration;

/// The program palette: three structurally distinct kernels, sized so one
/// job occupies a worker for a macroscopic time — a kill landing mid-batch
/// finds queued jobs to orphan.
fn programs() -> [JobSpec; 3] {
    let anisotropic = StencilProgram::new(
        "anisotropic",
        param(0) * load(0, 0) + param(1) * (load(1, 0) + load(-1, 0)) - load(0, 1) * 0.25,
        2,
    )
    .unwrap();
    let base = |p: StencilProgram| {
        JobSpec::new(p, vec![0.5, 0.125], RegionSize::square(32)).with_block(8).with_steps(256)
    };
    [base(StencilProgram::jacobi_5pt()), base(StencilProgram::smooth_9pt()), base(anisotropic)]
}

/// A cheap, structurally distinct post-recovery program (not in the palette).
fn post_recovery_spec() -> JobSpec {
    let program = StencilProgram::new(
        "post-recovery",
        param(0) * load(0, 0) + 0.125 * (load(1, 0) + load(0, 1)),
        1,
    )
    .unwrap();
    JobSpec::new(program, vec![0.5], RegionSize::square(16)).with_block(8).with_steps(1)
}

/// Scan a small deterministic family of specs for one whose rendezvous
/// placement satisfies `pred` — the seam the drills use to aim a fault at
/// "the owner of this plan" without probabilistic test topologies.
fn find_spec(mut pred: impl FnMut(&JobSpec) -> bool) -> JobSpec {
    for region in [48usize, 64, 96, 120] {
        for block in [8usize, 12, 16, 24] {
            if region % block != 0 {
                continue;
            }
            for program in [StencilProgram::jacobi_5pt(), StencilProgram::smooth_9pt()] {
                let spec = JobSpec::new(program, vec![0.5, 0.125], RegionSize::square(region))
                    .with_block(block)
                    .with_steps(1);
                if pred(&spec) {
                    return spec;
                }
            }
        }
    }
    panic!("no candidate spec matched the ownership predicate");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole property: under a random kill schedule (one or two
    /// distinct ranks of three, at random detector times) and a random
    /// submit interleaving, every job resolves, every checksum is
    /// bit-identical to the single-node reference, every failover carries
    /// provenance naming a killed rank, and the surviving cluster still
    /// compiles new plans afterwards.
    #[test]
    fn kill_schedules_lose_no_jobs_and_change_no_answers(
        kill_spec in collection::vec((0usize..3, 30u64..100), 1..3),
        submissions in collection::vec((0usize..3, 0usize..3), 4..12),
    ) {
        let palette = programs();

        // Reference checksums from a plain single node.
        let reference: Vec<u64> = {
            let single = KernelService::new(ServiceConfig::default().with_workers(1));
            let session = single.open_session(SessionSpec::tenant("ref"));
            let mut sums = Vec::new();
            for spec in &palette {
                let report = single.submit(session, spec.clone()).unwrap().wait().unwrap();
                prop_assert_eq!(&report.error, &None);
                sums.push(report.checksum.to_bits());
            }
            sums
        };

        // Dedupe kill ranks (first scheduled time wins); three nodes and at
        // most two kills always leaves a survivor.
        let mut killed: Vec<(usize, u64)> = Vec::new();
        for &(rank, at_ms) in &kill_spec {
            if !killed.iter().any(|&(r, _)| r == rank) {
                killed.push((rank, at_ms));
            }
        }
        let killed_ranks: Vec<usize> = killed.iter().map(|&(r, _)| r).collect();

        let clock = FakeClock::new();
        let mut tuning = ClusterTuning::fast();
        tuning.fetch_timeout = Duration::from_millis(100);
        tuning.fetch_retries = 2;
        let mut plan = FaultPlan::new();
        for &(rank, at_ms) in &killed {
            plan = plan.kill_at(rank, Duration::from_millis(at_ms));
        }
        let cluster = ClusterService::with_fault_plan(
            3,
            ServiceConfig::default().with_workers(1),
            clock.clone(),
            tuning,
            plan,
        );
        let sessions: Vec<_> = (0..3)
            .map(|n| cluster.open_session_on(n, SessionSpec::tenant(format!("t{n}"))))
            .collect();

        // Submit everything before any fault fires, then run the schedule.
        let mut handles = Vec::new();
        for &(node, program) in &submissions {
            let handle = cluster.submit(sessions[node], palette[program].clone()).unwrap();
            handles.push((handle, program));
        }
        for _ in 0..40 {
            clock.advance(Duration::from_millis(10));
            std::thread::sleep(Duration::from_millis(1));
        }

        // Zero lost jobs, bit-identical answers, auditable failovers.
        let mut failovers = 0usize;
        for (handle, program) in &handles {
            let outcome = handle.wait_timeout(Duration::from_secs(60));
            prop_assert!(outcome.is_some(), "a job's handle never resolved");
            let report = match outcome.unwrap() {
                Ok(report) => report,
                Err(err) => return Err(TestCaseError::fail(format!(
                    "job lost under kill schedule {killed_ranks:?}: {err:?}"
                ))),
            };
            prop_assert_eq!(&report.error, &None);
            prop_assert_eq!(
                report.checksum.to_bits(),
                reference[*program],
                "failover changed the answer for program {}",
                program
            );
            if let Some(provenance) = &report.failover {
                failovers += 1;
                prop_assert!(
                    killed_ranks.contains(&provenance.from_node),
                    "provenance names a rank that was never killed: {:?}",
                    provenance
                );
                prop_assert!(provenance.to_node != provenance.from_node);
            }
        }
        let _ = failovers; // how many is schedule-dependent; zero is legal

        // The resolve ledger stays balanced under faults: every miss ended
        // in exactly one of {successful fetch, compile}.
        let stats = cluster.cache_stats();
        prop_assert_eq!(stats.total.misses, stats.total.compiles + stats.total.fetches);

        // Post-recovery: the surviving cluster compiles a brand-new plan
        // exactly once.
        let survivor = (0..3).find(|r| !killed_ranks.contains(r)).unwrap();
        let before = cluster.cache_stats().total.compiles;
        let session = cluster.open_session_on(survivor, SessionSpec::tenant("post"));
        let report = cluster
            .submit(session, post_recovery_spec())
            .unwrap()
            .wait_timeout(Duration::from_secs(60))
            .expect("post-recovery job resolved")
            .expect("post-recovery job succeeded");
        prop_assert_eq!(&report.error, &None);
        prop_assert_eq!(cluster.cache_stats().total.compiles, before + 1);

        cluster.shutdown();
    }
}

/// A wedged fabric thread is *suspected* — its plans re-home, fetches stop
/// waiting on it — but once un-wedged it re-earns Alive past the suspicion
/// cooldown.  No death is declared, nothing fails over, and the node serves
/// jobs again.
#[test]
fn wedged_fabric_is_suspected_then_recovers() {
    let clock = FakeClock::new();
    let plan = FaultPlan::new()
        .wedge_at(1, Duration::from_millis(20))
        .unwedge_at(1, Duration::from_millis(100));
    let cluster = ClusterService::with_fault_plan(
        2,
        ServiceConfig::default().with_workers(1),
        clock.clone(),
        ClusterTuning::fast(),
        plan,
    );

    let mut saw_suspect = false;
    let mut recovered = false;
    for _ in 0..300 {
        clock.advance(Duration::from_millis(10));
        std::thread::sleep(Duration::from_millis(1));
        if cluster.node_state(0, 1) == NodeState::Suspect {
            saw_suspect = true;
        }
        if saw_suspect && cluster.membership_stats(0).recoveries >= 1 {
            recovered = true;
            break;
        }
    }
    let stats = cluster.membership_stats(0);
    assert!(saw_suspect, "rank 0 never suspected the wedged rank 1: {stats:?}");
    assert!(recovered, "rank 1 never re-earned Alive after un-wedging: {stats:?}");
    assert_eq!(stats.deaths, 0, "a transient wedge must not be declared dead");
    assert_eq!(cluster.node_state(0, 1), NodeState::Alive);

    // Both nodes still serve jobs after the episode.
    for node in 0..2 {
        let session = cluster.open_session_on(node, SessionSpec::tenant(format!("post{node}")));
        let report = cluster
            .submit(session, post_recovery_spec())
            .unwrap()
            .wait_timeout(Duration::from_secs(30))
            .expect("post-wedge job resolved")
            .expect("post-wedge job succeeded");
        assert_eq!(report.error, None);
    }
    cluster.shutdown();
}

/// The shutdown-vs-death race: a `PLAN_REP` delayed past its sender's death
/// arrives carrying the dead incarnation and is dropped (metered as
/// `stale_replies_dropped`), never fulfilling a live request.
#[test]
fn stale_plan_rep_from_dead_rank_is_dropped() {
    // A spec whose plan is owned by rank 1 under the full three-rank view,
    // so node 0's first fetch goes to rank 1.
    let spec = find_spec(|s| plan_owner_among(s, &[0, 1, 2]) == 1);

    let clock = FakeClock::new();
    let mut tuning = ClusterTuning::fast();
    tuning.fetch_timeout = Duration::from_millis(30);
    tuning.fetch_retries = 1;
    // Rank 1 serves the request but its reply is held until detector time
    // 400 ms — long after rank 1's scripted death at 60 ms is detected.
    let plan = FaultPlan::new()
        .delay_frames(Some(1), Some(0), Some(TAG_PLAN_REP), Duration::from_millis(400))
        .kill_at(1, Duration::from_millis(60));
    let cluster = ClusterService::with_fault_plan(
        3,
        ServiceConfig::default().with_workers(1),
        clock.clone(),
        tuning,
        plan,
    );

    // The job itself completes in real time: the fetch to rank 1 times out,
    // the fetcher suspects it and re-homes (or compiles locally).
    let session = cluster.open_session_on(0, SessionSpec::tenant("t0"));
    let report = cluster
        .submit(session, spec)
        .unwrap()
        .wait_timeout(Duration::from_secs(30))
        .expect("job resolved despite the delayed reply")
        .expect("job succeeded");
    assert_eq!(report.error, None);

    // Now run the schedule: rank 1 dies, is detected, and at 400 ms its
    // held reply flushes into rank 0's fabric — a third live rank's
    // heartbeats keep rank 0's fabric turning so the release is processed.
    let mut dropped = false;
    for _ in 0..300 {
        clock.advance(Duration::from_millis(10));
        std::thread::sleep(Duration::from_millis(1));
        if cluster.membership_stats(0).stale_replies_dropped >= 1 {
            dropped = true;
            break;
        }
    }
    let stats = cluster.membership_stats(0);
    assert!(dropped, "the dead rank's late PLAN_REP was never dropped as stale: {stats:?}");
    assert_eq!(cluster.node_state(0, 1), NodeState::Dead);
    cluster.shutdown();
}

/// A fetcher whose every attempt fails — replies dropped, owners re-homed,
/// retry budget spent — degrades to a local compile and *meters* it: the
/// job completes and `degraded_resolves` records the event.
#[test]
fn exhausted_fetch_budget_degrades_to_local_compile_and_is_metered() {
    // A spec for which rank 0 scores *last* among four ranks, so each of
    // the three retry attempts re-homes to yet another remote owner.
    let spec = find_spec(|s| {
        let all = [0usize, 1, 2, 3];
        let first = plan_owner_among(s, &all);
        if first == 0 {
            return false;
        }
        let rest: Vec<usize> = all.iter().copied().filter(|&r| r != first).collect();
        let second = plan_owner_among(s, &rest);
        if second == 0 {
            return false;
        }
        let rest2: Vec<usize> = rest.into_iter().filter(|r| *r != second).collect();
        plan_owner_among(s, &rest2) != 0
    });

    let clock = FakeClock::new();
    let mut tuning = ClusterTuning::fast();
    tuning.fetch_timeout = Duration::from_millis(25);
    tuning.fetch_retries = 2;
    // Every PLAN_REP toward rank 0 vanishes; the clock never advances, so
    // no heartbeat ever clears the suspicions the failed fetches plant.
    let plan = FaultPlan::new().drop_frames(None, Some(0), Some(TAG_PLAN_REP));
    let cluster = ClusterService::with_fault_plan(
        4,
        ServiceConfig::default().with_workers(1),
        clock,
        tuning,
        plan,
    );

    let session = cluster.open_session_on(0, SessionSpec::tenant("t0"));
    let report = cluster
        .submit(session, spec)
        .unwrap()
        .wait_timeout(Duration::from_secs(30))
        .expect("job resolved despite the starved fetch path")
        .expect("job succeeded");
    assert_eq!(report.error, None);

    let stats = cluster.cache_stats();
    assert!(
        stats.total.degraded_resolves >= 1,
        "spending the whole retry budget must meter a degraded resolve: {:?}",
        stats.total
    );
    // Each failed attempt suspected the then-owner: three distinct remotes.
    assert!(
        cluster.membership_stats(0).suspicions >= 3,
        "expected one suspicion per failed fetch attempt: {:?}",
        cluster.membership_stats(0)
    );
    cluster.shutdown();
}
