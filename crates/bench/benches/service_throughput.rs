//! Throughput of the multi-tenant kernel-execution service: cold vs. warm
//! plan cache, and worker-pool scaling on the same submission stream.
//!
//! The cold benchmark pays one plan compilation per job inside the measured
//! region (a fresh service per iteration, eight structurally distinct
//! programs); the warm benchmarks resubmit the same stream against a resident
//! cache — the steady state a long-lived service serves from.  Single-block
//! jobs with one step keep execution from amortising the compile away, so the
//! cold/warm gap is the cache's contribution.
//!
//! The 1→N worker sweep shows pool scaling on multi-core hosts; on a
//! single-core container the warm variants coincide (the jobs are CPU-bound),
//! while the cold/warm gap remains visible everywhere.

use aohpc::prelude::*;
use aohpc_kernel::{lit, load, param};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const JOBS: usize = 8;
const REGION: usize = 48;

/// Eight structurally distinct Jacobi variants: each constant changes the
/// fingerprint, so a cold cache compiles all eight plans.
fn job_variants() -> Vec<JobSpec> {
    (0..JOBS)
        .map(|i| {
            let c = 0.01 * (i as f64 + 1.0);
            let expr = param(0) * load(0, 0)
                + param(1) * (load(0, -1) + load(-1, 0) + load(1, 0) + load(0, 1))
                + lit(c) * load(0, 0);
            let program =
                StencilProgram::new(format!("jacobi-v{i}"), expr, 2).expect("valid variant");
            JobSpec::new(program, vec![0.5, 0.125], RegionSize::square(REGION))
                .with_block(REGION)
                .with_steps(1)
        })
        .collect()
}

fn submit_round(service: &KernelService, session: SessionId) -> f64 {
    let reports = {
        service.submit_batch(session, job_variants()).expect("admission");
        service.drain()
    };
    assert_eq!(reports.len(), JOBS);
    reports.iter().map(|r| r.simulated_seconds).sum()
}

/// The same round through the async front door: handles in, per-job waits
/// out, no global drain barrier.
fn submit_async_round(service: &KernelService, session: SessionId) -> f64 {
    let handles = service.submit_batch(session, job_variants()).expect("admission");
    assert_eq!(handles.len(), JOBS);
    handles.iter().map(|h| h.wait().expect("job executed").simulated_seconds).sum()
}

fn bench_service(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_throughput");
    group.sample_size(10);

    // Cold: a fresh service (empty cache) compiles all eight plans inside the
    // measured region.
    group.bench_function("cold_cache_1worker", |b| {
        b.iter(|| {
            let service = KernelService::new(ServiceConfig::default().with_workers(1));
            let session = service.open_session(SessionSpec::tenant("bench"));
            black_box(submit_round(&service, session))
        })
    });

    // Warm: one long-lived service; the first round (outside the timer)
    // populated the cache.
    for workers in [1usize, 2, 4] {
        let service = KernelService::new(ServiceConfig::default().with_workers(workers));
        let session = service.open_session(SessionSpec::tenant("bench"));
        submit_round(&service, session); // pre-warm, unmeasured
        group.bench_function(format!("warm_cache_{workers}workers"), |b| {
            b.iter(|| black_box(submit_round(&service, session)))
        });
        assert_eq!(
            service.cache_stats().misses,
            JOBS as u64,
            "warm rounds must not recompile (workers={workers})"
        );
    }

    // Async front door: the same warm stream collected per job through
    // `JobHandle::wait` instead of the global drain barrier (report
    // retention off — handles are the only collection point, so the
    // undrained buffer cannot grow across iterations).
    for workers in [1usize, 4] {
        let service = KernelService::new(
            ServiceConfig::default().with_workers(workers).with_report_retention(false),
        );
        let session = service.open_session(SessionSpec::tenant("bench-async"));
        submit_async_round(&service, session); // pre-warm, unmeasured
        group.bench_function(format!("warm_cache_async_{workers}workers"), |b| {
            b.iter(|| black_box(submit_async_round(&service, session)))
        });
        assert_eq!(
            service.cache_stats().misses,
            JOBS as u64,
            "async warm rounds must not recompile (workers={workers})"
        );
    }

    group.finish();
}

criterion_group!(benches, bench_service);
criterion_main!(benches);
