//! Criterion micro-benchmark behind Fig. 6: wall-clock time of one small
//! single-task workload in every build configuration, compared against the
//! handwritten baseline.  (The figure harness uses the deterministic cost
//! model; this bench provides the real-time counterpart on the host machine.)

use aohpc::prelude::*;
use aohpc_baselines::HandwrittenSGrid;
use aohpc_bench::{grid_init, run_platform, Workload};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_overhead(c: &mut Criterion) {
    let scale = Scale::Smoke;
    let region = RegionSize::square(48);
    let workload = Workload::SGrid { region };

    let mut group = c.benchmark_group("fig06_single_task");
    group.sample_size(10);

    group.bench_function("handwritten", |b| {
        b.iter(|| {
            let (grid, _) = HandwrittenSGrid::new(region, scale.loop_count(), grid_init).run();
            black_box(grid.field()[0])
        })
    });
    group.bench_function("platform_direct", |b| {
        b.iter(|| {
            black_box(
                run_platform(workload, ExecutionMode::PlatformDirect, false, true, scale)
                    .report
                    .dispatches,
            )
        })
    });
    group.bench_function("platform_nop", |b| {
        b.iter(|| {
            black_box(
                run_platform(workload, ExecutionMode::PlatformNop, false, true, scale)
                    .report
                    .dispatches,
            )
        })
    });
    group.bench_function("platform_mpi1", |b| {
        b.iter(|| {
            black_box(
                run_platform(workload, ExecutionMode::PlatformMpi { ranks: 1 }, false, true, scale)
                    .report
                    .dispatches,
            )
        })
    });
    group.bench_function("platform_omp1", |b| {
        b.iter(|| {
            black_box(
                run_platform(
                    workload,
                    ExecutionMode::PlatformOmp { threads: 1 },
                    false,
                    true,
                    scale,
                )
                .report
                .dispatches,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
