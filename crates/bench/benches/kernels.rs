//! Criterion micro-benchmarks of the three sample DSL kernels (one full
//! scaled-down run each) and of the substrate primitives that dominate the
//! platform's overhead: the Env search, the MMAT memo and the Z-order index.

use aohpc::prelude::*;
use aohpc_bench::{run_platform, Workload};
use aohpc_env::{morton2d, AccessState, EnvBuilder, MmatEntry, MmatTable};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

fn bench_dsl_kernels(c: &mut Criterion) {
    let scale = Scale::Smoke;
    let mut group = c.benchmark_group("dsl_kernels");
    group.sample_size(10);
    let cases = [
        ("sgrid", Workload::SGrid { region: RegionSize::square(48) }, false),
        (
            "usgrid_casec",
            Workload::UsGrid { region: RegionSize::square(48), layout: GridLayout::CaseC },
            true,
        ),
        (
            "usgrid_caser",
            Workload::UsGrid {
                region: RegionSize::square(48),
                layout: GridLayout::CaseR { seed: 42 },
            },
            true,
        ),
        ("particle", Workload::Particle { count: ParticleSize::new(512) }, false),
    ];
    for (name, workload, mmat) in cases {
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    run_platform(workload, ExecutionMode::PlatformDirect, mmat, true, scale)
                        .report
                        .total_counters()
                        .reads,
                )
            })
        });
    }
    group.finish();
}

fn bench_substrate(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate");

    // Env search: a 16x16 tiling, search from one corner block to the other.
    let pool = PoolHandle::unbounded();
    let mut builder = EnvBuilder::<f64>::new(pool, 64);
    let root = builder.add_empty(None);
    let boundary_joint = builder.add_empty(Some(root));
    builder.add_arithmetic(boundary_joint, Arc::new(|_| 0.0), true);
    let joint = builder.add_empty(Some(root));
    let mut first = None;
    for by in 0..16u32 {
        for bx in 0..16u32 {
            let id = builder
                .add_data(
                    joint,
                    GlobalAddress::new2d(bx as i64 * 8, by as i64 * 8),
                    Extent::new2d(8, 8),
                    morton2d(bx, by),
                )
                .unwrap();
            first.get_or_insert(id);
        }
    }
    let env = builder.build();
    let start = first.unwrap();
    group.bench_function("env_search_far_block", |b| {
        b.iter(|| black_box(env.find_block(GlobalAddress::new2d(120, 120), start).0))
    });
    group.bench_function("env_read_in_block_hint", |b| {
        let mut state = AccessState::new();
        b.iter(|| black_box(env.read(start, GlobalAddress::new2d(3, 3), true, &mut state)))
    });

    // MMAT memo lookup.
    let mut mmat = MmatTable::new();
    for i in 0..1024 {
        mmat.record(0, GlobalAddress::new2d(i, i), MmatEntry::InBlock(i as usize));
    }
    group.bench_function("mmat_lookup_hit", |b| {
        b.iter(|| black_box(mmat.lookup(0, GlobalAddress::new2d(511, 511))))
    });

    // Z-order index (software PDEP).
    group.bench_function("morton2d", |b| b.iter(|| black_box(morton2d(12345, 54321))));

    group.finish();
}

criterion_group!(benches, bench_dsl_kernels, bench_substrate);
criterion_main!(benches);
