//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! MMAT on/off (the paper's own ablation), the Dry-run prefetch on/off in the
//! distributed layer, the skip-search flag on/off for in-block accesses, and
//! the data-branch tree topology (flat vs locality joints, §III-B3).

use aohpc::prelude::*;
use aohpc_bench::{run_platform, Workload};
use aohpc_env::{AccessState, EnvBuilder, Extent};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

fn bench_mmat_ablation(c: &mut Criterion) {
    let scale = Scale::Smoke;
    let workload =
        Workload::UsGrid { region: RegionSize::square(48), layout: GridLayout::CaseR { seed: 7 } };
    let mut group = c.benchmark_group("ablation_mmat_usgrid_caser");
    group.sample_size(10);
    for (name, mmat) in [("without_mmat", false), ("with_mmat", true)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    run_platform(workload, ExecutionMode::PlatformDirect, mmat, true, scale)
                        .report
                        .total_counters()
                        .env_searches,
                )
            })
        });
    }
    group.finish();
}

fn bench_dry_run_ablation(c: &mut Criterion) {
    let scale = Scale::Smoke;
    let workload = Workload::SGrid { region: RegionSize::square(48) };
    let mut group = c.benchmark_group("ablation_dry_run_mpi2");
    group.sample_size(10);
    for (name, dry_run) in [("with_dry_run", true), ("without_dry_run", false)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    run_platform(
                        workload,
                        ExecutionMode::PlatformMpi { ranks: 2 },
                        false,
                        dry_run,
                        scale,
                    )
                    .report
                    .total_retries(),
                )
            })
        });
    }
    group.finish();
}

fn bench_skip_search_ablation(c: &mut Criterion) {
    // Direct Env-level measurement: the same in-block access with and without
    // the caller-supplied in-block assertion.
    let mut builder = EnvBuilder::<f64>::new(PoolHandle::unbounded(), 64);
    let root = builder.add_empty(None);
    builder.add_arithmetic(root, Arc::new(|_| 0.0), true);
    let joint = builder.add_empty(Some(root));
    let block =
        builder.add_data(joint, GlobalAddress::new2d(0, 0), Extent::new2d(64, 64), 0).unwrap();
    let env = builder.build();
    let mut group = c.benchmark_group("ablation_skip_search");
    group.bench_function("get_with_hint", |b| {
        let mut state = AccessState::new();
        b.iter(|| black_box(env.read(block, GlobalAddress::new2d(10, 10), true, &mut state)))
    });
    group.bench_function("get_without_hint", |b| {
        let mut state = AccessState::new();
        b.iter(|| black_box(env.read(block, GlobalAddress::new2d(10, 10), false, &mut state)))
    });
    group.bench_function("get_without_hint_mmat", |b| {
        let mut state = AccessState::with_mmat();
        b.iter(|| black_box(env.read(block, GlobalAddress::new2d(10, 10), false, &mut state)))
    });
    group.finish();
}

fn bench_tree_topology_ablation(c: &mut Criterion) {
    // §III-B3 locality joints: the same USGrid CaseR run (no MMAT, so every
    // out-of-block access pays an Env search) with the flat default tree and
    // with grouped/quadtree joints.
    let region = RegionSize::square(64);
    let layout = GridLayout::CaseR { seed: 7 };
    let mut group = c.benchmark_group("ablation_tree_topology_usgrid_caser");
    group.sample_size(10);
    for (name, tree) in [
        ("flat", TreeTopology::Flat),
        ("morton_groups_4", TreeTopology::MortonGroups { blocks_per_joint: 4 }),
        ("quadtree_leaf1", TreeTopology::Quadtree { max_leaf_blocks: 1 }),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let system = UsGridSystem::with_block_size(region, 8, layout).with_topology(tree);
                let app = UsGridJacobiApp::new(system.clone(), 1);
                let outcome = Platform::new(ExecutionMode::PlatformDirect)
                    .run_system(Arc::new(system), app.factory());
                black_box(outcome.report.total_counters().search_nodes_visited)
            })
        });
    }
    group.finish();
}

fn bench_page_size_ablation(c: &mut Criterion) {
    // Communication granularity: the page is the unit shipped between ranks
    // (§III-B6), so smaller pages ship less surplus data per halo access but
    // pay more per-message latency.  The benchmark runs SGrid under 2 ranks
    // with different page sizes; the measured value is the full run.
    let region = RegionSize::square(64);
    let block = 16usize;
    let mut group = c.benchmark_group("ablation_page_size_mpi2");
    group.sample_size(10);
    for cells_per_page in [16usize, 64, 256] {
        group.bench_function(format!("{cells_per_page}_cells_per_page"), |b| {
            b.iter(|| {
                let mut system = SGridSystem::with_block_size(region, block);
                system.cells_per_page = cells_per_page;
                let app = SGridJacobiApp::new(2, block);
                let outcome = Platform::new(ExecutionMode::PlatformMpi { ranks: 2 })
                    .run_system(Arc::new(system), app.factory());
                black_box((outcome.report.total_pages_sent(), outcome.report.total_bytes_sent()))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_mmat_ablation,
    bench_dry_run_ablation,
    bench_skip_search_ablation,
    bench_tree_topology_ablation,
    bench_page_size_ablation
);
criterion_main!(benches);
