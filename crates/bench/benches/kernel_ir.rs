//! Benchmarks of the subkernel IR pipeline (the paper's future-work §VI,
//! implemented in `aohpc-kernel`):
//!
//! * interpreter vs compiled plan vs lane (SIMD) execution of the same
//!   program on a dense block — the "generate kernels for multiple types of
//!   processors" axis;
//! * optimizer on/off — what constant folding / CSE / identity removal buys;
//! * classic hand-written platform kernel vs the IR app with the
//!   access-resolution cache — what reusing address resolution buys on the
//!   platform's access path.

use aohpc::prelude::*;
use aohpc_kernel::prelude::*;
use aohpc_kernel::{DenseField, Processor};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

fn init(x: i64, y: i64) -> f64 {
    ((x * 13 + y * 7) % 97) as f64 / 97.0
}

fn bench_backends_on_a_block(c: &mut Criterion) {
    let program = StencilProgram::jacobi_5pt();
    let n = 128usize;
    let params = [0.5, 0.125];
    let cells: Vec<f64> = (0..n * n).map(|k| init((k % n) as i64, (k / n) as i64)).collect();
    let compiled = CompiledKernel::compile(&program, Extent::new2d(n, n), OptLevel::Full);

    let mut group = c.benchmark_group("kernel_ir_backends_128x128");
    group.bench_function("interpreter", |b| {
        b.iter(|| {
            let mut field = DenseField::new(n, n, init, |_, _| 0.0);
            field.run_interpreted(&program, &params, 1);
            black_box(field.values()[0])
        })
    });
    group.bench_function("tree_walk_scalar", |b| {
        let mut out = vec![0.0; n * n];
        b.iter(|| {
            let mut stats = ExecStats::default();
            compiled.execute_block_tree(
                &cells,
                &params,
                &mut |_, _| 0.0,
                &mut out,
                Processor::Scalar,
                &mut stats,
            );
            black_box(out[n + 1])
        })
    });
    for proc in [Processor::Scalar, Processor::Simd, Processor::Accelerator] {
        group.bench_function(proc.name(), |b| {
            let mut out = vec![0.0; n * n];
            let mut scratch = ExecScratch::new();
            b.iter(|| {
                let mut stats = ExecStats::default();
                compiled.execute_block(
                    &cells,
                    &params,
                    &mut |_, _| 0.0,
                    &mut out,
                    proc,
                    &mut stats,
                    &mut scratch,
                );
                black_box(out[n + 1])
            })
        });
    }
    group.finish();
}

fn bench_optimizer_ablation(c: &mut Criterion) {
    // A deliberately redundant expression: the optimizer folds the constants,
    // removes the identities and CSEs the repeated loads.
    let redundant = (param(0) * load(0, 0) + lit(0.0)) * lit(1.0)
        + param(1) * (load(0, -1) + load(-1, 0) + load(1, 0) + load(0, 1))
        + (load(0, 0) - load(0, 0)) * lit(3.0);
    let program = StencilProgram::new("redundant-jacobi", redundant, 2).unwrap();
    let n = 128usize;
    let params = [0.5, 0.125];
    let cells: Vec<f64> = (0..n * n).map(|k| init((k % n) as i64, (k / n) as i64)).collect();

    let mut group = c.benchmark_group("kernel_ir_optimizer_128x128");
    for (name, level) in [("unoptimized", OptLevel::None), ("optimized", OptLevel::Full)] {
        let compiled = CompiledKernel::compile(&program, Extent::new2d(n, n), level);
        group.bench_function(name, |b| {
            let mut out = vec![0.0; n * n];
            let mut scratch = ExecScratch::new();
            b.iter(|| {
                let mut stats = ExecStats::default();
                compiled.execute_block(
                    &cells,
                    &params,
                    &mut |_, _| 0.0,
                    &mut out,
                    Processor::Scalar,
                    &mut stats,
                    &mut scratch,
                );
                black_box(out[n + 1])
            })
        });
    }
    group.finish();
}

fn bench_resolution_cache_on_platform(c: &mut Criterion) {
    // The classic Listing-1-style kernel issues five platform accesses per
    // cell; the IR app gathers each cell once and fetches only the halo.
    let region = RegionSize::square(96);
    let block = 16;
    let loops = 2;
    let mut group = c.benchmark_group("kernel_ir_platform_access_path");
    group.sample_size(10);
    group.bench_function("classic_sgrid_app", |b| {
        b.iter(|| {
            let system = Arc::new(SGridSystem::with_block_size(region, block));
            let app = SGridJacobiApp::new(loops, block);
            black_box(
                Platform::new(ExecutionMode::PlatformDirect)
                    .run_system(system, app.factory())
                    .report
                    .total_counters()
                    .reads,
            )
        })
    });
    group.bench_function("ir_app_with_resolution_cache", |b| {
        b.iter(|| {
            let system = Arc::new(SGridSystem::with_block_size(region, block));
            let app = IrStencilApp::new(StencilProgram::jacobi_5pt(), vec![0.5, 0.125], loops);
            black_box(
                Platform::new(ExecutionMode::PlatformDirect)
                    .run_system(system, app.factory())
                    .report
                    .total_counters()
                    .reads,
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_backends_on_a_block,
    bench_optimizer_ablation,
    bench_resolution_cache_on_platform
);
criterion_main!(benches);
