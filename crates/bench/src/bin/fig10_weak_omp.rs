//! Fig. 10 — weak scaling on the shared-memory (OpenMP-like) layer: fixed
//! per-task problem, 1–16 threads, execution time relative to 1 thread
//! (= 100%).

use aohpc::prelude::*;
use aohpc_bench::{relative, run_platform, WeakCase, Workload};

fn main() {
    let scale = Scale::from_env();
    let per_task = scale.weak_scaling_region_per_task();
    let per_task_particles = scale.weak_scaling_particles_per_task();
    let threads: Vec<usize> = match scale {
        Scale::Smoke => vec![1, 4],
        _ => vec![1, 4, 16],
    };

    println!("# Fig. 10 — weak scaling (OpenMP), relative execution time (1 thread = 100%), scale = {scale}");
    print!("{:<26}", "benchmark");
    for t in &threads {
        print!(" {:>10}", format!("t={t}"));
    }
    println!();

    let cases: Vec<WeakCase> = vec![
        (
            "SGrid",
            Box::new(move |t: usize| {
                let side = per_task.nx * (t as f64).sqrt().round() as usize;
                Workload::SGrid { region: RegionSize::square(side) }
            }),
            false,
        ),
        (
            "USGrid CaseC (w MMAT)",
            Box::new(move |t: usize| {
                let side = per_task.nx * (t as f64).sqrt().round() as usize;
                Workload::UsGrid { region: RegionSize::square(side), layout: GridLayout::CaseC }
            }),
            true,
        ),
        (
            "USGrid CaseR (w MMAT)",
            Box::new(move |t: usize| {
                let side = per_task.nx * (t as f64).sqrt().round() as usize;
                Workload::UsGrid {
                    region: RegionSize::square(side),
                    layout: GridLayout::CaseR { seed: 42 },
                }
            }),
            true,
        ),
        (
            "Particle",
            Box::new(move |t: usize| Workload::Particle {
                count: ParticleSize::new(per_task_particles.count * t),
            }),
            false,
        ),
    ];

    for (label, make, mmat) in cases {
        let mut baseline = None;
        print!("{:<26}", label);
        for &t in &threads {
            let outcome =
                run_platform(make(t), ExecutionMode::PlatformOmp { threads: t }, mmat, true, scale);
            let time = outcome.simulated_seconds;
            let base = *baseline.get_or_insert(time);
            print!(" {:>9.0}%", relative(time, base));
        }
        println!();
    }
    println!();
    println!("(paper: gradual degradation with thread count from shared cache/bandwidth pressure, strongest for CaseC)");
}
