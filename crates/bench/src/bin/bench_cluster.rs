//! Cluster microbench: compile-once-per-cluster plan sharing vs independent
//! nodes, cold vs warm.
//!
//! The variants run the same workload — `programs × nodes × reps` jobs,
//! spread one tenant per node:
//!
//! * `independent_cold` — N unconnected `KernelService`s (the pre-cluster
//!   deployment): every node compiles every program itself.
//! * `cluster_cold` — a fresh `ClusterService`: each program compiles once
//!   cluster-wide, every other node fetches the portable plan.
//! * `cluster_warm` — the same cluster again: everything hits.
//! * `family_mix_cold` — stencil + particle + usgrid through one fabric.
//! * `cluster_failover` — the same workload with rank 1 fail-stopped
//!   mid-batch on a fake-clock fault schedule: the cost of detection,
//!   re-ownership and checkpoint replay, with every answer still
//!   bit-identical and the failover count reported.
//! * `cluster_rejoin` — kill, replay, *restart*: rank 1 rejoins under a
//!   fresh incarnation and the same workload runs again on the healed
//!   mesh.  Reports the rejoin count and how much of the rejoined rank's
//!   cold cache was re-warmed by fetch instead of recompiled (post-heal
//!   compile elision).
//!
//! Writes machine-readable `BENCH_cluster.json` (jobs/sec, compiles,
//! fetches, control frames, failovers per variant, plus the rejoin
//! section) alongside `BENCH_kernel.json` so CI can track the trajectory.
//! Problem size follows `AOHPC_SCALE=smoke|default|paper`.

use aohpc_kernel::KernelFamilyId;
use aohpc_service::{
    ClusterService, ClusterTuning, FaultPlan, JobSpec, KernelService, ServiceConfig, SessionSpec,
};
use aohpc_testalloc::sync::FakeClock;
use aohpc_workloads::Scale;
use std::time::{Duration, Instant};

struct Outcome {
    name: &'static str,
    jobs: usize,
    secs: f64,
    compiles: u64,
    fetches: u64,
    control_frames: u64,
    failovers: u64,
    checksum_bits: u64,
}

impl Outcome {
    fn jobs_per_sec(&self) -> f64 {
        self.jobs as f64 / self.secs.max(1e-9)
    }
}

fn workload(scale: Scale) -> Vec<JobSpec> {
    vec![JobSpec::jacobi(scale), JobSpec::smooth(scale)]
}

/// One program per kernel family: the heterogeneous workload the
/// family-generic pipeline exists for.
fn mixed_workload(scale: Scale) -> Vec<JobSpec> {
    vec![JobSpec::jacobi(scale), JobSpec::particle(scale), JobSpec::usgrid(scale)]
}

/// Submit `reps` copies of every program under one session per node and
/// wait for all of them; returns (first job's checksum bits, job count).
fn run_jobs(
    submit: impl Fn(usize, JobSpec) -> aohpc_service::JobHandle,
    nodes: usize,
    jobs: &[JobSpec],
    reps: usize,
) -> (u64, usize) {
    let mut handles = Vec::new();
    for node in 0..nodes {
        for job in jobs {
            for _ in 0..reps {
                handles.push(submit(node, job.clone()));
            }
        }
    }
    let mut first_bits = 0u64;
    for (i, handle) in handles.iter().enumerate() {
        let report = handle.wait().expect("job executed");
        assert!(report.error.is_none(), "bench job failed: {:?}", report.error);
        if i == 0 {
            first_bits = report.checksum.to_bits();
        }
    }
    (first_bits, handles.len())
}

fn main() {
    let scale = Scale::from_env();
    let nodes: usize = 4;
    let reps: usize = match scale {
        Scale::Smoke => 2,
        Scale::Default => 8,
        Scale::Paper => 16,
    };
    let jobs = workload(scale);
    let config = ServiceConfig::default().with_workers(scale.service_workers());
    println!(
        "# bench_cluster — {} programs x {nodes} nodes x {reps} reps, scale = {scale}",
        jobs.len()
    );

    let mut outcomes: Vec<Outcome> = Vec::new();

    // Independent nodes: the pre-cluster deployment, compiles = P x N.
    {
        let services: Vec<KernelService> = (0..nodes).map(|_| KernelService::new(config)).collect();
        let sessions: Vec<_> =
            services.iter().map(|s| s.open_session(SessionSpec::tenant("bench"))).collect();
        let start = Instant::now();
        let (bits, count) =
            run_jobs(|n, job| services[n].submit(sessions[n], job).unwrap(), nodes, &jobs, reps);
        let secs = start.elapsed().as_secs_f64();
        let compiles: u64 = services.iter().map(|s| s.cache_stats().compiles).sum();
        outcomes.push(Outcome {
            name: "independent_cold",
            jobs: count,
            secs,
            compiles,
            fetches: 0,
            control_frames: 0,
            failovers: 0,
            checksum_bits: bits,
        });
        assert_eq!(compiles as usize, jobs.len() * nodes, "no sharing: every node compiles");
    }

    // The cluster: cold (compile-once-per-cluster), then warm (all hits).
    let cluster = ClusterService::new(nodes, config);
    let sessions: Vec<_> = (0..nodes)
        .map(|n| cluster.open_session_on(n, SessionSpec::tenant(format!("bench-{n}"))))
        .collect();
    for (name, expect_compiles) in
        [("cluster_cold", Some(jobs.len() as u64)), ("cluster_warm", None)]
    {
        let before_cache = cluster.cache_stats().total;
        let before_comm = cluster.comm_stats().total;
        let start = Instant::now();
        let (bits, count) =
            run_jobs(|n, job| cluster.submit(sessions[n], job).unwrap(), nodes, &jobs, reps);
        let secs = start.elapsed().as_secs_f64();
        let cache = cluster.cache_stats().total;
        let comm = cluster.comm_stats().total;
        let compiles = cache.compiles - before_cache.compiles;
        outcomes.push(Outcome {
            name,
            jobs: count,
            secs,
            compiles,
            fetches: cache.fetches - before_cache.fetches,
            control_frames: comm.control_sent - before_comm.control_sent,
            failovers: 0,
            checksum_bits: bits,
        });
        if let Some(expected) = expect_compiles {
            assert_eq!(compiles, expected, "compile-once-per-cluster violated");
        } else {
            assert_eq!(compiles, 0, "warm cluster recompiled");
        }
    }
    cluster.shutdown();

    // Mixed-family workload on a fresh cluster: stencil + particle + usgrid
    // through one plan-sharing fabric, compiles broken down per family.
    let mixed = mixed_workload(scale);
    let (mixed_outcome, family_lanes) = {
        let cluster = ClusterService::new(nodes, config);
        let sessions: Vec<_> = (0..nodes)
            .map(|n| cluster.open_session_on(n, SessionSpec::tenant(format!("mix-{n}"))))
            .collect();
        let start = Instant::now();
        let (bits, count) =
            run_jobs(|n, job| cluster.submit(sessions[n], job).unwrap(), nodes, &mixed, reps);
        let secs = start.elapsed().as_secs_f64();
        let cache = cluster.cache_stats().total;
        let comm = cluster.comm_stats().total;
        // One distinct program per family, so compile-once-per-cluster means
        // exactly one compile per family; the lanes attribute the traffic.
        assert_eq!(cache.compiles as usize, mixed.len(), "one compile per family");
        let lanes: Vec<(KernelFamilyId, u64, u64, u64)> = KernelFamilyId::all()
            .iter()
            .map(|&f| {
                let lane = cache.for_family(f);
                let compiles = lane.misses - (nodes as u64 - 1);
                assert_eq!(compiles, 1, "{f:?} compiled more than once cluster-wide");
                (f, compiles, lane.hits, lane.misses)
            })
            .collect();
        cluster.shutdown();
        (
            Outcome {
                name: "family_mix_cold",
                jobs: count,
                secs,
                compiles: cache.compiles,
                fetches: cache.fetches,
                control_frames: comm.control_sent,
                failovers: 0,
                checksum_bits: bits,
            },
            lanes,
        )
    };
    outcomes.push(mixed_outcome);

    // Failover drill: the same workload on a fake-clock cluster whose rank 1
    // is fail-stopped mid-batch.  Every job still completes — queued jobs on
    // the dead rank replay on survivors, bit-identically — and the variant
    // records how many reports carried failover provenance.
    {
        let clock = FakeClock::new();
        let plan = FaultPlan::new().kill_at(1, Duration::from_millis(30));
        let cluster = ClusterService::with_fault_plan(
            nodes,
            config,
            clock.clone(),
            ClusterTuning::fast(),
            plan,
        );
        let sessions: Vec<_> = (0..nodes)
            .map(|n| cluster.open_session_on(n, SessionSpec::tenant(format!("drill-{n}"))))
            .collect();
        let start = Instant::now();
        let mut handles = Vec::new();
        for session in &sessions {
            for job in &jobs {
                for _ in 0..reps {
                    handles.push(cluster.submit(*session, job.clone()).unwrap());
                }
            }
        }
        // Drive the detector well past the kill and its death threshold.
        for _ in 0..40 {
            clock.advance(Duration::from_millis(10));
            std::thread::sleep(Duration::from_millis(1));
        }
        let mut bits = 0u64;
        let mut failovers = 0u64;
        for (i, handle) in handles.iter().enumerate() {
            let report = handle.wait().expect("job survived the kill");
            assert!(report.error.is_none(), "drill job failed: {:?}", report.error);
            if i == 0 {
                bits = report.checksum.to_bits();
            }
            if report.failover.is_some() {
                failovers += 1;
            }
        }
        let secs = start.elapsed().as_secs_f64();
        let cache = cluster.cache_stats().total;
        let comm = cluster.comm_stats().total;
        outcomes.push(Outcome {
            name: "cluster_failover",
            jobs: handles.len(),
            secs,
            compiles: cache.compiles,
            fetches: cache.fetches,
            control_frames: comm.control_sent,
            failovers,
            checksum_bits: bits,
        });
        cluster.shutdown();
    }

    // Rejoin drill: rank 1 is fail-stopped mid-batch, the replays drain,
    // then the rank *restarts* under a fresh incarnation and the same
    // workload runs again across the healed mesh.  The rejoined rank's
    // cold cache re-warms by fetching every plan it does not own — only
    // its own rendezvous keys recompile, which is the post-heal compile
    // elision the JSON records alongside the rejoin count.
    let rejoin_section = {
        let clock = FakeClock::new();
        let plan = FaultPlan::new()
            .kill_at(1, Duration::from_millis(30))
            .restart_at(1, Duration::from_millis(250));
        let cluster = ClusterService::with_fault_plan(
            nodes,
            config,
            clock.clone(),
            ClusterTuning::fast(),
            plan,
        );
        let sessions: Vec<_> = (0..nodes)
            .map(|n| cluster.open_session_on(n, SessionSpec::tenant(format!("rejoin-{n}"))))
            .collect();
        let start = Instant::now();
        let mut handles = Vec::new();
        for session in &sessions {
            for job in &jobs {
                for _ in 0..reps {
                    handles.push(cluster.submit(*session, job.clone()).unwrap());
                }
            }
        }
        // Drive the detector past the kill (30 ms), the death threshold and
        // the scripted restart (250 ms).
        for _ in 0..60 {
            clock.advance(Duration::from_millis(10));
            std::thread::sleep(Duration::from_millis(1));
        }
        let mut bits = 0u64;
        let mut failovers = 0u64;
        for (i, handle) in handles.iter().enumerate() {
            let report = handle.wait().expect("job survived the kill");
            assert!(report.error.is_none(), "rejoin drill job failed: {:?}", report.error);
            if i == 0 {
                bits = report.checksum.to_bits();
            }
            if report.failover.is_some() {
                failovers += 1;
            }
        }
        let mut jobs_run = handles.len();
        // Wait for the rejoin: every view holds rank 1 Alive under one
        // agreed fresh incarnation.
        let mut rejoined = false;
        for _ in 0..300 {
            clock.advance(Duration::from_millis(10));
            std::thread::sleep(Duration::from_millis(1));
            let inc = cluster.incarnation(1, 1);
            let agreed = (0..nodes).all(|o| {
                cluster.node_state(o, 1) == aohpc_service::NodeState::Alive
                    && cluster.incarnation(o, 1) == inc
            });
            if agreed && inc >= 1 {
                rejoined = true;
                break;
            }
        }
        assert!(rejoined, "rank 1 never rejoined the mesh");
        let rejoins = cluster.membership_stats(0).rejoins;

        // Warm steady state on the healed mesh, rejoined rank included.
        let before = cluster.cache_stats().total;
        let (_, count) =
            run_jobs(|n, job| cluster.submit(sessions[n], job).unwrap(), nodes, &jobs, reps);
        jobs_run += count;
        let secs = start.elapsed().as_secs_f64();
        let after = cluster.cache_stats().total;
        let comm = cluster.comm_stats().total;
        let recompiles = after.compiles - before.compiles;
        let refetches = after.fetches - before.fetches;
        assert!(
            recompiles <= jobs.len() as u64,
            "the rejoined rank recompiled plans it could have fetched"
        );
        let elision_pct = 100.0 * (1.0 - recompiles as f64 / jobs.len() as f64);
        outcomes.push(Outcome {
            name: "cluster_rejoin",
            jobs: jobs_run,
            secs,
            compiles: after.compiles,
            fetches: after.fetches,
            control_frames: comm.control_sent,
            failovers,
            checksum_bits: bits,
        });
        cluster.shutdown();
        (rejoins, recompiles, refetches, elision_pct)
    };

    // Every variant computed the same field bit-for-bit.
    for o in &outcomes[1..] {
        assert_eq!(o.checksum_bits, outcomes[0].checksum_bits, "{} diverged", o.name);
    }

    println!(
        "{:<17} {:>6} {:>12} {:>9} {:>8} {:>15} {:>10}",
        "variant", "jobs", "jobs/sec", "compiles", "fetches", "control frames", "failovers"
    );
    for o in &outcomes {
        println!(
            "{:<17} {:>6} {:>12.1} {:>9} {:>8} {:>15} {:>10}",
            o.name,
            o.jobs,
            o.jobs_per_sec(),
            o.compiles,
            o.fetches,
            o.control_frames,
            o.failovers
        );
    }
    let cold = outcomes.iter().find(|o| o.name == "cluster_cold").unwrap();
    let indep = outcomes.iter().find(|o| o.name == "independent_cold").unwrap();
    println!(
        "compiles per cluster: {} (vs {} unshared) — {:.0}% of the compile work elided",
        cold.compiles,
        indep.compiles,
        100.0 * (1.0 - cold.compiles as f64 / indep.compiles as f64),
    );
    let (rejoins, recompiles, refetches, elision_pct) = rejoin_section;
    println!(
        "rejoin: {rejoins} rejoin(s); post-heal re-warm recompiled {recompiles}/{} plans \
         ({refetches} fetched) — {elision_pct:.0}% of the compile work elided",
        jobs.len(),
    );

    // Machine-readable trajectory record (no external JSON dependency in the
    // offline workspace, so the document is assembled by hand).
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"cluster_plan_sharing\",\n");
    json.push_str(&format!("  \"scale\": \"{scale}\",\n"));
    json.push_str(&format!("  \"nodes\": {nodes},\n"));
    json.push_str(&format!("  \"programs\": {},\n", jobs.len()));
    json.push_str(&format!("  \"reps_per_node\": {reps},\n"));
    json.push_str("  \"variants\": {\n");
    for (i, o) in outcomes.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {{\"jobs\": {}, \"jobs_per_sec\": {:.1}, \"compiles\": {}, \"fetches\": {}, \"control_frames\": {}, \"failovers\": {}}}{}\n",
            o.name,
            o.jobs,
            o.jobs_per_sec(),
            o.compiles,
            o.fetches,
            o.control_frames,
            o.failovers,
            if i + 1 == outcomes.len() { "" } else { "," },
        ));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"rejoin\": {{\"rejoins\": {rejoins}, \"post_heal_recompiles\": {recompiles}, \"post_heal_fetches\": {refetches}, \"post_heal_compile_elision_pct\": {elision_pct:.1}}},\n",
    ));
    json.push_str("  \"family_mix\": {\n");
    for (i, (family, compiles, hits, misses)) in family_lanes.iter().enumerate() {
        json.push_str(&format!(
            "    \"{:?}\": {{\"compiles\": {}, \"hits\": {}, \"misses\": {}}}{}\n",
            family,
            compiles,
            hits,
            misses,
            if i + 1 == family_lanes.len() { "" } else { "," },
        ));
    }
    json.push_str("  }\n}\n");
    std::fs::write("BENCH_cluster.json", json).expect("write BENCH_cluster.json");
    println!("wrote BENCH_cluster.json");
}
