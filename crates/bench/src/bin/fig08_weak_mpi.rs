//! Fig. 8 — weak scaling on the distributed (MPI-like) layer: fixed per-task
//! problem (2048² cells / 2¹⁶ particles per task in the paper), 1–64 ranks,
//! execution time relative to 1 rank (= 100%).

use aohpc::prelude::*;
use aohpc_bench::{relative, run_platform, WeakCase, Workload};

fn main() {
    let scale = Scale::from_env();
    let per_task = scale.weak_scaling_region_per_task();
    let per_task_particles = scale.weak_scaling_particles_per_task();
    let processes = scale.weak_scaling_processes();

    println!("# Fig. 8 — weak scaling (MPI), relative execution time (1 process = 100%), scale = {scale}");
    print!("{:<26}", "benchmark");
    for p in &processes {
        print!(" {:>10}", format!("p={p}"));
    }
    println!();

    let cases: Vec<WeakCase> = vec![
        (
            "SGrid",
            Box::new(move |p: usize| {
                let side = per_task.nx * (p as f64).sqrt().round() as usize;
                Workload::SGrid { region: RegionSize::square(side) }
            }),
            false,
        ),
        (
            "USGrid CaseC (w MMAT)",
            Box::new(move |p: usize| {
                let side = per_task.nx * (p as f64).sqrt().round() as usize;
                Workload::UsGrid { region: RegionSize::square(side), layout: GridLayout::CaseC }
            }),
            true,
        ),
        (
            "USGrid CaseR (w MMAT)",
            Box::new(move |p: usize| {
                let side = per_task.nx * (p as f64).sqrt().round() as usize;
                Workload::UsGrid {
                    region: RegionSize::square(side),
                    layout: GridLayout::CaseR { seed: 42 },
                }
            }),
            true,
        ),
        (
            "Particle",
            Box::new(move |p: usize| Workload::Particle {
                count: ParticleSize::new(per_task_particles.count * p),
            }),
            false,
        ),
    ];

    for (label, make, mmat) in cases {
        let mut baseline = None;
        print!("{:<26}", label);
        for &p in &processes {
            let outcome =
                run_platform(make(p), ExecutionMode::PlatformMpi { ranks: p }, mmat, true, scale);
            let t = outcome.simulated_seconds;
            let base = *baseline.get_or_insert(t);
            print!(" {:>9.0}%", relative(t, base));
        }
        println!();
    }
    println!();
    println!("(paper: flat ~100-120% except USGrid CaseR, which degrades markedly due to its communication volume)");
}
