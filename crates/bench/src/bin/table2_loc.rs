//! Table II — lines of code (without blank lines and comments) of each part
//! of the system: the Platform Part (reused by every DSL), the DSL Part
//! (written once per DSL), the App Part (what the end-user writes) and the
//! handwritten baselines.

use aohpc_bench::count_loc;
use std::path::Path;

fn main() {
    println!("# Table II — lines of code without blanks and comments");
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let rows = [
        (
            "Platform Part (aop + mem + env + runtime + core + kernel)",
            vec![
                "crates/aop/src",
                "crates/mem/src",
                "crates/env/src",
                "crates/runtime/src",
                "crates/core/src",
                "crates/kernel/src",
            ],
        ),
        ("DSL Part (sgrid + usgrid + particle systems)", vec!["crates/dsl/src"]),
        ("App Part (end-user examples)", vec!["examples"]),
        ("Handwritten baselines", vec!["crates/baselines/src"]),
        ("Evaluation harness", vec!["crates/bench/src", "crates/bench/benches"]),
    ];
    for (label, dirs) in rows {
        let total: usize = dirs.iter().map(|d| count_loc(&root.join(d))).sum();
        println!("{label:<55} {total:>8}");
    }
    println!();
    println!(
        "(paper: Platform Part ~1.1-3.2k, DSL Part ~0.4-0.6k, App Part comparable to handwritten)"
    );
}
