//! Table I — binary sizes of the benchmark programs.
//!
//! The paper compares the handwritten binaries against the woven platform
//! binaries (three to five times larger, still cache-resident).  In this
//! reproduction the execution mode is selected at run time, so one platform
//! binary covers P / P NOP / P OMP / P MPI / P MPI+OMP; the comparison is
//! between the handwritten-only probe binary and the full-platform probe
//! binary, plus every example binary that has been built.

use std::path::{Path, PathBuf};

fn size_kb(path: &Path) -> Option<u64> {
    std::fs::metadata(path).ok().map(|m| m.len() / 1024)
}

fn find_binaries(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    if let Ok(entries) = std::fs::read_dir(dir) {
        for e in entries.flatten() {
            let p = e.path();
            if p.is_file()
                && p.extension().is_none()
                && std::fs::metadata(&p).map(|m| m.len() > 4096).unwrap_or(false)
            {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

fn main() {
    println!("# Table I — binary sizes (KB)");
    let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_string());
    let mut printed = 0usize;
    for profile in ["release", "debug"] {
        let base = PathBuf::from(&target).join(profile);
        let mut rows: Vec<(String, u64)> = Vec::new();
        for bin in find_binaries(&base) {
            let name = bin.file_name().unwrap().to_string_lossy().to_string();
            if name.starts_with("size_probe")
                || name.starts_with("fig")
                || name.starts_with("table")
            {
                if let Some(kb) = size_kb(&bin) {
                    rows.push((format!("{profile}/{name}"), kb));
                }
            }
        }
        for bin in find_binaries(&base.join("examples")) {
            let name = bin.file_name().unwrap().to_string_lossy().to_string();
            if let Some(kb) = size_kb(&bin) {
                rows.push((format!("{profile}/examples/{name}"), kb));
            }
        }
        for (name, kb) in rows {
            println!("{name:<50} {kb:>8} KB");
            printed += 1;
        }
    }
    if printed == 0 {
        println!("(no built binaries found — build the probes first:");
        println!("  cargo build --release -p aohpc-bench --bins");
        println!("  cargo build --release --examples)");
    }
    println!();
    println!("(paper: platform binaries are 3-5x the handwritten ones — here compare size_probe_handwritten vs size_probe_platform)");
}
