//! Fig. 11 — 16 tasks split between the distributed and shared layers:
//! (1×16), (2×8), (4×4), (8×2), (16×1), execution time relative to the
//! 1-process × 1-thread run (= 100%).

use aohpc::prelude::*;
use aohpc_bench::{relative, run_platform, scaling_workloads};

fn main() {
    let scale = Scale::from_env();
    let region = scale.scaling_region();
    let particles = scale.scaling_particles();
    let combos = scale.hybrid_combinations();

    println!("# Fig. 11 — MPI x OpenMP combinations, relative execution time (1x1 = 100%), scale = {scale}");
    print!("{:<26}", "benchmark");
    for (r, t) in &combos {
        print!(" {:>10}", format!("{r}x{t}"));
    }
    println!();

    for (workload, mmat) in scaling_workloads(scale, region, particles) {
        // The reference run: one rank, one thread.
        let reference = run_platform(
            workload,
            ExecutionMode::PlatformHybrid { ranks: 1, threads: 1 },
            mmat,
            true,
            scale,
        )
        .simulated_seconds;
        print!("{:<26}", workload.label());
        for &(ranks, threads) in &combos {
            let outcome = run_platform(
                workload,
                ExecutionMode::PlatformHybrid { ranks, threads },
                mmat,
                true,
                scale,
            );
            print!(" {:>9.1}%", relative(outcome.simulated_seconds, reference));
        }
        println!();
    }
    println!();
    println!("(paper: roughly flat across combinations, except USGrid CaseR which worsens as the OpenMP share grows)");
}
