//! Fig. 7 — strong scaling on the distributed (MPI-like) layer: fixed global
//! problem, 1–16 ranks, execution time relative to 1 rank.

use aohpc::prelude::*;
use aohpc_bench::{run_platform, scaling_workloads};

fn main() {
    let scale = Scale::from_env();
    let region = scale.scaling_region();
    let particles = scale.scaling_particles();
    let processes = scale.strong_scaling_processes();

    println!("# Fig. 7 — strong scaling (MPI), relative execution time (1 process = 1.0), scale = {scale}");
    print!("{:<26}", "benchmark");
    for p in &processes {
        print!(" {:>10}", format!("p={p}"));
    }
    println!();

    for (workload, mmat) in scaling_workloads(scale, region, particles) {
        let mut baseline = None;
        print!("{:<26}", workload.label());
        for &p in &processes {
            let outcome =
                run_platform(workload, ExecutionMode::PlatformMpi { ranks: p }, mmat, true, scale);
            let t = outcome.simulated_seconds;
            let base = *baseline.get_or_insert(t);
            print!(" {:>10.3}", t / base);
        }
        println!();
    }
    println!();
    println!("(paper: near-linear scaling — relative time ≈ 1/p)");
}
