//! Fig. 6 — single-task overhead of the platform relative to the handwritten
//! baseline (= 100%), for every build configuration: Platform, Platform NOP,
//! Platform MPI, Platform OMP, each without and with MMAT.

use aohpc::prelude::*;
use aohpc_bench::{baseline_seconds, fig6_workloads, relative, run_handwritten, run_platform};

fn main() {
    let scale = Scale::from_env();
    let cost = CostModel::default();
    println!(
        "# Fig. 6 — relative execution time vs Handwritten (=100%), single task, scale = {scale}"
    );
    println!(
        "{:<22} {:>12} {:>16} {:>16} {:>16} {:>16}",
        "benchmark", "mmat", "Platform", "Platform NOP", "Platform MPI", "Platform OMP"
    );

    let modes = [
        ExecutionMode::PlatformDirect,
        ExecutionMode::PlatformNop,
        ExecutionMode::PlatformMpi { ranks: 1 },
        ExecutionMode::PlatformOmp { threads: 1 },
    ];

    for workload in fig6_workloads(scale) {
        let handwritten = baseline_seconds(&run_handwritten(workload, scale), &cost);
        for mmat in [false, true] {
            let mut cells = vec![
                format!("{:<22}", workload.label()),
                format!("{:>12}", if mmat { "w MMAT" } else { "w/o MMAT" }),
            ];
            for mode in modes {
                let outcome = run_platform(workload, mode, mmat, true, scale);
                cells.push(format!("{:>15.0}%", relative(outcome.simulated_seconds, handwritten)));
            }
            println!("{}", cells.join(" "));
        }
    }
    println!();
    println!("(paper: overhead up to ~600% without MMAT, down to ~70-200% with MMAT; NOP within a few percent of Platform)");
}
