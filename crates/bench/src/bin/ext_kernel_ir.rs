//! Extension harness — subkernel IR, access-resolution cache and
//! heterogeneous backends (the paper's future-work §VI).
//!
//! Prints (a) the optimizer's effect on a deliberately redundant program,
//! (b) the per-backend execution statistics of a heterogeneous hybrid run,
//! and (c) the platform-access saving of the resolution cache against the
//! classic Listing-1-style kernel.  Regenerates the "Subkernel IR" table of
//! EXPERIMENTS.md.

use aohpc::prelude::*;
use aohpc_kernel::prelude::*;
use aohpc_kernel::{lit, load, param, Processor};
use std::sync::Arc;

fn main() {
    let scale = Scale::from_env();
    let region = scale.scaling_region();
    let block = scale.grid_block_size();
    let loops = scale.loop_count();

    println!("# Extension — subkernel IR / heterogeneous backends (future work §VI), SGrid {}, scale = {scale}", region.nx);

    // (a) Optimizer.
    let redundant = (param(0) * load(0, 0) + lit(0.0)) * lit(1.0)
        + param(1) * (load(0, -1) + load(-1, 0) + load(1, 0) + load(0, 1))
        + (load(0, 0) - load(0, 0)) * lit(3.0);
    let program = StencilProgram::new("redundant-jacobi", redundant, 2).unwrap();
    let plain = Dag::lower(program.expr(), OptLevel::None);
    let optimized = Dag::optimized(program.expr());
    println!(
        "optimizer: {} tree nodes -> {} DAG nodes (CSE only) -> {} DAG nodes (full: {} folds, {} identities)",
        optimized.stats().tree_nodes,
        plain.len(),
        optimized.len(),
        optimized.stats().constants_folded,
        optimized.stats().identities_simplified
    );

    // (b) Heterogeneous hybrid run of the clean Jacobi program.
    let stats_sink = new_stats_sink();
    let system = Arc::new(SGridSystem::with_block_size(region, block));
    let app = IrStencilApp::new(StencilProgram::jacobi_5pt(), vec![0.5, 0.125], loops)
        .with_dispatcher(HeteroDispatcher::new(SchedulePolicy::Weighted(vec![
            (Processor::Accelerator, 2.0),
            (Processor::Simd, 1.0),
            (Processor::Scalar, 1.0),
        ])))
        .with_stats_sink(stats_sink.clone());
    let outcome = Platform::new(ExecutionMode::PlatformHybrid { ranks: 2, threads: 2 })
        .run_system(system, app.factory());
    println!(
        "heterogeneous MPI 2 x OMP 2 run: {} tasks, {} pages shipped, simulated {:.3} ms",
        outcome.report.tasks.len(),
        outcome.report.total_pages_sent(),
        outcome.simulated_seconds * 1e3
    );
    println!(
        "{:<14} {:>8} {:>12} {:>12} {:>12} {:>14}",
        "backend", "blocks", "cells", "scalar ops", "vector ops", "offload bytes"
    );
    for (name, s) in stats_sink.lock().iter() {
        println!(
            "{:<14} {:>8} {:>12} {:>12} {:>12} {:>14}",
            name,
            s.blocks,
            s.cells,
            s.scalar_ops,
            s.vector_ops,
            s.offload_bytes_in + s.offload_bytes_out
        );
    }

    // (c) Resolution cache vs the classic kernel on the platform access path.
    let classic = {
        let system = Arc::new(SGridSystem::with_block_size(region, block));
        Platform::new(ExecutionMode::PlatformDirect)
            .run_system(system, SGridJacobiApp::new(loops, block).factory())
            .report
            .total_counters()
    };
    let ir = {
        let system = Arc::new(SGridSystem::with_block_size(region, block));
        let app = IrStencilApp::new(StencilProgram::jacobi_5pt(), vec![0.5, 0.125], loops);
        Platform::new(ExecutionMode::PlatformDirect)
            .run_system(system, app.factory())
            .report
            .total_counters()
    };
    println!();
    println!(
        "resolution cache: classic kernel {} platform reads, IR app {} ({:.2}x fewer)",
        classic.reads,
        ir.reads,
        classic.reads as f64 / ir.reads.max(1) as f64
    );
}
