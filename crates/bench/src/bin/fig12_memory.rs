//! Fig. 12 — memory usage at execution: unused memory pool, used memory pool
//! and other working memory, for Handwritten and for every platform build
//! configuration (512² regions / 2¹⁴ particles / 300 MB pool in the paper).

use aohpc::prelude::*;
use aohpc_baselines::{HandwrittenParticle, HandwrittenSGrid, HandwrittenUsGrid};
use aohpc_bench::grid_init;
use std::sync::Arc;

struct Row {
    label: String,
    unused_pool_mb: f64,
    used_pool_mb: f64,
    working_mb: f64,
}

fn mb(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

fn platform_rows(
    name: &str,
    pool_bytes: u64,
    run: impl Fn(ExecutionMode) -> aohpc::RunOutcome,
) -> Vec<Row> {
    let modes = [
        ExecutionMode::PlatformDirect,
        ExecutionMode::PlatformNop,
        ExecutionMode::PlatformOmp { threads: 1 },
        ExecutionMode::PlatformMpi { ranks: 1 },
        ExecutionMode::PlatformHybrid { ranks: 1, threads: 1 },
    ];
    let short = ["P", "P NOP", "P OMP", "P MPI", "P MPI+OMP"];
    modes
        .iter()
        .zip(short)
        .map(|(mode, label)| {
            let outcome = run(*mode);
            let used = outcome.report.pool_stats.used;
            Row {
                label: format!("{name} {label}"),
                unused_pool_mb: mb(pool_bytes.saturating_sub(used)),
                used_pool_mb: mb(used),
                working_mb: mb(outcome.report.working_memory_bytes() as u64),
            }
        })
        .collect()
}

fn main() {
    let scale = Scale::from_env();
    let region = scale.fig12_region();
    let particles = scale.fig12_particles();
    let pool_bytes = scale.fig12_pool_bytes();
    let block = scale.grid_block_size();
    let loops = 3usize;

    println!("# Fig. 12 — memory usage (MB), scale = {scale}, pool = {:.0} MB", mb(pool_bytes));
    println!("{:<28} {:>14} {:>14} {:>14}", "configuration", "unused pool", "used pool", "working");

    let mut rows: Vec<Row> = Vec::new();

    // Handwritten baselines: no pool, only working memory.
    let (grid, _) = HandwrittenSGrid::new(region, loops, grid_init).run();
    rows.push(Row {
        label: "SGrid H".into(),
        unused_pool_mb: 0.0,
        used_pool_mb: 0.0,
        working_mb: mb(grid.bytes() as u64),
    });
    let (us, _) = HandwrittenUsGrid::new(region, GridLayout::CaseC, loops, grid_init).run();
    rows.push(Row {
        label: "USGrid H".into(),
        unused_pool_mb: 0.0,
        used_pool_mb: 0.0,
        // value + 4 neighbour indices per point, double buffered.
        working_mb: mb((us.len() * (8 + 4 * 8) * 2) as u64),
    });
    let (speeds, _) = HandwrittenParticle::new(particles, loops).run();
    rows.push(Row {
        label: "Particle H".into(),
        unused_pool_mb: 0.0,
        used_pool_mb: 0.0,
        working_mb: mb((speeds.len()
            * 16
            * std::mem::size_of::<aohpc_baselines::particle::BaselineParticle>())
            as u64),
    });

    // Platform: SGrid.
    rows.extend(platform_rows("SGrid", pool_bytes, |mode| {
        let mut system = SGridSystem::with_block_size(region, block);
        system.pool_bytes = Some(pool_bytes);
        let app = SGridJacobiApp::new(loops, block);
        Platform::new(mode).run_system(Arc::new(system), app.factory())
    }));
    // Platform: USGrid CaseC (CaseC and CaseR share one binary and one memory
    // footprint in the paper; MMAT adds working memory, reported separately).
    rows.extend(platform_rows("USGrid", pool_bytes, |mode| {
        let mut system = UsGridSystem::with_block_size(region, block, GridLayout::CaseC);
        system.pool_bytes = Some(pool_bytes);
        let app = UsGridJacobiApp::new(system.clone(), loops);
        Platform::new(mode).with_mmat(true).run_system(Arc::new(system), app.factory())
    }));
    // Platform: Particle.
    rows.extend(platform_rows("Particle", pool_bytes, |mode| {
        let mut system = ParticleSystem::paper(particles);
        system.pool_bytes = Some(pool_bytes);
        let app = ParticleApp::new(system.clone(), loops);
        Platform::new(mode).run_system(Arc::new(system), app.factory())
    }));

    for row in rows {
        println!(
            "{:<28} {:>14.2} {:>14.2} {:>14.2}",
            row.label, row.unused_pool_mb, row.used_pool_mb, row.working_mb
        );
    }
    println!();
    println!("(paper: platform configurations use several-to-dozens times more working memory than handwritten, due to the Env structure and MMAT)");
}
