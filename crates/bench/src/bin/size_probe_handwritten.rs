//! A probe binary linking only the handwritten baselines (Table I's "H"
//! column): its on-disk size is compared against `size_probe_platform`.

use aohpc_baselines::{HandwrittenParticle, HandwrittenSGrid, HandwrittenUsGrid};
use aohpc_workloads::{GridLayout, ParticleSize, RegionSize};

fn init(x: i64, y: i64) -> f64 {
    ((x * 13 + y * 7) % 97) as f64 / 97.0
}

fn main() {
    let (g, _) = HandwrittenSGrid::new(RegionSize::square(32), 2, init).run();
    let (u, _) = HandwrittenUsGrid::new(RegionSize::square(32), GridLayout::CaseC, 2, init).run();
    let (p, _) = HandwrittenParticle::new(ParticleSize::new(128), 2).run();
    println!(
        "handwritten probe: sums = {:.3} {:.3} {:.3}",
        g.field().iter().sum::<f64>(),
        u.iter().sum::<f64>(),
        p.iter().sum::<f64>()
    );
}
